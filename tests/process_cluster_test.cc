// End-to-end tests of ClusterMode::kProcess (ISSUE 6): a coordinator
// driving real `presto_worker` daemons over the /v1/task HTTP protocol,
// including heartbeat-driven failure detection of a kill -9'd worker.
//
// The worker binary path arrives via the PRESTO_WORKER_BIN environment
// variable (set by ctest); the suite skips when it is absent so the test
// binary stays runnable standalone.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "connectors/memcon/memory_connector.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "exchange/http/http_io.h"
#include "worker/subprocess.h"
#include "worker/task_protocol.h"

namespace presto {
namespace {

constexpr double kScale = 0.05;  // orders=750, lineitem=3000

// Parses "READY task_port=A exchange_port=B metrics_port=C". The metrics
// port is optional so the parser keeps accepting the pre-observability
// banner shape.
bool ParseReady(const std::string& line, RemoteWorkerAddress* address) {
  int task_port = -1;
  int exchange_port = -1;
  int metrics_port = -1;
  int parsed =
      sscanf(line.c_str(), "READY task_port=%d exchange_port=%d metrics_port=%d",
             &task_port, &exchange_port, &metrics_port);
  if (parsed < 2) {
    return false;
  }
  address->task_port = task_port;
  address->exchange_port = exchange_port;
  address->metrics_port = metrics_port;
  return true;
}

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                std::string sa = a[i].ToString();
                std::string sb = b[i].ToString();
                if (sa != sb) return sa < sb;
              }
              return a.size() < b.size();
            });
  return rows;
}

class ProcessClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("PRESTO_WORKER_BIN");
    if (bin == nullptr || bin[0] == '\0') {
      GTEST_SKIP() << "PRESTO_WORKER_BIN not set; skipping process tests";
    }
    worker_bin_ = bin;
  }

  // Launches `count` daemons and waits for their READY banners.
  void StartWorkers(int count, int64_t heartbeat_interval_micros = 100'000,
                    std::vector<std::string> extra_args = {}) {
    for (int i = 0; i < count; ++i) {
      auto worker = std::make_unique<Subprocess>();
      std::vector<std::string> args = {
          worker_bin_, "--worker_id=" + std::to_string(i), "--threads=2",
          "--tpch_scale=" + std::to_string(kScale),
          "--heartbeat_interval_micros=" +
              std::to_string(heartbeat_interval_micros)};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      ASSERT_TRUE(worker->Start(args).ok());
      auto ready = worker->WaitForLine("READY", 20'000);
      ASSERT_TRUE(ready.ok()) << ready.status().ToString();
      RemoteWorkerAddress address;
      ASSERT_TRUE(ParseReady(*ready, &address)) << *ready;
      addresses_.push_back(address);
      workers_.push_back(std::move(worker));
    }
  }

  // Engine whose coordinator drives the daemons. `max_task_retries < 0`
  // keeps the ClusterConfig default (task retry on worker death enabled).
  std::unique_ptr<PrestoEngine> MakeProcessEngine(
      int64_t heartbeat_timeout_micros = 2'000'000,
      int max_task_retries = -1) {
    EngineOptions options;
    options.cluster.mode = ClusterMode::kProcess;
    options.cluster.remote_workers = addresses_;
    options.cluster.heartbeat_timeout_micros = heartbeat_timeout_micros;
    if (max_task_retries >= 0) {
      options.cluster.max_task_retries = max_task_retries;
    }
    auto engine = std::make_unique<PrestoEngine>(std::move(options));
    engine->catalog().Register(
        std::make_shared<TpchConnector>("tpch", kScale));
    engine->catalog().SetDefault("tpch");
    return engine;
  }

  // GET /v1/info of a started worker, parsed.
  Result<NodeInfo> FetchWorkerInfo(int worker) {
    PRESTO_ASSIGN_OR_RETURN(
        auto conn, ConnectToLoopback(addresses_[static_cast<size_t>(worker)]
                                         .task_port,
                                     2'000'000));
    HttpRequest request;
    request.method = "GET";
    request.path = "/v1/info";
    PRESTO_RETURN_IF_ERROR(conn->WriteRequest(request));
    PRESTO_ASSIGN_OR_RETURN(HttpResponse response, conn->ReadResponse());
    if (response.status != 200) {
      return Status::IOError("GET /v1/info: HTTP " +
                             std::to_string(response.status));
    }
    PRESTO_ASSIGN_OR_RETURN(Json body, Json::Parse(response.body));
    return NodeInfo::FromJson(body);
  }

  // Reads the engine's task-retry counter (registration is idempotent by
  // name + labels, so this returns the same counter the coordinator
  // increments — the label set must match the engine's registration).
  int64_t RetriesTotal(PrestoEngine* engine) {
    return engine->metrics()
        .RegisterCounter("presto_task_retries_total", "",
                         {{"trace_instant", "task_recovery"}})
        ->value();
  }

  // Reference engine running the same catalog in-process.
  std::unique_ptr<PrestoEngine> MakeThreadsEngine(int num_workers) {
    EngineOptions options;
    options.cluster.num_workers = num_workers;
    options.cluster.executor.threads = 2;
    auto engine = std::make_unique<PrestoEngine>(std::move(options));
    engine->catalog().Register(
        std::make_shared<TpchConnector>("tpch", kScale));
    engine->catalog().SetDefault("tpch");
    return engine;
  }

  // Tells every worker where to heartbeat (the engine's observability
  // port, which exists only after engine construction).
  void StartHeartbeats(PrestoEngine* engine) {
    ASSERT_TRUE(engine->StartObservability().ok());
    for (auto& worker : workers_) {
      // A worker killed before this point simply never heartbeats; the
      // write to its closed stdin fails and that is fine.
      (void)worker->WriteLine("coordinator_port=" +
                              std::to_string(engine->observability_port()));
    }
  }

  std::string worker_bin_;
  std::vector<std::unique_ptr<Subprocess>> workers_;
  std::vector<RemoteWorkerAddress> addresses_;
};

TEST_F(ProcessClusterTest, ScanAndAggregateMatchesInProcess) {
  StartWorkers(2);
  auto process = MakeProcessEngine();
  auto threads = MakeThreadsEngine(2);

  for (const char* sql : {
           "SELECT count(*) FROM lineitem",
           "SELECT orderstatus, count(*), sum(totalprice) FROM orders "
           "GROUP BY orderstatus",
       }) {
    auto remote = process->ExecuteAndFetch(sql);
    ASSERT_TRUE(remote.ok()) << sql << ": " << remote.status().ToString();
    auto local = threads->ExecuteAndFetch(sql);
    ASSERT_TRUE(local.ok()) << sql << ": " << local.status().ToString();
    EXPECT_EQ(Sorted(*remote).size(), Sorted(*local).size()) << sql;
    auto sorted_remote = Sorted(*remote);
    auto sorted_local = Sorted(*local);
    for (size_t r = 0; r < sorted_remote.size(); ++r) {
      for (size_t c = 0; c < sorted_remote[r].size(); ++c) {
        EXPECT_EQ(sorted_remote[r][c].ToString(),
                  sorted_local[r][c].ToString())
            << sql << " row " << r << " col " << c;
      }
    }
  }
}

TEST_F(ProcessClusterTest, MultiFragmentJoinMatchesInProcess) {
  StartWorkers(2);
  auto process = MakeProcessEngine();
  auto threads = MakeThreadsEngine(2);

  const char* sql =
      "SELECT o.orderpriority, count(*) FROM orders o "
      "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.orderpriority";
  auto remote = process->ExecuteAndFetch(sql);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto local = threads->ExecuteAndFetch(sql);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  auto sorted_remote = Sorted(*remote);
  auto sorted_local = Sorted(*local);
  ASSERT_EQ(sorted_remote.size(), sorted_local.size());
  for (size_t r = 0; r < sorted_remote.size(); ++r) {
    ASSERT_EQ(sorted_remote[r].size(), sorted_local[r].size());
    for (size_t c = 0; c < sorted_remote[r].size(); ++c) {
      EXPECT_EQ(sorted_remote[r][c].ToString(),
                sorted_local[r][c].ToString());
    }
  }
  // The distributed run left nothing behind on the coordinator side.
  EXPECT_EQ(process->cluster().exchange().TotalBufferedBytes(), 0);
}

TEST_F(ProcessClusterTest, SequentialQueriesReuseWorkers) {
  StartWorkers(2);
  auto process = MakeProcessEngine();
  for (int i = 0; i < 3; ++i) {
    auto rows = process->ExecuteAndFetch(
        "SELECT count(*) FROM orders WHERE orderkey > " +
        std::to_string(i * 10));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->size(), 1u);
  }
}

TEST_F(ProcessClusterTest, HeartbeatsReachCoordinator) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  auto process = MakeProcessEngine();
  StartHeartbeats(process.get());

  // Both workers beat within a couple intervals.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (process->cluster().liveness().SeenHeartbeat(0) &&
        process->cluster().liveness().SeenHeartbeat(1)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(process->cluster().liveness().SeenHeartbeat(0));
  EXPECT_TRUE(process->cluster().liveness().SeenHeartbeat(1));
  EXPECT_EQ(process->cluster().liveness().AliveCount(2), 2);
  EXPECT_GT(process->cluster().liveness().heartbeats_received(), 0);
}

TEST_F(ProcessClusterTest, KilledWorkerFailsQueryWithinTimeout) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  // Retries pinned to zero: this test covers the pre-recovery contract —
  // a worker death fails the query promptly instead of hanging.
  auto process = MakeProcessEngine(/*heartbeat_timeout_micros=*/500'000,
                                   /*max_task_retries=*/0);
  StartHeartbeats(process.get());

  // Wait until the failure detector is active for both workers.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         !(process->cluster().liveness().SeenHeartbeat(0) &&
           process->cluster().liveness().SeenHeartbeat(1))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(process->cluster().liveness().SeenHeartbeat(1));

  // A join big enough to stay running while we murder worker 1.
  auto result = process->Execute(
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  workers_[1]->Kill();
  workers_[1]->Wait();

  auto start = std::chrono::steady_clock::now();
  Status final = result->FetchAll().status();
  auto detect_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // The query fails (never hangs): either the liveness verdict or a
  // broken-connection error surfaces, well within a few timeouts.
  EXPECT_FALSE(final.ok());
  EXPECT_LT(detect_micros, 20'000'000) << final.ToString();

  // The detector eventually declares worker 1 dead and the gauge drops.
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         process->cluster().liveness().IsAlive(1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(process->cluster().liveness().IsAlive(1));
  EXPECT_EQ(process->cluster().liveness().AliveCount(2), 1);

  // Nothing leaked on the coordinator side.
  EXPECT_EQ(process->cluster().exchange().TotalBufferedBytes(), 0);
}

// The ISSUE 7 headline: a worker killed -9 mid-query does not fail the
// query — its tasks are re-created on the survivor, journaled splits are
// replayed, consumers re-fetch from token 0, and the result is
// row-identical to an undisturbed run. Afterwards nothing leaked and the
// shrunken cluster still serves new queries.
TEST_F(ProcessClusterTest, KilledWorkerQueryRecovers) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  auto process = MakeProcessEngine(/*heartbeat_timeout_micros=*/500'000);
  StartHeartbeats(process.get());

  const char* sql =
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey";
  auto expected = MakeThreadsEngine(2)->ExecuteAndFetch(sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto result = process->Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  workers_[1]->Kill();
  workers_[1]->Wait();

  auto rows = result->FetchAllRows();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto sorted_got = Sorted(*rows);
  auto sorted_want = Sorted(*expected);
  ASSERT_EQ(sorted_got.size(), sorted_want.size());
  for (size_t r = 0; r < sorted_got.size(); ++r) {
    ASSERT_EQ(sorted_got[r].size(), sorted_want[r].size());
    for (size_t c = 0; c < sorted_got[r].size(); ++c) {
      EXPECT_EQ(sorted_got[r][c].ToString(), sorted_want[r][c].ToString());
    }
  }
  // At least one task was re-created on the replacement worker.
  EXPECT_GE(RetriesTotal(process.get()), 1);

  // Zero leaked bytes: coordinator-side exchange state is empty, and the
  // surviving worker released every buffer — including frames that were
  // retained for replay — when the query was torn down.
  EXPECT_EQ(process->cluster().exchange().TotalBufferedBytes(), 0);
  EXPECT_EQ(process->cluster().exchange().TotalInflightBytes(), 0);
  EXPECT_EQ(process->cluster().exchange().TotalRetainedBytes(), 0);
  auto info = FetchWorkerInfo(0);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->active_tasks, 0);
  EXPECT_EQ(info->buffered_bytes, 0);
  EXPECT_EQ(info->retained_bytes, 0);

  // The shrunken cluster keeps serving queries (placement routes around
  // the dead worker).
  auto followup = process->ExecuteAndFetch("SELECT count(*) FROM orders");
  ASSERT_TRUE(followup.ok()) << followup.status().ToString();
  ASSERT_EQ(followup->size(), 1u);
  EXPECT_EQ((*followup)[0][0].ToString(), "750");
}

// Recovery edge: the worker dies before it ever heartbeats. The liveness
// fix (a registered worker that never beats is dead once its grace
// expires) plus connect-failure absorption must reroute its tasks instead
// of waiting on a verdict that can never come.
TEST_F(ProcessClusterTest, KillBeforeFirstHeartbeatRecovers) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  auto process = MakeProcessEngine(/*heartbeat_timeout_micros=*/500'000);
  // Kill worker 1 before heartbeats are even wired up.
  workers_[1]->Kill();
  workers_[1]->Wait();
  StartHeartbeats(process.get());

  auto rows = process->ExecuteAndFetch(
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);

  // The never-heartbeated worker is declared dead after its grace window.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         process->cluster().liveness().IsAlive(1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(process->cluster().liveness().IsAlive(1));
}

// Recovery edge: the retry budget is finite. After one successful recovery
// round, killing the replacement worker too leaves no live workers — the
// query must fail promptly, surfacing the original worker-loss error, not
// hang.
TEST_F(ProcessClusterTest, RetryExhaustionSurfacesOriginalError) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  auto process = MakeProcessEngine(/*heartbeat_timeout_micros=*/500'000);
  StartHeartbeats(process.get());

  auto result = process->Execute(
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  workers_[1]->Kill();
  workers_[1]->Wait();

  // Wait for the first recovery round to land, then murder the survivor.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         RetriesTotal(process.get()) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  workers_[0]->Kill();
  workers_[0]->Wait();

  auto start = std::chrono::steady_clock::now();
  Status final = result->FetchAll().status();
  auto detect_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(final.ok());
  EXPECT_EQ(final.code(), StatusCode::kIOError) << final.ToString();
  EXPECT_NE(final.message().find("worker"), std::string::npos)
      << final.ToString();
  EXPECT_LT(detect_micros, 20'000'000);
}

// Regression: an Execute() that fails after taking an admission slot
// (here: no live worker left to place tasks on) must release the slot on
// teardown of the unlaunched execution. Before the fix every such failure
// leaked one slot, and max_concurrent_queries failures wedged the
// coordinator permanently.
TEST_F(ProcessClusterTest, FailedPlacementReleasesAdmissionSlots) {
  StartWorkers(1, /*heartbeat_interval_micros=*/50'000);
  EngineOptions options;
  options.cluster.mode = ClusterMode::kProcess;
  options.cluster.remote_workers = addresses_;
  options.cluster.heartbeat_timeout_micros = 300'000;
  options.cluster.max_concurrent_queries = 2;
  auto process = std::make_unique<PrestoEngine>(std::move(options));
  process->catalog().Register(
      std::make_shared<TpchConnector>("tpch", kScale));
  process->catalog().SetDefault("tpch");
  StartHeartbeats(process.get());

  // Let the failure detector activate before the kill: with no heartbeat
  // ever seen a single-worker tracker stays passive and the worker would
  // count as alive forever.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         !process->cluster().liveness().SeenHeartbeat(0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(process->cluster().liveness().SeenHeartbeat(0));
  workers_[0]->Kill();
  workers_[0]->Wait();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         process->cluster().liveness().IsAlive(0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_FALSE(process->cluster().liveness().IsAlive(0));

  // More failed queries than admission slots: each must fail promptly and
  // leave running_queries() at zero. ASSERT (not EXPECT) so a leak aborts
  // the test before an attempt would block forever on a wedged slot.
  for (int i = 0; i < 5; ++i) {
    auto rows = process->ExecuteAndFetch("SELECT count(*) FROM orders");
    EXPECT_FALSE(rows.ok()) << "query " << i << " ran with no live workers";
    ASSERT_EQ(process->coordinator().running_queries(), 0)
        << "admission slot leaked by failed Execute (attempt " << i << ")";
  }
}

// Recovery edge: result frames already delivered to the client are not
// replayable — a death that forces the root stage to restart after
// delivery must end in a clean failure (or, if the kill raced the stream's
// start, a recovered run with exactly the right rows). Never a hang,
// never duplicated rows.
TEST_F(ProcessClusterTest, MidStreamDeathNeverHangsOrDuplicates) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  auto process = MakeProcessEngine(/*heartbeat_timeout_micros=*/500'000);
  StartHeartbeats(process.get());

  // A streaming (non-aggregated) result: the root delivers frames while
  // upstream stages still run.
  const char* sql =
      "SELECT l.orderkey FROM lineitem l JOIN orders o "
      "ON l.orderkey = o.orderkey";
  auto expected = MakeThreadsEngine(2)->ExecuteAndFetch(sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  auto result = process->Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  workers_[1]->Kill();
  workers_[1]->Wait();

  auto start = std::chrono::steady_clock::now();
  auto rows = result->FetchAllRows();
  auto drain_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(drain_micros, 20'000'000) << "client-visible hang";
  if (rows.ok()) {
    // Recovered (or raced the kill): the stream must be exact — no lost
    // rows, no replayed duplicates.
    auto sorted_got = Sorted(*rows);
    auto sorted_want = Sorted(*expected);
    ASSERT_EQ(sorted_got.size(), sorted_want.size());
    for (size_t r = 0; r < sorted_got.size(); ++r) {
      EXPECT_EQ(sorted_got[r][0].ToString(), sorted_want[r][0].ToString());
    }
  } else {
    // Clean failure path: frames were already delivered, so the restart
    // was refused and the original worker-loss error surfaced.
    EXPECT_EQ(rows.status().code(), StatusCode::kIOError)
        << rows.status().ToString();
  }
  EXPECT_EQ(process->cluster().exchange().TotalBufferedBytes(), 0);
}

// The ISSUE 9 headline: a worker that is alive (heartbeating) but
// crawling — every driver quantum stalls for a second — must not hold the
// query hostage. The coordinator notices the straggling task via the
// progress counters in the status poll, races a higher-generation replica
// on the healthy worker, promotes the replica when it finishes first, and
// aborts the original. The result is row-identical to an in-process run
// (exactly-once), recovery never fires (the worker never dies), and no
// exchange bytes leak once the stalled quantum drains.
TEST_F(ProcessClusterTest, StalledWorkerIsOutRacedBySpeculation) {
  // A tiny driver time slice splits the scan into many quanta, so the
  // stalled worker pays the injected delay several times over — the
  // speculated run pays it at most once (the in-flight quantum of the
  // aborted original draining).
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000,
               {"--quantum_nanos=25000"});

  const char* sql = "SELECT count(*) FROM lineitem";
  auto expected = MakeThreadsEngine(2)->ExecuteAndFetch(sql);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Heartbeat timeout far beyond the test's lifetime: the stalled worker
  // keeps beating, so the failure detector never declares it dead and
  // ONLY speculation can rescue the query.
  auto speculative = [this] {
    EngineOptions options;
    options.cluster.mode = ClusterMode::kProcess;
    options.cluster.remote_workers = addresses_;
    options.cluster.heartbeat_timeout_micros = 60'000'000;
    options.cluster.max_speculative_tasks = 4;
    options.cluster.speculation_quantile = 0.5;
    options.cluster.speculation_min_samples = 2;
    options.cluster.speculation_min_stall_micros = 250'000;
    options.cluster.speculation_interval_micros = 25'000;
    auto engine = std::make_unique<PrestoEngine>(std::move(options));
    engine->catalog().Register(
        std::make_shared<TpchConnector>("tpch", kScale));
    engine->catalog().SetDefault("tpch");
    return engine;
  };

  auto process = speculative();
  StartHeartbeats(process.get());

  // Every driver quantum on worker 1 now pays a one-second stall.
  ASSERT_TRUE(workers_[1]->WriteLine("arm_stall_micros=1000000").ok());

  auto speculated_start = std::chrono::steady_clock::now();
  auto rows = process->ExecuteAndFetch(sql);
  auto speculated_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - speculated_start)
          .count();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  auto sorted_got = Sorted(*rows);
  auto sorted_want = Sorted(*expected);
  ASSERT_EQ(sorted_got.size(), sorted_want.size());
  for (size_t r = 0; r < sorted_got.size(); ++r) {
    ASSERT_EQ(sorted_got[r].size(), sorted_want[r].size());
    for (size_t c = 0; c < sorted_got[r].size(); ++c) {
      EXPECT_EQ(sorted_got[r][c].ToString(), sorted_want[r][c].ToString());
    }
  }

  // Speculation — not recovery — carried the query.
  EXPECT_GE(process->metrics()
                .RegisterCounter("presto_task_speculations_total", "",
                                 {{"trace_instant", "task_speculate"}})
                ->value(),
            1);
  EXPECT_GE(process->metrics()
                .RegisterCounter("presto_speculation_wins_total", "",
                                 {{"trace_instant", "speculation_win"}})
                ->value(),
            1);
  EXPECT_EQ(RetriesTotal(process.get()), 0);
  EXPECT_TRUE(process->cluster().liveness().IsAlive(1));

  // Release the stalled worker, then insist every byte drains: the aborted
  // original needs its in-flight stalled quantum to finish before the
  // worker can retire the task and free its buffers.
  ASSERT_TRUE(workers_[1]->WriteLine("arm_stall_micros=0").ok());
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  bool drained = false;
  while (std::chrono::steady_clock::now() < deadline && !drained) {
    drained = process->cluster().exchange().TotalBufferedBytes() == 0 &&
              process->cluster().exchange().TotalInflightBytes() == 0 &&
              process->cluster().exchange().TotalRetainedBytes() == 0;
    for (int w = 0; w < 2 && drained; ++w) {
      auto info = FetchWorkerInfo(w);
      drained = info.ok() && info->active_tasks == 0 &&
                info->buffered_bytes == 0 && info->retained_bytes == 0;
    }
    if (!drained) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(drained) << "exchange bytes leaked after speculation";

  // Control: same stall, speculation disabled. The query still finishes
  // (the worker is alive, just slow) with correct rows — but measurably
  // slower than the speculated run.
  process.reset();
  EngineOptions options;
  options.cluster.mode = ClusterMode::kProcess;
  options.cluster.remote_workers = addresses_;
  options.cluster.heartbeat_timeout_micros = 60'000'000;
  options.cluster.max_speculative_tasks = 0;
  auto disabled = std::make_unique<PrestoEngine>(std::move(options));
  disabled->catalog().Register(
      std::make_shared<TpchConnector>("tpch", kScale));
  disabled->catalog().SetDefault("tpch");
  StartHeartbeats(disabled.get());
  ASSERT_TRUE(workers_[1]->WriteLine("arm_stall_micros=1000000").ok());

  auto disabled_start = std::chrono::steady_clock::now();
  auto slow_rows = disabled->ExecuteAndFetch(sql);
  auto disabled_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - disabled_start)
          .count();
  ASSERT_TRUE(workers_[1]->WriteLine("arm_stall_micros=0").ok());
  ASSERT_TRUE(slow_rows.ok()) << slow_rows.status().ToString();
  ASSERT_EQ(slow_rows->size(), 1u);
  EXPECT_EQ((*slow_rows)[0][0].ToString(), sorted_want[0][0].ToString());
  EXPECT_EQ(disabled->metrics()
                .RegisterCounter("presto_task_speculations_total", "",
                                 {{"trace_instant", "task_speculate"}})
                ->value(),
            0);
  EXPECT_LT(speculated_micros, disabled_micros)
      << "speculation did not beat the stalled run";
}

TEST_F(ProcessClusterTest, WorkerInfoEndpointReports) {
  StartWorkers(1);
  auto conn = ConnectToLoopback(addresses_[0].task_port, 2'000'000);
  ASSERT_TRUE(conn.ok());
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/info";
  ASSERT_TRUE((*conn)->WriteRequest(request).ok());
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("worker-0"), std::string::npos);
  EXPECT_NE(response->body.find("ACTIVE"), std::string::npos);
}

TEST_F(ProcessClusterTest, TableWriteRejectedInProcessMode) {
  StartWorkers(1);
  auto process = MakeProcessEngine();
  process->catalog().Register(
      std::make_shared<MemoryConnector>("memory"));
  auto result = process->ExecuteAndFetch(
      "CREATE TABLE memory.copy AS SELECT orderkey FROM orders");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(result.status().message().find("out-of-process"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(ProcessClusterTest, WorkerMetricsEndpointServes) {
  StartWorkers(1);
  ASSERT_GT(addresses_[0].metrics_port, 0) << "banner lacks metrics_port";

  // /v1/metrics: the worker's own Prometheus exposition.
  {
    auto conn = ConnectToLoopback(addresses_[0].metrics_port, 2'000'000);
    ASSERT_TRUE(conn.ok());
    HttpRequest request;
    request.method = "GET";
    request.path = "/v1/metrics";
    ASSERT_TRUE((*conn)->WriteRequest(request).ok());
    auto response = (*conn)->ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
    for (const char* family : {
             "presto_worker_active_tasks",
             "presto_worker_running_drivers",
             "presto_worker_memory_general_used_bytes",
             "presto_worker_exchange_buffered_bytes",
             "presto_worker_queue_depth{level=\"0\"}",
         }) {
      EXPECT_NE(response->body.find(family), std::string::npos) << family;
    }
  }

  // /v1/status: the human-facing JSON snapshot on the same port.
  {
    auto conn = ConnectToLoopback(addresses_[0].metrics_port, 2'000'000);
    ASSERT_TRUE(conn.ok());
    HttpRequest request;
    request.method = "GET";
    request.path = "/v1/status";
    ASSERT_TRUE((*conn)->WriteRequest(request).ok());
    auto response = (*conn)->ReadResponse();
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, 200);
    auto body = Json::Parse(response->body);
    ASSERT_TRUE(body.ok());
    auto state = body->GetString("state");
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, "ACTIVE");
    EXPECT_TRUE(body->Find("activeTasks") != nullptr);
    EXPECT_TRUE(body->Find("memory") != nullptr);
    EXPECT_TRUE(body->Find("queueDepths") != nullptr);
  }

  // Unknown paths and non-GET methods are rejected, not crashed on.
  {
    auto conn = ConnectToLoopback(addresses_[0].metrics_port, 2'000'000);
    ASSERT_TRUE(conn.ok());
    HttpRequest request;
    request.method = "GET";
    request.path = "/v1/nope";
    ASSERT_TRUE((*conn)->WriteRequest(request).ok());
    auto response = (*conn)->ReadResponse();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 404);
  }
}

// Counts distinct worker pids (pid >= 1) among real (non-metadata) events
// of a Chrome trace JSON document.
int WorkerPidsInTrace(const std::string& trace_json) {
  auto doc = Json::Parse(trace_json);
  if (!doc.ok()) return 0;
  auto events = doc->GetArray("traceEvents");
  if (!events.ok()) return 0;
  std::set<int64_t> pids;
  for (const Json& event : (*events)->items()) {
    auto phase = event.GetString("ph");
    if (!phase.ok() || *phase == "M") continue;
    auto pid = event.GetInt("pid");
    if (pid.ok() && *pid >= 1) pids.insert(*pid);
  }
  return static_cast<int>(pids.size());
}

TEST_F(ProcessClusterTest, ShippedSpansMergeIntoCoordinatorTrace) {
  StartWorkers(2);
  auto process = MakeProcessEngine();

  auto handle = process->Execute(
      "SELECT o.orderpriority, count(*) FROM orders o "
      "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.orderpriority");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  std::string query_id = handle->query_id();
  auto rows = handle->FetchAllRows();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  // Worker spans ride status long-polls during the query and a final
  // flush on the task DELETE round-trip, so allow a short settle window.
  int worker_pids = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    auto trace = process->QueryTraceJson(query_id);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    worker_pids = WorkerPidsInTrace(*trace);
    if (worker_pids >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(worker_pids, 2)
      << "merged trace lacks spans from both worker processes";

  // The per-worker shipping instruments saw the spans; nothing dropped.
  int64_t shipped = 0;
  int64_t dropped = 0;
  for (int w = 0; w < 2; ++w) {
    MetricLabels labels = {{"worker", "w" + std::to_string(w)}};
    shipped += process->metrics()
                   .RegisterCounter("presto_trace_shipped_spans_total", "",
                                    labels)
                   ->value();
    dropped += process->metrics()
                   .RegisterCounter("presto_trace_dropped_spans_total", "",
                                    labels)
                   ->value();
  }
  EXPECT_GT(shipped, 0);
  EXPECT_EQ(dropped, 0);
}

TEST_F(ProcessClusterTest, ExplainAnalyzeAcrossProcesses) {
  StartWorkers(2);
  auto process = MakeProcessEngine();

  // EXPLAIN ANALYZE: the fragmented plan annotated with actual runtime
  // stats gathered from the remote workers' status responses.
  auto analyzed = process->ExplainAnalyze(
      "EXPLAIN ANALYZE SELECT orderstatus, count(*) FROM orders "
      "GROUP BY orderstatus");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("Fragment"), std::string::npos);
  EXPECT_NE(analyzed->find("rows"), std::string::npos);

  // VERBOSE appends the compact cross-process timeline: shipped worker
  // spans appear under their own pids (p1/p2) next to the coordinator's
  // p0 planning spans. Spans ship during status polls, so a fast query
  // can occasionally finish before any arrive — retry a couple times.
  bool cross_process = false;
  std::string verbose;
  for (int attempt = 0; attempt < 3 && !cross_process; ++attempt) {
    auto result = process->ExplainAnalyze(
        "EXPLAIN ANALYZE VERBOSE SELECT o.orderpriority, count(*) "
        "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
        "GROUP BY o.orderpriority");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    verbose = *result;
    cross_process = verbose.find("p1 ") != std::string::npos &&
                    verbose.find("p2 ") != std::string::npos;
  }
  EXPECT_NE(verbose.find("Timeline:"), std::string::npos);
  EXPECT_NE(verbose.find("p0 "), std::string::npos)
      << "timeline lacks coordinator spans";
  EXPECT_TRUE(cross_process)
      << "timeline lacks worker spans:\n" << verbose;
}

TEST_F(ProcessClusterTest, ClusterMetricsFederateLiveWorkers) {
  StartWorkers(2, /*heartbeat_interval_micros=*/50'000);
  auto process = MakeProcessEngine();
  StartHeartbeats(process.get());

  // Federation only scrapes workers the liveness tracker considers alive.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         !(process->cluster().liveness().SeenHeartbeat(0) &&
           process->cluster().liveness().SeenHeartbeat(1))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(process->cluster().liveness().SeenHeartbeat(0));
  ASSERT_TRUE(process->cluster().liveness().SeenHeartbeat(1));

  auto conn = ConnectToLoopback(process->observability_port(), 5'000'000);
  ASSERT_TRUE(conn.ok());
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/cluster/metrics";
  ASSERT_TRUE((*conn)->WriteRequest(request).ok());
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  const std::string& body = response->body;

  // Both workers' samples arrive relabeled with their worker identity.
  EXPECT_NE(body.find("presto_worker_active_tasks{worker=\"w0\"}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("presto_worker_active_tasks{worker=\"w1\"}"),
            std::string::npos);
  // Coordinator families are merged in unlabeled.
  EXPECT_NE(body.find("presto_cluster_alive_workers"), std::string::npos);
  // Roll-up gauges summarize the scrape itself.
  EXPECT_NE(body.find("\npresto_cluster_scraped_workers 2"),
            std::string::npos);
  EXPECT_NE(body.find("\npresto_cluster_scrape_failures 0"),
            std::string::npos);
}

}  // namespace
}  // namespace presto
