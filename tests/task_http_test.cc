// Unit tests of the /v1/task lifecycle protocol (ISSUE 6): JSON serde,
// protocol edges (malformed bodies, unknown tasks, duplicate creates,
// deletes of finished tasks), long-poll semantics, shutdown ordering, and
// the worker.task_service fault point — all in-process against a
// WorkerRuntime, no daemons involved.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "connectors/tpch/tpch_connector.h"
#include "fragment/fragmenter.h"
#include "optimizer/optimizer.h"
#include "plan/plan_serde.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "worker/task_protocol.h"
#include "worker/worker_runtime.h"

namespace presto {
namespace {

class TaskHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto catalog = std::make_shared<Catalog>();
    catalog->Register(std::make_shared<TpchConnector>("tpch", 0.01));
    catalog->SetDefault("tpch");
    catalog_ = catalog;
    WorkerRuntimeConfig config;
    config.executor.threads = 2;
    runtime_ = std::make_unique<WorkerRuntime>(config, catalog_);
    ASSERT_TRUE(runtime_->Start().ok());
  }

  void TearDown() override {
    FaultInjection::Instance().DisarmAll();
    if (runtime_ != nullptr) runtime_->Stop();
  }

  Result<FragmentedPlan> Plan(const std::string& sql) {
    PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
    Planner planner(catalog_.get());
    PRESTO_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.Plan(*stmt));
    Optimizer optimizer(catalog_.get());
    PRESTO_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
    return Fragmenter().Fragment(plan);
  }

  // Create request for one task of `fragment`, the way the coordinator
  // builds it (root tasks emit results through the exchange).
  Result<TaskCreateRequest> MakeCreate(const FragmentedPlan& plan,
                                       int fragment_id,
                                       const std::string& query_id) {
    const PlanFragment& fragment =
        plan.fragments[static_cast<size_t>(fragment_id)];
    TaskCreateRequest create;
    create.spec.query_id = query_id;
    create.spec.fragment_id = fragment_id;
    create.spec.task_index = 0;
    create.spec.num_tasks = 1;
    create.spec.consumer_partitions = 1;
    create.spec.worker_id = 0;
    for (int input : fragment.inputs) {
      create.spec.source_task_counts[input] = 1;
      create.endpoints.push_back({input, 0, runtime_->exchange_port()});
    }
    PRESTO_ASSIGN_OR_RETURN(create.fragment, PlanFragmentToJson(fragment));
    create.emit_results_via_exchange = fragment_id == plan.root_id;
    return create;
  }

  HttpResponse Call(const std::string& method, const std::string& path,
                    const std::string& body = "") {
    HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = body;
    return runtime_->task_service().Handle(request);
  }

  std::shared_ptr<const Catalog> catalog_;
  std::unique_ptr<WorkerRuntime> runtime_;
};

TEST_F(TaskHttpTest, CreateRequestJsonRoundtrip) {
  auto plan = Plan("SELECT count(*) FROM nation");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto create = MakeCreate(*plan, plan->root_id, "q0");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  create->eval_mode = EvalMode::kInterpreted;
  create->exchange_buffer_bytes = 123;
  create->max_drivers_per_pipeline = 7;
  create->active_writers = 3;

  auto reparsed = TaskCreateRequest::FromJson(
      *Json::Parse(create->ToJson().Serialize()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->spec.query_id, "q0");
  EXPECT_EQ(reparsed->spec.fragment_id, plan->root_id);
  EXPECT_EQ(reparsed->eval_mode, EvalMode::kInterpreted);
  EXPECT_EQ(reparsed->exchange_buffer_bytes, 123);
  EXPECT_EQ(reparsed->max_drivers_per_pipeline, 7);
  EXPECT_EQ(reparsed->active_writers, 3);
  EXPECT_EQ(reparsed->emit_results_via_exchange,
            create->emit_results_via_exchange);
  EXPECT_EQ(reparsed->endpoints, create->endpoints);
}

TEST_F(TaskHttpTest, StatusResponseJsonRoundtrip) {
  TaskStatusResponse status;
  status.task_id = "q.1.0";
  status.state = TaskState::kFailed;
  status.version = 42;
  status.error_code = StatusCode::kResourceExhausted;
  status.error_message = "out of memory";
  status.queued_splits[3] = 17;
  status.added_splits[3] = 20;
  status.output_utilization = 0.75;
  status.cpu_nanos = 123456;
  status.user_memory_bytes = 1 << 20;
  status.peak_user_memory_bytes = 2 << 20;

  auto reparsed = TaskStatusResponse::FromJson(
      *Json::Parse(status.ToJson().Serialize()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->task_id, "q.1.0");
  EXPECT_EQ(reparsed->state, TaskState::kFailed);
  EXPECT_EQ(reparsed->version, 42);
  EXPECT_EQ(reparsed->error_code, StatusCode::kResourceExhausted);
  EXPECT_EQ(reparsed->error_message, "out of memory");
  EXPECT_EQ(reparsed->queued_splits.at(3), 17);
  EXPECT_EQ(reparsed->added_splits.at(3), 20);
  EXPECT_DOUBLE_EQ(reparsed->output_utilization, 0.75);
  EXPECT_EQ(reparsed->completed_splits(), 3);
  Status as_status = reparsed->ToStatus();
  EXPECT_EQ(as_status.code(), StatusCode::kResourceExhausted);
}

TEST_F(TaskHttpTest, TaskStateStringsRoundtrip) {
  for (TaskState state :
       {TaskState::kPlanned, TaskState::kRunning, TaskState::kFinished,
        TaskState::kCanceled, TaskState::kAborted, TaskState::kFailed}) {
    auto parsed = TaskStateFromString(TaskStateToString(state));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, state);
  }
  EXPECT_FALSE(TaskStateFromString("BOGUS").ok());
}

TEST_F(TaskHttpTest, MalformedBodyIsBadRequest) {
  EXPECT_EQ(Call("POST", "/v1/task/q.0.0", "{not json").status, 400);
  EXPECT_EQ(Call("POST", "/v1/task/q.0.0", "{\"spec\": 7}").status, 400);
}

TEST_F(TaskHttpTest, UnknownTaskIsNotFound) {
  EXPECT_EQ(Call("GET", "/v1/task/nope.0.0/status").status, 404);
  EXPECT_EQ(Call("DELETE", "/v1/task/nope.0.0").status, 404);
  // Split update for a task that was never created.
  EXPECT_EQ(Call("POST", "/v1/task/nope.0.0", "{\"splits\":{}}").status,
            404);
}

TEST_F(TaskHttpTest, UnknownRouteAndMethod) {
  EXPECT_EQ(Call("GET", "/v1/bogus").status, 404);
  EXPECT_EQ(Call("PUT", "/v1/task/q.0.0").status, 405);
}

TEST_F(TaskHttpTest, MismatchedTaskIdRejected) {
  auto plan = Plan("SELECT count(*) FROM nation");
  ASSERT_TRUE(plan.ok());
  auto create = MakeCreate(*plan, plan->root_id, "q1");
  ASSERT_TRUE(create.ok());
  // Path says a different task than the spec.
  EXPECT_EQ(Call("POST", "/v1/task/other.9.9",
                 create->ToJson().Serialize())
                .status,
            400);
}

TEST_F(TaskHttpTest, CreateRunsToFinishedAndDuplicateCreateIsIdempotent) {
  auto plan = Plan("SELECT count(*) FROM nation");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Single-worker plan: create every fragment's task so remote sources
  // have producers; scan fragments need their splits closed out.
  for (const auto& fragment : plan->fragments) {
    auto create = MakeCreate(*plan, fragment.id, "q2");
    ASSERT_TRUE(create.ok());
    std::string task_id = MakeTaskId("q2", fragment.id, 0);
    HttpResponse response = Call("POST", "/v1/task/" + task_id,
                                 create->ToJson().Serialize());
    ASSERT_EQ(response.status, 200) << response.body;
  }
  // Feed splits the way the coordinator's scheduling loop does: enumerate
  // from the connector, serialize, POST them as updates, close the stream.
  auto connector = catalog_->Get("tpch");
  ASSERT_TRUE(connector.ok());
  for (const auto& fragment : plan->fragments) {
    std::vector<std::shared_ptr<const TableScanNode>> scans;
    std::function<void(const PlanNodePtr&)> walk =
        [&](const PlanNodePtr& node) {
          if (node->kind() == PlanNodeKind::kTableScan) {
            scans.push_back(
                std::static_pointer_cast<const TableScanNode>(node));
          }
          for (const auto& c : node->children()) walk(c);
        };
    walk(fragment.root);
    if (scans.empty()) continue;
    std::string task_id = MakeTaskId("q2", fragment.id, 0);
    for (const auto& scan : scans) {
      ScanSpec spec;
      spec.table = scan->table();
      spec.layout_id = scan->layout_id();
      spec.columns = scan->columns();
      spec.predicates = scan->predicates();
      spec.num_workers = 1;
      auto source = (*connector)->GetSplits(spec);
      ASSERT_TRUE(source.ok());
      TaskUpdateRequest update;
      for (;;) {
        auto batch = (*source)->NextBatch(32);
        ASSERT_TRUE(batch.ok());
        if (batch->empty()) break;
        for (const auto& split : *batch) {
          auto serialized = (*connector)->SerializeSplit(*split);
          ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
          update.splits[scan->id()].push_back(*serialized);
        }
      }
      update.no_more_splits.push_back(scan->id());
      HttpResponse response = Call("POST", "/v1/task/" + task_id,
                                   update.ToJson().Serialize());
      ASSERT_EQ(response.status, 200) << response.body;
    }
  }
  // Every task reaches FINISHED (long-poll drives the wait).
  for (const auto& fragment : plan->fragments) {
    std::string task_id = MakeTaskId("q2", fragment.id, 0);
    TaskState state = TaskState::kRunning;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    int64_t since = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      HttpResponse response =
          Call("GET", "/v1/task/" + task_id + "/status?since=" +
                          std::to_string(since) + "&wait=200000");
      ASSERT_EQ(response.status, 200) << response.body;
      auto parsed = TaskStatusResponse::FromJson(*Json::Parse(response.body));
      ASSERT_TRUE(parsed.ok());
      state = parsed->state;
      since = parsed->version;
      if (IsTerminalTaskState(state)) break;
    }
    EXPECT_EQ(state, TaskState::kFinished)
        << task_id << " in " << TaskStateToString(state);
  }

  // Re-POSTing the create of a finished task is idempotent: it answers
  // with the task's current status instead of double-running it.
  const PlanFragment& root =
      plan->fragments[static_cast<size_t>(plan->root_id)];
  auto create = MakeCreate(*plan, root.id, "q2");
  ASSERT_TRUE(create.ok());
  std::string root_id = MakeTaskId("q2", root.id, 0);
  HttpResponse dup =
      Call("POST", "/v1/task/" + root_id, create->ToJson().Serialize());
  ASSERT_EQ(dup.status, 200);
  auto dup_status = TaskStatusResponse::FromJson(*Json::Parse(dup.body));
  ASSERT_TRUE(dup_status.ok());
  EXPECT_EQ(dup_status->state, TaskState::kFinished);

  // DELETE of a finished task retires it; afterwards it is unknown, and
  // the worker leaks no task entries or exchange buffers.
  for (const auto& fragment : plan->fragments) {
    std::string task_id = MakeTaskId("q2", fragment.id, 0);
    EXPECT_EQ(Call("DELETE", "/v1/task/" + task_id).status, 200);
    EXPECT_EQ(Call("GET", "/v1/task/" + task_id + "/status").status, 404);
  }
  EXPECT_EQ(runtime_->task_manager().active_tasks(), 0);
  EXPECT_EQ(runtime_->exchange().TotalBufferedBytes(), 0);
}

TEST_F(TaskHttpTest, LongPollTimesOutThenWakesOnChange) {
  auto plan = Plan("SELECT count(*) FROM nation");
  ASSERT_TRUE(plan.ok());
  // Create only the leaf scan fragment's task: without splits it idles in
  // RUNNING, which is exactly what a long-poll needs.
  int leaf = -1;
  for (const auto& fragment : plan->fragments) {
    if (fragment.partitioning == PartitioningKind::kSource) leaf = fragment.id;
  }
  ASSERT_GE(leaf, 0);
  auto create = MakeCreate(*plan, leaf, "q3");
  ASSERT_TRUE(create.ok());
  std::string task_id = MakeTaskId("q3", leaf, 0);
  ASSERT_EQ(
      Call("POST", "/v1/task/" + task_id, create->ToJson().Serialize())
          .status,
      200);

  // since = current version, short wait: the poll must time out (~wait)
  // and report the same version.
  HttpResponse first = Call("GET", "/v1/task/" + task_id + "/status");
  ASSERT_EQ(first.status, 200);
  int64_t version =
      (*TaskStatusResponse::FromJson(*Json::Parse(first.body))).version;
  auto start = std::chrono::steady_clock::now();
  HttpResponse timed_out =
      Call("GET", "/v1/task/" + task_id + "/status?since=" +
                      std::to_string(version) + "&wait=100000");
  auto waited_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_EQ(timed_out.status, 200);
  EXPECT_GE(waited_micros, 80'000);
  EXPECT_EQ((*TaskStatusResponse::FromJson(*Json::Parse(timed_out.body)))
                .version,
            version);

  // A poll in flight wakes promptly when the task changes state (DELETE
  // cancels it and bumps the version).
  std::thread poker([this, task_id] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Call("DELETE", "/v1/task/" + task_id);
  });
  start = std::chrono::steady_clock::now();
  HttpResponse woken =
      Call("GET", "/v1/task/" + task_id + "/status?since=" +
                      std::to_string(version) + "&wait=10000000");
  auto woke_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  poker.join();
  ASSERT_EQ(woken.status, 200);
  EXPECT_LT(woke_micros, 5'000'000);
  auto woken_status = TaskStatusResponse::FromJson(*Json::Parse(woken.body));
  ASSERT_TRUE(woken_status.ok());
  EXPECT_GT(woken_status->version, version);
}

TEST_F(TaskHttpTest, PollDuringShutdownReturnsPromptly) {
  auto plan = Plan("SELECT count(*) FROM nation");
  ASSERT_TRUE(plan.ok());
  int leaf = -1;
  for (const auto& fragment : plan->fragments) {
    if (fragment.partitioning == PartitioningKind::kSource) leaf = fragment.id;
  }
  ASSERT_GE(leaf, 0);
  auto create = MakeCreate(*plan, leaf, "q4");
  ASSERT_TRUE(create.ok());
  std::string task_id = MakeTaskId("q4", leaf, 0);
  ASSERT_EQ(
      Call("POST", "/v1/task/" + task_id, create->ToJson().Serialize())
          .status,
      200);

  // Park a long-poll, then stop the runtime: the ISSUE 6 teardown order
  // (manager shutdown wakes pollers BEFORE the HTTP services and executor
  // are torn down) means the poll returns quickly instead of hanging or
  // touching freed state.
  std::atomic<bool> poll_returned{false};
  std::thread poller([&] {
    Call("GET", "/v1/task/" + task_id + "/status?since=999&wait=30000000");
    poll_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto start = std::chrono::steady_clock::now();
  runtime_->Stop();
  poller.join();
  auto stop_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  EXPECT_TRUE(poll_returned.load());
  EXPECT_LT(stop_micros, 10'000'000);
}

TEST_F(TaskHttpTest, ServiceFaultPointSurfacesAs500) {
  FaultSpec spec;
  spec.error = Status::Internal("injected task service failure");
  FaultInjection::Instance().Arm("worker.task_service", spec);
  HttpResponse response = Call("GET", "/v1/info");
  EXPECT_EQ(response.status, 500);
  FaultInjection::Instance().DisarmAll();
  EXPECT_EQ(Call("GET", "/v1/info").status, 200);
}

TEST_F(TaskHttpTest, InfoReportsWorkerIdentity) {
  HttpResponse response = Call("GET", "/v1/info");
  ASSERT_EQ(response.status, 200);
  auto info = NodeInfo::FromJson(*Json::Parse(response.body));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->node_id, "worker-0");
  EXPECT_EQ(info->state, "ACTIVE");
  EXPECT_EQ(info->active_tasks, 0);
}

}  // namespace
}  // namespace presto
