#include <gtest/gtest.h>

#include "types/row_schema.h"
#include "types/type.h"
#include "types/value.h"

namespace presto {
namespace {

TEST(TypeTest, NamesRoundTrip) {
  for (auto t : {TypeKind::kBoolean, TypeKind::kBigint, TypeKind::kDouble,
                 TypeKind::kVarchar, TypeKind::kDate}) {
    auto parsed = TypeFromString(TypeToString(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(TypeTest, AliasesParse) {
  EXPECT_EQ(TypeFromString("int"), TypeKind::kBigint);
  EXPECT_EQ(TypeFromString("INTEGER"), TypeKind::kBigint);
  EXPECT_EQ(TypeFromString("string"), TypeKind::kVarchar);
  EXPECT_EQ(TypeFromString("real"), TypeKind::kDouble);
  EXPECT_FALSE(TypeFromString("frobnicate").has_value());
}

TEST(TypeTest, Coercions) {
  EXPECT_TRUE(IsImplicitlyCoercible(TypeKind::kBigint, TypeKind::kDouble));
  EXPECT_FALSE(IsImplicitlyCoercible(TypeKind::kDouble, TypeKind::kBigint));
  EXPECT_TRUE(IsImplicitlyCoercible(TypeKind::kUnknown, TypeKind::kVarchar));
  EXPECT_FALSE(IsImplicitlyCoercible(TypeKind::kVarchar, TypeKind::kBigint));
}

TEST(TypeTest, CommonSuperType) {
  EXPECT_EQ(CommonSuperType(TypeKind::kBigint, TypeKind::kDouble),
            TypeKind::kDouble);
  EXPECT_EQ(CommonSuperType(TypeKind::kUnknown, TypeKind::kDate),
            TypeKind::kDate);
  EXPECT_EQ(CommonSuperType(TypeKind::kVarchar, TypeKind::kVarchar),
            TypeKind::kVarchar);
  EXPECT_FALSE(CommonSuperType(TypeKind::kVarchar, TypeKind::kBigint)
                   .has_value());
}

TEST(ValueTest, NullSemantics) {
  Value n = Value::Null(TypeKind::kBigint);
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(n.SqlEquals(Value::Bigint(1)));
  EXPECT_FALSE(n.SqlEquals(n));
  // NULLs sort last.
  EXPECT_GT(n.Compare(Value::Bigint(100)), 0);
  EXPECT_EQ(n.Compare(Value::Null(TypeKind::kBigint)), 0);
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value::Bigint(3).SqlEquals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Bigint(3).SqlEquals(Value::Double(3.5)));
  EXPECT_EQ(Value::Bigint(2).Compare(Value::Double(2.5)), -1);
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Bigint(1).Compare(Value::Bigint(2)), 0);
  EXPECT_GT(Value::Varchar("b").Compare(Value::Varchar("a")), 0);
  EXPECT_EQ(Value::Boolean(false).Compare(Value::Boolean(false)), 0);
  EXPECT_LT(Value::Date(10).Compare(Value::Date(11)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Bigint(42).Hash(), Value::Bigint(42).Hash());
  EXPECT_EQ(Value::Varchar("xy").Hash(), Value::Varchar("xy").Hash());
  EXPECT_NE(Value::Bigint(1).Hash(), Value::Bigint(2).Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null(TypeKind::kDouble).ToString(), "NULL");
  EXPECT_EQ(Value::Bigint(-7).ToString(), "-7");
  EXPECT_EQ(Value::Boolean(true).ToString(), "true");
  EXPECT_EQ(Value::Varchar("hi").ToString(), "'hi'");
}

TEST(DateTest, RoundTrip) {
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("1970-01-01", &days));
  EXPECT_EQ(days, 0);
  ASSERT_TRUE(ParseDate("1995-06-17", &days));
  EXPECT_EQ(FormatDate(days), "1995-06-17");
  ASSERT_TRUE(ParseDate("2038-12-31", &days));
  EXPECT_EQ(FormatDate(days), "2038-12-31");
}

TEST(DateTest, RejectsBadInput) {
  int64_t days = 0;
  EXPECT_FALSE(ParseDate("not-a-date", &days));
  EXPECT_FALSE(ParseDate("1995-13-01", &days));
  EXPECT_FALSE(ParseDate("1995-00-10", &days));
}

TEST(RowSchemaTest, LookupAndPrint) {
  RowSchema schema;
  schema.Add("a", TypeKind::kBigint);
  schema.Add("b", TypeKind::kVarchar);
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.IndexOf("b"), 1u);
  EXPECT_FALSE(schema.IndexOf("c").has_value());
  EXPECT_EQ(schema.ToString(), "(a BIGINT, b VARCHAR)");
}

}  // namespace
}  // namespace presto
