#include <gtest/gtest.h>

#include "common/random.h"
#include "connectors/hive/storc.h"
#include "connectors/memcon/memory_connector.h"
#include "engine/engine.h"
#include "engine/reference_executor.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "vector/block_builder.h"
#include "vector/page_codec.h"

namespace presto {
namespace {

// Random page over all five types, with nulls.
Page RandomPage(Random* rng, int64_t rows) {
  PageBuilder builder({TypeKind::kBigint, TypeKind::kDouble,
                       TypeKind::kVarchar, TypeKind::kBoolean,
                       TypeKind::kDate});
  for (int64_t i = 0; i < rows; ++i) {
    auto maybe_null = [&](Value v) {
      return rng->NextBool(0.15) ? Value::Null(v.type()) : v;
    };
    builder.AppendRow(
        {maybe_null(Value::Bigint(rng->NextInt64(-1000, 1000))),
         maybe_null(Value::Double(rng->NextDouble() * 100 - 50)),
         maybe_null(Value::Varchar(
             rng->NextString(static_cast<int>(rng->NextUint64(12))))),
         maybe_null(Value::Boolean(rng->NextBool(0.5))),
         maybe_null(Value::Date(rng->NextInt64(0, 20000)))});
  }
  return builder.Build();
}

bool PagesEqual(const Page& a, const Page& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      Value va = a.block(c)->GetValue(r);
      Value vb = b.block(c)->GetValue(r);
      if (va.is_null() != vb.is_null()) return false;
      if (!va.is_null() && va.Compare(vb) != 0) return false;
    }
  }
  return true;
}

class SerdeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SerdeProperty, PageCodecRoundTripAllOptionCombos) {
  Random rng(static_cast<uint64_t>(GetParam()) * 1237 + 5);
  Page page = RandomPage(&rng, 1 + static_cast<int64_t>(rng.NextUint64(300)));
  for (PageCompression compression :
       {PageCompression::kNone, PageCompression::kLz4}) {
    for (bool preserve : {false, true}) {
      for (bool checksum : {false, true}) {
        PageCodec codec(PageCodecOptions{compression, preserve, checksum});
        PageCodec::Frame frame = codec.Encode(page);
        size_t off = 0;
        auto restored = codec.Decode(frame.bytes, &off);
        ASSERT_TRUE(restored.ok()) << restored.status().ToString();
        EXPECT_TRUE(PagesEqual(page, *restored));
        EXPECT_EQ(off, frame.bytes.size());
        EXPECT_EQ(frame.rows, page.num_rows());
      }
    }
  }
}

TEST_P(SerdeProperty, StorcRoundTrip) {
  Random rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  RowSchema schema;
  schema.Add("a", TypeKind::kBigint);
  schema.Add("b", TypeKind::kDouble);
  schema.Add("c", TypeKind::kVarchar);
  schema.Add("d", TypeKind::kBoolean);
  schema.Add("e", TypeKind::kDate);
  int64_t stripe_rows = 1 + static_cast<int64_t>(rng.NextUint64(100));
  StorcWriter writer(schema, stripe_rows);
  std::vector<Page> originals;
  int pages = 1 + static_cast<int>(rng.NextUint64(4));
  for (int p = 0; p < pages; ++p) {
    Page page = RandomPage(&rng, 1 + static_cast<int64_t>(rng.NextUint64(150)));
    originals.push_back(page);
    writer.Append(page);
  }
  MiniDfs dfs({0, 0, 0});
  ASSERT_TRUE(dfs.Write("/f", writer.Finish()).ok());
  auto footer = ReadStorcFooter(dfs, "/f");
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  StorcReader reader(&dfs, "/f", *footer, {0, 1, 2, 3, 4}, {}, true, nullptr);
  // Concatenate all rows and compare with the originals.
  std::vector<std::vector<Value>> got;
  for (;;) {
    auto page = reader.NextPage();
    ASSERT_TRUE(page.ok());
    if (!page->has_value()) break;
    for (int64_t r = 0; r < (*page)->num_rows(); ++r) {
      got.push_back((*page)->GetRow(r));
    }
  }
  std::vector<std::vector<Value>> expected;
  for (const auto& page : originals) {
    for (int64_t r = 0; r < page.num_rows(); ++r) {
      expected.push_back(page.GetRow(r));
    }
  }
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    for (size_t c = 0; c < got[i].size(); ++c) {
      EXPECT_EQ(got[i][c].is_null(), expected[i][c].is_null());
      if (!got[i][c].is_null()) {
        EXPECT_EQ(got[i][c].Compare(expected[i][c]), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeProperty, ::testing::Range(0, 10));

// Differential property: randomized queries through the distributed engine
// match the single-threaded reference executor.
class QueryProperty : public ::testing::TestWithParam<int> {};

TEST_P(QueryProperty, EngineMatchesReference) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7907 + 3);
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  PrestoEngine engine(options);
  auto mem = std::make_shared<MemoryConnector>("memory");
  RowSchema schema;
  schema.Add("k", TypeKind::kBigint);
  schema.Add("g", TypeKind::kBigint);
  schema.Add("v", TypeKind::kDouble);
  schema.Add("s", TypeKind::kVarchar);
  std::vector<Page> pages;
  for (int p = 0; p < 3; ++p) {
    PageBuilder builder({TypeKind::kBigint, TypeKind::kBigint,
                         TypeKind::kDouble, TypeKind::kVarchar});
    for (int i = 0; i < 400; ++i) {
      builder.AppendRow(
          {Value::Bigint(rng.NextInt64(0, 500)),
           rng.NextBool(0.1) ? Value::Null(TypeKind::kBigint)
                             : Value::Bigint(rng.NextInt64(0, 8)),
           Value::Double(rng.NextDouble() * 100),
           Value::Varchar(std::string(1, static_cast<char>(
                                             'a' + rng.NextUint64(4))))});
    }
    pages.push_back(builder.Build());
  }
  ASSERT_TRUE(mem->CreateTable("t", schema, std::move(pages)).ok());
  engine.catalog().Register(mem);

  // Randomized query parameters.
  int64_t threshold = rng.NextInt64(0, 500);
  std::string letter(1, static_cast<char>('a' + rng.NextUint64(4)));
  std::vector<std::string> queries = {
      "SELECT g, count(*), sum(v), min(k), max(s) FROM t WHERE k > " +
          std::to_string(threshold) + " GROUP BY g",
      "SELECT s, avg(v) FROM t WHERE s <= '" + letter +
          "' GROUP BY s HAVING count(*) > 2",
      "SELECT k, v FROM t WHERE g IS NULL ORDER BY k, v LIMIT 17",
      "SELECT count(DISTINCT k) FROM t WHERE v < " +
          std::to_string(10 + rng.NextUint64(80)),
      "SELECT a.g, count(*) FROM t a JOIN t b ON a.k = b.k WHERE b.v > 50 "
      "GROUP BY a.g",
  };
  for (const auto& sql : queries) {
    SCOPED_TRACE(sql);
    auto engine_rows = engine.ExecuteAndFetch(sql);
    ASSERT_TRUE(engine_rows.ok()) << engine_rows.status().ToString();
    auto stmt = sql::ParseStatement(sql);
    ASSERT_TRUE(stmt.ok());
    Planner planner(&engine.catalog());
    auto plan = planner.Plan(**stmt);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto reference = ExecuteReference(engine.catalog(), *plan);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_TRUE(SameRowsIgnoringOrder(*engine_rows, *reference))
        << "engine=" << engine_rows->size()
        << " reference=" << reference->size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace presto
