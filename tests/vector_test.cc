#include <gtest/gtest.h>

#include "vector/block.h"
#include "vector/block_builder.h"
#include "vector/decoded_block.h"
#include "vector/encoded_block.h"
#include "vector/page.h"
#include "vector/page_codec.h"

namespace presto {
namespace {

TEST(FlatBlockTest, BasicAccess) {
  auto b = MakeBigintBlock({1, 2, 3}, {0, 1, 0});
  EXPECT_EQ(b->size(), 3);
  EXPECT_EQ(b->type(), TypeKind::kBigint);
  EXPECT_FALSE(b->IsNull(0));
  EXPECT_TRUE(b->IsNull(1));
  EXPECT_EQ(b->GetValue(2), Value::Bigint(3));
  EXPECT_EQ(b->GetValue(1), Value::Null(TypeKind::kBigint));
}

TEST(FlatBlockTest, NoNullsVariant) {
  auto b = MakeDoubleBlock({1.5, 2.5});
  EXPECT_FALSE(b->MayHaveNulls());
  EXPECT_FALSE(b->IsNull(0));
  EXPECT_EQ(b->GetValue(1), Value::Double(2.5));
}

TEST(FlatBlockTest, CopyPositions) {
  auto b = MakeBigintBlock({10, 20, 30, 40}, {0, 0, 1, 0});
  int32_t pos[] = {3, 0, 2};
  auto c = b->CopyPositions(pos, 3);
  EXPECT_EQ(c->size(), 3);
  EXPECT_EQ(c->GetValue(0), Value::Bigint(40));
  EXPECT_EQ(c->GetValue(1), Value::Bigint(10));
  EXPECT_TRUE(c->IsNull(2));
}

TEST(VarcharBlockTest, FlatMemoryLayout) {
  auto b = MakeVarcharBlock({"foo", "", "barbaz"}, {0, 0, 0});
  const auto& vb = static_cast<const VarcharBlock&>(*b);
  EXPECT_EQ(vb.StringAt(0), "foo");
  EXPECT_EQ(vb.StringAt(1), "");
  EXPECT_EQ(vb.StringAt(2), "barbaz");
}

TEST(VarcharBlockTest, NullsAndCopy) {
  auto b = MakeVarcharBlock({"a", "b", "c"}, {0, 1, 0});
  int32_t pos[] = {2, 1};
  auto c = b->CopyPositions(pos, 2);
  EXPECT_EQ(c->GetValue(0), Value::Varchar("c"));
  EXPECT_TRUE(c->IsNull(1));
}

TEST(BooleanBlockTest, Values) {
  auto b = MakeBooleanBlock({true, false, true});
  EXPECT_EQ(b->GetValue(0), Value::Boolean(true));
  EXPECT_EQ(b->GetValue(1), Value::Boolean(false));
}

TEST(BlockTest, CompareAtAndEqualsAt) {
  auto a = MakeBigintBlock({1, 5, 7}, {0, 0, 1});
  auto b = MakeBigintBlock({5, 5});
  EXPECT_LT(a->CompareAt(0, *b, 0), 0);
  EXPECT_EQ(a->CompareAt(1, *b, 1), 0);
  EXPECT_GT(a->CompareAt(2, *b, 0), 0);  // NULL sorts last
  EXPECT_TRUE(a->EqualsAt(1, *b, 0));
  EXPECT_FALSE(a->EqualsAt(2, *b, 0));  // NULL != anything
}

TEST(RleBlockTest, RepeatsValue) {
  auto rle = MakeConstantBlock(Value::Bigint(9), 100);
  EXPECT_EQ(rle->size(), 100);
  EXPECT_EQ(rle->encoding(), BlockEncoding::kRle);
  EXPECT_EQ(rle->GetValue(0), Value::Bigint(9));
  EXPECT_EQ(rle->GetValue(99), Value::Bigint(9));
  auto flat = rle->Flatten();
  EXPECT_EQ(flat->encoding(), BlockEncoding::kFlat);
  EXPECT_EQ(flat->GetValue(57), Value::Bigint(9));
}

TEST(RleBlockTest, NullRun) {
  auto rle = MakeConstantBlock(Value::Null(TypeKind::kVarchar), 5);
  EXPECT_TRUE(rle->IsNull(3));
}

TEST(DictionaryBlockTest, IndicesResolve) {
  auto dict = MakeVarcharBlock({"IN PERSON", "COD", "RETURN", "NONE"});
  auto block = std::make_shared<DictionaryBlock>(
      dict, std::vector<int32_t>{1, 0, 2, 1, 3});
  EXPECT_EQ(block->size(), 5);
  EXPECT_EQ(block->GetValue(0), Value::Varchar("COD"));
  EXPECT_EQ(block->GetValue(4), Value::Varchar("NONE"));
  auto flat = block->Flatten();
  EXPECT_EQ(flat->GetValue(2), Value::Varchar("RETURN"));
}

TEST(DictionaryBlockTest, CopyPositionsKeepsDictionary) {
  auto dict = MakeBigintBlock({100, 200, 300});
  auto block = std::make_shared<DictionaryBlock>(
      dict, std::vector<int32_t>{2, 2, 0, 1});
  int32_t pos[] = {0, 3};
  auto c = block->CopyPositions(pos, 2);
  EXPECT_EQ(c->encoding(), BlockEncoding::kDictionary);
  EXPECT_EQ(c->GetValue(0), Value::Bigint(300));
  EXPECT_EQ(c->GetValue(1), Value::Bigint(200));
}

TEST(LazyBlockTest, LoadsOnceAndCountsStats) {
  LazyLoadStats stats;
  int loads = 0;
  auto lazy = std::make_shared<LazyBlock>(
      TypeKind::kBigint, 3,
      [&loads]() {
        ++loads;
        return MakeBigintBlock({7, 8, 9});
      },
      &stats);
  EXPECT_FALSE(lazy->loaded());
  EXPECT_EQ(lazy->GetValue(1), Value::Bigint(8));
  EXPECT_EQ(lazy->GetValue(2), Value::Bigint(9));
  EXPECT_EQ(loads, 1);
  EXPECT_TRUE(lazy->loaded());
  EXPECT_EQ(stats.blocks_loaded.load(), 1);
  EXPECT_EQ(stats.cells_loaded.load(), 3);
}

TEST(LazyBlockTest, SkippedBlockCounted) {
  LazyLoadStats stats;
  {
    auto lazy = std::make_shared<LazyBlock>(
        TypeKind::kBigint, 3, []() { return MakeBigintBlock({1, 2, 3}); },
        &stats);
  }
  EXPECT_EQ(stats.blocks_skipped.load(), 1);
  EXPECT_EQ(stats.blocks_loaded.load(), 0);
}

TEST(DecodedBlockTest, FlatIdentity) {
  auto b = MakeBigintBlock({4, 5, 6}, {0, 1, 0});
  DecodedBlock d;
  d.Decode(b);
  EXPECT_FALSE(d.is_constant());
  EXPECT_FALSE(d.is_dictionary());
  EXPECT_EQ(d.ValueAt<int64_t>(0), 4);
  EXPECT_TRUE(d.IsNull(1));
  EXPECT_FALSE(d.IsNull(2));
}

TEST(DecodedBlockTest, RleConstant) {
  auto b = MakeConstantBlock(Value::Double(2.5), 10);
  DecodedBlock d;
  d.Decode(b);
  EXPECT_TRUE(d.is_constant());
  EXPECT_EQ(d.ValueAt<double>(7), 2.5);
}

TEST(DecodedBlockTest, DictionaryMapping) {
  auto dict = MakeVarcharBlock({"x", "y"}, {0, 1});
  BlockPtr b = std::make_shared<DictionaryBlock>(
      dict, std::vector<int32_t>{1, 0, 1});
  DecodedBlock d;
  d.Decode(b);
  EXPECT_TRUE(d.is_dictionary());
  EXPECT_TRUE(d.IsNull(0));
  EXPECT_EQ(d.StringAt(1), "x");
  EXPECT_EQ(d.IndexAt(2), 1);
}

TEST(DecodedBlockTest, LazyResolved) {
  BlockPtr lazy = std::make_shared<LazyBlock>(
      TypeKind::kBigint, 2, []() { return MakeBigintBlock({1, 2}); });
  DecodedBlock d;
  d.Decode(lazy);
  EXPECT_EQ(d.ValueAt<int64_t>(1), 2);
}

TEST(DecodedBlockTest, DictionaryOverRleFlattens) {
  BlockPtr rle = MakeConstantBlock(Value::Bigint(5), 3);
  BlockPtr b =
      std::make_shared<DictionaryBlock>(rle, std::vector<int32_t>{0, 2});
  DecodedBlock d;
  d.Decode(b);
  EXPECT_EQ(d.ValueAt<int64_t>(0), 5);
  EXPECT_EQ(d.ValueAt<int64_t>(1), 5);
}

TEST(BlockBuilderTest, AllTypesRoundTrip) {
  BlockBuilder b1(TypeKind::kBigint);
  b1.AppendBigint(1);
  b1.AppendNull();
  b1.AppendBigint(3);
  auto blk = b1.Build();
  EXPECT_EQ(blk->size(), 3);
  EXPECT_TRUE(blk->IsNull(1));
  EXPECT_EQ(blk->GetValue(2), Value::Bigint(3));

  BlockBuilder b2(TypeKind::kVarchar);
  b2.AppendString("aa");
  b2.AppendNull();
  auto blk2 = b2.Build();
  EXPECT_EQ(blk2->GetValue(0), Value::Varchar("aa"));
  EXPECT_TRUE(blk2->IsNull(1));

  BlockBuilder b3(TypeKind::kBoolean);
  b3.AppendBoolean(true);
  auto blk3 = b3.Build();
  EXPECT_EQ(blk3->GetValue(0), Value::Boolean(true));
}

TEST(BlockBuilderTest, BuilderResetsAfterBuild) {
  BlockBuilder b(TypeKind::kBigint);
  b.AppendBigint(1);
  auto first = b.Build();
  b.AppendBigint(2);
  auto second = b.Build();
  EXPECT_EQ(first->size(), 1);
  EXPECT_EQ(second->size(), 1);
  EXPECT_EQ(second->GetValue(0), Value::Bigint(2));
}

TEST(PageBuilderTest, AppendRows) {
  PageBuilder pb({TypeKind::kBigint, TypeKind::kVarchar});
  pb.AppendRow({Value::Bigint(1), Value::Varchar("a")});
  pb.AppendRow({Value::Null(TypeKind::kBigint), Value::Varchar("b")});
  Page p = pb.Build();
  EXPECT_EQ(p.num_rows(), 2);
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_TRUE(p.block(0)->IsNull(1));
  EXPECT_EQ(p.block(1)->GetValue(1), Value::Varchar("b"));
}

TEST(PageTest, CopyPositionsAndRows) {
  Page p({MakeBigintBlock({1, 2, 3}), MakeVarcharBlock({"a", "b", "c"})});
  int32_t pos[] = {2, 0};
  Page q = p.CopyPositions(pos, 2);
  EXPECT_EQ(q.num_rows(), 2);
  auto row = q.GetRow(0);
  EXPECT_EQ(row[0], Value::Bigint(3));
  EXPECT_EQ(row[1], Value::Varchar("c"));
}

TEST(PageSerdeTest, RoundTripAllTypes) {
  Page p({MakeBigintBlock({1, 2}, {0, 1}), MakeDoubleBlock({0.5, -1.5}),
          MakeBooleanBlock({true, false}, {1, 0}),
          MakeVarcharBlock({"hello", "world"}, {0, 1}),
          MakeDateBlock({100, 200})});
  PageCodec codec;
  std::string data = codec.Encode(p).bytes;
  size_t off = 0;
  auto r = codec.Decode(data, &off);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(off, data.size());
  const Page& q = *r;
  ASSERT_EQ(q.num_rows(), 2);
  ASSERT_EQ(q.num_columns(), 5u);
  EXPECT_EQ(q.block(0)->GetValue(0), Value::Bigint(1));
  EXPECT_TRUE(q.block(0)->IsNull(1));
  EXPECT_EQ(q.block(1)->GetValue(1), Value::Double(-1.5));
  EXPECT_TRUE(q.block(2)->IsNull(0));
  EXPECT_EQ(q.block(3)->GetValue(0), Value::Varchar("hello"));
  EXPECT_TRUE(q.block(3)->IsNull(1));
  EXPECT_EQ(q.block(4)->GetValue(1), Value::Date(200));
  EXPECT_EQ(q.block(4)->type(), TypeKind::kDate);
}

TEST(PageSerdeTest, MultiplePagesInStream) {
  Page a({MakeBigintBlock({1})});
  Page b({MakeBigintBlock({2, 3})});
  PageCodec codec;
  std::string data = codec.Encode(a).bytes + codec.Encode(b).bytes;
  size_t off = 0;
  auto ra = codec.Decode(data, &off);
  ASSERT_TRUE(ra.ok());
  auto rb = codec.Decode(data, &off);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->num_rows(), 1);
  EXPECT_EQ(rb->num_rows(), 2);
  EXPECT_EQ(off, data.size());
}

TEST(PageSerdeTest, TruncatedDataFails) {
  Page p({MakeBigintBlock({1, 2, 3})});
  PageCodec codec;
  std::string data = codec.Encode(p).bytes;
  data.resize(data.size() / 2);
  size_t off = 0;
  auto r = codec.Decode(data, &off);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(PageSerdeTest, EncodedBlocksFlattenWhenPreservationOff) {
  auto dict = MakeVarcharBlock({"p", "q"});
  Page p({std::make_shared<DictionaryBlock>(dict,
                                            std::vector<int32_t>{1, 1, 0}),
          MakeConstantBlock(Value::Bigint(4), 3)});
  PageCodecOptions options;
  options.preserve_encodings = false;
  PageCodec codec(options);
  std::string data = codec.Encode(p).bytes;
  size_t off = 0;
  auto r = codec.Decode(data, &off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->block(0)->encoding(), BlockEncoding::kVarchar);
  EXPECT_EQ(r->block(0)->GetValue(0), Value::Varchar("q"));
  EXPECT_EQ(r->block(1)->GetValue(2), Value::Bigint(4));
}

TEST(PageSerdeTest, EncodedBlocksPreservedByDefault) {
  auto dict = MakeVarcharBlock({"p", "q"});
  Page p({std::make_shared<DictionaryBlock>(dict,
                                            std::vector<int32_t>{1, 1, 0}),
          MakeConstantBlock(Value::Bigint(4), 3)});
  PageCodec codec;
  std::string data = codec.Encode(p).bytes;
  size_t off = 0;
  auto r = codec.Decode(data, &off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->block(0)->encoding(), BlockEncoding::kDictionary);
  EXPECT_EQ(r->block(0)->GetValue(0), Value::Varchar("q"));
  EXPECT_EQ(r->block(1)->encoding(), BlockEncoding::kRle);
  EXPECT_EQ(r->block(1)->GetValue(2), Value::Bigint(4));
}

}  // namespace
}  // namespace presto
