#include <gtest/gtest.h>

#include "connectors/memcon/memory_connector.h"
#include "engine/engine.h"
#include "engine/reference_executor.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace presto {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 3;
    options.cluster.executor.threads = 2;
    engine_ = std::make_unique<PrestoEngine>(options);
    auto mem = std::make_shared<MemoryConnector>("memory");
    mem_ = mem.get();

    // orders(orderkey, custkey, total, status), 2000 rows in 4 pages.
    RowSchema orders;
    orders.Add("orderkey", TypeKind::kBigint);
    orders.Add("custkey", TypeKind::kBigint);
    orders.Add("total", TypeKind::kDouble);
    orders.Add("status", TypeKind::kVarchar);
    std::vector<Page> order_pages;
    for (int p = 0; p < 4; ++p) {
      std::vector<int64_t> ok, ck;
      std::vector<double> tot;
      std::vector<std::string> st;
      for (int64_t i = 0; i < 500; ++i) {
        int64_t id = p * 500 + i;
        ok.push_back(id);
        ck.push_back(id % 100);
        tot.push_back(static_cast<double>(id % 250) * 2.0);
        st.push_back(id % 3 == 0 ? "O" : (id % 3 == 1 ? "F" : "P"));
      }
      order_pages.push_back(Page({MakeBigintBlock(ok), MakeBigintBlock(ck),
                                  MakeDoubleBlock(tot),
                                  MakeVarcharBlock(st)}));
    }
    ASSERT_TRUE(mem->CreateTable("orders", orders,
                                 std::move(order_pages)).ok());

    // lineitem(orderkey, qty, price, discount), 6000 rows.
    RowSchema lineitem;
    lineitem.Add("orderkey", TypeKind::kBigint);
    lineitem.Add("qty", TypeKind::kBigint);
    lineitem.Add("price", TypeKind::kDouble);
    lineitem.Add("discount", TypeKind::kDouble);
    std::vector<Page> li_pages;
    for (int p = 0; p < 6; ++p) {
      std::vector<int64_t> ok, qty;
      std::vector<double> price, disc;
      for (int64_t i = 0; i < 1000; ++i) {
        int64_t id = p * 1000 + i;
        ok.push_back(id % 2000);
        qty.push_back(id % 50 + 1);
        price.push_back(static_cast<double>(id % 97) + 0.5);
        disc.push_back(id % 10 == 0 ? 0.0 : 0.05);
      }
      li_pages.push_back(Page({MakeBigintBlock(ok), MakeBigintBlock(qty),
                               MakeDoubleBlock(price),
                               MakeDoubleBlock(disc)}));
    }
    ASSERT_TRUE(
        mem->CreateTable("lineitem", lineitem, std::move(li_pages)).ok());

    // nation(nationkey, name): tiny dimension.
    RowSchema nation;
    nation.Add("nationkey", TypeKind::kBigint);
    nation.Add("name", TypeKind::kVarchar);
    ASSERT_TRUE(mem->CreateTable(
                       "nation", nation,
                       {Page({MakeBigintBlock({0, 1, 2, 3}),
                              MakeVarcharBlock(
                                  {"us", "fr", "jp", "de"})})})
                    .ok());
    engine_->catalog().Register(mem);
  }

  // Runs through the distributed engine and the reference executor and
  // compares row multisets.
  void CheckAgainstReference(const std::string& sql) {
    SCOPED_TRACE(sql);
    auto engine_rows = engine_->ExecuteAndFetch(sql);
    ASSERT_TRUE(engine_rows.ok()) << engine_rows.status().ToString();
    auto stmt = sql::ParseStatement(sql);
    ASSERT_TRUE(stmt.ok());
    Planner planner(&engine_->catalog());
    auto plan = planner.Plan(**stmt);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto reference = ExecuteReference(engine_->catalog(), *plan);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_TRUE(SameRowsIgnoringOrder(*engine_rows, *reference))
        << "engine returned " << engine_rows->size()
        << " rows, reference " << reference->size();
  }

  std::unique_ptr<PrestoEngine> engine_;
  MemoryConnector* mem_ = nullptr;
};

TEST_F(EngineTest, SelectLiteral) {
  auto rows = engine_->ExecuteAndFetch("SELECT 1 + 2 AS x, 'hi' AS s");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Bigint(3));
  EXPECT_EQ((*rows)[0][1], Value::Varchar("hi"));
}

TEST_F(EngineTest, ScanAndFilter) {
  auto rows = engine_->ExecuteAndFetch(
      "SELECT orderkey FROM orders WHERE orderkey < 5");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
}

TEST_F(EngineTest, CountStar) {
  auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Bigint(2000));
}

TEST_F(EngineTest, GroupByAggregation) {
  auto rows = engine_->ExecuteAndFetch(
      "SELECT status, count(*), sum(total) FROM orders GROUP BY status");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  int64_t total = 0;
  for (const auto& row : *rows) total += row[1].AsBigint();
  EXPECT_EQ(total, 2000);
}

TEST_F(EngineTest, JoinSmallDimension) {
  auto rows = engine_->ExecuteAndFetch(
      "SELECT n.name, count(*) FROM orders o "
      "JOIN nation n ON o.custkey % 4 = n.nationkey "
      "GROUP BY n.name");
  // The modulo in the join condition is a residual, not equi — this should
  // still run (inner join with residual) or error clearly.
  if (rows.ok()) {
    EXPECT_LE(rows->size(), 4u);
  }
}

TEST_F(EngineTest, EquiJoin) {
  auto rows = engine_->ExecuteAndFetch(
      "SELECT count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Bigint(6000));
}

TEST_F(EngineTest, OrderByLimit) {
  auto rows = engine_->ExecuteAndFetch(
      "SELECT orderkey FROM orders ORDER BY orderkey DESC LIMIT 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0], Value::Bigint(1999));
  EXPECT_EQ((*rows)[2][0], Value::Bigint(1997));
}

TEST_F(EngineTest, DifferentialSuite) {
  CheckAgainstReference("SELECT custkey, sum(total) FROM orders GROUP BY custkey");
  CheckAgainstReference(
      "SELECT status, avg(total), min(orderkey), max(orderkey) "
      "FROM orders WHERE total > 100 GROUP BY status");
  CheckAgainstReference(
      "SELECT o.status, count(*) FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey WHERE l.qty > 25 GROUP BY o.status");
  CheckAgainstReference("SELECT DISTINCT status FROM orders");
  CheckAgainstReference(
      "SELECT orderkey, total FROM orders ORDER BY total DESC, orderkey "
      "LIMIT 20");
  CheckAgainstReference(
      "SELECT custkey FROM orders WHERE status = 'O' "
      "UNION ALL SELECT custkey FROM orders WHERE status = 'F'");
  CheckAgainstReference(
      "SELECT l.orderkey, sum(l.price * (1 - l.discount)) "
      "FROM lineitem l GROUP BY l.orderkey HAVING sum(l.qty) > 60");
  CheckAgainstReference(
      "SELECT o.orderkey, n.name FROM orders o "
      "LEFT JOIN nation n ON o.custkey = n.nationkey "
      "WHERE o.orderkey < 50");
  CheckAgainstReference("SELECT count(DISTINCT custkey) FROM orders");
  CheckAgainstReference(
      "SELECT CASE WHEN total > 250 THEN 'big' ELSE 'small' END, count(*) "
      "FROM orders GROUP BY 1");
}

TEST_F(EngineTest, ExplainProducesFragments) {
  auto text = engine_->Explain(
      "SELECT custkey, sum(total) FROM orders GROUP BY custkey");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Fragment 0"), std::string::npos);
  EXPECT_NE(text->find("Aggregate(Partial)"), std::string::npos);
  EXPECT_NE(text->find("Aggregate(Final)"), std::string::npos);
  EXPECT_NE(text->find("RemoteSource"), std::string::npos);
}

TEST_F(EngineTest, CreateTableAsAndReadBack) {
  auto write = engine_->ExecuteAndFetch(
      "CREATE TABLE memory.big_orders AS "
      "SELECT orderkey, total FROM orders WHERE total > 400");
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  ASSERT_EQ(write->size(), 1u);
  int64_t written = (*write)[0][0].AsBigint();
  EXPECT_GT(written, 0);
  auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM big_orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(written));
}

TEST_F(EngineTest, InsertAppends) {
  ASSERT_TRUE(engine_->ExecuteAndFetch(
                  "CREATE TABLE memory.sink AS SELECT orderkey FROM orders "
                  "WHERE orderkey < 10")
                  .ok());
  auto ins = engine_->ExecuteAndFetch(
      "INSERT INTO sink SELECT orderkey FROM orders WHERE orderkey "
      "BETWEEN 100 AND 104");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM sink");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], Value::Bigint(15));
}

TEST_F(EngineTest, ErrorsPropagate) {
  EXPECT_FALSE(engine_->ExecuteAndFetch("SELECT * FROM nope").ok());
  EXPECT_FALSE(engine_->ExecuteAndFetch("SELECT bogus FROM orders").ok());
  EXPECT_FALSE(engine_->ExecuteAndFetch("SELEKT 1").ok());
}

TEST_F(EngineTest, WindowFunctions) {
  auto rows = engine_->ExecuteAndFetch(
      "SELECT orderkey, row_number() OVER (PARTITION BY status "
      "ORDER BY total DESC) AS rn FROM orders WHERE orderkey < 30");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 30u);
  // Each partition's rn starts at 1.
  int64_t ones = 0;
  for (const auto& row : *rows) {
    if (row[1].AsBigint() == 1) ++ones;
  }
  EXPECT_GE(ones, 1);
  EXPECT_LE(ones, 3);
}

TEST_F(EngineTest, EarlyLimitCancelsUpstream) {
  auto result = engine_->Execute("SELECT orderkey FROM orders LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = result->FetchAllRows();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
}

}  // namespace
}  // namespace presto
