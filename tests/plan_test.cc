#include <gtest/gtest.h>

#include "connectors/memcon/memory_connector.h"
#include "optimizer/optimizer.h"
#include "optimizer/stats_estimator.h"
#include "plan/plan_node.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "vector/block.h"

namespace presto {
namespace {

// Fixture: a memory catalog with orders/lineitem-style tables.
class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mem = std::make_shared<MemoryConnector>("memory");
    // orders(orderkey BIGINT, custkey BIGINT, total DOUBLE, status VARCHAR)
    RowSchema orders;
    orders.Add("orderkey", TypeKind::kBigint);
    orders.Add("custkey", TypeKind::kBigint);
    orders.Add("total", TypeKind::kDouble);
    orders.Add("status", TypeKind::kVarchar);
    std::vector<int64_t> ok, ck;
    std::vector<double> tot;
    std::vector<std::string> st;
    for (int64_t i = 0; i < 1000; ++i) {
      ok.push_back(i);
      ck.push_back(i % 100);
      tot.push_back(static_cast<double>(i) * 1.5);
      st.push_back(i % 2 == 0 ? "O" : "F");
    }
    ASSERT_TRUE(mem->CreateTable(
                       "orders", orders,
                       {Page({MakeBigintBlock(ok), MakeBigintBlock(ck),
                              MakeDoubleBlock(tot), MakeVarcharBlock(st)})})
                    .ok());
    // lineitem(orderkey BIGINT, qty BIGINT, price DOUBLE, tax DOUBLE,
    //          discount DOUBLE)
    RowSchema lineitem;
    lineitem.Add("orderkey", TypeKind::kBigint);
    lineitem.Add("qty", TypeKind::kBigint);
    lineitem.Add("price", TypeKind::kDouble);
    lineitem.Add("tax", TypeKind::kDouble);
    lineitem.Add("discount", TypeKind::kDouble);
    std::vector<int64_t> lok, lqty;
    std::vector<double> lp, lt, ld;
    for (int64_t i = 0; i < 4000; ++i) {
      lok.push_back(i % 1000);
      lqty.push_back(i % 50);
      lp.push_back(static_cast<double>(i % 97));
      lt.push_back(0.05);
      ld.push_back(i % 10 == 0 ? 0.0 : 0.1);
    }
    ASSERT_TRUE(mem->CreateTable("lineitem", lineitem,
                                 {Page({MakeBigintBlock(lok),
                                        MakeBigintBlock(lqty),
                                        MakeDoubleBlock(lp),
                                        MakeDoubleBlock(lt),
                                        MakeDoubleBlock(ld)})})
                    .ok());
    // tiny nation table for broadcast decisions
    RowSchema nation;
    nation.Add("nationkey", TypeKind::kBigint);
    nation.Add("name", TypeKind::kVarchar);
    ASSERT_TRUE(
        mem->CreateTable("nation", nation,
                         {Page({MakeBigintBlock({0, 1, 2}),
                                MakeVarcharBlock({"us", "fr", "jp"})})})
            .ok());
    catalog_.Register(mem);
  }

  Result<PlanNodePtr> PlanSql(const std::string& sql) {
    auto stmt = sql::ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Planner planner(&catalog_);
    return planner.Plan(**stmt);
  }

  Result<PlanNodePtr> OptimizeSql(const std::string& sql,
                                  OptimizerOptions opts = {}) {
    auto plan = PlanSql(sql);
    if (!plan.ok()) return plan.status();
    Optimizer optimizer(&catalog_, opts);
    return optimizer.Optimize(*plan);
  }

  // Finds the first node of a kind in pre-order.
  static const PlanNode* Find(const PlanNode& node, PlanNodeKind kind) {
    if (node.kind() == kind) return &node;
    for (const auto& c : node.children()) {
      if (const auto* found = Find(*c, kind)) return found;
    }
    return nullptr;
  }

  static int Count(const PlanNode& node, PlanNodeKind kind) {
    int n = node.kind() == kind ? 1 : 0;
    for (const auto& c : node.children()) n += Count(*c, kind);
    return n;
  }

  Catalog catalog_;
};

TEST_F(PlanTest, SimpleSelectShape) {
  auto plan = PlanSql("SELECT orderkey, total FROM orders WHERE total > 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind(), PlanNodeKind::kOutput);
  EXPECT_NE(Find(**plan, PlanNodeKind::kFilter), nullptr);
  EXPECT_NE(Find(**plan, PlanNodeKind::kTableScan), nullptr);
  const auto& out = (*plan)->output();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.at(0).name, "orderkey");
  EXPECT_EQ(out.at(1).type, TypeKind::kDouble);
}

TEST_F(PlanTest, UnknownTableAndColumnFail) {
  EXPECT_FALSE(PlanSql("SELECT x FROM missing").ok());
  EXPECT_FALSE(PlanSql("SELECT missing_col FROM orders").ok());
  EXPECT_FALSE(PlanSql("SELECT orderkey FROM bogus.orders").ok());
}

TEST_F(PlanTest, AggregationShape) {
  auto plan = PlanSql(
      "SELECT custkey, sum(total) AS s, count(*) FROM orders "
      "GROUP BY custkey HAVING sum(total) > 100");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto* agg = Find(**plan, PlanNodeKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  const auto& agg_node = static_cast<const AggregateNode&>(*agg);
  EXPECT_EQ(agg_node.group_keys().size(), 1u);
  EXPECT_EQ(agg_node.aggregates().size(), 2u);
  // HAVING becomes a filter above the aggregation.
  EXPECT_NE(Find(**plan, PlanNodeKind::kFilter), nullptr);
  EXPECT_EQ((*plan)->output().at(1).name, "s");
}

TEST_F(PlanTest, GroupByOrdinalAndExpression) {
  auto plan = PlanSql(
      "SELECT status, avg(total) FROM orders GROUP BY 1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(PlanSql("SELECT status FROM orders GROUP BY 5").ok());
  // Non-grouped column reference must fail.
  EXPECT_FALSE(
      PlanSql("SELECT custkey, sum(total) FROM orders GROUP BY status").ok());
}

TEST_F(PlanTest, JoinShape) {
  auto plan = PlanSql(
      "SELECT o.orderkey, sum(l.tax) FROM orders o "
      "LEFT JOIN lineitem l ON o.orderkey = l.orderkey "
      "WHERE o.total > 0 GROUP BY o.orderkey");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto* join = Find(**plan, PlanNodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  const auto& join_node = static_cast<const JoinNode&>(*join);
  EXPECT_EQ(join_node.join_type(), sql::JoinType::kLeft);
  ASSERT_EQ(join_node.left_keys().size(), 1u);
}

TEST_F(PlanTest, DistinctBecomesAggregation) {
  auto plan = PlanSql("SELECT DISTINCT status FROM orders");
  ASSERT_TRUE(plan.ok());
  const auto* agg = Find(**plan, PlanNodeKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(static_cast<const AggregateNode&>(*agg).aggregates().empty());
}

TEST_F(PlanTest, UnionAllUnifiesTypes) {
  auto plan = PlanSql(
      "SELECT orderkey FROM orders UNION ALL SELECT price FROM lineitem");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto* u = Find(**plan, PlanNodeKind::kUnionAll);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->output().at(0).type, TypeKind::kDouble);
  EXPECT_FALSE(
      PlanSql("SELECT orderkey FROM orders UNION ALL SELECT status FROM orders")
          .ok());
}

TEST_F(PlanTest, OrderLimitBecomesTopN) {
  auto plan = PlanSql("SELECT orderkey FROM orders ORDER BY orderkey LIMIT 7");
  ASSERT_TRUE(plan.ok());
  const auto* topn = Find(**plan, PlanNodeKind::kTopN);
  ASSERT_NE(topn, nullptr);
  EXPECT_EQ(static_cast<const TopNNode&>(*topn).n(), 7);
  // Order without limit is a Sort.
  auto plan2 = PlanSql("SELECT orderkey FROM orders ORDER BY 1 DESC");
  ASSERT_TRUE(plan2.ok());
  EXPECT_NE(Find(**plan2, PlanNodeKind::kSort), nullptr);
}

TEST_F(PlanTest, WindowShape) {
  auto plan = PlanSql(
      "SELECT orderkey, row_number() OVER (PARTITION BY custkey "
      "ORDER BY total DESC) AS rn FROM orders");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto* w = Find(**plan, PlanNodeKind::kWindow);
  ASSERT_NE(w, nullptr);
  const auto& window = static_cast<const WindowNode&>(*w);
  EXPECT_EQ(window.functions().size(), 1u);
  EXPECT_EQ(window.functions()[0].kind, WindowFunction::Kind::kRowNumber);
}

TEST_F(PlanTest, CtasAndInsertShapes) {
  auto ctas = PlanSql("CREATE TABLE memory.copy AS SELECT * FROM orders");
  ASSERT_TRUE(ctas.ok()) << ctas.status().ToString();
  EXPECT_NE(Find(**ctas, PlanNodeKind::kTableWrite), nullptr);
  auto ins = PlanSql("INSERT INTO nation SELECT custkey, status FROM orders");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_FALSE(PlanSql("INSERT INTO nation SELECT custkey FROM orders").ok());
}

// ---- optimizer ----

TEST_F(PlanTest, ConstantFolding) {
  auto plan = OptimizeSql("SELECT orderkey + (1 + 2) FROM orders");
  ASSERT_TRUE(plan.ok());
  const auto* project = Find(**plan, PlanNodeKind::kProject);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(static_cast<const ProjectNode&>(*project)
                .expressions()[0]
                ->ToString(),
            "(#0 + 3)");
}

TEST_F(PlanTest, AlwaysTrueFilterRemoved) {
  auto plan = OptimizeSql("SELECT orderkey FROM orders WHERE 1 = 1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Count(**plan, PlanNodeKind::kFilter), 0);
}

TEST_F(PlanTest, ColumnPruningShrinksScan) {
  auto plan = OptimizeSql("SELECT orderkey FROM orders WHERE custkey = 5");
  ASSERT_TRUE(plan.ok());
  const auto* scan = Find(**plan, PlanNodeKind::kTableScan);
  ASSERT_NE(scan, nullptr);
  // Only orderkey and custkey needed (4-column table).
  EXPECT_EQ(static_cast<const TableScanNode&>(*scan).columns().size(), 2u);
}

TEST_F(PlanTest, PredicatePushdownThroughJoin) {
  auto plan = OptimizeSql(
      "SELECT o.orderkey FROM orders o JOIN lineitem l "
      "ON o.orderkey = l.orderkey WHERE o.total > 5 AND l.qty > 2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto* join = Find(**plan, PlanNodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  // Both conjuncts moved below the join.
  EXPECT_NE(Find(*join->child(0), PlanNodeKind::kFilter), nullptr);
  EXPECT_NE(Find(*join->child(1), PlanNodeKind::kFilter), nullptr);
}

TEST_F(PlanTest, BroadcastChosenForSmallBuildSide) {
  auto plan = OptimizeSql(
      "SELECT o.orderkey FROM orders o JOIN nation n "
      "ON o.custkey = n.nationkey");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto* join = Find(**plan, PlanNodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(static_cast<const JoinNode&>(*join).distribution(),
            JoinDistribution::kBroadcast);
}

TEST_F(PlanTest, PartitionedWithoutCbo) {
  OptimizerOptions opts;
  opts.enable_cbo = false;
  auto plan = OptimizeSql(
      "SELECT o.orderkey FROM orders o JOIN nation n "
      "ON o.custkey = n.nationkey",
      opts);
  ASSERT_TRUE(plan.ok());
  const auto* join = Find(**plan, PlanNodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(static_cast<const JoinNode&>(*join).distribution(),
            JoinDistribution::kPartitioned);
}

TEST_F(PlanTest, JoinReorderPutsSmallRelationOnBuildSide) {
  // Syntactic order joins the two big tables first; CBO should start from
  // nation (3 rows) to shrink intermediates.
  auto plan = OptimizeSql(
      "SELECT count(*) FROM lineitem l "
      "JOIN orders o ON l.orderkey = o.orderkey "
      "JOIN nation n ON o.custkey = n.nationkey");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The output column order must be preserved regardless of reordering.
  EXPECT_EQ((*plan)->output().size(), 1u);
  // The top join's probe side should contain the larger relations.
  const auto* join = Find(**plan, PlanNodeKind::kJoin);
  ASSERT_NE(join, nullptr);
  PlanEstimate probe = EstimatePlan(*join->child(0));
  PlanEstimate build = EstimatePlan(*join->child(1));
  ASSERT_TRUE(probe.known());
  ASSERT_TRUE(build.known());
  EXPECT_GE(probe.rows, build.rows);
}

TEST_F(PlanTest, EstimatorBasics) {
  auto plan = PlanSql("SELECT orderkey FROM orders WHERE custkey = 5");
  ASSERT_TRUE(plan.ok());
  PlanEstimate est = EstimatePlan(**plan);
  ASSERT_TRUE(est.known());
  // 1000 rows, custkey NDV=100 -> ~10 rows.
  EXPECT_NEAR(est.rows, 10.0, 5.0);
}

TEST_F(PlanTest, ExplainRendering) {
  auto plan = OptimizeSql(
      "SELECT custkey, sum(total) FROM orders GROUP BY custkey");
  ASSERT_TRUE(plan.ok());
  std::string text = PlanToString(**plan);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("TableScan[memory.orders"), std::string::npos);
}

}  // namespace
}  // namespace presto
