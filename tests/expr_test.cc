#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "expr/aggregates.h"
#include "expr/evaluator.h"
#include "expr/expression.h"
#include "expr/function_registry.h"
#include "expr/page_processor.h"
#include "vector/block_builder.h"
#include "vector/decoded_block.h"
#include "vector/encoded_block.h"

namespace presto {
namespace {

const ScalarFunction* Fn(const std::string& name,
                         std::vector<TypeKind> args) {
  auto r = FunctionRegistry::Instance().Resolve(name, args);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

ExprPtr Col(int i, TypeKind t) { return Expr::MakeColumn(i, t); }
ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }
ExprPtr Call(const std::string& name, std::vector<ExprPtr> args) {
  std::vector<TypeKind> types;
  for (const auto& a : args) types.push_back(a->type());
  return Expr::MakeCall(Fn(name, types), std::move(args));
}

TEST(FunctionRegistryTest, ResolvesExactAndCoerced) {
  auto* exact = Fn("plus", {TypeKind::kBigint, TypeKind::kBigint});
  EXPECT_EQ(exact->return_type, TypeKind::kBigint);
  // BIGINT + DOUBLE coerces to the DOUBLE overload.
  auto r = FunctionRegistry::Instance().Resolve(
      "plus", {TypeKind::kBigint, TypeKind::kDouble});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->return_type, TypeKind::kDouble);
}

TEST(FunctionRegistryTest, UnknownFunctionAndBadArgs) {
  auto r1 = FunctionRegistry::Instance().Resolve("nope", {TypeKind::kBigint});
  EXPECT_FALSE(r1.ok());
  auto r2 = FunctionRegistry::Instance().Resolve(
      "like", {TypeKind::kBigint, TypeKind::kBigint});
  EXPECT_FALSE(r2.ok());
}

TEST(InterpreterTest, Arithmetic) {
  Page page({MakeBigintBlock({10, 20}), MakeDoubleBlock({0.5, 2.0})});
  auto e = Call("plus", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(5))});
  auto r = EvalExprRow(*e, page, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value::Bigint(25));
}

TEST(InterpreterTest, DivisionByZeroYieldsNull) {
  Page page({MakeBigintBlock({10})});
  auto e = Call("divide", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(0))});
  auto r = EvalExprRow(*e, page, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
}

TEST(InterpreterTest, NullPropagation) {
  Page page({MakeBigintBlock({1, 2}, {0, 1})});
  auto e = Call("plus", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(1))});
  auto r = EvalExprRow(*e, page, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
}

TEST(InterpreterTest, ThreeValuedLogic) {
  Page page({MakeBooleanBlock({true, false, false}, {0, 0, 1})});
  auto null_bool = Col(0, TypeKind::kBoolean);
  // false AND NULL = false
  auto e1 = Expr::MakeAnd({Lit(Value::Boolean(false)), null_bool});
  EXPECT_EQ(*EvalExprRow(*e1, page, 2), Value::Boolean(false));
  // true AND NULL = NULL
  auto e2 = Expr::MakeAnd({Lit(Value::Boolean(true)), null_bool});
  EXPECT_TRUE(EvalExprRow(*e2, page, 2)->is_null());
  // true OR NULL = true
  auto e3 = Expr::MakeOr({null_bool, Lit(Value::Boolean(true))});
  EXPECT_EQ(*EvalExprRow(*e3, page, 2), Value::Boolean(true));
  // false OR NULL = NULL
  auto e4 = Expr::MakeOr({null_bool, Lit(Value::Boolean(false))});
  EXPECT_TRUE(EvalExprRow(*e4, page, 2)->is_null());
}

TEST(InterpreterTest, InSemantics) {
  Page page({MakeBigintBlock({3, 7})});
  auto in1 = Expr::MakeIn({Col(0, TypeKind::kBigint), Lit(Value::Bigint(3)),
                           Lit(Value::Bigint(4))});
  EXPECT_EQ(*EvalExprRow(*in1, page, 0), Value::Boolean(true));
  EXPECT_EQ(*EvalExprRow(*in1, page, 1), Value::Boolean(false));
  // 7 IN (3, NULL) = NULL; 3 IN (3, NULL) = true
  auto in2 = Expr::MakeIn({Col(0, TypeKind::kBigint), Lit(Value::Bigint(3)),
                           Lit(Value::Null(TypeKind::kBigint))});
  EXPECT_EQ(*EvalExprRow(*in2, page, 0), Value::Boolean(true));
  EXPECT_TRUE(EvalExprRow(*in2, page, 1)->is_null());
}

TEST(InterpreterTest, CaseCoalesceIsNull) {
  Page page({MakeBigintBlock({1, 2}, {0, 1})});
  auto c = Col(0, TypeKind::kBigint);
  auto case_expr = Expr::MakeCase(
      {Call("eq", {c, Lit(Value::Bigint(1))}), Lit(Value::Varchar("one")),
       Lit(Value::Varchar("other"))},
      /*has_else=*/true, TypeKind::kVarchar);
  EXPECT_EQ(*EvalExprRow(*case_expr, page, 0), Value::Varchar("one"));
  EXPECT_EQ(*EvalExprRow(*case_expr, page, 1), Value::Varchar("other"));
  auto coalesce =
      Expr::MakeCoalesce({c, Lit(Value::Bigint(99))}, TypeKind::kBigint);
  EXPECT_EQ(*EvalExprRow(*coalesce, page, 1), Value::Bigint(99));
  auto is_null = Expr::MakeIsNull(c);
  EXPECT_EQ(*EvalExprRow(*is_null, page, 1), Value::Boolean(true));
  EXPECT_EQ(*EvalExprRow(*is_null, page, 0), Value::Boolean(false));
}

TEST(CastTest, Conversions) {
  EXPECT_EQ(CastValue(TypeKind::kDouble, Value::Bigint(3)), Value::Double(3));
  EXPECT_EQ(CastValue(TypeKind::kBigint, Value::Double(3.9)),
            Value::Bigint(3));
  EXPECT_EQ(CastValue(TypeKind::kVarchar, Value::Bigint(12)),
            Value::Varchar("12"));
  EXPECT_EQ(CastValue(TypeKind::kBigint, Value::Varchar("42")),
            Value::Bigint(42));
  EXPECT_TRUE(CastValue(TypeKind::kBigint, Value::Varchar("4x")).is_null());
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("2001-02-03", &days));
  EXPECT_EQ(CastValue(TypeKind::kDate, Value::Varchar("2001-02-03")),
            Value::Date(days));
  EXPECT_EQ(CastValue(TypeKind::kVarchar, Value::Date(days)),
            Value::Varchar("2001-02-03"));
  EXPECT_EQ(CastValue(TypeKind::kBoolean, Value::Varchar("true")),
            Value::Boolean(true));
  EXPECT_TRUE(CastValue(TypeKind::kDate, Value::Varchar("zzz")).is_null());
}

// Property test: the interpreter and the compiled vectorized evaluator agree
// on every row for a corpus of expressions over random data.
class EvaluatorEquivalenceTest
    : public ::testing::TestWithParam<int> {};

Page RandomPage(Random* rng, int64_t rows) {
  std::vector<int64_t> a(static_cast<size_t>(rows));
  std::vector<uint8_t> an(static_cast<size_t>(rows));
  std::vector<double> b(static_cast<size_t>(rows));
  std::vector<uint8_t> bn(static_cast<size_t>(rows));
  std::vector<std::string> s(static_cast<size_t>(rows));
  std::vector<uint8_t> sn(static_cast<size_t>(rows));
  std::vector<uint8_t> f(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    auto k = static_cast<size_t>(i);
    a[k] = rng->NextInt64(-100, 100);
    an[k] = rng->NextBool(0.2) ? 1 : 0;
    b[k] = rng->NextDouble() * 10 - 5;
    bn[k] = rng->NextBool(0.2) ? 1 : 0;
    s[k] = rng->NextString(static_cast<int>(rng->NextUint64(8)));
    sn[k] = rng->NextBool(0.2) ? 1 : 0;
    f[k] = rng->NextBool(0.5) ? 1 : 0;
  }
  return Page({MakeBigintBlock(std::move(a), std::move(an)),
               MakeDoubleBlock(std::move(b), std::move(bn)),
               MakeVarcharBlock(s, std::move(sn)),
               MakeBooleanBlock(std::vector<bool>(f.begin(), f.end()))});
}

std::vector<ExprPtr> ExpressionCorpus() {
  auto a = Col(0, TypeKind::kBigint);
  auto b = Col(1, TypeKind::kDouble);
  auto s = Col(2, TypeKind::kVarchar);
  auto f = Col(3, TypeKind::kBoolean);
  std::vector<ExprPtr> corpus;
  corpus.push_back(Call("plus", {a, Lit(Value::Bigint(7))}));
  corpus.push_back(Call("multiply", {b, b}));
  corpus.push_back(
      Call("divide", {a, Call("modulus", {a, Lit(Value::Bigint(5))})}));
  corpus.push_back(Call("gt", {a, Lit(Value::Bigint(0))}));
  corpus.push_back(Call("lte", {b, Lit(Value::Double(0.5))}));
  corpus.push_back(Call("eq", {s, Lit(Value::Varchar("abc"))}));
  corpus.push_back(Call("like", {s, Lit(Value::Varchar("a%"))}));
  corpus.push_back(Call("length", {s}));
  corpus.push_back(Call("concat", {s, Lit(Value::Varchar("!"))}));
  corpus.push_back(Call("upper", {s}));
  corpus.push_back(Expr::MakeAnd(
      {Call("gt", {a, Lit(Value::Bigint(-10))}), f,
       Call("lt", {b, Lit(Value::Double(4.0))})}));
  corpus.push_back(Expr::MakeOr(
      {Call("lt", {a, Lit(Value::Bigint(-50))}), Expr::MakeIsNull(s)}));
  corpus.push_back(Expr::MakeIn(
      {a, Lit(Value::Bigint(1)), Lit(Value::Bigint(2)),
       Lit(Value::Null(TypeKind::kBigint))}));
  corpus.push_back(Expr::MakeCoalesce({a, Lit(Value::Bigint(0))},
                                      TypeKind::kBigint));
  corpus.push_back(Expr::MakeCase(
      {Call("gt", {a, Lit(Value::Bigint(50))}), Lit(Value::Varchar("high")),
       Call("gt", {a, Lit(Value::Bigint(0))}), Lit(Value::Varchar("mid")),
       Lit(Value::Varchar("low"))},
      true, TypeKind::kVarchar));
  corpus.push_back(Expr::MakeCast(TypeKind::kDouble, a));
  corpus.push_back(Expr::MakeCast(TypeKind::kVarchar, a));
  corpus.push_back(Call("abs", {a}));
  corpus.push_back(Call("sqrt", {Call("abs", {b})}));
  corpus.push_back(Call("date_add", {Expr::MakeCast(TypeKind::kDate, a),
                                     Lit(Value::Bigint(30))}));
  return corpus;
}

TEST_P(EvaluatorEquivalenceTest, InterpretedMatchesCompiled) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  Page page = RandomPage(&rng, 128);
  for (const auto& expr : ExpressionCorpus()) {
    ExprEvaluator interp(expr, EvalMode::kInterpreted);
    ExprEvaluator compiled(expr, EvalMode::kCompiled);
    auto ri = interp.Eval(page);
    auto rc = compiled.Eval(page);
    ASSERT_TRUE(ri.ok()) << expr->ToString() << ": " << ri.status().ToString();
    ASSERT_TRUE(rc.ok()) << expr->ToString() << ": " << rc.status().ToString();
    for (int64_t row = 0; row < page.num_rows(); ++row) {
      Value vi = (*ri)->GetValue(row);
      Value vc = (*rc)->GetValue(row);
      EXPECT_EQ(vi.is_null(), vc.is_null())
          << expr->ToString() << " row " << row;
      if (!vi.is_null() && !vc.is_null()) {
        EXPECT_TRUE(vi.SqlEquals(vc) || vi.Compare(vc) == 0)
            << expr->ToString() << " row " << row << ": " << vi.ToString()
            << " vs " << vc.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorEquivalenceTest,
                         ::testing::Range(0, 8));

TEST(VectorEvalTest, ConstantsFoldToRle) {
  Page page({MakeBigintBlock(std::vector<int64_t>(100, 1))});
  auto e = Call("plus", {Lit(Value::Bigint(2)), Lit(Value::Bigint(3))});
  ExprEvaluator eval(e, EvalMode::kCompiled);
  auto r = eval.Eval(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->encoding(), BlockEncoding::kRle);
  EXPECT_EQ((*r)->GetValue(42), Value::Bigint(5));
}

TEST(VectorEvalTest, ColumnPassThroughPreservesEncoding) {
  auto dict = MakeVarcharBlock({"a", "b"});
  Page page({std::make_shared<DictionaryBlock>(
      dict, std::vector<int32_t>{0, 1, 0})});
  ExprEvaluator eval(Col(0, TypeKind::kVarchar), EvalMode::kCompiled);
  auto r = eval.Eval(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->encoding(), BlockEncoding::kDictionary);
}

TEST(PageProcessorTest, FilterAndProject) {
  Page page({MakeBigintBlock({1, 2, 3, 4, 5}),
             MakeDoubleBlock({0.1, 0.2, 0.3, 0.4, 0.5})});
  auto filter = Call("gt", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(2))});
  auto proj = Call("multiply", {Col(1, TypeKind::kDouble),
                                Lit(Value::Double(10))});
  PageProcessor proc(filter, {Col(0, TypeKind::kBigint), proj},
                     EvalMode::kCompiled);
  auto r = proc.Process(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3);
  EXPECT_EQ(r->block(0)->GetValue(0), Value::Bigint(3));
  EXPECT_NEAR(r->block(1)->GetValue(2).AsDouble(), 5.0, 1e-9);
}

TEST(PageProcessorTest, DictionaryFastPathProducesDictionary) {
  auto dict = MakeVarcharBlock({"apple", "banana", "cherry"});
  std::vector<int32_t> indices;
  for (int i = 0; i < 1000; ++i) indices.push_back(i % 3);
  Page page({std::make_shared<DictionaryBlock>(dict, indices)});
  auto proj = Call("upper", {Col(0, TypeKind::kVarchar)});
  PageProcessor proc(nullptr, {proj}, EvalMode::kCompiled);
  auto r = proc.Process(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->block(0)->encoding(), BlockEncoding::kDictionary);
  EXPECT_EQ(r->block(0)->GetValue(1), Value::Varchar("BANANA"));
  EXPECT_EQ(proc.stats().dict_path_hits, 1);
  EXPECT_EQ(proc.stats().flat_evals, 0);
}

TEST(PageProcessorTest, SharedDictionaryReusesResult) {
  auto dict = MakeVarcharBlock({"x", "y"});
  auto proj = Call("upper", {Col(0, TypeKind::kVarchar)});
  PageProcessor proc(nullptr, {proj}, EvalMode::kCompiled);
  for (int p = 0; p < 3; ++p) {
    std::vector<int32_t> indices(64, p % 2);
    Page page({std::make_shared<DictionaryBlock>(dict, indices)});
    auto r = proc.Process(page);
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(proc.stats().dict_path_hits, 1);
  EXPECT_EQ(proc.stats().dict_path_reuses, 2);
}

TEST(PageProcessorTest, SpeculationStopsWhenDictionaryTooLarge) {
  // Dictionary with many more entries than rows and no history: the first
  // page (rows >= entries referenced is false) should fall back to flat
  // evaluation once the heuristic sees an unproductive history.
  std::vector<std::string> entries;
  for (int i = 0; i < 1000; ++i) entries.push_back("v" + std::to_string(i));
  auto dict = MakeVarcharBlock(entries);
  auto proj = Call("upper", {Col(0, TypeKind::kVarchar)});
  PageProcessor proc(nullptr, {proj}, EvalMode::kCompiled);
  // First page: speculation allowed (no history). 8 rows vs 1000 entries.
  {
    std::vector<int32_t> indices(8, 0);
    Page page({std::make_shared<DictionaryBlock>(dict, indices)});
    ASSERT_TRUE(proc.Process(page).ok());
  }
  // Second page with a NEW large dictionary: history now shows dictionary
  // processing was wasteful (8 rows per 1000 entries), so it evaluates flat.
  auto dict2 = MakeVarcharBlock(entries);
  {
    std::vector<int32_t> indices(8, 1);
    Page page({std::make_shared<DictionaryBlock>(dict2, indices)});
    ASSERT_TRUE(proc.Process(page).ok());
  }
  EXPECT_EQ(proc.stats().dict_path_hits, 1);
  EXPECT_EQ(proc.stats().flat_evals, 1);
}

TEST(PageProcessorTest, RlePathEvaluatesOnce) {
  Page page({MakeConstantBlock(Value::Bigint(21), 500)});
  auto proj = Call("multiply", {Col(0, TypeKind::kBigint),
                                Lit(Value::Bigint(2))});
  PageProcessor proc(nullptr, {proj}, EvalMode::kCompiled);
  auto r = proc.Process(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->block(0)->encoding(), BlockEncoding::kRle);
  EXPECT_EQ(r->block(0)->GetValue(499), Value::Bigint(42));
  EXPECT_EQ(proc.stats().rle_path_hits, 1);
}

TEST(PageProcessorTest, FilterOnDictionaryColumn) {
  auto dict = MakeBigintBlock({1, 2, 3});
  std::vector<int32_t> indices;
  for (int i = 0; i < 300; ++i) indices.push_back(i % 3);
  Page page({std::make_shared<DictionaryBlock>(dict, indices)});
  auto filter = Call("eq", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(2))});
  PageProcessor proc(filter, {Col(0, TypeKind::kBigint)}, EvalMode::kCompiled);
  auto r = proc.Process(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 100);
  EXPECT_EQ(r->block(0)->GetValue(0), Value::Bigint(2));
}

// ---- Aggregates ----

TEST(AggregatesTest, ResolveSignatures) {
  auto count = ResolveAggregate("count", std::nullopt, false);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->kind, AggKind::kCountAll);
  auto sum = ResolveAggregate("sum", TypeKind::kDouble, false);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->result_type, TypeKind::kDouble);
  EXPECT_FALSE(ResolveAggregate("sum", TypeKind::kVarchar, false).ok());
  EXPECT_FALSE(ResolveAggregate("sum", TypeKind::kBigint, true).ok());
  EXPECT_FALSE(ResolveAggregate("frob", TypeKind::kBigint, false).ok());
}

std::vector<int32_t> Groups(std::initializer_list<int32_t> ids) {
  return std::vector<int32_t>(ids);
}

TEST(AggregatesTest, CountAndSum) {
  auto sig = *ResolveAggregate("sum", TypeKind::kBigint, false);
  auto acc = CreateAccumulator(sig);
  acc->Resize(2);
  auto groups = Groups({0, 1, 0, 1, 0});
  auto arg = MakeBigintBlock({1, 2, 3, 4, 5}, {0, 0, 0, 1, 0});
  acc->Add(groups.data(), arg, 5);
  auto out = acc->BuildFinal(2);
  EXPECT_EQ(out->GetValue(0), Value::Bigint(9));
  EXPECT_EQ(out->GetValue(1), Value::Bigint(2));
}

TEST(AggregatesTest, SumEmptyGroupIsNull) {
  auto sig = *ResolveAggregate("sum", TypeKind::kBigint, false);
  auto acc = CreateAccumulator(sig);
  acc->Resize(2);
  auto groups = Groups({0});
  acc->Add(groups.data(), MakeBigintBlock({7}), 1);
  auto out = acc->BuildFinal(2);
  EXPECT_EQ(out->GetValue(0), Value::Bigint(7));
  EXPECT_TRUE(out->IsNull(1));
}

TEST(AggregatesTest, MinMaxAllTypes) {
  auto sig = *ResolveAggregate("min", TypeKind::kVarchar, false);
  auto acc = CreateAccumulator(sig);
  acc->Resize(1);
  auto groups = Groups({0, 0, 0});
  acc->Add(groups.data(), MakeVarcharBlock({"pear", "apple", "plum"}), 3);
  EXPECT_EQ(acc->BuildFinal(1)->GetValue(0), Value::Varchar("apple"));

  auto sig2 = *ResolveAggregate("max", TypeKind::kDouble, false);
  auto acc2 = CreateAccumulator(sig2);
  acc2->Resize(1);
  acc2->Add(groups.data(), MakeDoubleBlock({1.5, 9.5, -2.0}), 3);
  EXPECT_EQ(acc2->BuildFinal(1)->GetValue(0), Value::Double(9.5));
}

TEST(AggregatesTest, AvgPartialFinalRoundTrip) {
  auto sig = *ResolveAggregate("avg", TypeKind::kBigint, false);
  // Two partials, then merge into a final.
  auto p1 = CreateAccumulator(sig);
  p1->Resize(1);
  auto g3 = Groups({0, 0, 0});
  p1->Add(g3.data(), MakeBigintBlock({1, 2, 3}), 3);
  auto p2 = CreateAccumulator(sig);
  p2->Resize(1);
  auto g2 = Groups({0, 0});
  p2->Add(g2.data(), MakeBigintBlock({4, 10}), 2);

  auto fin = CreateAccumulator(sig);
  fin->Resize(1);
  auto g1 = Groups({0});
  ASSERT_TRUE(fin->Merge(g1.data(), p1->BuildIntermediate(1), 1).ok());
  ASSERT_TRUE(fin->Merge(g1.data(), p2->BuildIntermediate(1), 1).ok());
  EXPECT_NEAR(fin->BuildFinal(1)->GetValue(0).AsDouble(), 4.0, 1e-9);
}

TEST(AggregatesTest, CountDistinctExactAcrossMerge) {
  auto sig = *ResolveAggregate("count", TypeKind::kVarchar, true);
  auto p1 = CreateAccumulator(sig);
  p1->Resize(1);
  auto g3 = Groups({0, 0, 0});
  p1->Add(g3.data(), MakeVarcharBlock({"a", "b", "a"}), 3);
  auto p2 = CreateAccumulator(sig);
  p2->Resize(1);
  auto g2 = Groups({0, 0});
  p2->Add(g2.data(), MakeVarcharBlock({"b", "c"}), 2);
  auto fin = CreateAccumulator(sig);
  fin->Resize(1);
  auto g1 = Groups({0});
  ASSERT_TRUE(fin->Merge(g1.data(), p1->BuildIntermediate(1), 1).ok());
  ASSERT_TRUE(fin->Merge(g1.data(), p2->BuildIntermediate(1), 1).ok());
  EXPECT_EQ(fin->BuildFinal(1)->GetValue(0), Value::Bigint(3));
}

TEST(AggregatesTest, ApproxDistinctWithinErrorBound) {
  auto sig = *ResolveAggregate("approx_distinct", TypeKind::kBigint, false);
  auto acc = CreateAccumulator(sig);
  acc->Resize(1);
  const int64_t kDistinct = 20000;
  std::vector<int64_t> values;
  std::vector<int32_t> groups;
  for (int64_t i = 0; i < kDistinct; ++i) {
    values.push_back(i);
    groups.push_back(0);
  }
  acc->Add(groups.data(), MakeBigintBlock(values), kDistinct);
  int64_t est = acc->BuildFinal(1)->GetValue(0).AsBigint();
  // 2^11 registers -> ~2.3% standard error; allow 5x.
  EXPECT_NEAR(static_cast<double>(est), static_cast<double>(kDistinct),
              0.12 * static_cast<double>(kDistinct));
}

TEST(AggregatesTest, StddevAndVariance) {
  auto sig = *ResolveAggregate("stddev", TypeKind::kDouble, false);
  auto acc = CreateAccumulator(sig);
  acc->Resize(1);
  auto groups = Groups({0, 0, 0, 0});
  acc->Add(groups.data(), MakeDoubleBlock({2, 4, 4, 6}), 4);
  // Sample variance of {2,4,4,6} = 8/3.
  auto sig2 = *ResolveAggregate("variance", TypeKind::kDouble, false);
  auto acc2 = CreateAccumulator(sig2);
  acc2->Resize(1);
  acc2->Add(groups.data(), MakeDoubleBlock({2, 4, 4, 6}), 4);
  EXPECT_NEAR(acc2->BuildFinal(1)->GetValue(0).AsDouble(), 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(acc->BuildFinal(1)->GetValue(0).AsDouble(),
              std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(AggregatesTest, SingleValueGroupStddevIsNull) {
  auto sig = *ResolveAggregate("stddev", TypeKind::kDouble, false);
  auto acc = CreateAccumulator(sig);
  acc->Resize(1);
  auto groups = Groups({0});
  acc->Add(groups.data(), MakeDoubleBlock({5.0}), 1);
  EXPECT_TRUE(acc->BuildFinal(1)->IsNull(0));
}

TEST(ExprToStringTest, RendersReadably) {
  auto e = Call("plus", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(3))});
  EXPECT_EQ(e->ToString(), "(#0 + 3)");
  auto f = Call("upper", {Col(1, TypeKind::kVarchar)});
  EXPECT_EQ(f->ToString(), "upper(#1)");
}

TEST(ExprUtilTest, ConstantDetectionAndColumnCollection) {
  auto c = Call("plus", {Lit(Value::Bigint(1)), Lit(Value::Bigint(2))});
  EXPECT_TRUE(IsConstantExpr(*c));
  auto e = Call("plus", {Col(2, TypeKind::kBigint), Col(0, TypeKind::kBigint)});
  EXPECT_FALSE(IsConstantExpr(*e));
  std::vector<int> cols;
  CollectReferencedColumns(*e, &cols);
  EXPECT_EQ(cols, (std::vector<int>{0, 2}));
}

TEST(ExprUtilTest, RemapColumns) {
  auto e = Call("plus", {Col(2, TypeKind::kBigint), Col(0, TypeKind::kBigint)});
  auto remapped = RemapColumns(e, {5, -1, 0});
  std::vector<int> cols;
  CollectReferencedColumns(*remapped, &cols);
  EXPECT_EQ(cols, (std::vector<int>{0, 5}));
}

}  // namespace
}  // namespace presto
