#include <gtest/gtest.h>

#include <thread>

#include "exchange/exchange.h"
#include "exec/group_by_hash.h"
#include "exec/pages_index.h"
#include "exec/spiller.h"
#include "memory/memory.h"
#include "schedule/task_executor.h"

namespace presto {
namespace {

// ---- memory pools ----

TEST(MemoryTest, ReserveReleaseAccounting) {
  MemoryConfig config;
  config.per_worker_general = 1000;
  config.enable_spill = false;
  config.enable_reserved_pool = false;
  WorkerMemory worker(&config, 0);
  QueryMemory query("q1", &config);
  EXPECT_TRUE(worker.Reserve(&query, 600, true).ok());
  EXPECT_EQ(worker.general_used(), 600);
  EXPECT_EQ(query.global_user(), 600);
  worker.Release(&query, 200, true);
  EXPECT_EQ(worker.general_used(), 400);
  EXPECT_EQ(query.global_user(), 400);
  EXPECT_EQ(query.peak_user(), 600);
}

TEST(MemoryTest, GeneralPoolExhaustionKills) {
  MemoryConfig config;
  config.per_worker_general = 1000;
  config.enable_spill = false;
  config.enable_reserved_pool = false;
  WorkerMemory worker(&config, 0);
  QueryMemory query("q1", &config);
  EXPECT_TRUE(worker.Reserve(&query, 900, true).ok());
  Status s = worker.Reserve(&query, 200, true);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(query.killed());
}

TEST(MemoryTest, PerQueryUserLimitEnforced) {
  MemoryConfig config;
  config.per_worker_general = 1LL << 30;
  config.per_query_per_node_user = 500;
  WorkerMemory worker(&config, 0);
  QueryMemory query("q1", &config);
  EXPECT_TRUE(worker.Reserve(&query, 400, true).ok());
  EXPECT_EQ(worker.Reserve(&query, 200, true).code(),
            StatusCode::kResourceExhausted);
  // System memory is not limited by the user cap (only the total cap).
  QueryMemory query2("q2", &config);
  EXPECT_TRUE(worker.Reserve(&query2, 600, false).ok());
}

TEST(MemoryTest, ReservedPoolPromotesSingleQuery) {
  MemoryConfig config;
  config.per_worker_general = 1000;
  config.per_worker_reserved = 1000;
  config.enable_spill = false;
  config.enable_reserved_pool = true;
  WorkerMemory worker(&config, 0);
  QueryMemory q1("q1", &config);
  QueryMemory q2("q2", &config);
  EXPECT_TRUE(worker.Reserve(&q1, 900, true).ok());
  // q2 overflows into the reserved pool.
  EXPECT_TRUE(worker.Reserve(&q2, 500, true).ok());
  EXPECT_EQ(worker.reserved_owner(), &q2);
  // q1 cannot also be promoted.
  EXPECT_EQ(worker.Reserve(&q1, 500, true).code(),
            StatusCode::kResourceExhausted);
  // Releasing q2's reserved memory frees the pool.
  worker.Release(&q2, 500, true);
  EXPECT_EQ(worker.reserved_owner(), nullptr);
}

namespace {
class CountingRevocable : public Revocable {
 public:
  CountingRevocable(WorkerMemory* worker, QueryMemory* query, int64_t held)
      : worker_(worker), query_(query), held_(held) {}
  int64_t Revoke() override {
    ++revokes;
    if (held_ > 0) {
      worker_->Release(query_, held_, true);
      int64_t freed = held_;
      held_ = 0;
      return freed;
    }
    return 0;
  }
  int revokes = 0;

 private:
  WorkerMemory* worker_;
  QueryMemory* query_;
  int64_t held_;
};
}  // namespace

TEST(MemoryTest, RevocationSpillsBeforeKilling) {
  MemoryConfig config;
  config.per_worker_general = 1000;
  config.enable_spill = true;
  config.enable_reserved_pool = false;
  WorkerMemory worker(&config, 0);
  QueryMemory q1("q1", &config);
  ASSERT_TRUE(worker.Reserve(&q1, 800, true).ok());
  CountingRevocable revocable(&worker, &q1, 800);
  worker.RegisterRevocable(&q1, &revocable);
  QueryMemory q2("q2", &config);
  EXPECT_TRUE(worker.Reserve(&q2, 600, true).ok());
  EXPECT_EQ(revocable.revokes, 1);
  EXPECT_GT(worker.revocations(), 0);
  worker.UnregisterRevocable(&revocable);
}

// ---- exchange ----

TEST(ExchangeTest, BufferBackpressureAndTokens) {
  ExchangeBuffer buffer(/*capacity=*/100);
  // Uncompressed codec keeps the frame's wire size predictable: ~400 bytes
  // of values plus the frame header, well over the 100-byte capacity.
  PageCodec codec(PageCodecOptions{PageCompression::kNone, true, true});
  PageCodec::Frame big =
      codec.Encode(Page({MakeBigintBlock(std::vector<int64_t>(50, 1))}));
  ASSERT_GT(big.wire_bytes(), 100);
  // Empty-buffer exception: an oversized frame is admitted when empty.
  EXPECT_TRUE(buffer.TryEnqueue(big));
  // Over capacity: the next enqueue is rejected (producer backpressure).
  EXPECT_FALSE(buffer.TryEnqueue(big));
  EXPECT_GT(buffer.utilization(), 0.9);
  bool finished = false;
  auto frame = buffer.Poll(&finished);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(finished);
  // Space freed: enqueue succeeds again.
  EXPECT_TRUE(buffer.TryEnqueue(big));
  buffer.NoMorePages();
  frame = buffer.Poll(&finished);
  EXPECT_TRUE(frame.has_value());
  frame = buffer.Poll(&finished);
  EXPECT_FALSE(frame.has_value());
  EXPECT_TRUE(finished);
  EXPECT_TRUE(buffer.finished());
  // Byte accounting is in wire bytes, raw bytes tracked alongside.
  EXPECT_EQ(buffer.total_bytes_sent(), 2 * big.wire_bytes());
  EXPECT_EQ(buffer.total_raw_bytes_sent(), 2 * big.raw_bytes);
  EXPECT_EQ(buffer.total_rows_sent(), 100);
}

TEST(ExchangeTest, ManagerRoutesStreams) {
  ExchangeManager manager({0, 0});
  manager.CreateOutputBuffers("q", 1, 0, 3, 1 << 20);
  EXPECT_NE(manager.GetBuffer({"q", 1, 0, 2}), nullptr);
  EXPECT_EQ(manager.GetBuffer({"q", 1, 1, 0}), nullptr);
  EXPECT_EQ(manager.GetBuffer({"other", 1, 0, 0}), nullptr);
  auto buffer = manager.GetBuffer({"q", 1, 0, 0});
  PageCodec::Frame frame =
      manager.codec().Encode(Page({MakeBigintBlock({1, 2, 3})}));
  buffer->TryEnqueue(frame);
  EXPECT_GT(manager.OutputUtilization("q", 1, 0), 0.0);
  // Cumulative serde counters survive query removal.
  EXPECT_EQ(manager.serialized_wire_bytes(), frame.wire_bytes());
  EXPECT_EQ(manager.serialized_raw_bytes(), frame.raw_bytes);
  manager.RemoveQuery("q");
  EXPECT_EQ(manager.GetBuffer({"q", 1, 0, 0}), nullptr);
  EXPECT_EQ(manager.serialized_wire_bytes(), frame.wire_bytes());
}

// ---- group-by hash ----

TEST(GroupByHashTest, AssignsDenseIdsAndRebuildsKeys) {
  GroupByHash table({TypeKind::kBigint, TypeKind::kVarchar});
  std::vector<int32_t> ids;
  table.ComputeGroupIds(
      {MakeBigintBlock({1, 2, 1, 3}),
       MakeVarcharBlock({"a", "b", "a", "a"})},
      4, &ids);
  EXPECT_EQ(ids, (std::vector<int32_t>{0, 1, 0, 2}));
  EXPECT_EQ(table.size(), 3);
  auto keys = table.BuildKeyBlocks(0, 3);
  EXPECT_EQ(keys[0]->GetValue(2), Value::Bigint(3));
  EXPECT_EQ(keys[1]->GetValue(1), Value::Varchar("b"));
}

TEST(GroupByHashTest, NullsFormTheirOwnGroup) {
  GroupByHash table({TypeKind::kBigint});
  std::vector<int32_t> ids;
  table.ComputeGroupIds({MakeBigintBlock({1, 0, 1}, {0, 1, 0})}, 3, &ids);
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_NE(ids[0], ids[1]);
  auto keys = table.BuildKeyBlocks(0, 2);
  EXPECT_TRUE(keys[0]->IsNull(1));
}

TEST(GroupByHashTest, GrowsPastInitialCapacity) {
  GroupByHash table({TypeKind::kBigint});
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 5000; ++i) values.push_back(i);
  std::vector<int32_t> ids;
  table.ComputeGroupIds({MakeBigintBlock(values)}, 5000, &ids);
  EXPECT_EQ(table.size(), 5000);
  // Re-probing the same keys yields the same ids.
  std::vector<int32_t> ids2;
  table.ComputeGroupIds({MakeBigintBlock(values)}, 5000, &ids2);
  EXPECT_EQ(ids, ids2);
}

// ---- pages index ----

TEST(PagesIndexTest, ConcatenatesAndCompares) {
  PagesIndex index({TypeKind::kBigint, TypeKind::kVarchar});
  index.AddPage(Page({MakeBigintBlock({3, 1}), MakeVarcharBlock({"c", "a"})}));
  index.AddPage(Page({MakeBigintBlock({2}), MakeVarcharBlock({"b"})}));
  index.Finish(/*extra_null_row=*/true);
  EXPECT_EQ(index.num_rows(), 3);
  EXPECT_EQ(index.columns()[0]->size(), 4);  // + null sentinel
  EXPECT_TRUE(index.columns()[0]->IsNull(3));
  std::vector<SortKey> keys = {{0, true}};
  EXPECT_LT(index.CompareRows(keys, 1, 0), 0);  // 1 < 3
  EXPECT_GT(index.CompareRows(keys, 2, 1), 0);  // 2 > 1
}

// ---- spiller ----

TEST(SpillerTest, RunsRoundTrip) {
  Spiller spiller;
  Page page({MakeBigintBlock({1, 2, 3}), MakeVarcharBlock({"x", "y", "z"})});
  auto run = spiller.SpillRun({page, page});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(spiller.num_runs(), 1);
  EXPECT_GT(spiller.spilled_bytes(), 0);
  auto pages = spiller.ReadRun(*run);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 2u);
  EXPECT_EQ((*pages)[1].block(1)->GetValue(2), Value::Varchar("z"));
}

// ---- MLFQ executor levels ----

TEST(TaskExecutorTest, LevelClassification) {
  ExecutorConfig config;
  config.threads = 1;
  TaskExecutor executor(config, 0);
  // LevelOf is private; exercise through thresholds semantics by checking
  // the configured defaults are ordered.
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_LT(config.level_thresholds[i], config.level_thresholds[i + 1]);
  }
  double total = 0;
  for (double share : config.level_shares) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace presto
