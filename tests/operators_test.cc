#include <gtest/gtest.h>

#include "exec/driver.h"
#include "exec/operators.h"

namespace presto {
namespace {

// Minimal contexts: no memory accounting, no cluster services.
std::unique_ptr<OperatorContext> Ctx(const char* label = "op") {
  return std::make_unique<OperatorContext>(TaskRuntime{}, TaskSpec{}, label);
}

ExprPtr Col(int i, TypeKind t) { return Expr::MakeColumn(i, t); }
ExprPtr Lit(Value v) { return Expr::MakeLiteral(std::move(v)); }
ExprPtr Call(const std::string& name, std::vector<ExprPtr> args) {
  std::vector<TypeKind> types;
  for (const auto& a : args) types.push_back(a->type());
  auto fn = FunctionRegistry::Instance().Resolve(name, types);
  EXPECT_TRUE(fn.ok());
  return Expr::MakeCall(*fn, std::move(args));
}

// Drains all output pages from an operator after feeding inputs.
Result<std::vector<Page>> Drain(Operator* op) {
  std::vector<Page> out;
  for (int spin = 0; spin < 10000 && !op->IsFinished(); ++spin) {
    PRESTO_ASSIGN_OR_RETURN(std::optional<Page> page, op->GetOutput());
    if (page.has_value()) out.push_back(std::move(*page));
  }
  return out;
}

// ---- aggregation operator ----

std::shared_ptr<const AggregateNode> MakeAggNode(
    AggregationStep step, std::vector<int> keys,
    std::vector<AggregateCall> calls, RowSchema output, RowSchema input) {
  auto values = std::make_shared<ValuesNode>(
      0, std::move(input), std::vector<std::vector<Value>>{});
  return std::make_shared<AggregateNode>(1, step, std::move(keys),
                                         std::move(calls), std::move(output),
                                         values);
}

TEST(HashAggregationOperatorTest, SingleStepGroupBy) {
  RowSchema input;
  input.Add("k", TypeKind::kBigint);
  input.Add("v", TypeKind::kBigint);
  RowSchema output;
  output.Add("k", TypeKind::kBigint);
  output.Add("sum", TypeKind::kBigint);
  auto sig = *ResolveAggregate("sum", TypeKind::kBigint, false);
  auto node = MakeAggNode(AggregationStep::kSingle, {0}, {{sig, 1, "sum"}},
                          output, input);
  HashAggregationOperator op(Ctx(), node);
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({1, 2, 1}),
                                MakeBigintBlock({10, 20, 30})}))
                  .ok());
  ASSERT_TRUE(
      op.AddInput(Page({MakeBigintBlock({2}), MakeBigintBlock({5})})).ok());
  op.NoMoreInput();
  auto pages = Drain(&op);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 1u);
  const Page& page = (*pages)[0];
  EXPECT_EQ(page.num_rows(), 2);
  // Group 1 -> 40, group 2 -> 25 (insertion order).
  EXPECT_EQ(page.block(0)->GetValue(0), Value::Bigint(1));
  EXPECT_EQ(page.block(1)->GetValue(0), Value::Bigint(40));
  EXPECT_EQ(page.block(1)->GetValue(1), Value::Bigint(25));
}

TEST(HashAggregationOperatorTest, GlobalAggregateEmptyInput) {
  RowSchema input;
  input.Add("v", TypeKind::kBigint);
  RowSchema output;
  output.Add("count", TypeKind::kBigint);
  auto sig = *ResolveAggregate("count", std::nullopt, false);
  auto node = MakeAggNode(AggregationStep::kSingle, {}, {{sig, -1, "count"}},
                          output, input);
  HashAggregationOperator op(Ctx(), node);
  op.NoMoreInput();
  auto pages = Drain(&op);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 1u);
  EXPECT_EQ((*pages)[0].block(0)->GetValue(0), Value::Bigint(0));
}

TEST(HashAggregationOperatorTest, PartialFinalRoundTrip) {
  RowSchema input;
  input.Add("k", TypeKind::kBigint);
  input.Add("v", TypeKind::kBigint);
  auto sig = *ResolveAggregate("avg", TypeKind::kBigint, false);
  RowSchema partial_out;
  partial_out.Add("k", TypeKind::kBigint);
  partial_out.Add("avg", sig.intermediate_type);
  auto partial_node = MakeAggNode(AggregationStep::kPartial, {0},
                                  {{sig, 1, "avg"}}, partial_out, input);
  HashAggregationOperator partial(Ctx(), partial_node);
  ASSERT_TRUE(partial
                  .AddInput(Page({MakeBigintBlock({7, 7, 8}),
                                  MakeBigintBlock({2, 4, 10})}))
                  .ok());
  partial.NoMoreInput();
  auto partial_pages = Drain(&partial);
  ASSERT_TRUE(partial_pages.ok());
  ASSERT_EQ(partial_pages->size(), 1u);

  RowSchema final_out;
  final_out.Add("k", TypeKind::kBigint);
  final_out.Add("avg", TypeKind::kDouble);
  auto final_node = MakeAggNode(AggregationStep::kFinal, {0},
                                {{sig, 1, "avg"}}, final_out, partial_out);
  HashAggregationOperator final_op(Ctx(), final_node);
  ASSERT_TRUE(final_op.AddInput((*partial_pages)[0]).ok());
  final_op.NoMoreInput();
  auto final_pages = Drain(&final_op);
  ASSERT_TRUE(final_pages.ok());
  const Page& page = (*final_pages)[0];
  ASSERT_EQ(page.num_rows(), 2);
  EXPECT_NEAR(page.block(1)->GetValue(0).AsDouble(), 3.0, 1e-9);
  EXPECT_NEAR(page.block(1)->GetValue(1).AsDouble(), 10.0, 1e-9);
}

// ---- join operators ----

struct JoinFixture {
  std::shared_ptr<const JoinNode> node;
  std::shared_ptr<JoinBridge> bridge;

  JoinFixture(sql::JoinType type, bool with_residual = false) {
    RowSchema left;
    left.Add("lk", TypeKind::kBigint);
    left.Add("lv", TypeKind::kVarchar);
    RowSchema right;
    right.Add("rk", TypeKind::kBigint);
    right.Add("rv", TypeKind::kBigint);
    RowSchema out;
    out.Add("lk", TypeKind::kBigint);
    out.Add("lv", TypeKind::kVarchar);
    out.Add("rk", TypeKind::kBigint);
    out.Add("rv", TypeKind::kBigint);
    auto lvals = std::make_shared<ValuesNode>(
        0, left, std::vector<std::vector<Value>>{});
    auto rvals = std::make_shared<ValuesNode>(
        1, right, std::vector<std::vector<Value>>{});
    ExprPtr residual;
    if (with_residual) {
      // rv > 10
      residual = Call("gt", {Col(3, TypeKind::kBigint),
                             Lit(Value::Bigint(10))});
    }
    node = std::make_shared<JoinNode>(
        2, type, std::vector<int>{0}, std::vector<int>{0}, residual,
        JoinDistribution::kPartitioned, out, lvals, rvals);
    bridge = std::make_shared<JoinBridge>();
  }

  void Build(bool track_matched) {
    HashBuildOperator build(
        std::make_unique<OperatorContext>(TaskRuntime{}, TaskSpec{}, "build"),
        bridge, std::vector<TypeKind>{TypeKind::kBigint, TypeKind::kBigint},
        std::vector<int>{0}, track_matched);
    // rk: 1, 2, 2, null; rv: 5, 20, 30, 40
    EXPECT_TRUE(build
                    .AddInput(Page({MakeBigintBlock({1, 2, 2, 0},
                                                    {0, 0, 0, 1}),
                                    MakeBigintBlock({5, 20, 30, 40})}))
                    .ok());
    build.NoMoreInput();
    EXPECT_TRUE(bridge->ready.load());
  }
};

Page ProbePage() {
  // lk: 1, 2, 3, null
  return Page({MakeBigintBlock({1, 2, 3, 0}, {0, 0, 0, 1}),
               MakeVarcharBlock({"a", "b", "c", "d"})});
}

TEST(HashJoinTest, InnerJoin) {
  JoinFixture fixture(sql::JoinType::kInner);
  fixture.Build(false);
  HashProbeOperator probe(Ctx(), fixture.node, fixture.bridge, false);
  ASSERT_TRUE(probe.AddInput(ProbePage()).ok());
  probe.NoMoreInput();
  auto pages = Drain(&probe);
  ASSERT_TRUE(pages.ok());
  int64_t rows = 0;
  for (const auto& p : *pages) rows += p.num_rows();
  EXPECT_EQ(rows, 3);  // 1->(5), 2->(20,30)
}

TEST(HashJoinTest, LeftJoinEmitsNullsForUnmatched) {
  JoinFixture fixture(sql::JoinType::kLeft);
  fixture.Build(false);
  HashProbeOperator probe(Ctx(), fixture.node, fixture.bridge, false);
  ASSERT_TRUE(probe.AddInput(ProbePage()).ok());
  probe.NoMoreInput();
  auto pages = Drain(&probe);
  ASSERT_TRUE(pages.ok());
  int64_t rows = 0;
  int64_t null_right = 0;
  for (const auto& p : *pages) {
    rows += p.num_rows();
    for (int64_t r = 0; r < p.num_rows(); ++r) {
      if (p.block(3)->IsNull(r)) ++null_right;
    }
  }
  EXPECT_EQ(rows, 5);        // 3 matches + probe rows 3 and null
  EXPECT_EQ(null_right, 2);  // lk=3 and lk=null preserved with null rv
}

TEST(HashJoinTest, RightJoinEmitsUnmatchedBuildRows) {
  JoinFixture fixture(sql::JoinType::kRight);
  fixture.Build(true);
  HashProbeOperator probe(Ctx(), fixture.node, fixture.bridge, true);
  ASSERT_TRUE(probe.AddInput(ProbePage()).ok());
  probe.NoMoreInput();
  auto pages = Drain(&probe);
  ASSERT_TRUE(pages.ok());
  int64_t rows = 0;
  int64_t null_left = 0;
  for (const auto& p : *pages) {
    rows += p.num_rows();
    for (int64_t r = 0; r < p.num_rows(); ++r) {
      if (p.block(0)->IsNull(r)) ++null_left;
    }
  }
  EXPECT_EQ(rows, 4);       // 3 matches + unmatched build (rv=40, null key)
  EXPECT_EQ(null_left, 1);
}

TEST(HashJoinTest, CrossJoin) {
  RowSchema left;
  left.Add("l", TypeKind::kBigint);
  RowSchema right;
  right.Add("r", TypeKind::kBigint);
  RowSchema out;
  out.Add("l", TypeKind::kBigint);
  out.Add("r", TypeKind::kBigint);
  auto lvals =
      std::make_shared<ValuesNode>(0, left, std::vector<std::vector<Value>>{});
  auto rvals = std::make_shared<ValuesNode>(
      1, right, std::vector<std::vector<Value>>{});
  auto node = std::make_shared<JoinNode>(
      2, sql::JoinType::kCross, std::vector<int>{}, std::vector<int>{},
      nullptr, JoinDistribution::kBroadcast, out, lvals, rvals);
  auto bridge = std::make_shared<JoinBridge>();
  HashBuildOperator build(Ctx(), bridge, {TypeKind::kBigint}, {}, false);
  ASSERT_TRUE(build.AddInput(Page({MakeBigintBlock({10, 20})})).ok());
  build.NoMoreInput();
  HashProbeOperator probe(Ctx(), node, bridge, false);
  ASSERT_TRUE(probe.AddInput(Page({MakeBigintBlock({1, 2, 3})})).ok());
  probe.NoMoreInput();
  auto pages = Drain(&probe);
  ASSERT_TRUE(pages.ok());
  int64_t rows = 0;
  for (const auto& p : *pages) rows += p.num_rows();
  EXPECT_EQ(rows, 6);
}

TEST(HashJoinTest, ResidualFilterOnInnerJoin) {
  JoinFixture fixture(sql::JoinType::kInner, /*with_residual=*/true);
  fixture.Build(false);
  HashProbeOperator probe(Ctx(), fixture.node, fixture.bridge, false);
  ASSERT_TRUE(probe.AddInput(ProbePage()).ok());
  probe.NoMoreInput();
  auto pages = Drain(&probe);
  ASSERT_TRUE(pages.ok());
  int64_t rows = 0;
  for (const auto& p : *pages) rows += p.num_rows();
  EXPECT_EQ(rows, 2);  // rv in {20, 30} only (5 fails residual)
}

TEST(HashJoinTest, BuildColumnsAreDictionaryEncoded) {
  JoinFixture fixture(sql::JoinType::kInner);
  fixture.Build(false);
  HashProbeOperator probe(Ctx(), fixture.node, fixture.bridge, false);
  ASSERT_TRUE(probe.AddInput(ProbePage()).ok());
  probe.NoMoreInput();
  auto pages = Drain(&probe);
  ASSERT_TRUE(pages.ok());
  ASSERT_FALSE(pages->empty());
  // §V-E: join output references build data through dictionary blocks.
  EXPECT_EQ((*pages)[0].block(2)->encoding(), BlockEncoding::kDictionary);
  EXPECT_EQ((*pages)[0].block(3)->encoding(), BlockEncoding::kDictionary);
}

// ---- sorting / limiting ----

std::shared_ptr<const SortNode> MakeSortNode(RowSchema schema,
                                             std::vector<SortKey> keys) {
  auto values = std::make_shared<ValuesNode>(
      0, std::move(schema), std::vector<std::vector<Value>>{});
  return std::make_shared<SortNode>(1, std::move(keys), values);
}

TEST(OrderByOperatorTest, SortsAcrossPages) {
  RowSchema schema;
  schema.Add("v", TypeKind::kBigint);
  OrderByOperator op(Ctx(), MakeSortNode(schema, {{0, false}}));
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({3, 1})})).ok());
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({2, 5})})).ok());
  op.NoMoreInput();
  auto pages = Drain(&op);
  ASSERT_TRUE(pages.ok());
  std::vector<int64_t> got;
  for (const auto& p : *pages) {
    for (int64_t r = 0; r < p.num_rows(); ++r) {
      got.push_back(p.block(0)->GetValue(r).AsBigint());
    }
  }
  EXPECT_EQ(got, (std::vector<int64_t>{5, 3, 2, 1}));
}

TEST(OrderByOperatorTest, SpilledRunsMergeInOrder) {
  RowSchema schema;
  schema.Add("v", TypeKind::kBigint);
  OrderByOperator op(Ctx(), MakeSortNode(schema, {{0, true}}));
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({9, 3, 7})})).ok());
  EXPECT_GT(op.Revoke(), 0);  // spill run 1
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({4, 8})})).ok());
  EXPECT_GT(op.Revoke(), 0);  // spill run 2
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({1, 6})})).ok());
  op.NoMoreInput();
  auto pages = Drain(&op);
  ASSERT_TRUE(pages.ok());
  std::vector<int64_t> got;
  for (const auto& p : *pages) {
    for (int64_t r = 0; r < p.num_rows(); ++r) {
      got.push_back(p.block(0)->GetValue(r).AsBigint());
    }
  }
  EXPECT_EQ(got, (std::vector<int64_t>{1, 3, 4, 6, 7, 8, 9}));
}

TEST(TopNOperatorTest, KeepsSmallest) {
  RowSchema schema;
  schema.Add("v", TypeKind::kBigint);
  auto values = std::make_shared<ValuesNode>(
      0, schema, std::vector<std::vector<Value>>{});
  auto node = std::make_shared<TopNNode>(1, std::vector<SortKey>{{0, true}},
                                         3, false, values);
  TopNOperator op(Ctx(), node);
  std::vector<int64_t> data;
  for (int64_t i = 100; i > 0; --i) data.push_back(i);
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock(data)})).ok());
  op.NoMoreInput();
  auto pages = Drain(&op);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ((*pages)[0].num_rows(), 3);
  EXPECT_EQ((*pages)[0].block(0)->GetValue(0), Value::Bigint(1));
  EXPECT_EQ((*pages)[0].block(0)->GetValue(2), Value::Bigint(3));
}

TEST(LimitOperatorTest, TruncatesMidPage) {
  LimitOperator op(Ctx(), 3);
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({1, 2})})).ok());
  auto p1 = op.GetOutput();
  ASSERT_TRUE(p1.ok() && p1->has_value());
  EXPECT_TRUE(op.needs_input());
  ASSERT_TRUE(op.AddInput(Page({MakeBigintBlock({3, 4, 5})})).ok());
  auto p2 = op.GetOutput();
  ASSERT_TRUE(p2.ok() && p2->has_value());
  EXPECT_EQ((*p2)->num_rows(), 1);
  EXPECT_TRUE(op.IsFinished());
}

// ---- local exchange + driver ----

TEST(DriverTest, MovesPagesThroughPipeline) {
  RowSchema schema;
  schema.Add("v", TypeKind::kBigint);
  std::vector<std::vector<Value>> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value::Bigint(i)});
  auto values_node = std::make_shared<ValuesNode>(0, schema, rows);
  auto queue = std::make_shared<LocalExchangeQueue>(1);

  std::vector<std::unique_ptr<Operator>> ops;
  ops.push_back(std::make_unique<ValuesOperator>(Ctx("values"), values_node));
  ops.push_back(std::make_unique<FilterProjectOperator>(
      Ctx("filter"),
      Call("gte", {Col(0, TypeKind::kBigint), Lit(Value::Bigint(5))}),
      std::vector<ExprPtr>{Col(0, TypeKind::kBigint)}));
  ops.push_back(
      std::make_unique<LocalExchangeSinkOperator>(Ctx("sink"), queue));
  Driver driver(std::move(ops));
  int64_t cpu = 0;
  auto state = driver.Process(1'000'000'000, &cpu);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Driver::State::kFinished);
  bool done = false;
  auto page = queue->Poll(&done);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->num_rows(), 5);
  queue->Poll(&done);
  EXPECT_TRUE(done);
}

TEST(DriverTest, ReportsBlockedWhenNoProgress) {
  auto queue = std::make_shared<LocalExchangeQueue>(1);  // never finishes
  std::vector<std::unique_ptr<Operator>> ops;
  ops.push_back(
      std::make_unique<LocalExchangeSourceOperator>(Ctx("source"), queue));
  ops.push_back(std::make_unique<LimitOperator>(Ctx("limit"), 10));
  Driver driver(std::move(ops));
  int64_t cpu = 0;
  auto state = driver.Process(1'000'000, &cpu);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, Driver::State::kBlocked);
}

}  // namespace
}  // namespace presto
