#include <gtest/gtest.h>

#include "connector/scan_util.h"
#include "connectors/hive/hive_connector.h"
#include "connectors/raptor/raptor_connector.h"
#include "connectors/shardedstore/sharded_store.h"
#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "engine/reference_executor.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "vector/block_builder.h"

namespace presto {
namespace {

// Federation fixture: one engine with tpch (generator), hive (remote DFS),
// raptor (shared-nothing flash), and mysql (sharded row store) catalogs —
// the §II deployment mix.
class IntegrationTest : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.2;  // orders=3000, lineitem=12000

  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 4;
    options.cluster.executor.threads = 2;
    engine_ = std::make_unique<PrestoEngine>(options);

    auto tpch = std::make_shared<TpchConnector>("tpch", kScale);
    tpch_ = tpch.get();
    engine_->catalog().Register(tpch);

    HiveConfig hive_config;
    hive_config.dfs = {20, 4LL << 30, 50};
    auto hive = std::make_shared<HiveConnector>("hive", hive_config);
    hive_ = hive.get();
    engine_->catalog().Register(hive);

    auto raptor = std::make_shared<RaptorConnector>("raptor");
    raptor_ = raptor.get();
    engine_->catalog().Register(raptor);

    auto mysql = std::make_shared<ShardedStoreConnector>(
        "mysql", ShardedStoreConfig{4, 0});
    mysql_ = mysql.get();
    engine_->catalog().Register(mysql);

    engine_->catalog().SetDefault("tpch");

    // hive.orders / hive.lineitem loaded from the generator.
    for (const char* table : {"orders", "lineitem", "customer"}) {
      auto pages = ReadAllPages(tpch_, table);
      ASSERT_TRUE(pages.ok()) << pages.status().ToString();
      RowSchema schema =
          (*tpch_->metadata().GetTable(table))->schema();
      ASSERT_TRUE(hive_->CreateTable(table, schema).ok());
      ASSERT_TRUE(hive_->LoadTable(table, *pages).ok());
    }
    // raptor.orders / raptor.customer bucketed on custkey (co-located).
    {
      auto orders = ReadAllPages(tpch_, "orders");
      auto customer = ReadAllPages(tpch_, "customer");
      ASSERT_TRUE(orders.ok() && customer.ok());
      RowSchema oschema = (*tpch_->metadata().GetTable("orders"))->schema();
      RowSchema cschema =
          (*tpch_->metadata().GetTable("customer"))->schema();
      ASSERT_TRUE(
          raptor_->CreateTable("orders", oschema, "custkey", 8).ok());
      ASSERT_TRUE(raptor_->LoadTable("orders", *orders).ok());
      ASSERT_TRUE(
          raptor_->CreateTable("customer", cschema, "custkey", 8).ok());
      ASSERT_TRUE(raptor_->LoadTable("customer", *customer).ok());
    }
    // mysql.app_events sharded+indexed on app_id.
    {
      RowSchema schema;
      schema.Add("app_id", TypeKind::kBigint);
      schema.Add("day", TypeKind::kBigint);
      schema.Add("clicks", TypeKind::kBigint);
      ASSERT_TRUE(
          mysql_->CreateTable("app_events", schema, "app_id", {"app_id"})
              .ok());
      std::vector<int64_t> app, day, clicks;
      for (int64_t i = 0; i < 5000; ++i) {
        app.push_back(i % 200);
        day.push_back(i % 30);
        clicks.push_back(i % 17);
      }
      ASSERT_TRUE(mysql_
                      ->LoadTable("app_events",
                                  {Page({MakeBigintBlock(app),
                                         MakeBigintBlock(day),
                                         MakeBigintBlock(clicks)})})
                      .ok());
    }
  }

  void CheckAgainstReference(const std::string& sql) {
    SCOPED_TRACE(sql);
    auto engine_rows = engine_->ExecuteAndFetch(sql);
    ASSERT_TRUE(engine_rows.ok()) << engine_rows.status().ToString();
    auto stmt = sql::ParseStatement(sql);
    ASSERT_TRUE(stmt.ok());
    Planner planner(&engine_->catalog());
    auto plan = planner.Plan(**stmt);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto reference = ExecuteReference(engine_->catalog(), *plan);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_TRUE(SameRowsIgnoringOrder(*engine_rows, *reference))
        << "engine=" << engine_rows->size()
        << " reference=" << reference->size();
  }

  std::unique_ptr<PrestoEngine> engine_;
  TpchConnector* tpch_ = nullptr;
  HiveConnector* hive_ = nullptr;
  RaptorConnector* raptor_ = nullptr;
  ShardedStoreConnector* mysql_ = nullptr;
};

TEST_F(IntegrationTest, TpchGeneratorQueries) {
  auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM lineitem");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(*tpch_->RowCount("lineitem")));
}

TEST_F(IntegrationTest, HiveMatchesTpch) {
  auto from_tpch = engine_->ExecuteAndFetch(
      "SELECT orderstatus, count(*), sum(totalprice) FROM tpch.orders "
      "GROUP BY orderstatus");
  auto from_hive = engine_->ExecuteAndFetch(
      "SELECT orderstatus, count(*), sum(totalprice) FROM hive.orders "
      "GROUP BY orderstatus");
  ASSERT_TRUE(from_tpch.ok()) << from_tpch.status().ToString();
  ASSERT_TRUE(from_hive.ok()) << from_hive.status().ToString();
  EXPECT_TRUE(SameRowsIgnoringOrder(*from_tpch, *from_hive));
}

TEST_F(IntegrationTest, FederatedJoinAcrossConnectors) {
  // hive warehouse joined with the sharded operational store in one query
  // (§I: "process data from many different data sources even within a
  // single query").
  auto rows = engine_->ExecuteAndFetch(
      "SELECT count(*) FROM hive.orders o JOIN mysql.app_events e "
      "ON o.custkey = e.app_id WHERE e.day = 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT((*rows)[0][0].AsBigint(), 0);
}

TEST_F(IntegrationTest, ColocatedJoinHasNoShuffle) {
  auto text = engine_->Explain(
      "SELECT count(*) FROM raptor.orders o JOIN raptor.customer c "
      "ON o.custkey = c.custkey");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("dist=colocated"), std::string::npos) << *text;
  // Both scans live in one fragment: no repartition below the join.
  EXPECT_EQ(text->find("RemoteSource[fragment=1 repartition]"),
            std::string::npos);
  // And the result is correct.
  auto rows = engine_->ExecuteAndFetch(
      "SELECT count(*) FROM raptor.orders o JOIN raptor.customer c "
      "ON o.custkey = c.custkey");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(*tpch_->RowCount("orders")));
}

TEST_F(IntegrationTest, PartitionedVsColocatedAgree) {
  auto colocated = engine_->ExecuteAndFetch(
      "SELECT c.mktsegment, count(*) FROM raptor.orders o "
      "JOIN raptor.customer c ON o.custkey = c.custkey "
      "GROUP BY c.mktsegment");
  auto partitioned = engine_->ExecuteAndFetch(
      "SELECT c.mktsegment, count(*) FROM hive.orders o "
      "JOIN hive.customer c ON o.custkey = c.custkey "
      "GROUP BY c.mktsegment");
  ASSERT_TRUE(colocated.ok()) << colocated.status().ToString();
  ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
  EXPECT_TRUE(SameRowsIgnoringOrder(*colocated, *partitioned));
}

TEST_F(IntegrationTest, IndexPushdownIntoShardedStore) {
  mysql_ = mysql_;  // silence unused in release
  auto text = engine_->Explain(
      "SELECT day, sum(clicks) FROM mysql.app_events WHERE app_id = 17 "
      "GROUP BY day");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("pushed={app_id = 17}"), std::string::npos) << *text;
  int64_t before = mysql_->rows_read();
  auto rows = engine_->ExecuteAndFetch(
      "SELECT day, sum(clicks) FROM mysql.app_events WHERE app_id = 17 "
      "GROUP BY day");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  int64_t read = mysql_->rows_read() - before;
  EXPECT_EQ(read, 25);  // 5000 rows / 200 apps — only matching rows read
}

TEST_F(IntegrationTest, HivePartitionedTablePruning) {
  RowSchema schema = (*tpch_->metadata().GetTable("orders"))->schema();
  ASSERT_TRUE(
      hive_->CreateTable("orders_by_status", schema, "orderstatus").ok());
  auto pages = ReadAllPages(tpch_, "orders");
  ASSERT_TRUE(pages.ok());
  ASSERT_TRUE(hive_->LoadTable("orders_by_status", *pages).ok());
  CheckAgainstReference(
      "SELECT count(*) FROM hive.orders_by_status WHERE orderstatus = 'F'");
}

TEST_F(IntegrationTest, DifferentialFederatedSuite) {
  CheckAgainstReference(
      "SELECT o.orderpriority, count(*) FROM hive.orders o "
      "WHERE o.totalprice > 100000 GROUP BY o.orderpriority");
  CheckAgainstReference(
      "SELECT l.returnflag, l.linestatus, sum(l.quantity), "
      "avg(l.extendedprice) FROM tpch.lineitem l "
      "WHERE l.shipdate <= DATE '1998-09-02' "
      "GROUP BY l.returnflag, l.linestatus");
  CheckAgainstReference(
      "SELECT c.mktsegment, max(o.totalprice) FROM raptor.customer c "
      "JOIN raptor.orders o ON c.custkey = o.custkey "
      "GROUP BY c.mktsegment");
}

TEST_F(IntegrationTest, PhasedSchedulingProducesSameResults) {
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  options.cluster.phased_scheduling = true;
  PrestoEngine phased(options);
  auto tpch = std::make_shared<TpchConnector>("tpch", kScale);
  phased.catalog().Register(tpch);
  auto expected = engine_->ExecuteAndFetch(
      "SELECT count(*) FROM tpch.orders o JOIN tpch.lineitem l "
      "ON o.orderkey = l.orderkey WHERE o.totalprice > 50000");
  auto actual = phased.ExecuteAndFetch(
      "SELECT count(*) FROM tpch.orders o JOIN tpch.lineitem l "
      "ON o.orderkey = l.orderkey WHERE o.totalprice > 50000");
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_TRUE(SameRowsIgnoringOrder(*expected, *actual));
}

TEST_F(IntegrationTest, SpillingKeepsLargeAggregationAlive) {
  EngineOptions options;
  options.cluster.num_workers = 1;
  options.cluster.executor.threads = 2;
  options.cluster.memory.per_worker_general = 3 << 20;  // tiny general pool
  options.cluster.memory.per_query_per_node_user = 64 << 20;
  options.cluster.memory.per_query_per_node_total = 64 << 20;
  options.cluster.memory.enable_spill = true;
  options.cluster.memory.enable_reserved_pool = false;
  PrestoEngine small(options);
  auto tpch = std::make_shared<TpchConnector>("tpch", 1.0);
  small.catalog().Register(tpch);
  // Wide aggregation state: distinct orderkeys.
  auto rows = small.ExecuteAndFetch(
      "SELECT count(*) FROM (SELECT orderkey, sum(quantity) AS q "
      "FROM lineitem GROUP BY orderkey) t WHERE q >= 0");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(15000));
}

TEST_F(IntegrationTest, HttpTransportMatchesInProcess) {
  // The same multi-fragment queries over real localhost sockets
  // (TransportMode::kHttp) must return exactly what the in-process
  // transport returns — the wire protocol is invisible to results.
  EngineOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executor.threads = 2;
  options.cluster.network.transport = TransportMode::kHttp;
  PrestoEngine http_engine(options);
  http_engine.catalog().Register(
      std::make_shared<TpchConnector>("tpch", kScale));
  http_engine.catalog().SetDefault("tpch");

  for (const char* sql : {
           // Repartitioned aggregation: scan fragments shuffle to
           // aggregation fragments across workers.
           "SELECT orderstatus, count(*), sum(totalprice) FROM orders "
           "GROUP BY orderstatus",
           // Distributed join: two shuffles feeding one probe fragment.
           "SELECT c.mktsegment, count(*) FROM orders o "
           "JOIN customer c ON o.custkey = c.custkey GROUP BY c.mktsegment",
           // Single-fragment passthrough still works under kHttp.
           "SELECT count(*) FROM lineitem",
       }) {
    SCOPED_TRACE(sql);
    auto in_process = engine_->ExecuteAndFetch(sql);
    auto over_http = http_engine.ExecuteAndFetch(sql);
    ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
    ASSERT_TRUE(over_http.ok()) << over_http.status().ToString();
    EXPECT_TRUE(SameRowsIgnoringOrder(*in_process, *over_http));
  }
  // The shuffles really went over HTTP, and every buffer was retired.
  EXPECT_GT(http_engine.cluster().exchange().http_requests(), 0);
  EXPECT_EQ(http_engine.cluster().exchange().TotalBufferedBytes(), 0);
  EXPECT_EQ(http_engine.cluster().exchange().TotalInflightBytes(), 0);
}

TEST_F(IntegrationTest, MemoryLimitKillsQueryWithoutSpill) {
  EngineOptions options;
  options.cluster.num_workers = 1;
  options.cluster.executor.threads = 2;
  options.cluster.memory.per_worker_general = 256 << 10;
  options.cluster.memory.enable_spill = false;
  options.cluster.memory.enable_reserved_pool = false;
  PrestoEngine small(options);
  auto tpch = std::make_shared<TpchConnector>("tpch", 4.0);
  small.catalog().Register(tpch);
  auto rows = small.ExecuteAndFetch(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace presto
