#include <gtest/gtest.h>

#include "connectors/hive/hive_connector.h"
#include "connectors/hive/minidfs.h"
#include "connectors/hive/storc.h"
#include "connectors/raptor/raptor_connector.h"
#include "connectors/shardedstore/sharded_store.h"
#include "connectors/tpch/tpch_connector.h"
#include "vector/block_builder.h"

namespace presto {
namespace {

// ---- minidfs ----

TEST(MiniDfsTest, WriteReadList) {
  MiniDfs dfs({/*latency*/ 0, /*bw*/ 0, /*list*/ 0});
  ASSERT_TRUE(dfs.Write("/a/b/file1", "hello world").ok());
  ASSERT_TRUE(dfs.Write("/a/b/file2", "xyz").ok());
  ASSERT_TRUE(dfs.Write("/a/c/file3", "q").ok());
  auto size = dfs.FileSize("/a/b/file1");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11);
  auto range = dfs.ReadRange("/a/b/file1", 6, 5);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, "world");
  EXPECT_EQ(dfs.List("/a/b/").size(), 2u);
  EXPECT_FALSE(dfs.ReadRange("/a/b/file1", 8, 10).ok());
  EXPECT_FALSE(dfs.FileSize("/missing").ok());
  EXPECT_EQ(dfs.total_reads(), 1);
}

// ---- storc ----

Page TestPage(int64_t start, int64_t rows) {
  std::vector<int64_t> ids;
  std::vector<double> vals;
  std::vector<std::string> cats;
  for (int64_t i = start; i < start + rows; ++i) {
    ids.push_back(i);
    vals.push_back(static_cast<double>(i) * 0.5);
    cats.push_back(i % 3 == 0 ? "alpha" : (i % 3 == 1 ? "beta" : "gamma"));
  }
  return Page({MakeBigintBlock(ids), MakeDoubleBlock(vals),
               MakeVarcharBlock(cats)});
}

RowSchema TestSchema() {
  RowSchema schema;
  schema.Add("id", TypeKind::kBigint);
  schema.Add("val", TypeKind::kDouble);
  schema.Add("cat", TypeKind::kVarchar);
  return schema;
}

// Assembles the ScanSpec connector tests pass to GetSplits/CreateDataSource.
ScanSpec MakeSpec(TableHandlePtr table, std::string layout_id = "",
                  std::vector<int> columns = {},
                  std::vector<ColumnPredicate> predicates = {},
                  int num_workers = 1) {
  ScanSpec spec;
  spec.table = std::move(table);
  spec.layout_id = std::move(layout_id);
  spec.columns = std::move(columns);
  spec.predicates = std::move(predicates);
  spec.num_workers = num_workers;
  return spec;
}

TEST(StorcTest, WriteReadRoundTrip) {
  MiniDfs dfs({0, 0, 0});
  StorcWriter writer(TestSchema(), /*stripe_rows=*/100);
  writer.Append(TestPage(0, 250));
  ASSERT_TRUE(dfs.Write("/t/file.storc", writer.Finish()).ok());

  auto footer = ReadStorcFooter(dfs, "/t/file.storc");
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_EQ(footer->total_rows, 250);
  EXPECT_EQ(footer->stripes.size(), 3u);  // 100+100+50
  EXPECT_EQ(footer->schema.size(), 3u);

  StorcReader reader(&dfs, "/t/file.storc", *footer, {0, 1, 2}, {}, true,
                     nullptr);
  int64_t total = 0;
  int64_t expected_id = 0;
  for (;;) {
    auto page = reader.NextPage();
    ASSERT_TRUE(page.ok());
    if (!page->has_value()) break;
    for (int64_t r = 0; r < (*page)->num_rows(); ++r) {
      EXPECT_EQ((*page)->block(0)->GetValue(r), Value::Bigint(expected_id));
      ++expected_id;
    }
    total += (*page)->num_rows();
  }
  EXPECT_EQ(total, 250);
}

TEST(StorcTest, StripeStatsPruning) {
  MiniDfs dfs({0, 0, 0});
  StorcWriter writer(TestSchema(), 100);
  writer.Append(TestPage(0, 300));  // ids 0..299 in 3 stripes
  ASSERT_TRUE(dfs.Write("/t/file.storc", writer.Finish()).ok());
  auto footer = ReadStorcFooter(dfs, "/t/file.storc");
  ASSERT_TRUE(footer.ok());
  // id = 250 only lives in the third stripe.
  std::vector<ColumnPredicate> preds = {
      {"id", ColumnPredicate::Op::kEq, {Value::Bigint(250)}}};
  StorcReader reader(&dfs, "/t/file.storc", *footer, {0}, preds, true,
                     nullptr);
  int64_t pages = 0;
  for (;;) {
    auto page = reader.NextPage();
    ASSERT_TRUE(page.ok());
    if (!page->has_value()) break;
    ++pages;
  }
  EXPECT_EQ(pages, 1);
  EXPECT_EQ(reader.stripes_skipped(), 2);
}

TEST(StorcTest, DictionaryEncodingDecodesAsDictionary) {
  MiniDfs dfs({0, 0, 0});
  StorcWriter writer(TestSchema(), 1000);
  writer.Append(TestPage(0, 500));  // cat has 3 distinct values
  ASSERT_TRUE(dfs.Write("/t/dict.storc", writer.Finish()).ok());
  auto footer = ReadStorcFooter(dfs, "/t/dict.storc");
  ASSERT_TRUE(footer.ok());
  StorcReader reader(&dfs, "/t/dict.storc", *footer, {2}, {}, false, nullptr);
  auto page = reader.NextPage();
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(page->has_value());
  // Low-cardinality column decodes straight into a dictionary block (§V-E).
  EXPECT_EQ((*page)->block(0)->encoding(), BlockEncoding::kDictionary);
}

TEST(StorcTest, RleEncodingForConstantColumn) {
  MiniDfs dfs({0, 0, 0});
  RowSchema schema;
  schema.Add("c", TypeKind::kBigint);
  StorcWriter writer(schema, 1000);
  writer.Append(Page({MakeBigintBlock(std::vector<int64_t>(400, 7))}));
  ASSERT_TRUE(dfs.Write("/t/rle.storc", writer.Finish()).ok());
  auto footer = ReadStorcFooter(dfs, "/t/rle.storc");
  ASSERT_TRUE(footer.ok());
  StorcReader reader(&dfs, "/t/rle.storc", *footer, {0}, {}, false, nullptr);
  auto page = reader.NextPage();
  ASSERT_TRUE(page.ok() && page->has_value());
  EXPECT_EQ((*page)->block(0)->encoding(), BlockEncoding::kRle);
  EXPECT_EQ((*page)->block(0)->GetValue(399), Value::Bigint(7));
}

TEST(StorcTest, LazyLoadingCountsStats) {
  MiniDfs dfs({0, 0, 0});
  StorcWriter writer(TestSchema(), 1000);
  writer.Append(TestPage(0, 100));
  ASSERT_TRUE(dfs.Write("/t/lazy.storc", writer.Finish()).ok());
  auto footer = ReadStorcFooter(dfs, "/t/lazy.storc");
  ASSERT_TRUE(footer.ok());
  LazyLoadStats stats;
  {
    StorcReader reader(&dfs, "/t/lazy.storc", *footer, {0, 1, 2}, {}, true,
                       &stats);
    auto page = reader.NextPage();
    ASSERT_TRUE(page.ok() && page->has_value());
    // Touch only column 0.
    EXPECT_EQ((*page)->block(0)->GetValue(0), Value::Bigint(0));
  }
  EXPECT_EQ(stats.blocks_loaded.load(), 1);
  EXPECT_EQ(stats.blocks_skipped.load(), 2);
}

// ---- hive connector ----

TEST(HiveConnectorTest, LoadScanAnalyze) {
  HiveConfig config;
  config.dfs = {0, 0, 0};
  HiveConnector hive("hive", config);
  ASSERT_TRUE(hive.CreateTable("t", TestSchema()).ok());
  ASSERT_TRUE(hive.LoadTable("t", {TestPage(0, 1000)}).ok());

  auto handle = hive.metadata().GetTable("t");
  ASSERT_TRUE(handle.ok());
  // Stats unknown before ANALYZE (the Fig. 6 "no stats" configuration).
  auto stats = hive.metadata().GetStats(**handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->valid());
  ASSERT_TRUE(hive.AnalyzeTable("t").ok());
  stats = hive.metadata().GetStats(**handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 1000);
  EXPECT_EQ(stats->columns.at("cat").distinct_values, 3);

  // Scan everything through splits.
  auto splits = hive.GetSplits(MakeSpec(*handle, "", {}, {}, 2));
  ASSERT_TRUE(splits.ok());
  int64_t rows = 0;
  for (;;) {
    auto batch = (*splits)->NextBatch(8);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    for (const auto& split : *batch) {
      auto source = hive.CreateDataSource(*split, MakeSpec(*handle, "", {0}));
      ASSERT_TRUE(source.ok());
      for (;;) {
        auto page = (*source)->NextPage();
        ASSERT_TRUE(page.ok());
        if (!page->has_value()) break;
        rows += (*page)->num_rows();
      }
    }
  }
  EXPECT_EQ(rows, 1000);
}

TEST(HiveConnectorTest, PartitionPruningIsExact) {
  HiveConfig config;
  config.dfs = {0, 0, 0};
  HiveConnector hive("hive", config);
  ASSERT_TRUE(hive.CreateTable("pt", TestSchema(), "cat").ok());
  ASSERT_TRUE(hive.LoadTable("pt", {TestPage(0, 300)}).ok());
  auto handle = hive.metadata().GetTable("pt");
  ASSERT_TRUE(handle.ok());
  ColumnPredicate pred{"cat", ColumnPredicate::Op::kEq,
                       {Value::Varchar("alpha")}};
  EXPECT_EQ(hive.metadata().GetPushdownSupport(**handle, pred),
            PushdownSupport::kExact);
  auto splits = hive.GetSplits(MakeSpec(*handle, "", {}, {pred}));
  ASSERT_TRUE(splits.ok());
  auto batch = (*splits)->NextBatch(100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 1u);  // only the alpha partition directory
}

// ---- raptor ----

TEST(RaptorConnectorTest, BucketedLoadAndLayout) {
  RaptorConnector raptor;
  ASSERT_TRUE(raptor.CreateTable("r", TestSchema(), "id", 4, "id").ok());
  ASSERT_TRUE(raptor.LoadTable("r", {TestPage(0, 400)}).ok());
  auto handle = raptor.metadata().GetTable("r");
  ASSERT_TRUE(handle.ok());
  auto layouts = raptor.metadata().GetLayouts(**handle);
  ASSERT_EQ(layouts.size(), 1u);
  EXPECT_EQ(layouts[0].partition_columns, std::vector<std::string>{"id"});
  EXPECT_EQ(layouts[0].bucket_count, 4);
  auto stats = raptor.metadata().GetStats(**handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 400);

  auto splits = raptor.GetSplits(MakeSpec(*handle, layouts[0].id, {}, {}, 2));
  ASSERT_TRUE(splits.ok());
  auto batch = (*splits)->NextBatch(100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 4u);
  int64_t rows = 0;
  for (const auto& split : *batch) {
    EXPECT_TRUE(split->hard_affinity());
    EXPECT_GE(split->preferred_worker(), 0);
    EXPECT_LT(split->preferred_worker(), 2);
    auto source =
        raptor.CreateDataSource(*split, MakeSpec(*handle, "", {0, 1, 2}));
    ASSERT_TRUE(source.ok());
    for (;;) {
      auto page = (*source)->NextPage();
      ASSERT_TRUE(page.ok());
      if (!page->has_value()) break;
      rows += (*page)->num_rows();
    }
  }
  EXPECT_EQ(rows, 400);
}

// ---- sharded store ----

TEST(ShardedStoreTest, ExactIndexPushdown) {
  ShardedStoreConnector store("mysql", {4, 0});
  RowSchema schema;
  schema.Add("app_id", TypeKind::kBigint);
  schema.Add("metric", TypeKind::kVarchar);
  schema.Add("value", TypeKind::kDouble);
  ASSERT_TRUE(store.CreateTable("events", schema, "app_id", {"app_id"}).ok());
  std::vector<int64_t> apps;
  std::vector<std::string> metrics;
  std::vector<double> values;
  for (int64_t i = 0; i < 1000; ++i) {
    apps.push_back(i % 50);
    metrics.push_back(i % 2 == 0 ? "views" : "clicks");
    values.push_back(static_cast<double>(i));
  }
  ASSERT_TRUE(store
                  .LoadTable("events",
                             {Page({MakeBigintBlock(apps),
                                    MakeVarcharBlock(metrics),
                                    MakeDoubleBlock(values)})})
                  .ok());
  auto handle = store.metadata().GetTable("events");
  ASSERT_TRUE(handle.ok());
  ColumnPredicate pred{"app_id", ColumnPredicate::Op::kEq,
                       {Value::Bigint(7)}};
  EXPECT_EQ(store.metadata().GetPushdownSupport(**handle, pred),
            PushdownSupport::kExact);
  ColumnPredicate unindexed{"metric", ColumnPredicate::Op::kEq,
                            {Value::Varchar("views")}};
  EXPECT_EQ(store.metadata().GetPushdownSupport(**handle, unindexed),
            PushdownSupport::kUnsupported);

  // Point predicate on the shard column routes to a single shard.
  auto splits = store.GetSplits(MakeSpec(*handle, "", {}, {pred}));
  ASSERT_TRUE(splits.ok());
  auto batch = (*splits)->NextBatch(100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 1u);
  int64_t rows = 0;
  for (const auto& split : *batch) {
    auto source =
        store.CreateDataSource(*split, MakeSpec(*handle, "", {0, 2}, {pred}));
    ASSERT_TRUE(source.ok());
    for (;;) {
      auto page = (*source)->NextPage();
      ASSERT_TRUE(page.ok());
      if (!page->has_value()) break;
      for (int64_t r = 0; r < (*page)->num_rows(); ++r) {
        EXPECT_EQ((*page)->block(0)->GetValue(r), Value::Bigint(7));
      }
      rows += (*page)->num_rows();
    }
  }
  EXPECT_EQ(rows, 20);  // 1000 rows / 50 apps
}

TEST(ShardedStoreTest, RangePushdown) {
  ShardedStoreConnector store("mysql", {2, 0});
  RowSchema schema;
  schema.Add("k", TypeKind::kBigint);
  schema.Add("v", TypeKind::kBigint);
  ASSERT_TRUE(store.CreateTable("t", schema, "k", {"k", "v"}).ok());
  std::vector<int64_t> ks, vs;
  for (int64_t i = 0; i < 100; ++i) {
    ks.push_back(i);
    vs.push_back(i * 10);
  }
  ASSERT_TRUE(
      store.LoadTable("t", {Page({MakeBigintBlock(ks), MakeBigintBlock(vs)})})
          .ok());
  auto handle = store.metadata().GetTable("t");
  ASSERT_TRUE(handle.ok());
  ColumnPredicate range{"v", ColumnPredicate::Op::kLt, {Value::Bigint(100)}};
  auto splits = store.GetSplits(MakeSpec(*handle, "", {}, {range}));
  ASSERT_TRUE(splits.ok());
  auto batch = (*splits)->NextBatch(100);
  int64_t rows = 0;
  for (const auto& split : *batch) {
    auto source =
        store.CreateDataSource(*split, MakeSpec(*handle, "", {0}, {range}));
    ASSERT_TRUE(source.ok());
    for (;;) {
      auto page = (*source)->NextPage();
      ASSERT_TRUE(page.ok());
      if (!page->has_value()) break;
      rows += (*page)->num_rows();
    }
  }
  EXPECT_EQ(rows, 10);  // v in {0,10,...,90}
}

// ---- tpch ----

TEST(TpchConnectorTest, DeterministicGeneration) {
  TpchConnector a("tpch", 0.1);
  TpchConnector b("tpch", 0.1);
  auto handle_a = a.metadata().GetTable("orders");
  auto handle_b = b.metadata().GetTable("orders");
  ASSERT_TRUE(handle_a.ok() && handle_b.ok());
  auto read_some = [](TpchConnector& conn, const TableHandlePtr& handle) {
    auto splits = conn.GetSplits(MakeSpec(handle));
    EXPECT_TRUE(splits.ok());
    auto batch = (*splits)->NextBatch(1);
    EXPECT_TRUE(batch.ok() && !batch->empty());
    auto source =
        conn.CreateDataSource(*(*batch)[0], MakeSpec(handle, "", {0, 1, 3}));
    EXPECT_TRUE(source.ok());
    auto page = (*source)->NextPage();
    EXPECT_TRUE(page.ok() && page->has_value());
    return (*page)->ToString();
  };
  EXPECT_EQ(read_some(a, *handle_a), read_some(b, *handle_b));
}

TEST(TpchConnectorTest, RowCountsScale) {
  TpchConnector small("tpch", 0.1);
  TpchConnector large("tpch", 1.0);
  EXPECT_EQ(*small.RowCount("nation"), 25);
  EXPECT_EQ(*large.RowCount("region"), 5);
  EXPECT_EQ(*large.RowCount("orders"), 15000);
  EXPECT_EQ(*large.RowCount("lineitem"), 60000);
  EXPECT_GT(*large.RowCount("orders"), *small.RowCount("orders"));
  EXPECT_FALSE(small.RowCount("bogus").ok());
}

TEST(TpchConnectorTest, ForeignKeysInRange) {
  TpchConnector tpch("tpch", 0.2);
  int64_t customers = *tpch.RowCount("customer");
  auto handle = tpch.metadata().GetTable("orders");
  ASSERT_TRUE(handle.ok());
  auto splits = tpch.GetSplits(MakeSpec(*handle));
  ASSERT_TRUE(splits.ok());
  auto batch = (*splits)->NextBatch(1);
  ASSERT_TRUE(batch.ok() && !batch->empty());
  auto source = tpch.CreateDataSource(*(*batch)[0], MakeSpec(*handle, "", {1}));
  ASSERT_TRUE(source.ok());
  auto page = (*source)->NextPage();
  ASSERT_TRUE(page.ok() && page->has_value());
  for (int64_t r = 0; r < (*page)->num_rows(); ++r) {
    int64_t ck = (*page)->block(0)->GetValue(r).AsBigint();
    EXPECT_GE(ck, 0);
    EXPECT_LT(ck, customers);
  }
}

TEST(TpchConnectorTest, StatsAreAnalytic) {
  TpchConnector tpch("tpch", 1.0);
  auto handle = tpch.metadata().GetTable("lineitem");
  ASSERT_TRUE(handle.ok());
  auto stats = tpch.metadata().GetStats(**handle);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 60000);
  EXPECT_EQ(stats->columns.at("orderkey").distinct_values, 15000);
}

}  // namespace
}  // namespace presto
