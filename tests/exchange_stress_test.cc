#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "exchange/exchange.h"
#include "exchange/http/exchange_http.h"
#include "vector/block.h"
#include "vector/page.h"

namespace presto {
namespace {

/// N producers x M consumer partitions over the real HTTP transport, with
/// seeded fault injection on the send, receive, and server paths. Every
/// iteration checks the exactly-once contract: the multiset of values each
/// consumer decodes equals exactly what its producers enqueued (no loss, no
/// duplication), and the manager ends the iteration with zero buffered and
/// zero in-flight bytes.
class ExchangeStressTest : public ::testing::Test {
 protected:
  static constexpr int kProducers = 3;
  static constexpr int kPartitions = 2;
  static constexpr int kFramesPerStream = 6;
  static constexpr int kRowsPerFrame = 16;
  static constexpr int kIterations = 100;
  static constexpr int kFragment = 1;
  // Small enough that producers hit backpressure and wait on acks.
  static constexpr int64_t kBufferCapacity = 2048;

  void SetUp() override {
    NetworkConfig network;
    network.latency_micros = 0;
    network.bytes_per_second = 0;
    network.transport = TransportMode::kHttp;
    network.http_long_poll_micros = 2'000;
    network.http_max_retries = 6;
    network.http_retry_backoff_micros = 100;
    manager_ = std::make_unique<ExchangeManager>(
        network, PageCodecOptions{PageCompression::kNone, true, true});
    service_ = std::make_unique<ExchangeHttpService>(manager_.get());
    ASSERT_TRUE(service_->Start().ok());
  }

  void TearDown() override {
    FaultInjection::Instance().DisarmAll();
    service_->Stop();
  }

  /// Every row value encodes (producer, partition, frame, row) uniquely, so
  /// a lost or duplicated frame shows up as a multiset mismatch.
  static int64_t ValueOf(int producer, int partition, int frame, int row) {
    return ((static_cast<int64_t>(producer) * kPartitions + partition) *
                kFramesPerStream +
            frame) *
               kRowsPerFrame +
           row;
  }

  void Produce(const std::string& query, int producer) {
    for (int frame = 0; frame < kFramesPerStream; ++frame) {
      for (int partition = 0; partition < kPartitions; ++partition) {
        std::vector<int64_t> values;
        for (int row = 0; row < kRowsPerFrame; ++row) {
          values.push_back(ValueOf(producer, partition, frame, row));
        }
        PageCodec::Frame encoded =
            manager_->codec().Encode(Page({MakeBigintBlock(values)}));
        auto buffer =
            manager_->GetBuffer({query, kFragment, producer, partition});
        ASSERT_NE(buffer, nullptr);
        // Backpressure: spin until the consumer's acks free capacity.
        while (!buffer->TryEnqueue(encoded)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    }
    for (int partition = 0; partition < kPartitions; ++partition) {
      manager_->GetBuffer({query, kFragment, producer, partition})
          ->NoMorePages();
    }
  }

  void Consume(const std::string& query, int partition,
               std::vector<int64_t>* out) {
    std::vector<std::unique_ptr<ExchangeHttpClient>> clients;
    for (int producer = 0; producer < kProducers; ++producer) {
      clients.push_back(std::make_unique<ExchangeHttpClient>(
          manager_.get(), service_->port(),
          StreamId{query, kFragment, producer, partition}));
    }
    std::vector<bool> complete(kProducers, false);
    int remaining = kProducers;
    size_t turn = 0;
    while (remaining > 0) {
      size_t i = turn++ % kProducers;
      if (complete[i]) continue;
      auto fetch = clients[i]->Fetch();
      ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
      size_t offset = 0;
      while (offset < fetch->body.size()) {
        auto page = manager_->codec().Decode(fetch->body, &offset);
        ASSERT_TRUE(page.ok()) << page.status().ToString();
        const Block& column = *page->block(0);
        for (int64_t row = 0; row < column.size(); ++row) {
          out->push_back(column.GetValue(row).AsBigint());
        }
      }
      if (fetch->complete) {
        ASSERT_TRUE(clients[i]->DeleteBuffer().ok());
        complete[i] = true;
        --remaining;
      }
    }
  }

  std::unique_ptr<ExchangeManager> manager_;
  std::unique_ptr<ExchangeHttpService> service_;
};

TEST_F(ExchangeStressTest, SeededFaultsNoLossNoDupNoLeak) {
  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const std::string query = "stress_" + std::to_string(iter);
    for (int producer = 0; producer < kProducers; ++producer) {
      manager_->CreateOutputBuffers(query, kFragment, producer, kPartitions,
                                    kBufferCapacity);
    }
    // Deterministic chaos, re-seeded per iteration: with 7 attempts per
    // round trip a ~6% per-attempt failure rate never exhausts the budget.
    FaultSpec send;
    send.error = Status::IOError("stress: injected send loss");
    send.probability = 0.02;
    send.seed = static_cast<uint64_t>(iter);
    FaultInjection::Instance().Arm("exchange.http_send", send);
    FaultSpec recv;
    recv.error = Status::IOError("stress: injected response loss");
    recv.probability = 0.02;
    recv.seed = static_cast<uint64_t>(iter) + 1000;
    FaultInjection::Instance().Arm("exchange.http_recv", recv);
    FaultSpec server;
    server.error = Status::Internal("stress: injected server failure");
    server.probability = 0.02;
    server.seed = static_cast<uint64_t>(iter) + 2000;
    FaultInjection::Instance().Arm("exchange.http_server", server);

    std::vector<std::thread> threads;
    for (int producer = 0; producer < kProducers; ++producer) {
      threads.emplace_back([this, &query, producer] {
        Produce(query, producer);
      });
    }
    std::vector<std::vector<int64_t>> received(kPartitions);
    for (int partition = 0; partition < kPartitions; ++partition) {
      threads.emplace_back([this, &query, partition, &received] {
        Consume(query, partition, &received[partition]);
      });
    }
    for (auto& thread : threads) thread.join();
    FaultInjection::Instance().DisarmAll();

    for (int partition = 0; partition < kPartitions; ++partition) {
      std::vector<int64_t> expected;
      for (int producer = 0; producer < kProducers; ++producer) {
        for (int frame = 0; frame < kFramesPerStream; ++frame) {
          for (int row = 0; row < kRowsPerFrame; ++row) {
            expected.push_back(ValueOf(producer, partition, frame, row));
          }
        }
      }
      std::sort(expected.begin(), expected.end());
      std::sort(received[partition].begin(), received[partition].end());
      ASSERT_EQ(received[partition], expected)
          << "partition " << partition << " lost or duplicated frames";
    }
    // Exactly-once consumption retired everything: nothing buffered,
    // nothing in flight, and every buffer was DELETEd by its consumer.
    EXPECT_EQ(manager_->TotalBufferedBytes(), 0);
    EXPECT_EQ(manager_->TotalInflightBytes(), 0);
    for (int producer = 0; producer < kProducers; ++producer) {
      for (int partition = 0; partition < kPartitions; ++partition) {
        EXPECT_EQ(
            manager_->GetBuffer({query, kFragment, producer, partition}),
            nullptr)
            << "leaked buffer " << producer << "/" << partition;
      }
    }
    manager_->RemoveQuery(query);
  }
  EXPECT_GT(manager_->http_requests(), 0);
  // ~2% of thousands of attempts: retries must actually have happened.
  EXPECT_GT(manager_->http_retries(), 0);
}

// Speculation race at the exchange layer (ISSUE 9): a generation-0
// original and a generation-1 replica of the same task produce the
// identical frame sequence on two separate exchange fabrics (two
// "workers"). The consumer fetches from the original and, at a seeded
// point mid-stream, a seeded coin decides whether the replica wins — a
// ResetForReplacement onto the replica's port and generation, re-fetching
// from token 0 with skip_frames suppressing everything already delivered.
// 100 seeded iterations; every one must decode an exactly-once multiset
// and leave zero buffered/in-flight bytes on both fabrics.
TEST_F(ExchangeStressTest, SpeculationReplacementRaceExactlyOnce) {
  NetworkConfig network;
  network.latency_micros = 0;
  network.bytes_per_second = 0;
  network.transport = TransportMode::kHttp;
  network.http_long_poll_micros = 2'000;
  network.http_max_retries = 6;
  network.http_retry_backoff_micros = 100;
  // One frame per GET (the server always returns at least one), so the
  // seeded switch point lands BETWEEN frames instead of the whole stream
  // arriving in a single fetch.
  network.http_response_max_bytes = 1;
  auto original_manager = std::make_unique<ExchangeManager>(
      network, PageCodecOptions{PageCompression::kNone, true, true});
  auto original_service =
      std::make_unique<ExchangeHttpService>(original_manager.get());
  ASSERT_TRUE(original_service->Start().ok());
  auto replica_manager = std::make_unique<ExchangeManager>(
      network, PageCodecOptions{PageCompression::kNone, true, true});
  auto replica_service =
      std::make_unique<ExchangeHttpService>(replica_manager.get());
  ASSERT_TRUE(replica_service->Start().ok());

  constexpr int kFrames = 10;
  constexpr int kRows = 8;
  // Capacity above the full stream: the race under test is the consumer's
  // switch, not producer backpressure.
  constexpr int64_t kCapacity = 1 << 20;

  for (int iter = 0; iter < kIterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    std::mt19937_64 rng(static_cast<uint64_t>(iter) * 7919 + 13);
    const std::string query = "spec_" + std::to_string(iter);

    // The same (query, fragment, task) exists at generation 0 on the
    // original fabric and generation 1 on the replica's — exactly how a
    // speculative task pair looks from the consumer's seat.
    original_manager->CreateOutputBuffers(query, kFragment, /*task=*/0,
                                  /*partitions=*/1, kCapacity,
                                  /*generation=*/0);
    replica_manager->CreateOutputBuffers(query, kFragment, /*task=*/0,
                                         /*partitions=*/1, kCapacity,
                                         /*generation=*/1);
    for (int frame = 0; frame < kFrames; ++frame) {
      std::vector<int64_t> values;
      for (int row = 0; row < kRows; ++row) {
        values.push_back(frame * kRows + row);
      }
      PageCodec::Frame encoded =
          original_manager->codec().Encode(Page({MakeBigintBlock(values)}));
      ASSERT_TRUE(original_manager->GetBuffer({query, kFragment, 0, 0})
                      ->TryEnqueue(encoded));
      ASSERT_TRUE(replica_manager->GetBuffer({query, kFragment, 0, 0})
                      ->TryEnqueue(encoded));
    }
    original_manager->GetBuffer({query, kFragment, 0, 0})->NoMorePages();
    replica_manager->GetBuffer({query, kFragment, 0, 0})->NoMorePages();

    const bool replica_wins = (rng() & 1) != 0;
    // In [0, kFrames): at kFrames the original would complete first and
    // the race would (legitimately) settle without a switch.
    const int64_t switch_after = static_cast<int64_t>(rng() % kFrames);

    ExchangeHttpClient fetcher(manager_.get(), original_service->port(),
                               StreamId{query, kFragment, 0, 0},
                               /*generation=*/0);
    bool switched = false;
    int64_t delivered = 0;
    std::vector<int64_t> got;
    for (;;) {
      if (replica_wins && !switched && delivered >= switch_after) {
        fetcher.ResetForReplacement(replica_service->port(),
                                    /*generation=*/1);
        switched = true;
      }
      auto fetch = fetcher.Fetch();
      ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
      size_t offset = 0;
      int64_t index = 0;
      while (offset < fetch->body.size()) {
        auto page = original_manager->codec().Decode(fetch->body, &offset);
        ASSERT_TRUE(page.ok()) << page.status().ToString();
        // Leading skip_frames frames were delivered before the switch;
        // emitting them again would double-count.
        if (index++ < fetch->skip_frames) continue;
        const Block& column = *page->block(0);
        for (int64_t row = 0; row < column.size(); ++row) {
          got.push_back(column.GetValue(row).AsBigint());
        }
        ++delivered;
      }
      if (fetch->complete) {
        ASSERT_TRUE(fetcher.DeleteBuffer().ok());
        break;
      }
    }
    EXPECT_EQ(switched, replica_wins);

    std::vector<int64_t> expected;
    for (int64_t v = 0; v < kFrames * kRows; ++v) expected.push_back(v);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "lost or duplicated frames across the "
                             << (replica_wins ? "switch" : "no-switch")
                             << " at " << switch_after;

    // Loser teardown: the un-drained generation's buffers go away with
    // its query (the worker-side kill path), after which NOTHING may
    // remain on either fabric.
    original_manager->RemoveQuery(query);
    replica_manager->RemoveQuery(query);
    EXPECT_EQ(original_manager->TotalBufferedBytes(), 0);
    EXPECT_EQ(original_manager->TotalInflightBytes(), 0);
    EXPECT_EQ(original_manager->TotalRetainedBytes(), 0);
    EXPECT_EQ(replica_manager->TotalBufferedBytes(), 0);
    EXPECT_EQ(replica_manager->TotalInflightBytes(), 0);
    EXPECT_EQ(replica_manager->TotalRetainedBytes(), 0);
  }
  replica_service->Stop();
}

}  // namespace
}  // namespace presto
