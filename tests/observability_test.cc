#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "engine/observability_http.h"
#include "exchange/http/http_io.h"
#include "stats/trace.h"

namespace presto {
namespace {

// ---- Minimal JSON syntax checker ----
//
// The repo has no JSON parser; the endpoints only promise syntactic
// validity (Perfetto/python does the semantic reading), so a recursive
// descent acceptor is all the tests need.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    return checker.Value() && checker.AtEnd();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }
  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char c = text_[pos_];
        if (c == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !isxdigit(text_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(c) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(text_[pos_]) < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (isdigit(text_[pos_]) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        if (!String()) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
        if (!Value()) return false;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= text_.size() || text_[pos_] != '}') return false;
      ++pos_;
      return true;
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        if (!Value()) return false;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= text_.size() || text_[pos_] != ']') return false;
      ++pos_;
      return true;
    }
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- TraceRecorder unit tests ----

TEST(TraceRecorderTest, RecordsSpansAndInstantsInStartOrder) {
  TraceRecorder trace("q");
  int64_t t0 = trace.NowNanos();
  trace.RecordSpan("executor", "late", 1, 7, t0 + 1000, 50);
  trace.RecordSpan("executor", "early", 1, 7, t0, 50,
                   {{"level", "0"}});
  trace.RecordInstant("scheduler", "tick", 0, 0);
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "late");
  EXPECT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].second, "0");
  EXPECT_EQ(trace.dropped(), 0);
}

TEST(TraceRecorderTest, CapsEventsAndCountsDrops) {
  TraceRecorder trace("q", /*max_events=*/16);
  for (int i = 0; i < 100; ++i) {
    trace.RecordInstant("executor", "e" + std::to_string(i), 1, 0);
  }
  EXPECT_LE(trace.Snapshot().size(), 16u);
  EXPECT_EQ(trace.recorded() + trace.dropped(), 100);
  EXPECT_GE(trace.dropped(), 84);
  // The drop counter is surfaced in the exported JSON.
  std::string json = trace.ToChromeTraceJson();
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(TraceRecorderTest, ManyThreadsRecordWithoutLoss) {
  TraceRecorder trace("q");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < 500; ++i) {
        trace.RecordSpan("executor", "quantum", 1, t, i * 10, 5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(trace.Snapshot().size(), 4000u);
  EXPECT_EQ(trace.dropped(), 0);
}

TEST(TraceRecorderTest, JsonEscapesHostileStrings) {
  TraceRecorder trace("q\"\\\n");
  trace.RecordInstant("executor", "quote\"back\\slash\nnewline\ttab", 0, 0,
                      {{"k\"", "v\x01"}});
  std::string json = trace.ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(TraceRegistryTest, LookupIsWeak) {
  TraceRegistry registry;
  auto recorder = std::make_shared<TraceRecorder>("query_0");
  registry.Register("query_0", recorder);
  EXPECT_EQ(registry.Lookup("query_0"), recorder);
  EXPECT_EQ(registry.Lookup("missing"), nullptr);
  recorder.reset();
  // The registry held only a weak reference: a scrape after teardown gets
  // null, never a dangling pointer.
  EXPECT_EQ(registry.Lookup("query_0"), nullptr);
}

// ---- End-to-end trace + endpoint tests ----

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 2;
    options.cluster.executor.threads = 2;
    options.cluster.network.transport = TransportMode::kHttp;
    engine_ = std::make_unique<PrestoEngine>(options);
    engine_->catalog().Register(
        std::make_shared<TpchConnector>("tpch", 0.01));
    engine_->catalog().SetDefault("tpch");
  }

  // TPC-H-style distributed join: two scan fragments shuffling into a join
  // + aggregation fragment, so the trace crosses every layer.
  std::string RunJoin() {
    auto result = engine_->Execute(
        "SELECT c.mktsegment, count(*) FROM orders o "
        "JOIN customer c ON o.custkey = c.custkey GROUP BY c.mktsegment");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    auto rows = result->FetchAllRows();
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return result->query_id();
  }

  HttpResponse Get(ObservabilityHttpService& service,
                   const std::string& path) {
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    return service.Handle(request);
  }

  std::unique_ptr<PrestoEngine> engine_;
};

TEST_F(ObservabilityTest, ChromeTraceJsonCoversAllLayers) {
  std::string query_id = RunJoin();
  auto json = engine_->QueryTraceJson(query_id);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(JsonChecker::Valid(*json));
  // Perfetto-loadable scaffolding.
  EXPECT_NE(json->find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json->find("\"process_name\""), std::string::npos);
  EXPECT_NE(json->find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json->find("\"ph\":\"X\""), std::string::npos);
  // Spans from >= 4 layers of the engine.
  for (const char* category :
       {"\"cat\":\"coordinator\"", "\"cat\":\"scheduler\"",
        "\"cat\":\"executor\"", "\"cat\":\"exchange\""}) {
    EXPECT_NE(json->find(category), std::string::npos) << category;
  }
  // Consumer-side fetch spans carry the producer's trace id from the
  // x-presto-trace response header.
  EXPECT_NE(json->find("\"http_fetch\""), std::string::npos);
  EXPECT_NE(json->find("\"peer_trace\":\"" + query_id + "\""),
            std::string::npos);
  // Executor quanta appear with their MLFQ level.
  EXPECT_NE(json->find("\"quantum\""), std::string::npos);
  EXPECT_NE(json->find("\"level\""), std::string::npos);
}

TEST_F(ObservabilityTest, ExplainAnalyzeVerboseAppendsTimeline) {
  auto plain = engine_->ExplainAnalyze(
      "EXPLAIN ANALYZE SELECT count(*) FROM orders");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->find("Timeline:"), std::string::npos);

  auto verbose = engine_->ExplainAnalyze(
      "EXPLAIN ANALYZE VERBOSE SELECT count(*) FROM orders");
  ASSERT_TRUE(verbose.ok()) << verbose.status().ToString();
  EXPECT_NE(verbose->find("Timeline:"), std::string::npos);
  EXPECT_NE(verbose->find("quantum"), std::string::npos);

  // ExecuteAndFetch routes the verbose form too.
  auto rows = engine_->ExecuteAndFetch(
      "EXPLAIN ANALYZE VERBOSE SELECT count(*) FROM orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
}

TEST_F(ObservabilityTest, MetricsEndpointIsPrometheusText) {
  RunJoin();
  ObservabilityHttpService service(engine_.get());
  HttpResponse response = Get(service, "/v1/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers["content-type"].find("text/plain"),
            std::string::npos);
  const std::string& body = response.body;
  // Histogram families render _bucket/_sum/_count with le labels.
  EXPECT_NE(body.find("# TYPE presto_executor_quantum_seconds histogram"),
            std::string::npos);
  EXPECT_NE(body.find("presto_executor_quantum_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(body.find("presto_executor_quantum_seconds_count"),
            std::string::npos);
  EXPECT_NE(body.find("presto_exchange_http_request_seconds_sum"),
            std::string::npos);
  // The MLFQ quanta family is labeled by level, announced exactly once.
  EXPECT_NE(body.find("presto_executor_quanta_total{level=\"0\"}"),
            std::string::npos);
  EXPECT_NE(body.find("presto_executor_quanta_total{level=\"4\"}"),
            std::string::npos);
  size_t first = body.find("# TYPE presto_executor_quanta_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(body.find("# TYPE presto_executor_quanta_total", first + 1),
            std::string::npos);
}

TEST_F(ObservabilityTest, MetricsExposeLabeledRecoveryFamilies) {
  ObservabilityHttpService service(engine_.get());
  HttpResponse response = Get(service, "/v1/metrics");
  ASSERT_EQ(response.status, 200);
  const std::string& body = response.body;
  // Recovery and speculation counters carry the trace-instant name they
  // cross-reference in the query's Chrome trace timeline (DESIGN.md §16),
  // so a dashboard can link a counter bump to its trace marker.
  EXPECT_NE(
      body.find("presto_task_retries_total{trace_instant=\"task_recovery\"}"),
      std::string::npos);
  EXPECT_NE(body.find("presto_task_speculations_total{"
                      "trace_instant=\"task_speculate\"}"),
            std::string::npos);
  EXPECT_NE(body.find("presto_speculation_wins_total{"
                      "trace_instant=\"speculation_win\"}"),
            std::string::npos);
  // Trace-shipping instruments are labeled per hosting worker.
  EXPECT_NE(body.find("presto_trace_shipped_spans_total{worker=\"w0\"}"),
            std::string::npos);
  EXPECT_NE(body.find("presto_trace_dropped_spans_total{worker=\"w1\"}"),
            std::string::npos);
}

TEST_F(ObservabilityTest, ClusterMetricsServeWithoutRemoteWorkers) {
  // In-process mode has no worker metrics endpoints to scrape; the
  // federation endpoint still serves the coordinator's own families plus
  // roll-ups reporting an empty scrape.
  ObservabilityHttpService service(engine_.get());
  HttpResponse response = Get(service, "/v1/cluster/metrics");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.headers["content-type"].find("text/plain"),
            std::string::npos);
  EXPECT_NE(response.body.find("presto_cluster_alive_workers"),
            std::string::npos);
  EXPECT_NE(response.body.find("\npresto_cluster_scraped_workers 0"),
            std::string::npos);
  EXPECT_NE(response.body.find("\npresto_cluster_scrape_failures 0"),
            std::string::npos);
}

TEST_F(ObservabilityTest, QueryInfoIncludesTaskProgress) {
  ObservabilityHttpService service(engine_.get());
  auto result = engine_->Execute(
      "SELECT c.mktsegment, count(*) FROM orders o "
      "JOIN customer c ON o.custkey = c.custkey GROUP BY c.mktsegment");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string query_id = result->query_id();

  // Tasks exist as soon as Execute returns, so the live snapshot carries
  // per-task progress rows: fragment/task coordinates, the worker the
  // attempt runs on, its retry generation, rows produced, and staleness.
  HttpResponse live = Get(service, "/v1/query/" + query_id);
  ASSERT_EQ(live.status, 200);
  EXPECT_TRUE(JsonChecker::Valid(live.body)) << live.body;
  EXPECT_NE(live.body.find("\"taskProgress\""), std::string::npos);
  EXPECT_NE(live.body.find("\"rowsOut\""), std::string::npos);
  EXPECT_NE(live.body.find("\"generation\""), std::string::npos);
  EXPECT_NE(live.body.find("\"progressAgeMicros\""), std::string::npos);
  EXPECT_NE(live.body.find("\"worker\""), std::string::npos);

  auto rows = result->FetchAllRows();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();

  // Progress is a live-query feature: once finalized the endpoint still
  // serves valid JSON with the (now empty) list.
  HttpResponse done = Get(service, "/v1/query/" + query_id);
  ASSERT_EQ(done.status, 200);
  EXPECT_TRUE(JsonChecker::Valid(done.body)) << done.body;
  EXPECT_NE(done.body.find("\"taskProgress\""), std::string::npos);
}

TEST_F(ObservabilityTest, QueryEndpointsServeJson) {
  std::string query_id = RunJoin();
  ObservabilityHttpService service(engine_.get());

  HttpResponse list = Get(service, "/v1/query");
  EXPECT_EQ(list.status, 200);
  EXPECT_TRUE(JsonChecker::Valid(list.body)) << list.body;
  EXPECT_NE(list.body.find("\"" + query_id + "\""), std::string::npos);

  HttpResponse info = Get(service, "/v1/query/" + query_id);
  EXPECT_EQ(info.status, 200);
  EXPECT_TRUE(JsonChecker::Valid(info.body)) << info.body;
  EXPECT_NE(info.body.find("\"state\":\"FINISHED\""), std::string::npos);
  EXPECT_NE(info.body.find("\"numTasks\""), std::string::npos);

  HttpResponse trace = Get(service, "/v1/query/" + query_id + "/trace");
  EXPECT_EQ(trace.status, 200);
  EXPECT_TRUE(JsonChecker::Valid(trace.body));
  EXPECT_NE(trace.body.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObservabilityTest, EndpointsRejectUnknownAndMalformed) {
  ObservabilityHttpService service(engine_.get());
  EXPECT_EQ(Get(service, "/v1/query/no_such_query").status, 404);
  EXPECT_EQ(Get(service, "/v1/query/no_such_query/trace").status, 404);
  EXPECT_EQ(Get(service, "/v1/query/../../etc/passwd").status, 404);
  EXPECT_EQ(Get(service, "/v1/query/q0/trace/extra").status, 404);
  EXPECT_EQ(Get(service, "/v1/nope").status, 404);
  EXPECT_EQ(Get(service, "/").status, 404);
  HttpRequest post;
  post.method = "POST";
  post.path = "/v1/metrics";
  EXPECT_EQ(service.Handle(post).status, 405);
}

TEST_F(ObservabilityTest, ServesOverRealSocket) {
  std::string query_id = RunJoin();
  ASSERT_TRUE(engine_->StartObservability().ok());
  int port = engine_->observability_port();
  ASSERT_GT(port, 0);
  auto conn = ConnectToLoopback(port, /*timeout_micros=*/2'000'000);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/query/" + query_id + "/trace";
  ASSERT_TRUE((*conn)->WriteRequest(request).ok());
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_TRUE(JsonChecker::Valid(response->body));
  engine_->StopObservability();
  EXPECT_EQ(engine_->observability_port(), -1);
}

TEST_F(ObservabilityTest, ConcurrentScrapesSurviveQueryTeardown) {
  ObservabilityHttpService service(engine_.get());
  std::atomic<bool> stop{false};
  // Scrapers hammer every endpoint while queries start and finish; weak
  // trace references and tracker snapshots make the races benign.
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      int i = 0;
      while (!stop.load()) {
        Get(service, "/v1/metrics");
        Get(service, "/v1/query");
        Get(service, "/v1/query/query_" + std::to_string(i % 8));
        Get(service, "/v1/query/query_" + std::to_string(i % 8) + "/trace");
        ++i;
      }
    });
  }
  for (int i = 0; i < 4; ++i) {
    auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM region");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  }
  stop.store(true);
  for (auto& scraper : scrapers) scraper.join();
}

// ---- EventListener dispatch order ----

class RecordingListener : public EventListener {
 public:
  explicit RecordingListener(std::vector<std::string>* log,
                             const std::string& tag)
      : log_(log), tag_(tag) {}

  void QueryCreated(const QueryCreatedEvent& event) override {
    log_->push_back(tag_ + ":created:" + event.query_id);
  }
  void QueryCompleted(const QueryCompletedEvent& event) override {
    log_->push_back(tag_ + ":completed:" + event.query_id);
  }

 private:
  std::vector<std::string>* log_;
  std::string tag_;
};

TEST_F(ObservabilityTest, EventListenersDispatchInRegistrationOrder) {
  std::vector<std::string> log;
  engine_->AddEventListener(std::make_shared<RecordingListener>(&log, "a"));
  engine_->AddEventListener(std::make_shared<RecordingListener>(&log, "b"));
  auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM region");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(log.size(), 4u);
  // Created fires before Completed, and listeners run in registration
  // order within each event.
  EXPECT_EQ(log[0].substr(0, 10), "a:created:");
  EXPECT_EQ(log[1].substr(0, 10), "b:created:");
  EXPECT_EQ(log[2].substr(0, 12), "a:completed:");
  EXPECT_EQ(log[3].substr(0, 12), "b:completed:");
  // Both listeners saw the same query.
  EXPECT_EQ(log[0].substr(10), log[1].substr(10));
}

}  // namespace
}  // namespace presto
