#include <gtest/gtest.h>

#include "connectors/memcon/memory_connector.h"
#include "connectors/raptor/raptor_connector.h"
#include "fragment/fragmenter.h"
#include "optimizer/optimizer.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "vector/block_builder.h"

namespace presto {
namespace {

class FragmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto mem = std::make_shared<MemoryConnector>("memory");
    RowSchema t;
    t.Add("a", TypeKind::kBigint);
    t.Add("b", TypeKind::kBigint);
    std::vector<int64_t> a, b;
    for (int64_t i = 0; i < 100; ++i) {
      a.push_back(i);
      b.push_back(i % 10);
    }
    ASSERT_TRUE(
        mem->CreateTable("t", t, {Page({MakeBigintBlock(a),
                                        MakeBigintBlock(b)})})
            .ok());
    ASSERT_TRUE(
        mem->CreateTable("u", t, {Page({MakeBigintBlock(a),
                                        MakeBigintBlock(b)})})
            .ok());
    catalog_.Register(mem);

    auto raptor = std::make_shared<RaptorConnector>("raptor");
    ASSERT_TRUE(raptor->CreateTable("rt", t, "a", 4).ok());
    ASSERT_TRUE(raptor->CreateTable("ru", t, "a", 4).ok());
    std::vector<Page> pages = {Page({MakeBigintBlock(a),
                                     MakeBigintBlock(b)})};
    ASSERT_TRUE(raptor->LoadTable("rt", pages).ok());
    ASSERT_TRUE(raptor->LoadTable("ru", pages).ok());
    catalog_.Register(raptor);
  }

  Result<FragmentedPlan> Fragment(const std::string& sql) {
    PRESTO_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                            sql::ParseStatement(sql));
    Planner planner(&catalog_);
    PRESTO_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.Plan(*stmt));
    Optimizer optimizer(&catalog_);
    PRESTO_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
    Fragmenter fragmenter;
    return fragmenter.Fragment(plan);
  }

  static int Count(const FragmentedPlan& plan, PartitioningKind kind) {
    int n = 0;
    for (const auto& f : plan.fragments) {
      if (f.partitioning == kind) ++n;
    }
    return n;
  }

  Catalog catalog_;
};

TEST_F(FragmentTest, SimpleScanHasSourceAndOutputFragments) {
  auto plan = Fragment("SELECT a FROM memory.t WHERE a > 5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 2u);
  EXPECT_EQ(plan->fragments[plan->root_id].partitioning,
            PartitioningKind::kSingle);
  EXPECT_EQ(Count(*plan, PartitioningKind::kSource), 1);
  // Source fragment routes to the root via gather.
  for (const auto& f : plan->fragments) {
    if (f.partitioning == PartitioningKind::kSource) {
      EXPECT_EQ(f.output_kind, ExchangeKind::kGather);
      EXPECT_EQ(f.consumer, plan->root_id);
    }
  }
}

TEST_F(FragmentTest, GroupByBecomesPartialFinal) {
  auto plan = Fragment("SELECT b, count(*) FROM memory.t GROUP BY b");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("Aggregate(Partial)"), std::string::npos);
  EXPECT_NE(text.find("Aggregate(Final)"), std::string::npos);
  EXPECT_EQ(Count(*plan, PartitioningKind::kHash), 1);
}

TEST_F(FragmentTest, GlobalAggGathersToSingle) {
  auto plan = Fragment("SELECT count(*) FROM memory.t");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("Aggregate(Partial)"), std::string::npos);
  // Final aggregation runs in a single-task fragment behind a gather.
  EXPECT_EQ(Count(*plan, PartitioningKind::kHash), 0);
}

TEST_F(FragmentTest, PartitionedJoinRepartitionsBothSides) {
  auto plan = Fragment(
      "SELECT count(*) FROM memory.t JOIN memory.u ON t.a = u.a");
  ASSERT_TRUE(plan.ok());
  int repartitions = 0;
  for (const auto& f : plan->fragments) {
    if (f.output_kind == ExchangeKind::kRepartition) ++repartitions;
  }
  // The small build side becomes broadcast under CBO; force count via text.
  std::string text = plan->ToString();
  bool broadcast = text.find("broadcast") != std::string::npos;
  EXPECT_TRUE(repartitions == 2 || broadcast) << text;
}

TEST_F(FragmentTest, ColocatedJoinSharesOneFragment) {
  auto plan = Fragment(
      "SELECT count(*) FROM raptor.rt JOIN raptor.ru ON rt.a = ru.a");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(Count(*plan, PartitioningKind::kColocated), 1);
  std::string text = plan->ToString();
  EXPECT_EQ(text.find("repartition"), std::string::npos) << text;
  // Both scans appear in the colocated fragment.
  for (const auto& f : plan->fragments) {
    if (f.partitioning == PartitioningKind::kColocated) {
      std::string ftext = PlanToString(*f.root);
      EXPECT_NE(ftext.find("raptor.rt"), std::string::npos);
      EXPECT_NE(ftext.find("raptor.ru"), std::string::npos);
    }
  }
}

TEST_F(FragmentTest, AggregationOnBucketColumnElidesShuffle) {
  auto plan = Fragment(
      "SELECT rt.a, count(*) FROM raptor.rt JOIN raptor.ru ON rt.a = ru.a "
      "GROUP BY rt.a");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  // Single-step aggregation inside the colocated fragment: no
  // partial/final pair, no repartition.
  EXPECT_EQ(text.find("Aggregate(Partial)"), std::string::npos) << text;
  EXPECT_NE(text.find("Aggregate(Single)"), std::string::npos) << text;
  EXPECT_EQ(text.find("repartition"), std::string::npos) << text;
}

TEST_F(FragmentTest, TopNSplitsIntoPartialFinal) {
  auto plan = Fragment("SELECT a FROM memory.t ORDER BY a LIMIT 5");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("TopN(Partial)"), std::string::npos);
  EXPECT_NE(text.find("TopN["), std::string::npos);
}

TEST_F(FragmentTest, LimitSplitsIntoPartialFinal) {
  auto plan = Fragment("SELECT a FROM memory.t LIMIT 7");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("Limit(Partial)"), std::string::npos);
}

TEST_F(FragmentTest, CtasWriterStageIsRoundRobin) {
  auto plan = Fragment("CREATE TABLE memory.out AS SELECT a FROM memory.t");
  ASSERT_TRUE(plan.ok());
  bool found = false;
  for (const auto& f : plan->fragments) {
    if (f.output_kind == ExchangeKind::kRoundRobin) found = true;
  }
  EXPECT_TRUE(found) << plan->ToString();
}

TEST_F(FragmentTest, BuildDependenciesRecorded) {
  auto plan = Fragment(
      "SELECT count(*) FROM memory.t JOIN memory.u ON t.a = u.a");
  ASSERT_TRUE(plan.ok());
  // The fragment containing the join must list the build-side producer(s)
  // as phased-scheduling dependencies.
  bool any_deps = false;
  for (const auto& f : plan->fragments) {
    if (!f.build_dependencies.empty()) any_deps = true;
  }
  EXPECT_TRUE(any_deps) << plan->ToString();
}

TEST_F(FragmentTest, WindowRepartitionsOnPartitionKeys) {
  auto plan = Fragment(
      "SELECT a, row_number() OVER (PARTITION BY b ORDER BY a) FROM "
      "memory.t");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString();
  EXPECT_NE(text.find("Window"), std::string::npos);
  EXPECT_NE(text.find("repartition"), std::string::npos) << text;
}

}  // namespace
}  // namespace presto
