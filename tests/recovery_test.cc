// Unit tests for the task-recovery building blocks (ISSUE 7): split-target
// selection around dead workers, the restart-set fixpoint, the liveness
// tracker's first-heartbeat grace, and the heartbeat sender's RTT
// reporting — plus the straggler candidate selection that speculation
// (ISSUE 9) builds on. The end-to-end kill -9 recovery and speculation
// paths live in process_cluster_test.cc; these tests pin the pieces in
// isolation.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exchange/http/http_server.h"
#include "schedule/coordinator.h"
#include "schedule/task_recovery.h"
#include "worker/liveness.h"
#include "worker/task_client.h"

namespace presto {
namespace {

// A TaskClient stub exposing exactly what ChooseSplitTarget consumes: the
// hosting worker's liveness and an optional reported queue depth.
class StubTaskClient final : public TaskClient {
 public:
  StubTaskClient(bool alive, std::optional<size_t> queue_size)
      : alive_(alive), queue_size_(queue_size) {}

  const TaskSpec& spec() const override { return spec_; }
  Status Launch(std::function<void(Status)>) override {
    return Status::OK();
  }
  std::optional<size_t> SplitQueueSize(int) const override {
    return queue_size_;
  }
  void AddSplit(int, const SplitPtr&, Connector*) override {}
  void NoMoreSplits(int) override {}
  Status FlushSplits() override { return Status::OK(); }
  double OutputUtilization() const override { return 0.0; }
  void SetActiveWriters(int) override {}
  TaskStats CollectStats() const override { return {}; }
  int64_t cpu_nanos() const override { return 0; }
  int64_t peak_user_memory_bytes() const override { return 0; }
  bool worker_alive() const override { return alive_; }
  void Abort() override {}
  void ReleaseResources() override {}

 private:
  TaskSpec spec_;
  bool alive_;
  std::optional<size_t> queue_size_;
};

std::shared_ptr<TaskClient> Stub(bool alive,
                                 std::optional<size_t> queue_size) {
  return std::make_shared<StubTaskClient>(alive, queue_size);
}

TEST(ChooseSplitTargetTest, PicksShortestReportedQueue) {
  std::vector<std::shared_ptr<TaskClient>> tasks = {
      Stub(true, 5), Stub(true, 2), Stub(true, 9)};
  auto target = ChooseSplitTarget(tasks, /*node_id=*/0);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, 1);
}

// Regression (ISSUE 7): with every queue size unreported, the old code left
// `best` at 0 and silently funneled splits to task 0 even when its worker
// was dead. A dead task must never be chosen.
TEST(ChooseSplitTargetTest, NeverPicksTaskOnDeadWorker) {
  std::vector<std::shared_ptr<TaskClient>> tasks = {
      Stub(false, std::nullopt), Stub(true, std::nullopt)};
  auto target = ChooseSplitTarget(tasks, /*node_id=*/0);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, 1);

  // Dead task 0 reporting a tempting queue size must still lose.
  tasks = {Stub(false, 0), Stub(true, 100)};
  target = ChooseSplitTarget(tasks, /*node_id=*/0);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, 1);
}

TEST(ChooseSplitTargetTest, FailsFastWhenEveryWorkerIsDead) {
  std::vector<std::shared_ptr<TaskClient>> tasks = {
      Stub(false, 1), Stub(false, std::nullopt)};
  auto target = ChooseSplitTarget(tasks, /*node_id=*/3);
  ASSERT_FALSE(target.ok());
  EXPECT_EQ(target.status().code(), StatusCode::kIOError);
}

TEST(ChooseSplitTargetTest, UnreportedQueueOnlyServesAsFallback) {
  // Task 1 has not reported a depth yet; task 2 has. The reported depth
  // wins, the unreported task is only a last resort.
  std::vector<std::shared_ptr<TaskClient>> tasks = {
      Stub(false, std::nullopt), Stub(true, std::nullopt), Stub(true, 7)};
  auto target = ChooseSplitTarget(tasks, /*node_id=*/0);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, 2);
}

// ---- ComputeRestartSet ----
//
// Fragment graph used below: fragment 1 (2 tasks) feeds fragment 0 (the
// root, 1 task). inputs_of[0] = {1}.

TEST(ComputeRestartSetTest, DeadSlotAndItsConsumersRestart) {
  std::vector<std::vector<int>> placement = {{0}, {0, 1}};
  std::vector<std::vector<bool>> finished = {{false}, {false, false}};
  std::vector<std::vector<int>> inputs_of = {{1}, {}};
  auto restart = ComputeRestartSet(placement, finished, inputs_of,
                                   /*root_fragment=*/0, /*root_needed=*/true,
                                   /*dead_worker=*/1);
  // (1,1) died; the unfinished root consuming it is collateral. (1,0) is
  // alive, unfinished, and has no restarting inputs — it keeps running.
  ASSERT_EQ(restart.size(), 2u);
  EXPECT_EQ(restart[0], std::make_pair(0, 0));
  EXPECT_EQ(restart[1], std::make_pair(1, 1));
}

TEST(ComputeRestartSetTest, FinishedConsumersPruneDeadProducers) {
  // Every consumer of fragment 1 finished and the root stream is done:
  // nobody needs the dead worker's output, so nothing restarts.
  std::vector<std::vector<int>> placement = {{0}, {0, 1}};
  std::vector<std::vector<bool>> finished = {{true}, {true, false}};
  std::vector<std::vector<int>> inputs_of = {{1}, {}};
  auto restart = ComputeRestartSet(placement, finished, inputs_of,
                                   /*root_fragment=*/0, /*root_needed=*/false,
                                   /*dead_worker=*/1);
  EXPECT_TRUE(restart.empty());
}

TEST(ComputeRestartSetTest, FinishedVictimRestartsWhenOutputStillNeeded) {
  // The dead worker's task had FINISHED — but its retained replay frames
  // died with the process, and the root still needs them.
  std::vector<std::vector<int>> placement = {{0}, {0, 1}};
  std::vector<std::vector<bool>> finished = {{false}, {false, true}};
  std::vector<std::vector<int>> inputs_of = {{1}, {}};
  auto restart = ComputeRestartSet(placement, finished, inputs_of,
                                   /*root_fragment=*/0, /*root_needed=*/true,
                                   /*dead_worker=*/1);
  ASSERT_EQ(restart.size(), 2u);
  EXPECT_EQ(restart[0], std::make_pair(0, 0));
  EXPECT_EQ(restart[1], std::make_pair(1, 1));
}

TEST(ComputeRestartSetTest, CollateralPropagatesTransitively) {
  // Chain: 2 -> 1 -> 0(root). The dead leaf drags every unfinished
  // downstream consumer with it, across two hops.
  std::vector<std::vector<int>> placement = {{0}, {0}, {1}};
  std::vector<std::vector<bool>> finished = {{false}, {false}, {false}};
  std::vector<std::vector<int>> inputs_of = {{1}, {2}, {}};
  auto restart = ComputeRestartSet(placement, finished, inputs_of,
                                   /*root_fragment=*/0, /*root_needed=*/true,
                                   /*dead_worker=*/1);
  ASSERT_EQ(restart.size(), 3u);
  EXPECT_EQ(restart[0], std::make_pair(0, 0));
  EXPECT_EQ(restart[1], std::make_pair(1, 0));
  EXPECT_EQ(restart[2], std::make_pair(2, 0));
}

// ---- PickStragglers (ISSUE 9) ----

TaskProgressSample Sample(int fragment, int task, double progress,
                          int64_t stall_micros, bool speculatable = true) {
  TaskProgressSample sample;
  sample.fragment = fragment;
  sample.task = task;
  sample.progress = progress;
  sample.stall_micros = stall_micros;
  sample.speculatable = speculatable;
  return sample;
}

TEST(PickStragglersTest, FlagsClearStragglerSlowestFirst) {
  SpeculationPolicy policy;  // quantile 0.5, min_samples 2, budget 2
  std::vector<TaskProgressSample> samples = {
      Sample(0, 0, 100, 0), Sample(0, 1, 100, 0), Sample(0, 2, 3, 50'000)};
  auto picked = PickStragglers(samples, policy, /*live_workers=*/3);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], std::make_pair(0, 2));
}

TEST(PickStragglersTest, FewerThanMinSamplesSelectsNobody) {
  SpeculationPolicy policy;
  policy.min_samples = 3;
  // Only two samples in the fragment: no distribution to judge against.
  std::vector<TaskProgressSample> samples = {Sample(0, 0, 100, 0),
                                             Sample(0, 1, 0, 50'000)};
  EXPECT_TRUE(PickStragglers(samples, policy, 3).empty());
}

TEST(PickStragglersTest, AllEqualProgressSelectsNobody) {
  // Startup: everyone at zero must not look like everyone straggling —
  // the strict-below-threshold rule keeps an all-equal fragment quiet.
  SpeculationPolicy policy;
  std::vector<TaskProgressSample> samples = {
      Sample(0, 0, 0, 50'000), Sample(0, 1, 0, 50'000),
      Sample(0, 2, 0, 50'000)};
  EXPECT_TRUE(PickStragglers(samples, policy, 3).empty());
}

TEST(PickStragglersTest, SingleLiveWorkerSelectsNobody) {
  // A replica must run on a DIFFERENT worker; with one live worker there
  // is nowhere to put it.
  SpeculationPolicy policy;
  std::vector<TaskProgressSample> samples = {Sample(0, 0, 100, 0),
                                             Sample(0, 1, 0, 50'000)};
  EXPECT_TRUE(PickStragglers(samples, policy, /*live_workers=*/1).empty());
}

TEST(PickStragglersTest, BudgetClampsToSlowestCandidates) {
  SpeculationPolicy policy;
  policy.max_speculative_tasks = 2;
  policy.quantile = 0.9;
  std::vector<TaskProgressSample> samples = {
      Sample(0, 0, 100, 0),     Sample(0, 1, 5, 50'000),
      Sample(0, 2, 1, 50'000),  Sample(0, 3, 3, 50'000),
      Sample(0, 4, 90, 0)};
  auto picked = PickStragglers(samples, policy, 3);
  // Three tasks sit below the 90th-percentile threshold; the budget keeps
  // the two slowest, slowest first.
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], std::make_pair(0, 2));
  EXPECT_EQ(picked[1], std::make_pair(0, 3));
}

TEST(PickStragglersTest, NonSpeculatableSlotAnchorsButIsNeverPicked) {
  // A slot that already has a racing replica (speculatable = false) must
  // never get a second one — but its progress still shapes the quantile,
  // and a FINISHED sibling's full progress still exposes the straggler.
  SpeculationPolicy policy;
  std::vector<TaskProgressSample> samples = {
      Sample(0, 0, 0, 50'000, /*speculatable=*/false),
      Sample(0, 1, 100, 0, /*speculatable=*/false)};
  EXPECT_TRUE(PickStragglers(samples, policy, 3).empty());

  samples = {Sample(0, 0, 0, 50'000, /*speculatable=*/true),
             Sample(0, 1, 100, 0, /*speculatable=*/false)};
  auto picked = PickStragglers(samples, policy, 3);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], std::make_pair(0, 0));
}

TEST(PickStragglersTest, StallBelowMinimumIsNotFlagged) {
  SpeculationPolicy policy;
  policy.min_stall_micros = 100'000;
  std::vector<TaskProgressSample> samples = {Sample(0, 0, 100, 0),
                                             Sample(0, 1, 0, 99'999)};
  EXPECT_TRUE(PickStragglers(samples, policy, 3).empty());
  samples[1].stall_micros = 100'000;
  auto picked = PickStragglers(samples, policy, 3);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], std::make_pair(0, 1));
}

TEST(PickStragglersTest, FragmentsAreJudgedIndependently) {
  // Fragment 1's fast tasks must not make fragment 0's slow-but-uniform
  // tasks look like stragglers: the quantile is per fragment.
  SpeculationPolicy policy;
  policy.max_speculative_tasks = 4;
  std::vector<TaskProgressSample> samples = {
      Sample(0, 0, 2, 50'000),  Sample(0, 1, 2, 50'000),
      Sample(1, 0, 1000, 0),    Sample(1, 1, 7, 50'000)};
  auto picked = PickStragglers(samples, policy, 3);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], std::make_pair(1, 1));
}

// ---- WorkerLivenessTracker first-heartbeat grace ----

TEST(WorkerLivenessTest, UnregisteredWorkersStayPassive) {
  WorkerLivenessTracker tracker(/*timeout_micros=*/20'000);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(tracker.IsAlive(0));
  EXPECT_TRUE(tracker.IsAlive(42));
}

TEST(WorkerLivenessTest, RegisteredWorkersPassiveUntilTrackerActivates) {
  // Registration alone must not start any death clock: a cluster whose
  // heartbeat wiring never comes up (in-process tests) must never expire.
  WorkerLivenessTracker tracker(/*timeout_micros=*/20'000);
  tracker.RegisterWorker(0);
  tracker.RegisterWorker(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(tracker.IsAlive(0));
  EXPECT_TRUE(tracker.IsAlive(1));
}

// Regression (ISSUE 7): a worker killed before its very first heartbeat
// used to be immortal — IsAlive only consulted last-heartbeat times. Once
// heartbeats are demonstrably flowing (any worker beat), a registered
// worker that stays silent past the grace window is dead.
TEST(WorkerLivenessTest, NeverHeartbeatedWorkerDiesAfterGrace) {
  WorkerLivenessTracker tracker(/*timeout_micros=*/20'000);
  tracker.RegisterWorker(0);
  tracker.RegisterWorker(1);
  tracker.Heartbeat(0, /*rtt_micros=*/100);  // activates the tracker
  EXPECT_TRUE(tracker.IsAlive(1));           // inside the grace window
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(tracker.IsAlive(1));
  EXPECT_FALSE(tracker.SeenHeartbeat(1));
}

TEST(WorkerLivenessTest, LateFirstHeartbeatRevives) {
  WorkerLivenessTracker tracker(/*timeout_micros=*/20'000);
  tracker.RegisterWorker(0);
  tracker.RegisterWorker(1);
  tracker.Heartbeat(0, 100);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_FALSE(tracker.IsAlive(1));
  tracker.Heartbeat(1, 100);  // better late than never
  EXPECT_TRUE(tracker.IsAlive(1));
}

TEST(WorkerLivenessTest, DeathListenerFiresForSilentRegisteredWorker) {
  WorkerLivenessTracker tracker(/*timeout_micros=*/20'000);
  tracker.RegisterWorker(0);
  tracker.RegisterWorker(1);

  std::mutex mu;
  std::vector<int> dead;
  int token = tracker.AddDeathListener([&](int worker) {
    std::lock_guard<std::mutex> lock(mu);
    dead.push_back(worker);
  });

  tracker.Heartbeat(0, 100);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool saw_one = false;
  while (std::chrono::steady_clock::now() < deadline && !saw_one) {
    {
      std::lock_guard<std::mutex> lock(mu);
      for (int w : dead) saw_one = saw_one || w == 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  tracker.RemoveDeathListener(token);
  EXPECT_TRUE(saw_one);
}

// ---- HeartbeatSender ----

TEST(HeartbeatSenderTest, ReportsPositiveRttAfterFirstBeat) {
  // Regression (ISSUE 7): the first beat used to leave last_rtt_micros_
  // at 0 (and a sub-microsecond loopback round trip would keep it there),
  // so the coordinator never saw an RTT sample.
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.status = request.path == "/v1/heartbeat" ? 200 : 404;
    response.reason = response.status == 200 ? "OK" : "Not Found";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  HeartbeatSender sender(server.port(), /*worker_id=*/7,
                         /*interval_micros=*/20'000);
  sender.Start();
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline && sender.sent() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sender.Stop();
  EXPECT_GE(sender.sent(), 2);
  EXPECT_GE(sender.last_rtt_micros(), 1);
  server.Stop();
}

TEST(HeartbeatSenderTest, NonPositiveIntervalFallsBackToDefault) {
  // Regression (ISSUE 7): interval 0 used to busy-spin the loop AND zero
  // the connect timeout (interval * 4), so every beat failed instantly.
  // With the fallback the first beat still goes out and succeeds.
  HttpServer server([](const HttpRequest&) {
    HttpResponse response;
    response.status = 200;
    response.reason = "OK";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  HeartbeatSender sender(server.port(), /*worker_id=*/7,
                         /*interval_micros=*/0);
  sender.Start();
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline && sender.sent() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sender.Stop();
  EXPECT_GE(sender.sent(), 1);
  EXPECT_EQ(sender.failed(), 0);
  server.Stop();
}

}  // namespace
}  // namespace presto
