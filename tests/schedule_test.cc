#include <gtest/gtest.h>

#include <thread>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"

namespace presto {
namespace {

std::unique_ptr<PrestoEngine> MakeEngine(
    std::function<void(EngineOptions*)> tweak = nullptr) {
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  if (tweak) tweak(&options);
  auto engine = std::make_unique<PrestoEngine>(options);
  engine->catalog().Register(std::make_shared<TpchConnector>("tpch", 1.0));
  engine->catalog().SetDefault("tpch");
  return engine;
}

TEST(ScheduleTest, ClientCancellationStopsQuery) {
  auto engine = MakeEngine();
  auto result = engine->Execute("SELECT * FROM lineitem");
  ASSERT_TRUE(result.ok());
  // Read one page, then cancel.
  auto first = result->Next();
  ASSERT_TRUE(first.ok());
  result->Cancel();
  // Further reads surface the cancellation (or drain quickly).
  for (int i = 0; i < 100; ++i) {
    auto next = result->Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kCancelled);
      break;
    }
    if (!next->has_value()) break;
  }
  // All tasks terminate.
  EXPECT_TRUE(result->Wait().code() == StatusCode::kOk ||
              result->Wait().code() == StatusCode::kCancelled);
}

TEST(ScheduleTest, SlowClientBackpressureStillCompletes) {
  auto engine = MakeEngine();
  auto result = engine->Execute("SELECT orderkey, custkey FROM orders");
  ASSERT_TRUE(result.ok());
  // Consume slowly: the bounded result queue pushes backpressure through
  // the exchanges (§IV-E2) instead of buffering unboundedly.
  int64_t rows = 0;
  for (;;) {
    auto page = result->Next();
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    if (!page->has_value()) break;
    rows += (*page)->num_rows();
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  EXPECT_EQ(rows, 15000);
  EXPECT_TRUE(result->Wait().ok());
}

TEST(ScheduleTest, AdmissionControlBoundsConcurrency) {
  auto engine = MakeEngine([](EngineOptions* options) {
    options->cluster.max_concurrent_queries = 2;
  });
  // Launch 6 queries from 6 client threads; the coordinator admits at most
  // 2 at a time, and all complete.
  std::atomic<int> completed{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([&engine, &completed, &peak] {
      auto rows = engine->ExecuteAndFetch(
          "SELECT orderpriority, count(*) FROM orders GROUP BY "
          "orderpriority");
      int running = engine->coordinator().running_queries();
      int prev = peak.load();
      while (running > prev && !peak.compare_exchange_weak(prev, running)) {
      }
      if (rows.ok()) completed.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(completed.load(), 6);
  EXPECT_LE(peak.load(), 2);
}

TEST(ScheduleTest, ConcurrentQueriesShareTheCluster) {
  auto engine = MakeEngine();
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&engine, &failures, i] {
      std::string sql =
          i % 2 == 0
              ? "SELECT count(*) FROM lineitem WHERE quantity > 10"
              : "SELECT shipmode, sum(extendedprice) FROM lineitem GROUP "
                "BY shipmode";
      auto rows = engine->ExecuteAndFetch(sql);
      if (!rows.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ScheduleTest, AbandonedQueryTearsDownCleanly) {
  auto engine = MakeEngine();
  {
    auto result = engine->Execute("SELECT * FROM lineitem");
    ASSERT_TRUE(result.ok());
    // Drop the handle without reading: the destructor must cancel and join
    // every task without deadlock or leak.
  }
  // The cluster is still usable afterwards.
  auto rows = engine->ExecuteAndFetch("SELECT count(*) FROM orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(15000));
}

TEST(ScheduleTest, ManySequentialQueriesNoLeakage) {
  auto engine = MakeEngine();
  for (int i = 0; i < 20; ++i) {
    auto rows = engine->ExecuteAndFetch(
        "SELECT count(*) FROM orders WHERE custkey = " + std::to_string(i));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  }
  EXPECT_EQ(engine->coordinator().running_queries(), 0);
}

}  // namespace
}  // namespace presto
