#include "exchange/http/exchange_http.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "exchange/exchange.h"
#include "exchange/http/http_io.h"
#include "vector/block.h"
#include "vector/page.h"

namespace presto {
namespace {

// Uncompressed frames keep wire sizes predictable for capacity math.
PageCodecOptions TestCodecOptions() {
  return PageCodecOptions{PageCompression::kNone, true, true};
}

PageCodec::Frame MakeFrame(std::vector<int64_t> values) {
  PageCodec codec(TestCodecOptions());
  return codec.Encode(Page({MakeBigintBlock(std::move(values))}));
}

HttpRequest Get(const std::string& path, int64_t max_wait_micros = 0) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.headers["x-presto-max-wait-micros"] =
      std::to_string(max_wait_micros);
  return request;
}

HttpRequest Delete(const std::string& path) {
  HttpRequest request;
  request.method = "DELETE";
  request.path = path;
  return request;
}

/// Protocol fixture: a real server over loopback plus direct Handle()
/// access for header-level assertions. The stream under test is
/// query "q" fragment 1 task 0 partition 0 — task id "q.1.0".
class ExchangeHttpTest : public ::testing::Test {
 protected:
  static constexpr char kPath[] = "/v1/task/q.1.0/results/0";

  void SetUp() override {
    NetworkConfig network;
    network.latency_micros = 0;
    network.bytes_per_second = 0;
    network.transport = TransportMode::kHttp;
    network.http_long_poll_micros = 500'000;  // tests pick their own wait
    network.http_max_retries = 4;
    network.http_retry_backoff_micros = 100;
    manager_ =
        std::make_unique<ExchangeManager>(network, TestCodecOptions());
    service_ = std::make_unique<ExchangeHttpService>(manager_.get());
    ASSERT_TRUE(service_->Start().ok());
  }

  void TearDown() override {
    service_->Stop();
    FaultInjection::Instance().DisarmAll();
  }

  std::shared_ptr<ExchangeBuffer> CreateStream(int64_t capacity = 1 << 20) {
    manager_->CreateOutputBuffers("q", 1, 0, /*partitions=*/1, capacity);
    return manager_->GetBuffer({"q", 1, 0, 0});
  }

  ExchangeHttpClient MakeClient() {
    return ExchangeHttpClient(manager_.get(), service_->port(),
                              StreamId{"q", 1, 0, 0});
  }

  std::unique_ptr<ExchangeManager> manager_;
  std::unique_ptr<ExchangeHttpService> service_;
};

constexpr char ExchangeHttpTest::kPath[];

TEST_F(ExchangeHttpTest, TokenSequencingAcrossBatches) {
  auto buffer = CreateStream();
  PageCodec::Frame f0 = MakeFrame({1, 2, 3});
  PageCodec::Frame f1 = MakeFrame({4, 5});
  ASSERT_TRUE(buffer->TryEnqueue(f0));
  ASSERT_TRUE(buffer->TryEnqueue(f1));

  HttpResponse r = service_->Handle(Get(std::string(kPath) + "/0"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.header("x-presto-page-token"), "0");
  EXPECT_EQ(r.header("x-presto-page-next-token"), "2");
  EXPECT_EQ(r.header("x-presto-frame-count"), "2");
  EXPECT_EQ(r.header("x-presto-buffer-complete"), "false");
  EXPECT_EQ(r.body, f0.bytes + f1.bytes);

  PageCodec::Frame f2 = MakeFrame({6});
  ASSERT_TRUE(buffer->TryEnqueue(f2));
  buffer->NoMorePages();

  // Requesting token 2 acks frames 0-1 and drains the rest of the stream.
  r = service_->Handle(Get(std::string(kPath) + "/2"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.header("x-presto-page-token"), "2");
  EXPECT_EQ(r.header("x-presto-page-next-token"), "3");
  EXPECT_EQ(r.header("x-presto-buffer-complete"), "true");
  EXPECT_EQ(r.body, f2.bytes);

  // Final ack: empty, still complete.
  r = service_->Handle(Get(std::string(kPath) + "/3"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.header("x-presto-frame-count"), "0");
  EXPECT_EQ(r.header("x-presto-buffer-complete"), "true");
  EXPECT_EQ(buffer->buffered_bytes(), 0);
}

TEST_F(ExchangeHttpTest, AckFreesProducerCapacity) {
  PageCodec::Frame frame = MakeFrame(std::vector<int64_t>(64, 7));
  // Capacity for exactly one frame.
  auto buffer = CreateStream(frame.wire_bytes());
  ASSERT_TRUE(buffer->TryEnqueue(frame));
  ASSERT_FALSE(buffer->TryEnqueue(frame));  // full: backpressure

  // Fetching without acking does NOT free capacity — the server must be
  // able to resend the un-acked frame after a lost response.
  HttpResponse r = service_->Handle(Get(std::string(kPath) + "/0"));
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(buffer->inflight_bytes(), frame.wire_bytes());
  EXPECT_FALSE(buffer->TryEnqueue(frame));

  // The ack (requesting the next token) retires the frame and unblocks
  // the producer.
  r = service_->Handle(Get(std::string(kPath) + "/1"));
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(buffer->inflight_bytes(), 0);
  EXPECT_TRUE(buffer->TryEnqueue(frame));
}

TEST_F(ExchangeHttpTest, DuplicateFetchReturnsIdenticalFrames) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({10, 20})));
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({30})));

  HttpResponse first = service_->Handle(Get(std::string(kPath) + "/0"));
  HttpResponse second = service_->Handle(Get(std::string(kPath) + "/0"));
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(first.header("x-presto-page-token"),
            second.header("x-presto-page-token"));
  EXPECT_EQ(first.header("x-presto-page-next-token"),
            second.header("x-presto-page-next-token"));
}

// Regression: the coordinator's result-fetch loop can drop a fetched
// batch on its root-epoch check, so the client's internal delivered count
// overstates what the consumer actually committed. A reset that trusted
// the internal count would skip replayed frames nobody ever received —
// the caller passes its own committed count instead.
TEST_F(ExchangeHttpTest, ResetWithExplicitDeliveredCountReplaysEverything) {
  auto buffer = CreateStream();
  PageCodec::Frame f0 = MakeFrame({1});
  PageCodec::Frame f1 = MakeFrame({2});
  ASSERT_TRUE(buffer->TryEnqueue(f0));
  ASSERT_TRUE(buffer->TryEnqueue(f1));

  ExchangeHttpClient client = MakeClient();
  auto first = client.Fetch();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->frame_count, 2);
  EXPECT_EQ(first->skip_frames, 0);

  // The caller dropped that batch without consuming it: zero frames
  // committed. The replay must hand both frames over again, unskipped.
  client.ResetForReplacement(service_->port(), /*generation=*/0,
                             /*delivered=*/0);
  auto replay = client.Fetch();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->frame_count, 2);
  EXPECT_EQ(replay->skip_frames, 0);
  EXPECT_EQ(replay->body, f0.bytes + f1.bytes);
}

TEST_F(ExchangeHttpTest, ResetDefaultSkipsInternallyDeliveredFrames) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({1})));
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({2})));

  ExchangeHttpClient client = MakeClient();
  auto first = client.Fetch();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->frame_count, 2);

  // A consumer that handed both frames downstream (the operator path)
  // re-fetches from token 0 after a producer replacement: both replayed
  // frames come back flagged for decode-and-drop.
  client.ResetForReplacement(service_->port(), /*generation=*/0);
  auto replay = client.Fetch();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->frame_count, 2);
  EXPECT_EQ(replay->skip_frames, 2);
}

TEST_F(ExchangeHttpTest, TokenOutsideWindowIsBadRequest) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({1})));
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({2})));
  // Ack frame 0.
  ASSERT_EQ(service_->Handle(Get(std::string(kPath) + "/1")).status, 200);
  // A retired token can never be served again.
  EXPECT_EQ(service_->Handle(Get(std::string(kPath) + "/0")).status, 400);
  // A token past the produced range is a client bug, not a long-poll.
  EXPECT_EQ(service_->Handle(Get(std::string(kPath) + "/7")).status, 400);
}

TEST_F(ExchangeHttpTest, MalformedPathsAndTokens) {
  CreateStream();
  EXPECT_EQ(service_->Handle(Get("/v2/bogus")).status, 404);
  EXPECT_EQ(service_->Handle(Get("/v1/task/noDotsHere/results/0/0")).status,
            400);
  EXPECT_EQ(service_->Handle(Get(std::string(kPath) + "/abc")).status, 400);
  EXPECT_EQ(service_->Handle(Get(std::string(kPath) + "/-1")).status, 400);
  // GET without a token segment is malformed.
  EXPECT_EQ(service_->Handle(Get(kPath)).status, 400);
  // Unknown stream at token 0 is "not created yet" — with out-of-process
  // workers a consumer can legitimately poll before the producer's create
  // RPC lands, so the server answers an empty incomplete batch instead of
  // 404 and the consumer retries.
  {
    HttpResponse r = service_->Handle(Get("/v1/task/q.1.0/results/9/0"));
    EXPECT_EQ(r.status, 200);
    EXPECT_TRUE(r.body.empty());
    EXPECT_EQ(r.header("x-presto-buffer-complete"), "false");
  }
  // Past token 0 the buffer must have existed, so absence means "gone".
  EXPECT_EQ(service_->Handle(Get("/v1/task/q.1.0/results/9/3")).status, 404);
}

TEST_F(ExchangeHttpTest, DeleteMidStreamTearsDownBuffer) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({1, 2, 3})));
  ASSERT_EQ(service_->Handle(Get(std::string(kPath) + "/0")).status, 200);

  EXPECT_EQ(service_->Handle(Delete(kPath)).status, 204);
  EXPECT_EQ(manager_->GetBuffer({"q", 1, 0, 0}), nullptr);
  // Fetching a deleted stream is 404; deleting again stays idempotent.
  EXPECT_EQ(service_->Handle(Get(std::string(kPath) + "/1")).status, 404);
  EXPECT_EQ(service_->Handle(Delete(kPath)).status, 204);
}

TEST_F(ExchangeHttpTest, LongPollTimesOutEmptyWithSameToken) {
  CreateStream();
  auto start = std::chrono::steady_clock::now();
  HttpResponse r =
      service_->Handle(Get(std::string(kPath) + "/0", /*wait=*/30'000));
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.header("x-presto-frame-count"), "0");
  EXPECT_EQ(r.header("x-presto-page-token"), "0");
  EXPECT_EQ(r.header("x-presto-page-next-token"), "0");
  EXPECT_EQ(r.header("x-presto-buffer-complete"), "false");
  EXPECT_TRUE(r.body.empty());
  EXPECT_GE(elapsed, 30'000);
}

TEST_F(ExchangeHttpTest, LongPollWakesOnEnqueue) {
  auto buffer = CreateStream();
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({42})));
  });
  auto start = std::chrono::steady_clock::now();
  HttpResponse r =
      service_->Handle(Get(std::string(kPath) + "/0", /*wait=*/400'000));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  producer.join();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.header("x-presto-frame-count"), "1");
  // Woken by the enqueue, not the 400ms deadline.
  EXPECT_LT(elapsed, 300);
}

// ---------------------------------------------------------------------------
// Real sockets: client against server
// ---------------------------------------------------------------------------

TEST_F(ExchangeHttpTest, ClientPullsWholeStreamOverSockets) {
  auto buffer = CreateStream();
  std::vector<PageCodec::Frame> frames;
  for (int64_t i = 0; i < 5; ++i) {
    frames.push_back(MakeFrame({i * 10, i * 10 + 1}));
    ASSERT_TRUE(buffer->TryEnqueue(frames.back()));
  }
  buffer->NoMorePages();

  ExchangeHttpClient client = MakeClient();
  std::string all_bytes;
  int64_t total_frames = 0;
  bool complete = false;
  while (!complete) {
    auto fetch = client.Fetch();
    ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
    all_bytes += fetch->body;
    total_frames += fetch->frame_count;
    complete = fetch->complete;
  }
  EXPECT_EQ(total_frames, 5);
  EXPECT_EQ(client.next_token(), 5);

  std::string expected;
  for (const auto& frame : frames) expected += frame.bytes;
  EXPECT_EQ(all_bytes, expected);

  // Decode everything back and verify the payload survived the wire.
  size_t offset = 0;
  int64_t rows = 0;
  while (offset < all_bytes.size()) {
    auto page = manager_->codec().Decode(all_bytes, &offset);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    rows += page->num_rows();
  }
  EXPECT_EQ(rows, 10);

  EXPECT_TRUE(client.DeleteBuffer().ok());
  EXPECT_EQ(manager_->GetBuffer({"q", 1, 0, 0}), nullptr);
  EXPECT_GT(manager_->http_requests(), 0);
}

TEST_F(ExchangeHttpTest, ClientSurfacesDeletedBufferAsIOError) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({1})));
  ExchangeHttpClient client = MakeClient();
  ASSERT_TRUE(client.Fetch().ok());
  manager_->RemoveStream({"q", 1, 0, 0});
  auto fetch = client.Fetch();
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kIOError);
}

TEST_F(ExchangeHttpTest, MalformedFrameSurfacesAsIOErrorNotCrash) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({1, 2, 3, 4})));
  ExchangeHttpClient client = MakeClient();
  auto fetch = client.Fetch();
  ASSERT_TRUE(fetch.ok());
  ASSERT_FALSE(fetch->body.empty());
  // A bit flip inside the payload must fail the checksum as IOError.
  std::string corrupt = fetch->body;
  corrupt[corrupt.size() - 1] ^= 0x01;
  size_t offset = 0;
  auto page = manager_->codec().Decode(corrupt, &offset);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIOError);
  // Truncation mid-frame is equally survivable.
  offset = 0;
  auto truncated = manager_->codec().Decode(
      std::string_view(fetch->body.data(), fetch->body.size() / 2), &offset);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kIOError);
}

TEST_F(ExchangeHttpTest, ClientRetriesThrough5xx) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({5, 6})));
  FaultSpec spec;
  spec.error = Status::Internal("injected server failure");
  spec.max_fires = 2;
  FaultInjection::Instance().Arm("exchange.http_server", spec);

  ExchangeHttpClient client = MakeClient();
  auto fetch = client.Fetch();
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_EQ(fetch->frame_count, 1);
  EXPECT_GE(manager_->http_retries(), 2);
}

TEST_F(ExchangeHttpTest, ClientExhaustsRetryBudget) {
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({5})));
  FaultSpec spec;
  spec.error = Status::Internal("injected server failure");
  FaultInjection::Instance().Arm("exchange.http_server", spec);  // always

  ExchangeHttpClient client = MakeClient();
  auto fetch = client.Fetch();
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kIOError);
  EXPECT_NE(fetch.status().message().find("retries exhausted"),
            std::string::npos)
      << fetch.status().ToString();
  // http_max_retries=4 -> 5 attempts total.
  EXPECT_EQ(FaultInjection::Instance().fires("exchange.http_server"), 5);
}

TEST_F(ExchangeHttpTest, ServerRejectsGarbageBytes) {
  // A client speaking not-HTTP gets a 400 (best-effort) or a hangup —
  // never a crash or a wedged server.
  auto conn = ConnectToLoopback(service_->port(), 500'000);
  ASSERT_TRUE(conn.ok());
  HttpRequest garbage;
  garbage.method = "PGF1\x01\x02";
  garbage.path = "not-a-path";
  (void)(*conn)->WriteRequest(garbage);
  auto response = (*conn)->ReadResponse();
  if (response.ok()) {
    EXPECT_EQ(response->status, 400);
  }
  // The server is still fully functional afterwards.
  auto buffer = CreateStream();
  ASSERT_TRUE(buffer->TryEnqueue(MakeFrame({9})));
  ExchangeHttpClient client = MakeClient();
  auto fetch = client.Fetch();
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  EXPECT_EQ(fetch->frame_count, 1);
}

namespace {
// Writes raw bytes on the connection's socket, bypassing WriteRequest's
// framing (the hardening tests need deliberately broken framing).
void SendRaw(HttpConnection* conn, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(conn->fd(), data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}
}  // namespace

TEST_F(ExchangeHttpTest, OversizedBodyRefusedWith413) {
  auto conn = ConnectToLoopback(service_->port(), 2'000'000);
  ASSERT_TRUE(conn.ok());
  // Content-length over the 256 MiB cap: refused up front, before any
  // body bytes are read (none are even sent here).
  SendRaw(conn->get(),
          "POST /v1/task/q.1.0/results/0 HTTP/1.1\r\n"
          "content-length: 300000000\r\n\r\n");
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 413);
}

TEST_F(ExchangeHttpTest, OversizedRequestLineRefusedWith431) {
  auto conn = ConnectToLoopback(service_->port(), 2'000'000);
  ASSERT_TRUE(conn.ok());
  std::string request_line =
      "GET /" + std::string(80 << 10, 'a') + " HTTP/1.1\r\n\r\n";
  SendRaw(conn->get(), request_line);
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
}

TEST_F(ExchangeHttpTest, TooManyHeadersRefusedWith431) {
  auto conn = ConnectToLoopback(service_->port(), 2'000'000);
  ASSERT_TRUE(conn.ok());
  std::string request = "GET /v1/task/q.1.0/results/0/0 HTTP/1.1\r\n";
  for (int i = 0; i < 200; ++i) {
    request += "x-filler-" + std::to_string(i) + ": v\r\n";
  }
  request += "\r\n";
  SendRaw(conn->get(), request);
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
}

TEST_F(ExchangeHttpTest, ServerFaultPointAnswers500) {
  FaultSpec spec;
  spec.error = Status::Internal("injected server failure");
  FaultInjection::Instance().Arm("http.server_serve", spec);
  auto conn = ConnectToLoopback(service_->port(), 2'000'000);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE((*conn)->WriteRequest(Get(std::string(kPath) + "/0")).ok());
  auto response = (*conn)->ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 500);
  FaultInjection::Instance().DisarmAll();
  // The connection and server both survive the injected failure.
  ASSERT_TRUE((*conn)->WriteRequest(Get(std::string(kPath) + "/0")).ok());
  auto healthy = (*conn)->ReadResponse();
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->status, 200);
}

// ---------------------------------------------------------------------------
// SimulateTransfer regression (in-process transport)
// ---------------------------------------------------------------------------

TEST(ExchangeTransferTest, ConcurrentTransfersOverlap) {
  // Two concurrent 60ms transfers must take ~60ms, not ~120ms: the
  // bandwidth sleep may never run under the manager lock.
  NetworkConfig network;
  network.latency_micros = 60'000;
  network.bytes_per_second = 0;
  ExchangeManager manager(network);
  auto start = std::chrono::steady_clock::now();
  std::thread t1([&] { manager.SimulateTransfer(1024); });
  std::thread t2([&] { manager.SimulateTransfer(1024); });
  t1.join();
  t2.join();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 60);
  EXPECT_LT(elapsed, 110) << "transfers serialized instead of overlapping";
  EXPECT_EQ(manager.transferred_bytes(), 2048);
}

}  // namespace
}  // namespace presto
