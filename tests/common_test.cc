#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_utils.h"
#include "common/thread_pool.h"

namespace presto {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad query");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kCancelled,
        StatusCode::kUnsupported, StatusCode::kIOError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  PRESTO_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RandomTest, Deterministic) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, RangesRespected) {
  Random r(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SkewedFavorsLowIndices) {
  Random r(13);
  int64_t low = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.NextSkewed(100) < 10) ++low;
  }
  // Cubic skew puts far more than 10% of mass in the first decile.
  EXPECT_GT(low, kTrials / 3);
}

TEST(HashTest, CombinesAndSpreads) {
  std::set<uint64_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(HashInt64(static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
  EXPECT_NE(HashCombine(HashInt64(1), HashInt64(2)),
            HashCombine(HashInt64(2), HashInt64(1)));
}

TEST(HashTest, StringAndDoubleStability) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(StringUtilsTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_EQ(ToUpperAscii("varchar"), "VARCHAR");
}

TEST(StringUtilsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilsTest, LikeMatching) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_llo_"));
  EXPECT_FALSE(LikeMatch("hello", "world"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
  EXPECT_TRUE(LikeMatch("axxxb", "a%b"));
  EXPECT_FALSE(LikeMatch("axxx", "a%b"));
}

TEST(StringUtilsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace presto
