#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace presto::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto r = Tokenize("SELECT x, 'ab''c', 1.5e2, \"Quoted\" FROM t -- comment\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& t = *r;
  EXPECT_EQ(t[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(t[0].text, "select");
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[3].kind, TokenKind::kString);
  EXPECT_EQ(t[3].text, "ab'c");
  EXPECT_EQ(t[5].kind, TokenKind::kDouble);
  EXPECT_EQ(t[7].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[7].text, "Quoted");  // quoted identifiers keep case
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'oops").ok());
  EXPECT_FALSE(Tokenize("select \"oops").ok());
  EXPECT_FALSE(Tokenize("select 1e").ok());
  EXPECT_FALSE(Tokenize("select @x").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSelect("SELECT a, b + 1 AS c FROM t WHERE a > 10 LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& s = **r;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->ToString(), "a");
  EXPECT_EQ(s.items[1].alias, "c");
  ASSERT_NE(s.from, nullptr);
  EXPECT_EQ(s.from->kind, TableRefKind::kNamed);
  EXPECT_EQ(s.from->name_parts, std::vector<std::string>{"t"});
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.limit, 5);
}

TEST(ParserTest, JoinsAndQualifiedNames) {
  auto r = ParseSelect(
      "SELECT o.orderkey, sum(tax) FROM hive.orders o "
      "LEFT JOIN lineitem l ON o.orderkey = l.orderkey "
      "WHERE discount = 0 GROUP BY o.orderkey");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& s = **r;
  ASSERT_NE(s.from, nullptr);
  EXPECT_EQ(s.from->kind, TableRefKind::kJoin);
  EXPECT_EQ(s.from->join_type, JoinType::kLeft);
  EXPECT_EQ(s.from->left->name_parts,
            (std::vector<std::string>{"hive", "orders"}));
  EXPECT_EQ(s.from->left->alias, "o");
  ASSERT_EQ(s.group_by.size(), 1u);
}

TEST(ParserTest, CrossAndUsingJoins) {
  auto r1 = ParseSelect("SELECT 1 FROM a CROSS JOIN b");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->from->join_type, JoinType::kCross);
  auto r2 = ParseSelect("SELECT 1 FROM a JOIN b USING (k1, k2)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->from->using_columns,
            (std::vector<std::string>{"k1", "k2"}));
  EXPECT_FALSE(ParseSelect("SELECT 1 FROM a JOIN b").ok());
}

TEST(ParserTest, SubqueryRequiresAlias) {
  EXPECT_TRUE(ParseSelect("SELECT x FROM (SELECT 1 AS x) t").ok());
  EXPECT_FALSE(ParseSelect("SELECT x FROM (SELECT 1 AS x)").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto r = ParseSelect("SELECT 1 + 2 * 3 - 4 / 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->items[0].expr->ToString(), "((1 + (2 * 3)) - (4 / 2))");
  auto r2 = ParseSelect("SELECT a OR b AND NOT c = d");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->items[0].expr->ToString(),
            "(a or (b and (not (c = d))))");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  auto r = ParseSelect(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1, 2) "
      "AND c LIKE 'x%' AND d IS NOT NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE((*r)->where, nullptr);
}

TEST(ParserTest, CaseForms) {
  auto r1 = ParseSelect(
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
  ASSERT_TRUE(r1.ok());
  auto r2 = ParseSelect(
      "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE((*r2)->items[0].expr->has_operand);
  EXPECT_FALSE((*r2)->items[0].expr->has_else);
}

TEST(ParserTest, DateLiteralAndCast) {
  auto r = ParseSelect(
      "SELECT CAST(a AS DOUBLE), DATE '1995-06-17' FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->items[0].expr->kind, AstExprKind::kCast);
  EXPECT_EQ((*r)->items[1].expr->kind, AstExprKind::kLiteral);
  EXPECT_EQ((*r)->items[1].expr->value.type(), TypeKind::kDate);
  EXPECT_FALSE(ParseSelect("SELECT DATE 'bogus' FROM t").ok());
}

TEST(ParserTest, WindowFunctions) {
  auto r = ParseSelect(
      "SELECT row_number() OVER (PARTITION BY a ORDER BY b DESC) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& e = *(*r)->items[0].expr;
  EXPECT_EQ(e.kind, AstExprKind::kFunctionCall);
  ASSERT_NE(e.window, nullptr);
  EXPECT_EQ(e.window->partition_by.size(), 1u);
  ASSERT_EQ(e.window->order_by.size(), 1u);
  EXPECT_FALSE(e.window->order_by[0].second);
}

TEST(ParserTest, UnionAllOrderLimit) {
  auto r = ParseSelect(
      "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE((*r)->union_next, nullptr);
  EXPECT_EQ((*r)->order_by.size(), 1u);
  EXPECT_EQ((*r)->limit, 3);
}

TEST(ParserTest, Statements) {
  auto ctas = ParseStatement("CREATE TABLE hive.out AS SELECT 1 AS x");
  ASSERT_TRUE(ctas.ok());
  EXPECT_EQ((*ctas)->kind, StatementKind::kCreateTableAs);
  EXPECT_EQ((*ctas)->target_name,
            (std::vector<std::string>{"hive", "out"}));
  auto ins = ParseStatement("INSERT INTO t SELECT * FROM u");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ((*ins)->kind, StatementKind::kInsert);
  auto ex = ParseStatement("EXPLAIN SELECT 1");
  ASSERT_TRUE(ex.ok());
  EXPECT_TRUE((*ex)->explain);
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT a b c FROM t").ok());
  EXPECT_FALSE(ParseStatement("FOO BAR").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t GROUP a").ok());
}

TEST(ParserTest, SelectItemAliases) {
  auto r = ParseSelect("SELECT a x, b AS y FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->items[0].alias, "x");
  EXPECT_EQ((*r)->items[1].alias, "y");
}

TEST(ParserTest, StarVariants) {
  auto r = ParseSelect("SELECT *, t.*, count(*) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE((*r)->items[0].is_star);
  EXPECT_TRUE((*r)->items[1].is_star);
  EXPECT_EQ((*r)->items[1].star_qualifier, "t");
  EXPECT_FALSE((*r)->items[2].is_star);
}

TEST(AstEqualsTest, MatchesStructurally) {
  auto a = ParseSelect("SELECT a + 1 FROM t");
  auto b = ParseSelect("SELECT A + 1 FROM t");  // case-folded identifiers
  auto c = ParseSelect("SELECT a + 2 FROM t");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(AstExprEquals(*(*a)->items[0].expr, *(*b)->items[0].expr));
  EXPECT_FALSE(AstExprEquals(*(*a)->items[0].expr, *(*c)->items[0].expr));
}

// ---- Analyzer / binder ----

Scope MakeScope() {
  Scope scope;
  scope.Add("t", "a", TypeKind::kBigint);
  scope.Add("t", "b", TypeKind::kDouble);
  scope.Add("t", "s", TypeKind::kVarchar);
  scope.Add("u", "a", TypeKind::kBigint);
  return scope;
}

Result<ExprPtr> BindSql(const std::string& expr_sql) {
  auto stmt = ParseSelect("SELECT " + expr_sql + " FROM t");
  if (!stmt.ok()) return stmt.status();
  Scope scope = MakeScope();
  ExprBinder binder(&scope);
  return binder.Bind(*(*stmt)->items[0].expr);
}

TEST(AnalyzerTest, ResolvesQualifiedAndUnqualified) {
  auto r1 = BindSql("t.a + 1");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ((*r1)->type(), TypeKind::kBigint);
  auto r2 = BindSql("b * 2");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->type(), TypeKind::kDouble);
  // "a" alone is ambiguous between t.a and u.a.
  EXPECT_FALSE(BindSql("a + 1").ok());
  EXPECT_FALSE(BindSql("missing_col").ok());
}

TEST(AnalyzerTest, InsertsNumericCoercions) {
  auto r = BindSql("t.a + b");  // BIGINT + DOUBLE -> DOUBLE with cast
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->type(), TypeKind::kDouble);
  EXPECT_EQ((*r)->ToString(), "(CAST(#0 AS DOUBLE) + #1)");
}

TEST(AnalyzerTest, RejectsBadTypes) {
  EXPECT_FALSE(BindSql("s + 1").ok());
  EXPECT_FALSE(BindSql("t.a LIKE 'x%'").ok());
  EXPECT_FALSE(BindSql("NOT s").ok());
}

TEST(AnalyzerTest, BindsSpecialForms) {
  auto r1 = BindSql("coalesce(t.a, 0)");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->kind(), ExprKind::kCoalesce);
  auto r2 = BindSql("if(t.a > 1, 'y', 'n')");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->kind(), ExprKind::kCase);
  auto r3 = BindSql("nullif(t.a, 0)");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ((*r3)->kind(), ExprKind::kCase);
  auto r4 = BindSql("t.a BETWEEN 1 AND 10");
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ((*r4)->kind(), ExprKind::kAnd);
}

TEST(AnalyzerTest, NullLiteralAdoptsSiblingType) {
  auto r = BindSql("t.a = NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The null literal becomes a BIGINT null, matching the eq(BIGINT,BIGINT)
  // overload.
  EXPECT_EQ((*r)->children()[1]->type(), TypeKind::kBigint);
}

TEST(AnalyzerTest, RejectsAggregatesInScalarContext) {
  EXPECT_FALSE(BindSql("sum(t.a)").ok());
  EXPECT_FALSE(BindSql("row_number()").ok());
}

TEST(AnalyzerTest, AggregateDetection) {
  auto stmt = ParseSelect(
      "SELECT sum(a) + count(*), max(b) OVER (PARTITION BY a) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(ContainsAggregate(*(*stmt)->items[0].expr));
  EXPECT_FALSE(ContainsAggregate(*(*stmt)->items[1].expr));
  EXPECT_TRUE(ContainsWindowCall(*(*stmt)->items[1].expr));
  std::vector<const AstExpr*> aggs;
  CollectAggregates(*(*stmt)->items[0].expr, &aggs);
  EXPECT_EQ(aggs.size(), 2u);
}

TEST(AnalyzerTest, DuplicateAggregatesDeduplicated) {
  auto stmt = ParseSelect("SELECT sum(a) + sum(a) FROM t");
  ASSERT_TRUE(stmt.ok());
  std::vector<const AstExpr*> aggs;
  CollectAggregates(*(*stmt)->items[0].expr, &aggs);
  EXPECT_EQ(aggs.size(), 1u);
}

TEST(ScopeTest, QualifierExpansion) {
  Scope scope = MakeScope();
  EXPECT_EQ(scope.ColumnsForQualifier("t"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(scope.ColumnsForQualifier("u"), (std::vector<int>{3}));
  EXPECT_EQ(scope.ColumnsForQualifier("").size(), 4u);
}

}  // namespace
}  // namespace presto::sql
