// Tests for the ISSUE 8 planning-path caching subsystem: the versioned
// ConnectorMetadata API (GetTableVersion / BumpTableVersion / invalidation
// hooks), ScanSpec fingerprinting, the three cache layers (metadata,
// split, plan), per-query MetadataSnapshot dedup, concurrent-invalidation
// races, E2E staleness under both kThreads and kProcess-style clusters,
// and the GET /v1/metadata/cache observability endpoint.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "connector/connector.h"
#include "connectors/memcon/memory_connector.h"
#include "engine/engine.h"
#include "engine/observability_http.h"
#include "metadata/metadata_cache.h"
#include "metadata/metadata_manager.h"
#include "metadata/metadata_snapshot.h"
#include "metadata/plan_cache.h"
#include "metadata/split_cache.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "worker/worker_runtime.h"

namespace presto {
namespace {

RowSchema BigintSchema(const std::string& column) {
  RowSchema schema;
  schema.Add(column, TypeKind::kBigint);
  return schema;
}

Page BigintPage(int64_t begin, int64_t end) {
  std::vector<int64_t> values;
  for (int64_t i = begin; i < end; ++i) values.push_back(i);
  return Page({MakeBigintBlock(std::move(values))});
}

// A memory connector holding k(bigint) tables; `rows` half-open ranges.
std::shared_ptr<MemoryConnector> MakeMemory(
    const std::vector<std::pair<std::string, int64_t>>& tables) {
  auto mem = std::make_shared<MemoryConnector>("memory");
  for (const auto& [name, rows] : tables) {
    EXPECT_TRUE(
        mem->CreateTable(name, BigintSchema("k"), {BigintPage(0, rows)})
            .ok());
  }
  return mem;
}

// ---------------------------------------------------------------------------
// ScanSpec fingerprinting (satellite: canonical comparison form replacing
// ad-hoc predicate ToString() comparisons).
// ---------------------------------------------------------------------------

class FingerprintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = MakeMemory({{"t", 10}});
    auto table = mem_->metadata().GetTable("t");
    ASSERT_TRUE(table.ok());
    table_ = *table;
  }

  ScanSpec Spec(std::vector<ColumnPredicate> predicates) {
    ScanSpec spec;
    spec.table = table_;
    spec.columns = {0};
    spec.predicates = std::move(predicates);
    spec.num_workers = 4;
    return spec;
  }

  std::shared_ptr<MemoryConnector> mem_;
  TableHandlePtr table_;
};

TEST_F(FingerprintTest, PredicateOrderDoesNotMatter) {
  ColumnPredicate lt{"k", ColumnPredicate::Op::kLt, {Value::Bigint(7)}};
  ColumnPredicate gt{"k", ColumnPredicate::Op::kGt, {Value::Bigint(2)}};
  ScanSpec a = Spec({lt, gt});
  ScanSpec b = Spec({gt, lt});
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST_F(FingerprintTest, DifferentPredicatesDiffer) {
  ScanSpec a = Spec({{"k", ColumnPredicate::Op::kLt, {Value::Bigint(7)}}});
  ScanSpec b = Spec({{"k", ColumnPredicate::Op::kLt, {Value::Bigint(8)}}});
  ScanSpec c = Spec({{"k", ColumnPredicate::Op::kLte, {Value::Bigint(7)}}});
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_NE(a.Fingerprint(), Spec({}).Fingerprint());
}

TEST_F(FingerprintTest, CanonicalStringIsTypeTagged) {
  // BIGINT 1 and VARCHAR '1' render identically through ToString()-style
  // debug output but must not compare equal canonically.
  ColumnPredicate num{"k", ColumnPredicate::Op::kEq, {Value::Bigint(1)}};
  ColumnPredicate str{"k", ColumnPredicate::Op::kEq, {Value::Varchar("1")}};
  EXPECT_NE(num.CanonicalString(), str.CanonicalString());
  EXPECT_NE(Spec({num}).Fingerprint(), Spec({str}).Fingerprint());
}

TEST(FingerprintSqlTest, NormalizesWhitespaceCaseAndComments) {
  uint64_t base = FingerprintSql("SELECT k FROM t WHERE k < 5");
  EXPECT_EQ(base,
            FingerprintSql("select   k\nFROM t  WHERE k < 5 -- trailing"));
  EXPECT_NE(base, FingerprintSql("SELECT k FROM t WHERE k < 6"));
  EXPECT_NE(FingerprintSql("SELECT 1"), FingerprintSql("SELECT '1'"));
}

// ---------------------------------------------------------------------------
// Cache layers in isolation.
// ---------------------------------------------------------------------------

TEST(MetadataCacheTest, HitMissVersionInvalidationAndTtl) {
  MetadataCacheOptions options;
  options.ttl_nanos = 1000;
  MetadataCache cache(options);

  auto entry = std::make_shared<MetadataCache::Entry>();
  entry->version = 3;
  entry->expires_nanos = 1000;
  cache.Insert("memory", "t", entry);
  EXPECT_EQ(cache.size(), 1u);

  // Hit: version matches, not expired.
  EXPECT_NE(cache.Lookup("memory", "t", 3, 500), nullptr);
  EXPECT_EQ(cache.hits(), 1);

  // Unknown table: plain miss.
  EXPECT_EQ(cache.Lookup("memory", "other", 0, 500), nullptr);
  EXPECT_EQ(cache.misses(), 1);

  // Version moved on: invalidation + miss, entry erased.
  EXPECT_EQ(cache.Lookup("memory", "t", 4, 500), nullptr);
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.size(), 0u);

  // TTL expiry.
  cache.Insert("memory", "t", entry);
  EXPECT_EQ(cache.Lookup("memory", "t", 3, 2000), nullptr);
  EXPECT_EQ(cache.size(), 0u);

  // Manual invalidation.
  cache.Insert("memory", "t", entry);
  cache.Invalidate("memory", "t");
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SplitCacheTest, VersionValidatedLookup) {
  SplitCache cache;
  cache.Insert("memory", "t", /*fingerprint=*/42, /*version=*/1, {});
  EXPECT_TRUE(cache.Lookup("memory", "t", 42, 1).has_value());
  EXPECT_EQ(cache.hits(), 1);
  // Different fingerprint under the same version: miss, entry survives.
  EXPECT_FALSE(cache.Lookup("memory", "t", 43, 1).has_value());
  EXPECT_EQ(cache.size(), 1u);
  // Version bump: every enumeration for the table dies.
  EXPECT_FALSE(cache.Lookup("memory", "t", 42, 2).has_value());
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, InsertRefusedWhenDependencyMovedOn) {
  Catalog catalog;
  auto mem = MakeMemory({{"t", 10}});
  catalog.Register(mem);
  PlanCache cache;

  MetadataVersion v = mem->metadata().GetTableVersion("t");
  FragmentedPlan plan;
  // The race: version read at planning start, table mutated before Insert.
  ASSERT_TRUE(
      mem->CreateTable("t", BigintSchema("k"), {BigintPage(0, 20)}).ok());
  cache.Insert(1, plan, {{"memory", "t", v}}, catalog);
  EXPECT_EQ(cache.size(), 0u);

  // With the live version the insert lands and the lookup hits.
  v = mem->metadata().GetTableVersion("t");
  cache.Insert(1, plan, {{"memory", "t", v}}, catalog);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup(1, catalog).has_value());

  // Lookup revalidates: a bump after insert erases on the way out.
  ASSERT_TRUE(
      mem->CreateTable("t", BigintSchema("k"), {BigintPage(0, 30)}).ok());
  EXPECT_FALSE(cache.Lookup(1, catalog).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Versioned-metadata protocol: bumps and synchronous hooks.
// ---------------------------------------------------------------------------

TEST(VersionedMetadataTest, FixtureWritesBumpVersionsAndFireHooks) {
  auto mem = MakeMemory({{"t", 10}});
  ConnectorMetadata& metadata = mem->metadata();
  MetadataVersion v0 = metadata.GetTableVersion("t");

  std::vector<std::string> invalidated;
  int id = metadata.AddInvalidationHook(
      [&](const std::string& table) { invalidated.push_back(table); });

  ASSERT_TRUE(
      mem->CreateTable("t", BigintSchema("k"), {BigintPage(0, 20)}).ok());
  EXPECT_GT(metadata.GetTableVersion("t"), v0);
  ASSERT_EQ(invalidated.size(), 1u);
  EXPECT_EQ(invalidated[0], "t");

  metadata.RemoveInvalidationHook(id);
  ASSERT_TRUE(
      mem->CreateTable("t", BigintSchema("k"), {BigintPage(0, 30)}).ok());
  EXPECT_EQ(invalidated.size(), 1u);  // removed hook stays silent
}

// ---------------------------------------------------------------------------
// MetadataSnapshot: per-query GetTable dedup (the self-join bugfix).
// ---------------------------------------------------------------------------

// Delegating wrapper counting GetTable calls; forwards the virtual
// version/hook machinery to the inner connector's state.
class CountingMetadata final : public ConnectorMetadata {
 public:
  explicit CountingMetadata(ConnectorMetadata* inner) : inner_(inner) {}

  std::vector<std::string> ListTables() const override {
    return inner_->ListTables();
  }
  MetadataVersion GetTableVersion(const std::string& table) const override {
    return inner_->GetTableVersion(table);
  }
  int AddInvalidationHook(InvalidationHook hook) override {
    return inner_->AddInvalidationHook(std::move(hook));
  }
  void RemoveInvalidationHook(int id) override {
    inner_->RemoveInvalidationHook(id);
  }
  Result<TableHandlePtr> GetTable(const std::string& name) const override {
    ++get_table_calls_;
    return inner_->GetTable(name);
  }
  Result<TableStats> GetStats(const TableHandle& table) const override {
    return inner_->GetStats(table);
  }
  std::vector<DataLayout> GetLayouts(const TableHandle& table) const override {
    return inner_->GetLayouts(table);
  }
  PushdownSupport GetPushdownSupport(
      const TableHandle& table, const ColumnPredicate& pred) const override {
    return inner_->GetPushdownSupport(table, pred);
  }

  int get_table_calls() const { return get_table_calls_.load(); }

 private:
  ConnectorMetadata* inner_;
  mutable std::atomic<int> get_table_calls_{0};
};

class CountingConnector final : public Connector {
 public:
  explicit CountingConnector(std::shared_ptr<MemoryConnector> inner)
      : inner_(std::move(inner)), metadata_(&inner_->metadata()) {}

  const std::string& name() const override { return inner_->name(); }
  ConnectorMetadata& metadata() override { return metadata_; }
  Result<std::unique_ptr<SplitSource>> GetSplits(
      const ScanSpec& spec) override {
    return inner_->GetSplits(spec);
  }
  Result<std::unique_ptr<DataSource>> CreateDataSource(
      const Split& split, const ScanSpec& spec) override {
    return inner_->CreateDataSource(split, spec);
  }
  Result<std::unique_ptr<DataSink>> CreateDataSink(const TableHandle& table,
                                                   int writer_id) override {
    return inner_->CreateDataSink(table, writer_id);
  }

  const CountingMetadata& counting() const { return metadata_; }

 private:
  std::shared_ptr<MemoryConnector> inner_;
  CountingMetadata metadata_;
};

TEST(MetadataSnapshotTest, SelfJoinResolvesTableOnce) {
  Catalog catalog;
  auto counting = std::make_shared<CountingConnector>(MakeMemory({{"t", 100}}));
  catalog.Register(counting);
  catalog.SetDefault("memory");

  MetadataSnapshot snapshot(&catalog);
  Planner planner(&snapshot);
  auto stmt = sql::ParseStatement(
      "SELECT a.k FROM t a JOIN t b ON a.k = b.k");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto plan = planner.Plan(**stmt);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Two references to `t`, one connector round-trip (was two before the
  // per-query snapshot), and a single recorded dependency.
  EXPECT_EQ(counting->counting().get_table_calls(), 1);
  ASSERT_EQ(snapshot.deps().size(), 1u);
  EXPECT_EQ(snapshot.deps()[0].table, "t");
  EXPECT_EQ(snapshot.resolutions(), 1);
}

// ---------------------------------------------------------------------------
// Concurrent invalidation: a writer bumping the table while N planner
// threads resolve + insert plans. Invariant: once a write call has
// returned (its invalidation hook ran synchronously), the plan cache never
// serves a plan built against an older version.
// ---------------------------------------------------------------------------

TEST(MetadataManagerTest, ConcurrentInvalidationNeverServesStalePlan) {
  Catalog catalog;
  auto mem = MakeMemory({{"t", 10}});
  catalog.Register(mem);
  catalog.SetDefault("memory");
  MetadataManager manager(&catalog);
  manager.EnsureHooked("memory", mem.get());

  const uint64_t fp = FingerprintSql("SELECT k FROM t");
  std::atomic<bool> stop{false};
  std::vector<std::thread> planners;
  for (int i = 0; i < 4; ++i) {
    planners.emplace_back([&] {
      while (!stop.load()) {
        auto snapshot = manager.NewSnapshot();
        auto resolved = snapshot->Resolve("", "t");
        if (!resolved.ok()) continue;
        // Tag the "plan" with the version it was built against, so a
        // served stale plan is detectable from the outside.
        FragmentedPlan plan;
        plan.root_id = static_cast<int>((*resolved)->version);
        manager.plan_cache().Insert(fp, plan, snapshot->deps(), catalog);
        if (auto hit = manager.plan_cache().Lookup(fp, catalog)) {
          // A served plan's build version can never exceed the live one.
          EXPECT_LE(hit->root_id,
                    static_cast<int>(mem->metadata().GetTableVersion("t")));
        }
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(mem->CreateTable("t", BigintSchema("k"),
                                 {BigintPage(0, 10 + round)})
                    .ok());
    // The mutation has returned; its hook has run. The only plans the
    // cache may serve now were built against the post-bump version
    // (single writer, so the live version is stable here).
    MetadataVersion live = mem->metadata().GetTableVersion("t");
    if (auto hit = manager.plan_cache().Lookup(fp, catalog)) {
      EXPECT_EQ(hit->root_id, static_cast<int>(live))
          << "stale plan served after invalidation hook returned";
    }
  }
  stop.store(true);
  for (auto& t : planners) t.join();
}

// ---------------------------------------------------------------------------
// E2E staleness, kThreads: INSERT through SQL must invalidate the cached
// plan; the next query sees the new rows.
// ---------------------------------------------------------------------------

TEST(StalenessTest, InsertInvalidatesCachedPlanKThreads) {
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  auto engine = std::make_unique<PrestoEngine>(options);
  auto mem = MakeMemory({{"events", 100}, {"src", 50}});
  engine->catalog().Register(mem);
  engine->catalog().SetDefault("memory");

  const std::string count_sql = "SELECT count(*) FROM events";
  auto rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(100));

  PlanCache& plans = engine->metadata_manager().plan_cache();
  int64_t hits_before = plans.hits();
  rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(100));
  EXPECT_GT(plans.hits(), hits_before) << "second run should hit plan cache";

  // The INSERT commit bumps events' version; the hook must erase the
  // cached count plan before the INSERT returns.
  int64_t invalidations_before = plans.invalidations();
  auto insert = engine->ExecuteAndFetch("INSERT INTO events SELECT k FROM src");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_GT(plans.invalidations(), invalidations_before);

  rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(150)) << "stale read after INSERT";

  // And the re-planned query is cacheable again.
  hits_before = plans.hits();
  rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(150));
  EXPECT_GT(plans.hits(), hits_before);
}

// ---------------------------------------------------------------------------
// E2E staleness, kProcess: same invariant with the coordinator driving
// workers over the /v1/task HTTP protocol. In-process WorkerRuntimes share
// the connector instance (kProcess rejects SQL writes, so the mutation
// goes through the fixture API — which bumps the version like any write).
// ---------------------------------------------------------------------------

TEST(StalenessTest, MutationInvalidatesCachedPlanKProcess) {
  auto mem = MakeMemory({{"events", 100}});
  auto worker_catalog = std::make_shared<Catalog>();
  worker_catalog->Register(mem);
  worker_catalog->SetDefault("memory");

  std::vector<std::unique_ptr<WorkerRuntime>> runtimes;
  std::vector<RemoteWorkerAddress> addresses;
  for (int i = 0; i < 2; ++i) {
    WorkerRuntimeConfig config;
    config.worker_id = i;
    config.executor.threads = 2;
    auto runtime = std::make_unique<WorkerRuntime>(config, worker_catalog);
    ASSERT_TRUE(runtime->Start().ok());
    addresses.push_back({runtime->task_port(), runtime->exchange_port()});
    runtimes.push_back(std::move(runtime));
  }

  EngineOptions options;
  options.cluster.mode = ClusterMode::kProcess;
  options.cluster.remote_workers = addresses;
  auto engine = std::make_unique<PrestoEngine>(std::move(options));
  engine->catalog().Register(mem);
  engine->catalog().SetDefault("memory");

  const std::string count_sql = "SELECT count(*) FROM events";
  auto rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(100));

  PlanCache& plans = engine->metadata_manager().plan_cache();
  int64_t hits_before = plans.hits();
  rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(100));
  EXPECT_GT(plans.hits(), hits_before);

  int64_t invalidations_before = plans.invalidations();
  ASSERT_TRUE(mem->CreateTable("events", BigintSchema("k"),
                               {BigintPage(0, 100), BigintPage(100, 150)})
                  .ok());
  EXPECT_GT(plans.invalidations(), invalidations_before);

  rows = engine->ExecuteAndFetch(count_sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0], Value::Bigint(150)) << "stale read after mutation";

  engine.reset();
  for (auto& runtime : runtimes) runtime->Stop();
}

// ---------------------------------------------------------------------------
// Split-cache behavior through the engine, plus manual invalidation and
// the observability endpoint.
// ---------------------------------------------------------------------------

class MetadataEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 2;
    options.cluster.executor.threads = 2;
    engine_ = std::make_unique<PrestoEngine>(options);
    mem_ = MakeMemory({{"events", 200}});
    engine_->catalog().Register(mem_);
    engine_->catalog().SetDefault("memory");
  }

  void RunCount(int64_t expect) {
    auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM events");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ((*rows)[0][0], Value::Bigint(expect));
  }

  std::unique_ptr<PrestoEngine> engine_;
  std::shared_ptr<MemoryConnector> mem_;
};

TEST_F(MetadataEngineTest, RepeatQueriesWarmAllThreeLayers) {
  RunCount(200);
  RunCount(200);
  RunCount(200);
  MetadataManager& manager = engine_->metadata_manager();
  EXPECT_GT(manager.plan_cache().hits(), 0);
  EXPECT_GT(manager.split_cache().hits(), 0);
  EXPECT_GT(manager.metadata_cache().hits() + manager.plan_cache().hits(), 0);
  EXPECT_EQ(manager.metadata_cache().size(), 1u);
}

TEST_F(MetadataEngineTest, InvalidateMetadataDropsAllLayers) {
  RunCount(200);
  RunCount(200);
  MetadataManager& manager = engine_->metadata_manager();
  ASSERT_GT(manager.plan_cache().size() + manager.split_cache().size(), 0u);

  ASSERT_TRUE(engine_->InvalidateMetadata("memory", "events").ok());
  EXPECT_EQ(manager.metadata_cache().size(), 0u);
  EXPECT_EQ(manager.split_cache().size(), 0u);
  EXPECT_EQ(manager.plan_cache().size(), 0u);

  // Empty table name drops every table of the catalog; unknown catalog
  // errors.
  RunCount(200);
  ASSERT_TRUE(engine_->InvalidateMetadata("memory", "").ok());
  EXPECT_EQ(manager.metadata_cache().size(), 0u);
  EXPECT_FALSE(engine_->InvalidateMetadata("nope", "events").ok());

  RunCount(200);  // still correct after the flush
}

TEST_F(MetadataEngineTest, MetadataCacheEndpointReportsLayersAndVersions) {
  RunCount(200);
  RunCount(200);
  ASSERT_TRUE(mem_->CreateTable("events", BigintSchema("k"),
                                {BigintPage(0, 300)})
                  .ok());
  RunCount(300);

  ObservabilityHttpService service(engine_.get());
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/metadata/cache";
  HttpResponse response = service.Handle(request);
  ASSERT_EQ(response.status, 200);

  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  for (const char* layer : {"metadata_cache", "split_cache", "plan_cache"}) {
    auto obj = body->GetObject(layer);
    ASSERT_TRUE(obj.ok()) << layer;
    EXPECT_TRUE((*obj)->GetInt("hits").ok());
    EXPECT_TRUE((*obj)->GetInt("invalidations").ok());
  }
  auto plan_layer = body->GetObject("plan_cache");
  ASSERT_TRUE(plan_layer.ok());
  EXPECT_GT(*(*plan_layer)->GetInt("hits"), 0);
  EXPECT_GT(*(*plan_layer)->GetInt("invalidations"), 0);

  // Per-table live versions: events was mutated once, so version >= 1.
  auto tables = body->GetArray("tables");
  ASSERT_TRUE(tables.ok());
  EXPECT_NE(response.body.find("\"table\":\"events\""), std::string::npos);
  EXPECT_GE(mem_->metadata().GetTableVersion("events"), 1);
}

TEST_F(MetadataEngineTest, CachesCanBeDisabled) {
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  options.metadata.enable_metadata_cache = false;
  options.metadata.enable_split_cache = false;
  options.metadata.enable_plan_cache = false;
  auto cold = std::make_unique<PrestoEngine>(options);
  cold->catalog().Register(mem_);
  cold->catalog().SetDefault("memory");

  for (int i = 0; i < 3; ++i) {
    auto rows = cold->ExecuteAndFetch("SELECT count(*) FROM events");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ((*rows)[0][0], Value::Bigint(200));
  }
  MetadataManager& manager = cold->metadata_manager();
  EXPECT_EQ(manager.plan_cache().hits() + manager.split_cache().hits() +
                manager.metadata_cache().hits(),
            0);
}

}  // namespace
}  // namespace presto
