#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "exec/spiller.h"
#include "exchange/exchange.h"
#include "memory/memory.h"
#include "vector/block.h"
#include "vector/page.h"

namespace presto {
namespace {

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisarmAll(); }
};

Status HitGuarded(const std::string& point) {
  PRESTO_FAULT_POINT(point);
  return Status::OK();
}

TEST_F(FaultRegistryTest, DisarmedPointsAreFreeAndOk) {
  EXPECT_FALSE(FaultInjection::Enabled());
  EXPECT_TRUE(HitGuarded("scan.next_page").ok());
  // A disarmed point is never even recorded (the fast path short-circuits).
  EXPECT_EQ(FaultInjection::Instance().hits("scan.next_page"), 0);
}

TEST_F(FaultRegistryTest, ArmedPointReturnsConfiguredError) {
  FaultSpec spec;
  spec.error = Status::IOError("injected disk failure");
  FaultInjection::Instance().Arm("spill.write", spec);
  EXPECT_TRUE(FaultInjection::Enabled());

  Status status = HitGuarded("spill.write");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(FaultInjection::Instance().hits("spill.write"), 1);
  EXPECT_EQ(FaultInjection::Instance().fires("spill.write"), 1);
  // Other points stay unaffected.
  EXPECT_TRUE(HitGuarded("spill.read").ok());

  FaultInjection::Instance().Disarm("spill.write");
  EXPECT_FALSE(FaultInjection::Enabled());
  EXPECT_TRUE(HitGuarded("spill.write").ok());
}

TEST_F(FaultRegistryTest, TriggerAfterHitsFiresOnNthCall) {
  FaultSpec spec;
  spec.error = Status::Internal("boom");
  spec.trigger_after_hits = 2;  // fail on the 3rd hit
  FaultInjection::Instance().Arm("exchange.enqueue", spec);
  EXPECT_TRUE(HitGuarded("exchange.enqueue").ok());
  EXPECT_TRUE(HitGuarded("exchange.enqueue").ok());
  EXPECT_FALSE(HitGuarded("exchange.enqueue").ok());
  EXPECT_EQ(FaultInjection::Instance().hits("exchange.enqueue"), 3);
  EXPECT_EQ(FaultInjection::Instance().fires("exchange.enqueue"), 1);
}

TEST_F(FaultRegistryTest, MaxFiresBoundsTheDamage) {
  FaultSpec spec;
  spec.error = Status::Internal("boom");
  spec.max_fires = 2;
  FaultInjection::Instance().Arm("memory.reserve", spec);
  EXPECT_FALSE(HitGuarded("memory.reserve").ok());
  EXPECT_FALSE(HitGuarded("memory.reserve").ok());
  EXPECT_TRUE(HitGuarded("memory.reserve").ok());
  EXPECT_EQ(FaultInjection::Instance().fires("memory.reserve"), 2);
}

TEST_F(FaultRegistryTest, SeededProbabilityIsReproducible) {
  FaultSpec spec;
  spec.error = Status::Internal("boom");
  spec.probability = 0.5;
  spec.seed = 1234;

  auto pattern = [&] {
    std::vector<bool> fired;
    FaultInjection::Instance().Arm("scan.next_page", spec);
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!HitGuarded("scan.next_page").ok());
    }
    return fired;
  };
  std::vector<bool> first = pattern();
  std::vector<bool> second = pattern();  // re-arm re-seeds
  EXPECT_EQ(first, second);
  // At p=0.5 over 200 trials both outcomes occur (probability of this
  // failing is 2^-199).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
}

TEST_F(FaultRegistryTest, DelayOnlyPointSlowsButSucceeds) {
  FaultSpec spec;
  spec.delay_micros = 20'000;
  FaultInjection::Instance().Arm("exchange.poll", spec);
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(HitGuarded("exchange.poll").ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            20'000);
}

// ---------------------------------------------------------------------------
// ExchangeBuffer capacity accounting (satellite fix)
// ---------------------------------------------------------------------------

Page MakePageOfBytes(int64_t approx_bytes) {
  // Bigint blocks are 8 bytes/row plus small overhead.
  auto rows = static_cast<size_t>(approx_bytes / 8);
  std::vector<int64_t> values(rows, 7);
  return Page({MakeBigintBlock(std::move(values))});
}

// Incompressible frame of roughly the requested wire size: distinct values
// defeat LZ4 matching, and kNone keeps sizing exact anyway.
PageCodec::Frame MakeFrameOfBytes(int64_t approx_bytes) {
  static const PageCodec codec(
      PageCodecOptions{PageCompression::kNone, true, true});
  return codec.Encode(MakePageOfBytes(approx_bytes));
}

TEST(ExchangeBufferTest, RejectsFrameThatDoesNotFitUnlessEmpty) {
  ExchangeBuffer buffer(/*capacity_bytes=*/1024);
  PageCodec::Frame small = MakeFrameOfBytes(256);
  PageCodec::Frame huge = MakeFrameOfBytes(64 << 10);
  ASSERT_TRUE(buffer.TryEnqueue(small));
  // The old accounting admitted any page while below capacity; a 64 KiB
  // frame must not ride in on top of buffered data.
  EXPECT_FALSE(buffer.TryEnqueue(huge));
  bool finished = false;
  ASSERT_TRUE(buffer.Poll(&finished).has_value());
  // Empty buffer: an oversized frame is admitted so it can ever be shipped.
  EXPECT_TRUE(buffer.TryEnqueue(huge));
  EXPECT_FALSE(buffer.TryEnqueue(MakeFrameOfBytes(8)));
}

TEST(ExchangeBufferTest, UtilizationSaturatesWithoutCapacity) {
  ExchangeBuffer buffer(/*capacity_bytes=*/0);
  EXPECT_EQ(buffer.utilization(), 0.0);
  ASSERT_TRUE(buffer.TryEnqueue(MakeFrameOfBytes(512)));
  // Data buffered against zero capacity is full, not idle — reporting 0
  // here previously hid backpressure from the writer-scaling monitor.
  EXPECT_EQ(buffer.utilization(), 1.0);
}

// ---------------------------------------------------------------------------
// Spiller file hygiene (satellite fix)
// ---------------------------------------------------------------------------

int CountSpillFiles() {
  std::filesystem::path prefix(Spiller::PathPrefix());
  int count = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(prefix.parent_path(), ec)) {
    if (entry.path().filename().string().rfind(
            prefix.filename().string(), 0) == 0) {
      ++count;
    }
  }
  return count;
}

class SpillerTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisarmAll(); }
};

TEST_F(SpillerTest, ConcurrentSpillersDoNotCollideAndCleanUp) {
  ASSERT_EQ(CountSpillFiles(), 0);
  {
    Spiller a;
    Spiller b;
    std::vector<Page> pages;
    pages.push_back(MakePageOfBytes(1024));
    ASSERT_TRUE(a.SpillRun(pages).ok());
    ASSERT_TRUE(b.SpillRun(pages).ok());
    ASSERT_TRUE(a.SpillRun(pages).ok());
    EXPECT_EQ(CountSpillFiles(), 3);
    // Both spillers read their own runs back intact.
    auto run = a.ReadRun(1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->size(), 1u);
    EXPECT_EQ((*run)[0].num_rows(), pages[0].num_rows());
    ASSERT_TRUE(b.ReadRun(0).ok());
  }
  EXPECT_EQ(CountSpillFiles(), 0);
}

TEST_F(SpillerTest, FailedSpillRunLeavesNoFilesBehind) {
  FaultSpec spec;
  spec.error = Status::IOError("injected spill failure");
  FaultInjection::Instance().Arm("spill.write", spec);
  {
    Spiller spiller;
    std::vector<Page> pages;
    pages.push_back(MakePageOfBytes(1024));
    auto run = spiller.SpillRun(pages);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kIOError);
    EXPECT_EQ(spiller.num_runs(), 0);
    EXPECT_FALSE(spiller.ReadRun(0).ok());  // range-checked, not UB
  }
  // The partially-created file is deleted even though the run failed.
  EXPECT_EQ(CountSpillFiles(), 0);
}

// ---------------------------------------------------------------------------
// WorkerMemory: Revoke vs Unregister race (satellite fix)
// ---------------------------------------------------------------------------

TEST(WorkerMemoryTest, UnregisterWaitsForInFlightRevoke) {
  MemoryConfig config;
  config.per_worker_general = 1 << 20;
  config.enable_spill = true;
  config.enable_reserved_pool = false;
  WorkerMemory worker(&config, /*worker_id=*/0);
  QueryMemory holder("holder", &config);
  QueryMemory reserver("reserver", &config);
  ASSERT_TRUE(worker.Reserve(&holder, 1 << 20, /*user=*/true).ok());

  struct SleepyRevocable : Revocable {
    WorkerMemory* worker;
    QueryMemory* query;
    std::atomic<bool> in_revoke{false};
    int64_t Revoke() override {
      in_revoke.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      worker->Release(query, 1 << 20, /*user=*/true);
      in_revoke.store(false);
      return 1 << 20;
    }
  };
  auto revocable = std::make_unique<SleepyRevocable>();
  revocable->worker = &worker;
  revocable->query = &holder;
  worker.RegisterRevocable(&holder, revocable.get());

  // Another query's reservation must revoke the holder to make room.
  std::thread reserve_thread([&] {
    EXPECT_TRUE(worker.Reserve(&reserver, 512 << 10, /*user=*/true).ok());
  });
  while (!revocable->in_revoke.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Unregister while Revoke() is mid-flight: it must block until the call
  // returns, so destroying the revocable right after is safe.
  worker.UnregisterRevocable(revocable.get());
  EXPECT_FALSE(revocable->in_revoke.load());
  revocable.reset();
  reserve_thread.join();
  worker.Release(&reserver, 512 << 10, /*user=*/true);
  EXPECT_EQ(worker.general_used(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end: every fault leaves the engine clean
// ---------------------------------------------------------------------------

class FaultInjectionEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 2;
    options.cluster.executor.threads = 2;
    engine_ = std::make_unique<PrestoEngine>(options);
    engine_->catalog().Register(
        std::make_shared<TpchConnector>("tpch", /*scale=*/0.1));
    engine_->catalog().SetDefault("tpch");
  }
  void TearDown() override { FaultInjection::Instance().DisarmAll(); }

  /// The post-conditions every failure path must restore: no buffered
  /// exchange bytes, no memory-pool reservations, no spill files on disk.
  void ExpectNoLeaks(PrestoEngine& engine) {
    EXPECT_EQ(engine.cluster().exchange().TotalBufferedBytes(), 0);
    for (int i = 0; i < engine.cluster().num_workers(); ++i) {
      EXPECT_EQ(engine.cluster().worker(i).memory().general_used(), 0)
          << "worker " << i;
      EXPECT_EQ(engine.cluster().worker(i).memory().reserved_used(), 0)
          << "worker " << i;
    }
    EXPECT_EQ(CountSpillFiles(), 0);
    // The PR-1 gauges agree with the direct reads.
    std::string metrics = engine.metrics().RenderText();
    EXPECT_NE(metrics.find("presto_exchange_buffered_bytes 0\n"),
              std::string::npos);
    EXPECT_NE(metrics.find("presto_memory_general_used_bytes 0\n"),
              std::string::npos);
    EXPECT_NE(metrics.find("presto_memory_reserved_used_bytes 0\n"),
              std::string::npos);
  }

  /// Runs `sql`, expecting the armed fault to fail it; returns the error.
  Status RunExpectingFailure(const std::string& sql) {
    auto result = engine_->Execute(sql);
    if (!result.ok()) return result.status();
    auto rows = result->FetchAllRows();
    Status final = result->Wait();
    EXPECT_FALSE(rows.ok()) << "query unexpectedly succeeded";
    EXPECT_FALSE(final.ok());
    auto info = engine_->QueryInfoFor(result->query_id());
    EXPECT_TRUE(info.ok());
    if (info.ok()) {
      EXPECT_EQ(info->state, QueryState::kFailed);
    }
    return rows.ok() ? final : rows.status();
  }

  std::unique_ptr<PrestoEngine> engine_;
};

TEST_F(FaultInjectionEndToEndTest, ScanFailureFailsQueryAndCleansUp) {
  FaultSpec spec;
  spec.error = Status::IOError("injected scan failure");
  spec.trigger_after_hits = 3;
  FaultInjection::Instance().Arm("scan.next_page", spec);
  Status status =
      RunExpectingFailure("SELECT count(*) FROM lineitem");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, SplitSourceCreationFailureCleansUp) {
  FaultSpec spec;
  spec.error = Status::IOError("injected connector failure");
  FaultInjection::Instance().Arm("scan.create_source", spec);
  Status status = RunExpectingFailure("SELECT count(*) FROM orders");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, ExchangeEnqueueFailureCleansUp) {
  FaultSpec spec;
  spec.error = Status::IOError("injected shuffle write failure");
  spec.trigger_after_hits = 2;
  FaultInjection::Instance().Arm("exchange.enqueue", spec);
  // GROUP BY forces a repartition exchange between the two workers.
  Status status = RunExpectingFailure(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, ExchangePollFailureCleansUp) {
  FaultSpec spec;
  spec.error = Status::IOError("injected shuffle read failure");
  FaultInjection::Instance().Arm("exchange.poll", spec);
  Status status = RunExpectingFailure(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, FrameDecodeFailureCleansUp) {
  // Stands in for a corrupted wire frame: the decode step between polling a
  // serialized frame and rebuilding the Page fails, and the query must die
  // cleanly rather than crash or leak buffered frames.
  FaultSpec spec;
  spec.error = Status::IOError("injected frame corruption");
  spec.trigger_after_hits = 1;
  FaultInjection::Instance().Arm("exchange.frame_decode", spec);
  Status status = RunExpectingFailure(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, MemoryReserveFailureCleansUp) {
  FaultSpec spec;
  spec.error = Status::ResourceExhausted("injected allocation failure");
  spec.trigger_after_hits = 5;
  FaultInjection::Instance().Arm("memory.reserve", spec);
  Status status = RunExpectingFailure(
      "SELECT orderkey, sum(quantity) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, ExecutorDriverFailureCleansUp) {
  FaultSpec spec;
  spec.error = Status::Internal("injected driver failure");
  spec.trigger_after_hits = 8;
  FaultInjection::Instance().Arm("executor.run_driver", spec);
  Status status = RunExpectingFailure(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, FailureIsDeterministicAcrossRuns) {
  FaultSpec spec;
  spec.error = Status::IOError("injected scan failure");
  spec.probability = 0.5;
  spec.seed = 99;
  for (int run = 0; run < 2; ++run) {
    FaultInjection::Instance().Arm("scan.next_page", spec);
    Status status = RunExpectingFailure("SELECT count(*) FROM lineitem");
    EXPECT_EQ(status.code(), StatusCode::kIOError) << "run " << run;
    ExpectNoLeaks(*engine_);
  }
}

TEST_F(FaultInjectionEndToEndTest, SpillWriteFailureCleansUpSpillFiles) {
  // Spill-forcing configuration: a 1 MiB general pool with ~60k distinct
  // groups reliably triggers revocation (and succeeds when disarmed).
  EngineOptions options;
  options.cluster.num_workers = 1;
  options.cluster.executor.threads = 2;
  options.cluster.memory.per_worker_general = 1 << 20;
  options.cluster.memory.per_query_per_node_user = 64 << 20;
  options.cluster.memory.per_query_per_node_total = 64 << 20;
  options.cluster.memory.enable_spill = true;
  options.cluster.memory.enable_reserved_pool = false;
  PrestoEngine small(options);
  small.catalog().Register(std::make_shared<TpchConnector>("tpch", 4.0));
  small.catalog().SetDefault("tpch");

  FaultSpec spec;
  spec.error = Status::IOError("injected spill write failure");
  FaultInjection::Instance().Arm("spill.write", spec);
  auto rows = small.ExecuteAndFetch(
      "SELECT count(*) FROM (SELECT orderkey, sum(quantity) AS q "
      "FROM lineitem GROUP BY orderkey) t WHERE q >= 0");
  EXPECT_GT(FaultInjection::Instance().fires("spill.write"), 0)
      << "spill path was not exercised";
  ASSERT_FALSE(rows.ok());
  // Either the injected spill error surfaces directly or the reservation
  // that demanded the spill fails as OOM; both must leave no state behind.
  EXPECT_TRUE(rows.status().code() == StatusCode::kIOError ||
              rows.status().code() == StatusCode::kResourceExhausted)
      << rows.status().ToString();
  FaultInjection::Instance().DisarmAll();
  ExpectNoLeaks(small);
}

TEST_F(FaultInjectionEndToEndTest, SpillDecompressFailureCleansUp) {
  // Same spill-forcing setup as above, but the fault fires on readback:
  // the spilled runs were written fine, and the per-frame decode during
  // finalization fails (simulating on-disk corruption caught by the
  // checksum). The query must fail with the injected error and leave no
  // spill files, reservations, or buffered bytes behind.
  EngineOptions options;
  options.cluster.num_workers = 1;
  options.cluster.executor.threads = 2;
  options.cluster.memory.per_worker_general = 1 << 20;
  options.cluster.memory.per_query_per_node_user = 64 << 20;
  options.cluster.memory.per_query_per_node_total = 64 << 20;
  options.cluster.memory.enable_spill = true;
  options.cluster.memory.enable_reserved_pool = false;
  PrestoEngine small(options);
  small.catalog().Register(std::make_shared<TpchConnector>("tpch", 4.0));
  small.catalog().SetDefault("tpch");

  FaultSpec spec;
  spec.error = Status::IOError("injected spill frame corruption");
  FaultInjection::Instance().Arm("spill.decompress", spec);
  auto rows = small.ExecuteAndFetch(
      "SELECT count(*) FROM (SELECT orderkey, sum(quantity) AS q "
      "FROM lineitem GROUP BY orderkey) t WHERE q >= 0");
  EXPECT_GT(FaultInjection::Instance().fires("spill.decompress"), 0)
      << "spill readback path was not exercised";
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().code() == StatusCode::kIOError ||
              rows.status().code() == StatusCode::kResourceExhausted)
      << rows.status().ToString();
  FaultInjection::Instance().DisarmAll();
  ExpectNoLeaks(small);
}

TEST_F(FaultInjectionEndToEndTest, ClientCancelMidQueryReleasesEverything) {
  engine_->catalog().Register(
      std::make_shared<TpchConnector>("bigtpch", /*scale=*/20.0));
  auto result = engine_->Execute("SELECT * FROM bigtpch.lineitem");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto first = result->Next();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  result->Cancel();
  Status final = result->Wait();
  EXPECT_TRUE(final.ok()) << final.ToString();
  auto info = engine_->QueryInfoFor(result->query_id());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, QueryState::kCanceled);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, AbandonedQueryReleasesEverything) {
  engine_->catalog().Register(
      std::make_shared<TpchConnector>("bigtpch", /*scale=*/20.0));
  {
    auto result = engine_->Execute("SELECT * FROM bigtpch.lineitem");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Dropped without Cancel() or Wait(): the destructor must tear the
    // query down and release everything.
  }
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, ExchangeFullStallThenCancelCleansUp) {
  // Tiny exchange buffers plus a slow consumer: producers stall on full
  // buffers (§IV-E2 backpressure) and a cancel must still unwind cleanly.
  EngineOptions options;
  options.cluster.num_workers = 2;
  options.cluster.executor.threads = 2;
  options.cluster.exchange_buffer_bytes = 4 << 10;
  PrestoEngine stalled(options);
  stalled.catalog().Register(std::make_shared<TpchConnector>("tpch", 1.0));
  stalled.catalog().SetDefault("tpch");

  FaultSpec slow;
  slow.delay_micros = 3'000;  // delay-only: consumer crawls, never errors
  FaultInjection::Instance().Arm("exchange.poll", slow);
  auto result = stalled.Execute(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Give producers time to fill the tiny buffers and stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  result->Cancel();
  Status final = result->Wait();
  EXPECT_TRUE(final.ok() || final.code() == StatusCode::kCancelled)
      << final.ToString();
  FaultInjection::Instance().DisarmAll();
  ExpectNoLeaks(stalled);
}

// ---------------------------------------------------------------------------
// End-to-end over the HTTP exchange transport
// ---------------------------------------------------------------------------

class HttpExchangeEndToEndTest : public FaultInjectionEndToEndTest {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 2;
    options.cluster.executor.threads = 2;
    options.cluster.network.transport = TransportMode::kHttp;
    options.cluster.network.http_retry_backoff_micros = 100;
    engine_ = std::make_unique<PrestoEngine>(options);
    engine_->catalog().Register(
        std::make_shared<TpchConnector>("tpch", /*scale=*/0.1));
    engine_->catalog().SetDefault("tpch");
  }
};

TEST_F(HttpExchangeEndToEndTest, SendFailureExhaustsRetriesAndCleansUp) {
  // Every attempt loses the request: the retry budget runs out, the query
  // fails with the transport error, and finalization runs exactly once —
  // no buffered bytes, reservations, or spill files survive.
  FaultSpec spec;
  spec.error = Status::IOError("injected request loss");
  FaultInjection::Instance().Arm("exchange.http_send", spec);
  Status status = RunExpectingFailure(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("retries exhausted"), std::string::npos)
      << status.ToString();
  FaultInjection::Instance().DisarmAll();  // unclog the teardown DELETEs
  ExpectNoLeaks(*engine_);
  EXPECT_GT(engine_->cluster().exchange().http_retries(), 0);
}

TEST_F(HttpExchangeEndToEndTest, LostResponsesAreRetriedToSuccess) {
  // The response is lost three times; the un-acked token makes the re-fetch
  // idempotent, so the query still returns the right answer.
  FaultSpec spec;
  spec.error = Status::IOError("injected response loss");
  spec.max_fires = 3;
  FaultInjection::Instance().Arm("exchange.http_recv", spec);
  auto rows = engine_->ExecuteAndFetch(
      "SELECT count(*), sum(orderkey) FROM lineitem");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(FaultInjection::Instance().fires("exchange.http_recv"), 3);
  EXPECT_GE(engine_->cluster().exchange().http_retries(), 3);
  FaultInjection::Instance().DisarmAll();
  ExpectNoLeaks(*engine_);
}

TEST_F(HttpExchangeEndToEndTest, ServerFaultsAreRetriedToSuccess) {
  FaultSpec spec;
  spec.error = Status::Internal("injected handler failure");
  spec.max_fires = 2;
  FaultInjection::Instance().Arm("exchange.http_server", spec);
  auto rows = engine_->ExecuteAndFetch(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE(engine_->cluster().exchange().http_retries(), 2);
  FaultInjection::Instance().DisarmAll();
  ExpectNoLeaks(*engine_);
}

TEST_F(HttpExchangeEndToEndTest, FrameDecodeFailureCleansUp) {
  // Same corruption drill as the in-process transport, but the frame now
  // crossed a real socket before the decode fails.
  FaultSpec spec;
  spec.error = Status::IOError("injected frame corruption");
  spec.trigger_after_hits = 1;
  FaultInjection::Instance().Arm("exchange.frame_decode", spec);
  Status status = RunExpectingFailure(
      "SELECT orderkey, count(*) FROM lineitem GROUP BY orderkey");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  ExpectNoLeaks(*engine_);
}

TEST_F(FaultInjectionEndToEndTest, ExplainAnalyzeStillWorksAfterFailure) {
  // Driver teardown at finalization caches a last stats snapshot; stats
  // queries after a failure must not crash or return garbage.
  FaultSpec spec;
  spec.error = Status::IOError("injected scan failure");
  spec.trigger_after_hits = 3;
  FaultInjection::Instance().Arm("scan.next_page", spec);
  auto result = engine_->Execute("SELECT count(*) FROM lineitem");
  ASSERT_TRUE(result.ok());
  auto rows = result->FetchAllRows();
  EXPECT_FALSE(rows.ok());
  (void)result->Wait();
  auto info = engine_->QueryInfoFor(result->query_id());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, QueryState::kFailed);
  EXPECT_GT(info->stats.num_tasks, 0);
}

}  // namespace
}  // namespace presto
