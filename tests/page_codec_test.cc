#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "vector/block_builder.h"
#include "vector/encoded_block.h"
#include "vector/page_codec.h"

namespace presto {
namespace {

constexpr TypeKind kAllTypes[] = {TypeKind::kBigint, TypeKind::kDouble,
                                  TypeKind::kVarchar, TypeKind::kBoolean,
                                  TypeKind::kDate};

Value SampleValue(TypeKind type, int64_t i) {
  switch (type) {
    case TypeKind::kBigint:
      return Value::Bigint(i * 31 - 7);
    case TypeKind::kDouble:
      return Value::Double(static_cast<double>(i) * 0.75 - 3.0);
    case TypeKind::kVarchar:
      return Value::Varchar("value-" + std::to_string(i % 5));
    case TypeKind::kBoolean:
      return Value::Boolean(i % 2 == 0);
    case TypeKind::kDate:
      return Value::Date(18000 + i);
    default:
      PRESTO_CHECK(false);
      return Value::Null(type);
  }
}

// Flat (or varchar-flat) block of `rows` sample values; every third row
// null when `with_nulls`.
BlockPtr BaseBlock(TypeKind type, int64_t rows, bool with_nulls) {
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    values.push_back(with_nulls && i % 3 == 0 ? Value::Null(type)
                                              : SampleValue(type, i));
  }
  return MakeBlockFromValues(type, values);
}

bool BlocksEqual(const Block& a, const Block& b) {
  if (a.type() != b.type() || a.size() != b.size()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    Value va = a.GetValue(i);
    Value vb = b.GetValue(i);
    if (va.is_null() != vb.is_null()) return false;
    if (!va.is_null() && va.Compare(vb) != 0) return false;
  }
  return true;
}

// ---- encoding x type round-trip matrix ----

struct MatrixCase {
  BlockEncoding encoding;
  TypeKind type;
  bool with_nulls;
};

class CodecMatrix : public ::testing::TestWithParam<MatrixCase> {};

BlockPtr WrapAs(BlockEncoding encoding, TypeKind type, bool with_nulls,
                int64_t rows) {
  switch (encoding) {
    case BlockEncoding::kFlat:
    case BlockEncoding::kVarchar:
      return BaseBlock(type, rows, with_nulls);
    case BlockEncoding::kRle:
      return std::make_shared<RleBlock>(BaseBlock(type, 1, with_nulls), rows);
    case BlockEncoding::kDictionary: {
      BlockPtr dict = BaseBlock(type, 5, with_nulls);
      std::vector<int32_t> indices;
      for (int64_t i = 0; i < rows; ++i) {
        indices.push_back(static_cast<int32_t>(i % 5));
      }
      return std::make_shared<DictionaryBlock>(std::move(dict),
                                               std::move(indices));
    }
    case BlockEncoding::kLazy: {
      BlockPtr inner = BaseBlock(type, rows, with_nulls);
      return std::make_shared<LazyBlock>(type, rows,
                                         [inner] { return inner; });
    }
  }
  PRESTO_CHECK(false);
  return nullptr;
}

TEST_P(CodecMatrix, RoundTripPreservesValuesAndEncoding) {
  const MatrixCase& c = GetParam();
  constexpr int64_t kRows = 40;
  BlockPtr block = WrapAs(c.encoding, c.type, c.with_nulls, kRows);
  Page page({block});
  for (PageCompression compression :
       {PageCompression::kNone, PageCompression::kLz4}) {
    PageCodec codec(PageCodecOptions{compression, true, true});
    PageCodec::Frame frame = codec.Encode(page);
    EXPECT_EQ(frame.rows, kRows);
    auto restored = codec.Decode(frame);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ASSERT_EQ(restored->num_columns(), 1u);
    EXPECT_TRUE(BlocksEqual(*block, *restored->block(0)));
    // Dictionary and RLE survive the wire; lazy is forced at the boundary
    // and arrives as its materialized encoding (never kLazy).
    if (c.encoding == BlockEncoding::kRle ||
        c.encoding == BlockEncoding::kDictionary) {
      EXPECT_EQ(restored->block(0)->encoding(), c.encoding);
    } else {
      EXPECT_NE(restored->block(0)->encoding(), BlockEncoding::kLazy);
    }
  }
}

std::vector<MatrixCase> AllMatrixCases() {
  std::vector<MatrixCase> cases;
  for (TypeKind type : kAllTypes) {
    for (bool with_nulls : {false, true}) {
      cases.push_back({type == TypeKind::kVarchar ? BlockEncoding::kVarchar
                                                  : BlockEncoding::kFlat,
                       type, with_nulls});
      cases.push_back({BlockEncoding::kRle, type, with_nulls});
      cases.push_back({BlockEncoding::kDictionary, type, with_nulls});
      cases.push_back({BlockEncoding::kLazy, type, with_nulls});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEncodingsAllTypes, CodecMatrix,
                         ::testing::ValuesIn(AllMatrixCases()));

// ---- degenerate shapes ----

TEST(PageCodecTest, AllNullBlocksRoundTrip) {
  std::vector<BlockPtr> blocks;
  for (TypeKind type : kAllTypes) {
    std::vector<Value> values(17, Value::Null(type));
    blocks.push_back(MakeBlockFromValues(type, values));
  }
  Page page(std::move(blocks));
  PageCodec codec(PageCodecOptions{PageCompression::kLz4, true, true});
  auto restored = codec.Decode(codec.Encode(page));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_columns(), std::size(kAllTypes));
  for (size_t c = 0; c < restored->num_columns(); ++c) {
    for (int64_t r = 0; r < 17; ++r) {
      EXPECT_TRUE(restored->block(c)->IsNull(r));
    }
  }
}

TEST(PageCodecTest, EmptyAndColumnlessPagesRoundTrip) {
  PageCodec codec;
  // Zero rows, one column.
  Page empty({MakeBigintBlock({})});
  auto restored = codec.Decode(codec.Encode(empty));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_rows(), 0);
  EXPECT_EQ(restored->num_columns(), 1u);
  // Rows but zero columns (count(*) intermediate pages).
  Page columnless({}, 123);
  restored = codec.Decode(codec.Encode(columnless));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_rows(), 123);
  EXPECT_EQ(restored->num_columns(), 0u);
}

// ---- dictionary sharing ----

TEST(PageCodecTest, SharedDictionaryWrittenOnceAndRestoredShared) {
  BlockPtr dict = MakeVarcharBlock(
      {"one-rather-long-dictionary-entry", "two-rather-long-dictionary-entry",
       "three-rather-long-dictionary-entry"});
  std::vector<int32_t> idx1, idx2;
  for (int32_t i = 0; i < 200; ++i) {
    idx1.push_back(i % 3);
    idx2.push_back((i + 1) % 3);
  }
  Page shared({std::make_shared<DictionaryBlock>(dict, idx1),
               std::make_shared<DictionaryBlock>(dict, idx2)});
  // Same data, but each column carries its own copy of the dictionary.
  BlockPtr dict_copy = MakeVarcharBlock(
      {"one-rather-long-dictionary-entry", "two-rather-long-dictionary-entry",
       "three-rather-long-dictionary-entry"});
  Page unshared({std::make_shared<DictionaryBlock>(dict, idx1),
                 std::make_shared<DictionaryBlock>(dict_copy, idx2)});

  PageCodec codec(PageCodecOptions{PageCompression::kNone, true, true});
  PageCodec::Frame shared_frame = codec.Encode(shared);
  PageCodec::Frame unshared_frame = codec.Encode(unshared);
  // Dedup-by-pointer: the shared dictionary is written once plus a
  // back-reference, so the frame is smaller than two inline copies.
  EXPECT_LT(shared_frame.wire_bytes(), unshared_frame.wire_bytes());

  auto restored = codec.Decode(shared_frame);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_columns(), 2u);
  const auto* d0 = dynamic_cast<const DictionaryBlock*>(restored->block(0).get());
  const auto* d1 = dynamic_cast<const DictionaryBlock*>(restored->block(1).get());
  ASSERT_NE(d0, nullptr);
  ASSERT_NE(d1, nullptr);
  // One decoded dictionary instance, shared by both columns.
  EXPECT_EQ(d0->dictionary().get(), d1->dictionary().get());
  EXPECT_TRUE(BlocksEqual(*shared.block(0), *restored->block(0)));
  EXPECT_TRUE(BlocksEqual(*shared.block(1), *restored->block(1)));
}

// ---- lazy boundary semantics ----

TEST(PageCodecTest, LazyBlockLoadedExactlyOnceAcrossEncodes) {
  auto loads = std::make_shared<int>(0);
  BlockPtr inner = MakeBigintBlock({10, 20, 30});
  auto lazy = std::make_shared<LazyBlock>(TypeKind::kBigint, 3,
                                          [loads, inner] {
                                            ++*loads;
                                            return inner;
                                          });
  Page page({lazy});
  PageCodec codec;
  EXPECT_EQ(*loads, 0);
  PageCodec::Frame first = codec.Encode(page);
  EXPECT_EQ(*loads, 1);
  // The load is memoized: re-encoding the same page does not re-load.
  PageCodec::Frame second = codec.Encode(page);
  EXPECT_EQ(*loads, 1);
  EXPECT_EQ(first.bytes, second.bytes);
  auto restored = codec.Decode(first);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->block(0)->GetValue(2), Value::Bigint(30));
}

// ---- compression ----

TEST(PageCodecTest, Lz4ShrinksRepetitiveData) {
  std::vector<std::string> values(2000, "aaaaaaaaaaaaaaaaaaaaaaaa");
  Page page({MakeVarcharBlock(values)});
  PageCodec plain(PageCodecOptions{PageCompression::kNone, false, true});
  PageCodec packed(PageCodecOptions{PageCompression::kLz4, false, true});
  PageCodec::Frame plain_frame = plain.Encode(page);
  PageCodec::Frame packed_frame = packed.Encode(page);
  EXPECT_EQ(packed_frame.raw_bytes, plain_frame.raw_bytes);
  EXPECT_LT(packed_frame.wire_bytes(), plain_frame.wire_bytes() / 4);
  auto restored = packed.Decode(packed_frame);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_rows(), 2000);
  EXPECT_EQ(restored->block(0)->GetValue(1999),
            Value::Varchar("aaaaaaaaaaaaaaaaaaaaaaaa"));
}

// ---- corruption handling ----

TEST(PageCodecTest, BitFlipFailsChecksumAsIOError) {
  PageCodec codec(PageCodecOptions{PageCompression::kNone, true, true});
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 100; ++i) values.push_back(i);
  PageCodec::Frame frame = codec.Encode(Page({MakeBigintBlock(values)}));
  // Flip one payload byte past the 24-byte frame header.
  std::string corrupt = frame.bytes;
  ASSERT_GT(corrupt.size(), 64u);
  corrupt[40] ^= 0x01;
  size_t offset = 0;
  auto restored = codec.Decode(corrupt, &offset);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kIOError);
}

TEST(PageCodecTest, TruncationAndBadMagicAreErrorsNotCrashes) {
  PageCodec codec;
  PageCodec::Frame frame = codec.Encode(Page({MakeBigintBlock({1, 2, 3})}));
  // Truncated at every prefix length: must error, never read past the end.
  for (size_t len = 0; len < frame.bytes.size(); len += 7) {
    size_t offset = 0;
    auto restored = codec.Decode(
        std::string_view(frame.bytes.data(), len), &offset);
    EXPECT_FALSE(restored.ok()) << "prefix length " << len;
  }
  std::string bad_magic = frame.bytes;
  bad_magic[0] ^= 0xFF;
  size_t offset = 0;
  EXPECT_FALSE(codec.Decode(bad_magic, &offset).ok());
}

// ---- multi-frame streams (the spill file shape) ----

TEST(PageCodecTest, ConsecutiveFramesDecodeFromOneBuffer) {
  PageCodec codec(PageCodecOptions{PageCompression::kLz4, true, true});
  Page a({MakeBigintBlock({1, 2, 3})});
  Page b({MakeBigintBlock({4, 5})});
  std::string stream = codec.Encode(a).bytes + codec.Encode(b).bytes;
  size_t offset = 0;
  auto first = codec.Decode(stream, &offset);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->num_rows(), 3);
  auto second = codec.Decode(stream, &offset);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->num_rows(), 2);
  EXPECT_EQ(offset, stream.size());
  EXPECT_EQ(second->block(0)->GetValue(1), Value::Bigint(5));
}

}  // namespace
}  // namespace presto
