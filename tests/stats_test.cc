#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "connectors/tpch/tpch_connector.h"
#include "engine/engine.h"
#include "stats/metrics_registry.h"

namespace presto {
namespace {

/// Records every event; the tests assert exactly-once delivery.
class RecordingListener : public EventListener {
 public:
  void QueryCreated(const QueryCreatedEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    created_.push_back(event);
  }
  void QueryCompleted(const QueryCompletedEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    completed_.push_back(event);
  }

  std::vector<QueryCreatedEvent> created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return created_;
  }
  std::vector<QueryCompletedEvent> completed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
  }
  int completed_count(const std::string& query_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& e : completed_) {
      if (e.query_id == query_id) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::vector<QueryCreatedEvent> created_;
  std::vector<QueryCompletedEvent> completed_;
};

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.cluster.num_workers = 2;
    options.cluster.executor.threads = 2;
    engine_ = std::make_unique<PrestoEngine>(options);
    engine_->catalog().Register(
        std::make_shared<TpchConnector>("tpch", /*scale=*/0.1));
    listener_ = std::make_shared<RecordingListener>();
    engine_->AddEventListener(listener_);
  }

  std::unique_ptr<PrestoEngine> engine_;
  std::shared_ptr<RecordingListener> listener_;
};

TEST_F(StatsTest, QueryInfoRoundTripMatchesFetchedRows) {
  auto result = engine_->Execute("SELECT nationkey, name FROM tpch.nation");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string query_id = result->query_id();
  auto rows = result->FetchAllRows();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 25u);  // nation is 25 rows at every scale

  auto info = engine_->QueryInfoFor(query_id);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->state, QueryState::kFinished);
  EXPECT_TRUE(info->final_status.ok());
  EXPECT_EQ(info->query_id, query_id);
  // The scan read all 25 rows and the root sink delivered all of them.
  EXPECT_EQ(info->stats.raw_input_rows, 25);
  EXPECT_EQ(info->stats.output_rows, 25);
  EXPECT_GT(info->stats.num_tasks, 0);
  EXPECT_GT(info->stats.num_drivers, 0);
  EXPECT_FALSE(info->fragment_task_counts.empty());
  EXPECT_GT(info->planning_nanos, 0);
  EXPECT_GT(info->execution_nanos, 0);
  EXPECT_GE(info->end_to_end_nanos,
            info->planning_nanos + info->execution_nanos);

  // Per-operator breakdown: a scan operator exists and counted its output.
  bool saw_scan = false;
  for (const auto& op : info->stats.MergedOperators()) {
    if (op.label == "scan") {
      saw_scan = true;
      EXPECT_EQ(op.output_rows, 25);
      EXPECT_GT(op.instances, 0);
    }
  }
  EXPECT_TRUE(saw_scan);
}

TEST_F(StatsTest, ListQueriesIncludesEveryStatement) {
  ASSERT_TRUE(engine_->ExecuteAndFetch("SELECT 1").ok());
  ASSERT_TRUE(
      engine_->ExecuteAndFetch("SELECT count(*) FROM tpch.region").ok());
  auto queries = engine_->ListQueries();
  ASSERT_GE(queries.size(), 2u);
  for (const auto& info : queries) {
    EXPECT_EQ(info.state, QueryState::kFinished);
    EXPECT_FALSE(info.sql.empty());
  }
}

TEST_F(StatsTest, ExplainAnalyzeAnnotatesPlanWithActuals) {
  auto text = engine_->ExplainAnalyze(
      "SELECT regionkey, count(*) FROM tpch.nation GROUP BY regionkey");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Fragment"), std::string::npos);
  EXPECT_NE(text->find("est:"), std::string::npos);
  EXPECT_NE(text->find("actual"), std::string::npos);
  EXPECT_NE(text->find("25 rows"), std::string::npos);  // scan actuals
  EXPECT_NE(text->find("Query:"), std::string::npos);

  // The statement form goes through ExecuteAndFetch as one VARCHAR row.
  auto rows = engine_->ExecuteAndFetch(
      "EXPLAIN ANALYZE SELECT count(*) FROM tpch.nation");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  ASSERT_EQ((*rows)[0].size(), 1u);
  EXPECT_NE((*rows)[0][0].AsVarchar().find("actual"), std::string::npos);
}

TEST_F(StatsTest, PlainExplainStillReturnsEstimatesOnly) {
  auto rows = engine_->ExecuteAndFetch("EXPLAIN SELECT * FROM tpch.nation");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsVarchar().find("actual"), std::string::npos);
}

TEST_F(StatsTest, ListenerFiresExactlyOnceOnSuccess) {
  auto rows = engine_->ExecuteAndFetch("SELECT count(*) FROM tpch.nation");
  ASSERT_TRUE(rows.ok());
  auto created = listener_->created();
  ASSERT_EQ(created.size(), 1u);
  EXPECT_EQ(created[0].sql, "SELECT count(*) FROM tpch.nation");
  auto completed = listener_->completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].query_id, created[0].query_id);
  EXPECT_TRUE(completed[0].final_status.ok());
  EXPECT_FALSE(completed[0].cancelled);
  EXPECT_EQ(completed[0].stats.output_rows, 1);
  EXPECT_GT(completed[0].execution_nanos, 0);
}

TEST_F(StatsTest, ListenerFiresExactlyOnceOnPlanningFailure) {
  auto result = engine_->Execute("SELECT * FROM tpch.no_such_table");
  ASSERT_FALSE(result.ok());
  auto completed = listener_->completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_FALSE(completed[0].final_status.ok());
  EXPECT_FALSE(completed[0].cancelled);
  // The failure is visible through the tracker too.
  auto queries = engine_->ListQueries();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].state, QueryState::kFailed);
  EXPECT_FALSE(queries[0].final_status.ok());
}

TEST_F(StatsTest, ListenerFiresExactlyOnceOnCancel) {
  // Big enough that the scan cannot finish before Cancel() lands.
  engine_->catalog().Register(
      std::make_shared<TpchConnector>("bigtpch", /*scale=*/20.0));
  auto result = engine_->Execute("SELECT * FROM bigtpch.lineitem");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string query_id = result->query_id();
  result->Cancel();
  // Client cancellation is cooperative teardown, not a failure: Wait()
  // reports OK (same mechanism as LIMIT early-exit) and the lifecycle
  // carries the canceled flag.
  Status final = result->Wait();
  EXPECT_TRUE(final.ok()) << final.ToString();

  auto info = engine_->QueryInfoFor(query_id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, QueryState::kCanceled);
  EXPECT_EQ(listener_->completed_count(query_id), 1);
  auto completed = listener_->completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_TRUE(completed[0].cancelled);
}

TEST_F(StatsTest, QueryInfoForUnknownIdIsNotFound) {
  auto info = engine_->QueryInfoFor("query_12345");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
}

TEST_F(StatsTest, EngineMetricsCountCompletedQueries) {
  ASSERT_TRUE(engine_->ExecuteAndFetch("SELECT 1").ok());
  ASSERT_TRUE(engine_->ExecuteAndFetch("SELECT 2").ok());
  std::string text = engine_->metrics().RenderText();
  EXPECT_NE(text.find("presto_queries_created_total 2"), std::string::npos);
  EXPECT_NE(text.find("presto_queries_finished_total 2"), std::string::npos);
  EXPECT_NE(text.find("presto_queries_failed_total 0"), std::string::npos);
  EXPECT_NE(text.find("# TYPE presto_queries_running gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE presto_query_execution_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("presto_query_execution_seconds_count 2"),
            std::string::npos);
}

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry registry;
  Counter* counter =
      registry.RegisterCounter("test_events_total", "Events seen");
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->value(), 5);
  // Registration is idempotent by name.
  EXPECT_EQ(registry.RegisterCounter("test_events_total", "dup"), counter);

  registry.RegisterGauge("test_depth", "Queue depth", [] { return 7.0; });
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP test_events_total Events seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_events_total 5"), std::string::npos);
  EXPECT_NE(text.find("test_depth 7"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.RegisterHistogram("test_latency", "Latency", {0.5, 1});
  hist->Observe(0.2);
  hist->Observe(0.7);
  hist->Observe(5.0);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("test_latency_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderTextParsesAsPrometheusExposition) {
  MetricsRegistry registry;
  registry.RegisterCounter("a_total", "A")->Increment();
  registry.RegisterGauge("b_gauge", "B", [] { return 1.5; });
  registry.RegisterHistogram("c_seconds", "C", {0.1, 1})->Observe(0.3);

  // Every sample line must be "<name>[{labels}] <float>"; every sample's
  // metric must have been announced by # HELP and # TYPE lines first.
  std::istringstream in(registry.RenderText());
  std::string line;
  std::string announced;  // metric name from the preceding # TYPE
  int samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream header(line.substr(7));
      std::string type;
      ASSERT_TRUE(static_cast<bool>(header >> announced >> type));
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    if (size_t brace = name.find('{'); brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    // Histogram samples append _bucket/_sum/_count to the announced name.
    EXPECT_EQ(name.rfind(announced, 0), 0u) << line;
    size_t parsed = 0;
    (void)std::stod(line.substr(space + 1), &parsed);
    EXPECT_EQ(parsed, line.size() - space - 1) << line;
    ++samples;
  }
  EXPECT_GE(samples, 7);  // 1 counter + 1 gauge + 5 histogram lines
}

}  // namespace
}  // namespace presto
