#ifndef PRESTOCPP_SCHEDULE_TASK_RECOVERY_H_
#define PRESTOCPP_SCHEDULE_TASK_RECOVERY_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "common/status.h"

namespace presto {

/// One task slot the coordinator wants re-created after a worker died
/// (ISSUE 7). `generation` is the incarnation whose failure triggered the
/// request — a request whose generation no longer matches the slot's
/// current one was already handled by an earlier recovery round.
struct RecoveryRequest {
  int fragment = -1;
  int task = -1;
  int generation = 0;
  Status cause = Status::OK();
};

/// Computes the set of task slots that must be re-created after
/// `dead_worker` died, as the fixpoint of three rules over the fragment
/// dataflow graph (`inputs_of[f]` = producer fragments feeding f):
///
///   (a) a slot hosted on the dead worker restarts if its output is still
///       needed — some consumer slot is unfinished or itself restarting
///       (for the root fragment: the coordinator has not finished the
///       result stream). This covers both unfinished victims and finished
///       ones whose retained replay buffers died with the process.
///   (b) an unfinished slot on a live worker restarts when any producer
///       fragment feeding it has a restarting slot: the replacement
///       producer re-runs with intra-task parallelism, so its frame
///       sequence is not reproducible and a partially-consumed stream
///       cannot be resumed exactly.
///
/// Victims whose output nobody needs anymore (every consumer finished,
/// e.g. producers cut off by LIMIT) are deliberately pruned: restarting
/// them would stall the replacement on a full output buffer that no one
/// ever drains.
///
/// Returned pairs are (fragment, task), in fragment-major order.
std::vector<std::pair<int, int>> ComputeRestartSet(
    const std::vector<std::vector<int>>& placement,
    const std::vector<std::vector<bool>>& finished,
    const std::vector<std::vector<int>>& inputs_of, int root_fragment,
    bool root_needed, int dead_worker);

/// Serializes recovery work onto one background thread: requests are
/// deduplicated by (fragment, task, generation) and handed to the handler
/// in arrival order. The handler runs without any TaskRecoveryManager lock
/// held, so it may freely call back into Enqueue (a replacement that dies
/// in turn) or block on coordinator mutexes.
class TaskRecoveryManager {
 public:
  using Handler = std::function<void(const RecoveryRequest&)>;

  explicit TaskRecoveryManager(Handler handler)
      : handler_(std::move(handler)) {}
  ~TaskRecoveryManager() { Stop(); }

  TaskRecoveryManager(const TaskRecoveryManager&) = delete;
  TaskRecoveryManager& operator=(const TaskRecoveryManager&) = delete;

  /// Queues a request (starting the worker thread on first use). Duplicate
  /// (fragment, task, generation) triples — the liveness listener and the
  /// task client's own death verdict racing each other — collapse to one.
  void Enqueue(RecoveryRequest request);

  /// Stops the worker thread after it drained the queue. Idempotent. The
  /// owner must guarantee the handler can still make progress (no pending
  /// hold depends on an un-processed request) before destroying itself.
  void Stop();

 private:
  void Loop();

  Handler handler_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RecoveryRequest> queue_;
  std::set<std::tuple<int, int, int>> seen_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_TASK_RECOVERY_H_
