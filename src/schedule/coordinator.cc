#include "schedule/coordinator.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <tuple>

#include "common/stopwatch.h"
#include "metadata/metadata_manager.h"
#include "plan/plan_serde.h"

namespace presto {

namespace {

// Collects the TableScanNodes of a fragment (by node id).
void CollectScans(const PlanNodePtr& node,
                  std::vector<std::shared_ptr<const TableScanNode>>* out) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    out->push_back(std::static_pointer_cast<const TableScanNode>(node));
  }
  for (const auto& c : node->children()) CollectScans(c, out);
}

bool ContainsTableWrite(const PlanNodePtr& node) {
  if (node->kind() == PlanNodeKind::kTableWrite) return true;
  for (const auto& c : node->children()) {
    if (ContainsTableWrite(c)) return true;
  }
  return false;
}

}  // namespace

Result<int> ChooseSplitTarget(
    const std::vector<std::shared_ptr<TaskClient>>& tasks, int node_id) {
  // Shortest queue among alive candidates; a task that has not reported a
  // queue depth yet (a remote task whose first status is still in flight)
  // only serves as a fallback so startup does not stall.
  int fallback = -1;
  int best = -1;
  size_t best_size = SIZE_MAX;
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (!tasks[t]->worker_alive()) continue;
    if (fallback < 0) fallback = static_cast<int>(t);
    auto size = tasks[t]->SplitQueueSize(node_id);
    if (size.has_value() && *size < best_size) {
      best_size = *size;
      best = static_cast<int>(t);
    }
  }
  if (best >= 0) return best;
  if (fallback >= 0) return fallback;
  return Status::IOError(
      "no task with a live worker to take splits of scan node " +
      std::to_string(node_id));
}

QueryExecution::~QueryExecution() {
  // Detach from the failure detector before anything else: a death
  // callback delivered mid-teardown would walk members being destroyed.
  // RemoveDeathListener blocks until an in-flight callback returns.
  if (liveness_listener_ >= 0 && cluster_ != nullptr) {
    cluster_->liveness().RemoveDeathListener(liveness_listener_);
  }
  // Tear down any still-running tasks (client abandoned the query) and wait
  // for them: executor callbacks and operators reference our members. Only
  // a launched execution may wait — if Execute() failed before registering
  // the tasks, no callback will ever fire and Wait() would hang.
  if (launched_) {
    bool running;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running = remaining_tasks_ > 0;
    }
    if (running) Cancel(Status::Cancelled("query abandoned"));
    (void)Wait();
  }
  // Wait() needed the recovery thread alive (it discharges accounting
  // holds); stop it only now, before members it touches are destroyed. If
  // Execute() bailed before completing its launch loop, release the
  // launch gate first so a queued RunRecovery cannot block Stop() forever.
  {
    std::lock_guard<std::mutex> lock(mu_);
    launch_complete_ = true;
  }
  done_cv_.notify_all();
  if (recovery_ != nullptr) recovery_->Stop();
  // Same for the speculation thread: Wait() may have needed a queued
  // promotion to discharge a won replica's held callback.
  if (speculation_ != nullptr) speculation_->Stop();
  stop_split_thread_.store(true);
  if (split_thread_.joinable()) split_thread_.join();
  stop_fetch_thread_.store(true);
  if (result_fetch_thread_.joinable()) result_fetch_thread_.join();
  if (cluster_ != nullptr) {
    // Backstop only: normal finalization (OnTaskDone on the last task)
    // already removed this query's exchange state. RemoveQuery is
    // idempotent, and unlaunched executions still need the cleanup.
    cluster_->exchange().RemoveQuery(query_id_);
  }
  // Execute() can fail after admission but before launch (no live workers,
  // fragment serialization, task Initialize); no task callback will ever
  // reach FinalizeLocked() then, so the admission slot must be released
  // here or repeated failures wedge max_concurrent_queries. For launched
  // executions Wait() + the thread joins above guarantee finalization
  // already ran (and cleared on_complete_), making this a no-op.
  std::function<void()> release_slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!finalized_ && on_complete_) {
      release_slot = std::move(on_complete_);
      on_complete_ = nullptr;
    }
  }
  if (release_slot) release_slot();
}

Status QueryExecution::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_tasks_ == 0; });
  return final_status_;
}

void QueryExecution::Cancel(const Status& reason) {
  // Client cancel, an internal error, and destructor abandonment can race;
  // the latch makes teardown exactly-once with the first reason winning.
  std::call_once(cancel_once_, [this, &reason] {
    if (reason.code() == StatusCode::kCancelled) {
      client_cancelled_.store(true);
    }
    memory_->Kill(reason);
    results_.Finish(reason);
    // Remote tasks share no memory context with the coordinator, so the
    // kill must travel over the wire.
    if (process_mode_) AbortAllTasks();
  });
}

void QueryExecution::AbortAllTasks() {
  std::vector<std::shared_ptr<TaskClient>> snapshot;
  {
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    for (auto& fragment_tasks : tasks_) {
      for (auto& task : fragment_tasks) snapshot.push_back(task);
    }
    // Speculative replicas race outside tasks_ but must die with the query.
    for (auto& [slot, replica] : spec_replicas_) {
      snapshot.push_back(replica.client);
    }
  }
  for (auto& task : snapshot) task->Abort();
}

std::vector<TaskProgress> QueryExecution::TaskProgressSnapshot() const {
  std::vector<TaskProgress> progress;
  std::lock_guard<std::mutex> tlock(tasks_mu_);
  for (size_t f = 0; f < tasks_.size(); ++f) {
    for (size_t t = 0; t < tasks_[f].size(); ++t) {
      const std::shared_ptr<TaskClient>& task = tasks_[f][t];
      if (task == nullptr) continue;
      TaskProgress entry;
      entry.fragment_id = static_cast<int>(f);
      entry.task_index = static_cast<int>(t);
      if (f < placement_.size() && t < placement_[f].size()) {
        entry.worker = placement_[f][t];
      }
      if (f < generations_.size() && t < generations_[f].size()) {
        entry.generation = generations_[f][t];
      }
      // Leaf locks (the client's status cache); safe under tasks_mu_.
      entry.rows_out = task->rows_out();
      entry.progress_age_micros = task->progress_age_micros();
      progress.push_back(entry);
    }
  }
  return progress;
}

QueryStats QueryExecution::StatsSnapshot() const {
  std::vector<std::shared_ptr<TaskClient>> snapshot;
  {
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    for (const auto& fragment_tasks : tasks_) {
      for (const auto& task : fragment_tasks) snapshot.push_back(task);
    }
  }
  std::vector<TaskStats> task_stats;
  int64_t peak = memory_->peak_user();
  for (const auto& task : snapshot) {
    task_stats.push_back(task->CollectStats());
    peak = std::max(peak, task->peak_user_memory_bytes());
  }
  return BuildQueryStats(std::move(task_stats), peak);
}

int64_t QueryExecution::total_cpu_nanos() const {
  std::lock_guard<std::mutex> tlock(tasks_mu_);
  int64_t total = 0;
  for (const auto& fragment_tasks : tasks_) {
    for (const auto& task : fragment_tasks) {
      total += task->cpu_nanos();
    }
  }
  return total;
}

int QueryExecution::active_writers(int fragment) const {
  if (fragment < 0 ||
      static_cast<size_t>(fragment) >= active_writers_.size()) {
    return -1;
  }
  const auto& counter = active_writers_[static_cast<size_t>(fragment)];
  return counter == nullptr ? -1 : counter->load();
}

void QueryExecution::OnTaskDone(int fragment, int task, int generation,
                                const Status& status) {
  // NOTE: once remaining_tasks_ hits zero, a waiter in Wait() may destroy
  // this object — and the engine around it — the moment mu_ is released, so
  // ALL finalization (resource release, exchange cleanup, lifecycle, the
  // admission-slot callback) must complete under the lock; a waiter cannot
  // wake before the unlock. Touch no members after the scope ends.
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t f = static_cast<size_t>(fragment);
    size_t t = static_cast<size_t>(task);
    if (recovery_enabled_) {
      bool stale = false;
      bool absorbed = false;
      bool replica_won = false;
      bool replica_lost = false;
      std::shared_ptr<TaskClient> losing_replica;
      {
        std::lock_guard<std::mutex> tlock(tasks_mu_);
        auto rit = spec_replicas_.find({fragment, task});
        if (rit != spec_replicas_.end() &&
            rit->second.generation == generation) {
          // A speculative replica's terminal callback (ISSUE 9). The
          // registry entry — not the generation table — identifies it:
          // replicas run at generations_[f][t]+1 without bumping the table
          // until promotion.
          if (speculation_ != nullptr && status.ok() && !rit->second.won &&
              !slot_finished_[f][t] && !finished_ && !memory_->killed()) {
            // The replica finished first. Hold the callback (no accounting
            // yet, mirroring the recovery holds): the promotion job decides
            // commit-vs-abandon atomically against the result stream and
            // any concurrent recovery round.
            rit->second.won = true;
            replica_won = true;
          } else {
            // Failed, cancelled, or the original beat it: speculation
            // lost. The client is parked like any superseded client (its
            // poll thread may be the very thread delivering this).
            rit->second.client->MarkSuperseded();
            superseded_clients_.push_back(rit->second.client);
            spec_replicas_.erase(rit);
            replica_lost = true;
          }
        } else if (generation != generations_[f][t]) {
          stale = true;
        } else if (!status.ok() && !finished_ && !memory_->killed() &&
                   status.code() != StatusCode::kCancelled &&
                   !slot_recovering_[f][t] && tasks_[f][t]->worker_lost() &&
                   retry_counts_[f][t] < max_task_retries_) {
          // Worker-loss failure with retry budget left: absorb it into a
          // recovery request. The slot keeps its place in remaining_tasks_
          // (the "hold") until the recovery thread launches a replacement
          // or gives up and fails the query.
          slot_recovering_[f][t] = true;
          absorbed = true;
        } else if (status.ok()) {
          slot_finished_[f][t] = true;
          auto ait = spec_replicas_.find({fragment, task});
          if (ait != spec_replicas_.end() && !ait->second.won) {
            // The original out-raced its replica: abort the loser with a
            // task-scoped kCancelled; its callback settles above.
            losing_replica = ait->second.client;
          }
        }
      }
      if (replica_won) {
        QueryExecution* self = this;
        speculation_->Enqueue([self, fragment, task, generation] {
          self->RunPromotion(fragment, task, generation);
        });
        return;
      }
      if (replica_lost) {
        --remaining_tasks_;
        if (lifecycle_ != nullptr && lifecycle_->trace() != nullptr) {
          lifecycle_->trace()->RecordInstant(
              "coordinator", "speculation_lose", 0, 0,
              {{"fragment", std::to_string(fragment)},
               {"task", std::to_string(task)},
               {"generation", std::to_string(generation)}});
        }
        FinishIfDrainedLocked();
        done_cv_.notify_all();
        return;
      }
      if (losing_replica != nullptr) losing_replica->Abort();
      if (stale) {
        // A superseded incarnation settled: the recovery round that
        // replaced it already re-accounted the slot, so only the callback
        // count drops here. Its status — success or failure — is moot.
        --remaining_tasks_;
        FinishIfDrainedLocked();
        done_cv_.notify_all();
        return;
      }
      if (absorbed) {
        recovery_pause_.store(true);
        recovery_->Enqueue({fragment, task, generation, status});
        return;
      }
    }
    --remaining_tasks_;
    --fragment_remaining_[f];
    if (fragment_remaining_[f] == 0) {
      fragment_done_[f] = true;
    }
    if (!status.ok() && !finished_ &&
        status.code() != StatusCode::kCancelled) {
      final_status_ = status;
      finished_ = true;
      results_.Finish(status);
      memory_->Kill(status);
      // Stop the surviving remote tasks too; killing the coordinator-side
      // memory context does not reach them.
      if (process_mode_) AbortAllTasks();
    }
    if (fragment == plan_.root_id && fragment_done_[f] && !finished_ &&
        !process_mode_) {
      // Root produced everything: complete the result stream and tear down
      // any still-running upstream producers (e.g. after LIMIT). In
      // process mode the result-fetch thread finishes the stream instead,
      // once it drained the root task's output buffer.
      finished_ = true;
      results_.Finish(Status::OK());
      memory_->Kill(Status::Cancelled("query completed"));
    }
    FinishIfDrainedLocked();
    done_cv_.notify_all();
  }
}

void QueryExecution::FinishIfDrainedLocked() {
  if (remaining_tasks_ != 0) return;
  if (!finished_ && process_mode_ && final_status_.ok() &&
      !results_.finished()) {
    // A successful out-of-process query: the root task finished, but
    // its output buffer may still hold pages the result-fetch thread
    // has not pulled yet. Finishing the stream (or releasing the
    // worker-side tasks, which drops that buffer) now would lose
    // them, so the fetch thread finishes the stream and runs
    // FinalizeLocked() once the buffer reports complete.
    defer_finalize_ = true;
  } else {
    if (!finished_) {
      finished_ = true;
      results_.Finish(final_status_);
    }
    FinalizeLocked();
  }
}

void QueryExecution::DischargeRecoveryHoldsLocked() {
  for (size_t f = 0; f < slot_recovering_.size(); ++f) {
    for (size_t t = 0; t < slot_recovering_[f].size(); ++t) {
      if (!slot_recovering_[f][t]) continue;
      slot_recovering_[f][t] = false;
      --remaining_tasks_;
      --fragment_remaining_[f];
      if (fragment_remaining_[f] == 0) fragment_done_[f] = true;
    }
  }
}

void QueryExecution::OnWorkerDeath(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_ || finalized_ || defer_finalize_ || memory_->killed()) {
    return;
  }
  std::lock_guard<std::mutex> tlock(tasks_mu_);
  // Every slot hosted on the dead worker becomes a recovery request —
  // including finished ones, whose retained replay buffers died with the
  // process; RunRecovery prunes the ones nobody still needs.
  for (size_t f = 0; f < placement_.size(); ++f) {
    for (size_t t = 0; t < placement_[f].size(); ++t) {
      if (placement_[f][t] != worker || slot_recovering_[f][t]) continue;
      recovery_pause_.store(true);
      recovery_->Enqueue(
          {static_cast<int>(f), static_cast<int>(t), generations_[f][t],
           Status::IOError("worker " + std::to_string(worker) +
                           " lost: missed heartbeats past liveness "
                           "timeout")});
    }
  }
}

void QueryExecution::RunRecovery(const RecoveryRequest& request) {
  // Enqueuers set the pause too, but the previous request of a multi-slot
  // round cleared it on completion; re-assert it here so the flag is
  // reliably up BEFORE this round swaps any client. Together with the
  // split loop re-checking it under tasks_mu_, that makes the pause a hard
  // barrier: no split can be delivered to a fresh client in the window
  // between the swap and the journal replay (where the replay would then
  // deliver it a second time).
  recovery_pause_.store(true);
  Stopwatch timer;
  TraceRecorder* trace =
      lifecycle_ != nullptr ? lifecycle_->trace().get() : nullptr;
  int64_t span_start = trace != nullptr ? trace->NowNanos() : 0;

  struct Replacement {
    int fragment;
    int task;
    int generation;
    std::shared_ptr<TaskClient> client;
  };
  std::vector<Replacement> replacements;
  bool failed_query = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A worker can die while Execute()'s launch loop is still issuing the
    // gen-0 creates; recovering before the loop finishes would mutate
    // tasks_ under its feet (and double-Launch replacements). Wait it out.
    done_cv_.wait(lock, [this] { return launch_complete_; });
    if (finished_ || finalized_ || defer_finalize_ || memory_->killed()) {
      // The query settled (or is settling) — nothing to recover; convert
      // any absorbed holds back into completions so Wait() can drain.
      {
        std::lock_guard<std::mutex> tlock(tasks_mu_);
        DischargeRecoveryHoldsLocked();
        DischargeSpeculationLocked();
      }
      FinishIfDrainedLocked();
      done_cv_.notify_all();
      recovery_pause_.store(false);
      return;
    }
    Status cause = request.cause;
    std::vector<std::pair<int, int>> restart;
    int dead = -1;
    {
      std::lock_guard<std::mutex> tlock(tasks_mu_);
      size_t rf = static_cast<size_t>(request.fragment);
      size_t rt = static_cast<size_t>(request.task);
      if (request.generation != generations_[rf][rt]) {
        // An earlier round already replaced this incarnation.
        recovery_pause_.store(false);
        return;
      }
      dead = placement_[rf][rt];
      std::vector<std::vector<int>> inputs_of(plan_.fragments.size());
      for (const auto& fragment : plan_.fragments) {
        inputs_of[static_cast<size_t>(fragment.id)] = fragment.inputs;
      }
      restart = ComputeRestartSet(placement_, slot_finished_, inputs_of,
                                  plan_.root_id, !results_.finished(), dead);
      if (restart.empty()) {
        // Nobody needs the dead worker's output anymore (e.g. LIMIT cut
        // its consumers off). Settle the requesting slot's hold, if any.
        if (slot_recovering_[rf][rt]) {
          slot_recovering_[rf][rt] = false;
          --remaining_tasks_;
          --fragment_remaining_[rf];
          if (fragment_remaining_[rf] == 0) fragment_done_[rf] = true;
        }
      } else {
        // Retry budget: every slot that dies with its worker consumes one
        // retry; closure-collateral restarts on live workers do not.
        for (const auto& [f, t] : restart) {
          if (placement_[static_cast<size_t>(f)][static_cast<size_t>(t)] ==
                  dead &&
              retry_counts_[static_cast<size_t>(f)]
                           [static_cast<size_t>(t)] >= max_task_retries_) {
            failed_query = true;
            break;
          }
        }
        std::vector<int> alive;
        for (int w = 0; w < cluster_->num_workers(); ++w) {
          if (w != dead && cluster_->liveness().IsAlive(w)) {
            alive.push_back(w);
          }
        }
        if (!failed_query && alive.empty()) {
          failed_query = true;
          cause = Status::IOError("no live worker left to host replacement "
                                  "tasks (" + cause.message() + ")");
        }
        bool restarts_root = false;
        for (const auto& [f, t] : restart) {
          if (f == plan_.root_id) restarts_root = true;
        }
        std::unique_lock<std::mutex> flock(fetch_mu_, std::defer_lock);
        if (!failed_query && restarts_root) {
          // May wait for an in-flight result batch to commit its frame
          // count; a batch committed after this lock lands is either
          // counted here or dropped by the fetch loop's epoch check.
          flock.lock();
          if (root_frames_consumed_ > 0) {
            failed_query = true;
            cause = Status::IOError(
                "worker " + std::to_string(dead) + " lost after " +
                std::to_string(root_frames_consumed_) +
                " result frames were already delivered to the client; the "
                "root stage is not replayable (" + cause.message() + ")");
          }
        }
        if (!failed_query) {
          size_t cursor = 0;
          for (const auto& [fi, ti] : restart) {
            size_t f = static_cast<size_t>(fi);
            size_t t = static_cast<size_t>(ti);
            if (placement_[f][t] == dead) {
              // Dead-worker victims move to a live worker; collateral
              // restarts stay put (their worker is fine, only their
              // input streams went stale).
              placement_[f][t] = alive[cursor++ % alive.size()];
              ++retry_counts_[f][t];
            }
            if (auto sit = spec_replicas_.find({fi, ti});
                sit != spec_replicas_.end()) {
              // A replica racing a restarting slot loses: the restart
              // replaces the slot wholesale. Bump the table past the
              // replica's generation first so neither its pending callback
              // nor the replacement can collide with it, and discharge a
              // won replica's held callback (its queued promotion later
              // no-ops on the missing entry).
              generations_[f][t] =
                  std::max(generations_[f][t], sit->second.generation);
              if (sit->second.won) --remaining_tasks_;
              sit->second.client->MarkSuperseded();
              sit->second.client->Abort();
              superseded_clients_.push_back(sit->second.client);
              spec_replicas_.erase(sit);
            }
            ++generations_[f][t];
            if (slot_recovering_[f][t]) {
              // The hold becomes the replacement's outstanding callback.
              slot_recovering_[f][t] = false;
            } else {
              // Still running (its stale callback will subtract later) or
              // finished (its completion was already counted): either way
              // the replacement adds one outstanding callback.
              ++remaining_tasks_;
            }
            if (slot_finished_[f][t]) {
              slot_finished_[f][t] = false;
              ++fragment_remaining_[f];
              fragment_done_[f] = false;
            }
          }
          if (restarts_root) {
            ++root_epoch_;
            size_t root = static_cast<size_t>(plan_.root_id);
            root_fetch_port_ = cluster_->http_port(placement_[root][0]);
            root_fetch_generation_ = generations_[root][0];
          }
          if (flock.owns_lock()) flock.unlock();
          for (const auto& [fi, ti] : restart) {
            size_t f = static_cast<size_t>(fi);
            size_t t = static_cast<size_t>(ti);
            // The old client stays alive until its callback settles, but
            // must never feed splits or writer updates to the worker-side
            // replacement entry that now owns the task id.
            tasks_[f][t]->MarkSuperseded();
            superseded_clients_.push_back(tasks_[f][t]);
            auto fresh = MakeRemoteClientLocked(fi, ti);
            tasks_[f][t] = fresh;
            replacements.push_back({fi, ti, generations_[f][t], fresh});
          }
          if (retries_counter_ != nullptr) {
            retries_counter_->Increment(
                static_cast<int64_t>(replacements.size()));
          }
        }
      }
    }
    if (failed_query) {
      final_status_ = cause;
      finished_ = true;
      results_.Finish(cause);
      memory_->Kill(cause);
      AbortAllTasks();
      {
        std::lock_guard<std::mutex> tlock(tasks_mu_);
        DischargeRecoveryHoldsLocked();
        DischargeSpeculationLocked();
      }
    }
    FinishIfDrainedLocked();
    done_cv_.notify_all();
  }
  if (failed_query || replacements.empty()) {
    recovery_pause_.store(false);
    return;
  }

  // Launch the replacements (create RPCs) outside every lock: a launch
  // failure re-enters OnTaskDone, which takes mu_.
  std::vector<std::tuple<int, int, int, Status>> launch_failures;
  for (const auto& r : replacements) {
    QueryExecution* raw = this;
    int f = r.fragment;
    int t = r.task;
    int gen = r.generation;
    Status launched = r.client->Launch([raw, f, t, gen](Status status) {
      raw->OnTaskDone(f, t, gen, status);
    });
    if (!launched.ok()) {
      launch_failures.emplace_back(f, t, gen, launched);
    }
  }

  // Replay the journal: every split the dead incarnation (and everything
  // restarted with it) ever received, plus the no-more-splits markers the
  // scheduler already sent. Holding tasks_mu_ keeps the split loop from
  // interleaving fresh assignments mid-replay.
  {
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    for (const auto& r : replacements) {
      size_t f = static_cast<size_t>(r.fragment);
      size_t t = static_cast<size_t>(r.task);
      if (generations_[f][t] != r.generation) continue;  // superseded again
      for (const auto& [node, entries] : journal_[f][t].splits) {
        for (const auto& [split, connector] : entries) {
          r.client->AddSplit(node, split, connector);
        }
      }
      (void)r.client->FlushSplits();
      for (int node : no_more_splits_[f]) {
        r.client->NoMoreSplits(node);
      }
    }
  }
  recovery_pause_.store(false);

  for (const auto& [f, t, gen, launched] : launch_failures) {
    OnTaskDone(f, t, gen,
               Status::IOError("replacement task create failed: " +
                               launched.message()));
  }

  if (recovery_histogram_ != nullptr) {
    recovery_histogram_->Observe(timer.ElapsedSeconds());
  }
  if (trace != nullptr) {
    trace->RecordSpan("coordinator", "task_recovery", 0, 0, span_start,
                      trace->NowNanos() - span_start,
                      {{"slots", std::to_string(replacements.size())},
                       {"trigger_fragment",
                        std::to_string(request.fragment)},
                       {"trigger_task", std::to_string(request.task)}});
  }
}

std::shared_ptr<TaskClient> QueryExecution::MakeRemoteClientLocked(
    int fragment_id, int task_index) {
  size_t f = static_cast<size_t>(fragment_id);
  size_t t = static_cast<size_t>(task_index);
  return MakeRemoteClientForLocked(fragment_id, task_index,
                                   placement_[f][t], generations_[f][t]);
}

std::shared_ptr<TaskClient> QueryExecution::MakeRemoteClientForLocked(
    int fragment_id, int task_index, int worker, int generation) {
  const ClusterConfig& config = cluster_->config();
  size_t f = static_cast<size_t>(fragment_id);
  const PlanFragment& fragment = plan_.fragments[f];

  TaskSpec spec;
  spec.query_id = query_id_;
  spec.fragment_id = fragment_id;
  spec.task_index = task_index;
  spec.num_tasks = task_counts_[f];
  spec.consumer_partitions =
      fragment.consumer >= 0
          ? task_counts_[static_cast<size_t>(fragment.consumer)]
          : 1;
  spec.worker_id = worker;
  spec.generation = generation;
  for (int input : fragment.inputs) {
    spec.source_task_counts[input] =
        task_counts_[static_cast<size_t>(input)];
  }

  TaskCreateRequest create;
  create.spec = spec;
  create.fragment = fragment_jsons_[f];
  create.eval_mode = config.eval_mode;
  create.exchange_buffer_bytes = config.exchange_buffer_bytes;
  create.max_drivers_per_pipeline = config.max_drivers_per_pipeline;
  create.retain_exchange_frames = recovery_enabled_;
  const auto& writer_counter = active_writers_[f];
  create.active_writers =
      writer_counter != nullptr ? writer_counter->load() : -1;
  create.emit_results_via_exchange = fragment_id == plan_.root_id;
  for (int input : fragment.inputs) {
    size_t in = static_cast<size_t>(input);
    for (int it = 0; it < task_counts_[in]; ++it) {
      create.endpoints.push_back(
          {input, it,
           cluster_->http_port(placement_[in][static_cast<size_t>(it)]),
           generations_[in][static_cast<size_t>(it)]});
    }
  }

  HttpTaskClient::Options options;
  options.task_port = cluster_->task_port(worker);
  options.liveness = &cluster_->liveness();
  // Cross-process trace shipping (ISSUE 10): when the query is traced, ask
  // the worker to record its spans and merge every shipped batch into the
  // query's recorder, labeled per hosting worker.
  if (config.ship_worker_trace && lifecycle_ != nullptr &&
      lifecycle_->trace() != nullptr) {
    create.enable_trace = true;
    options.trace = lifecycle_->trace().get();
    size_t w = static_cast<size_t>(worker);
    if (w < trace_shipped_counters_.size()) {
      options.trace_shipped = trace_shipped_counters_[w];
    }
    if (w < trace_dropped_counters_.size()) {
      options.trace_dropped = trace_dropped_counters_[w];
    }
  }
  return std::make_shared<HttpTaskClient>(spec, create.ToJson(), options);
}

void QueryExecution::DischargeSpeculationLocked() {
  for (auto it = spec_replicas_.begin(); it != spec_replicas_.end();
       it = spec_replicas_.erase(it)) {
    SpecReplica& replica = it->second;
    replica.client->MarkSuperseded();
    replica.client->Abort();
    superseded_clients_.push_back(replica.client);
    if (replica.won) {
      // Its terminal callback already fired and was held; discharge it
      // here (the queued promotion no-ops on the missing entry). A still-
      // racing replica's pending callback settles itself instead: with
      // the entry gone it lands on the stale path (its generation never
      // entered the generations_ table).
      --remaining_tasks_;
    }
  }
}

void QueryExecution::SpeculationTick() {
  struct ReplicaLaunch {
    int fragment;
    int task;
    int generation;
    std::shared_ptr<TaskClient> client;
    bool launch_failed = false;
    Status launch_status = Status::OK();
  };
  std::vector<ReplicaLaunch> launches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!launch_complete_ || finished_ || finalized_ || defer_finalize_ ||
        memory_->killed()) {
      return;
    }
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    // Budget counts CONCURRENT replicas: a settled race frees its slot.
    SpeculationPolicy policy = speculation_policy_;
    policy.max_speculative_tasks -= static_cast<int>(spec_replicas_.size());
    if (policy.max_speculative_tasks <= 0) return;
    std::vector<int> alive;
    for (int w = 0; w < cluster_->num_workers(); ++w) {
      if (cluster_->liveness().IsAlive(w)) alive.push_back(w);
    }
    if (alive.size() < 2) return;
    // Scale the stall floor by the observed heartbeat RTT: on a slow
    // control plane the status caches themselves lag, and a healthy task
    // must not look stalled just because its progress reports do.
    if (Histogram* rtt = cluster_->liveness().rtt_histogram()) {
      Histogram::Snapshot rtt_snapshot = rtt->snapshot();
      if (rtt_snapshot.count > 0) {
        policy.min_stall_micros = std::max(
            policy.min_stall_micros,
            static_cast<int64_t>(8.0 * rtt_snapshot.sum /
                                 static_cast<double>(rtt_snapshot.count)));
      }
    }
    // Sample every slot — finished siblings included, so a fragment whose
    // fast tasks already completed still anchors the quantile the stalled
    // one must be measured against.
    std::vector<TaskProgressSample> samples;
    for (size_t f = 0; f < tasks_.size(); ++f) {
      for (size_t t = 0; t < tasks_[f].size(); ++t) {
        TaskProgressSample sample;
        sample.fragment = static_cast<int>(f);
        sample.task = static_cast<int>(t);
        const auto& client = tasks_[f][t];
        sample.progress = static_cast<double>(client->rows_out());
        sample.stall_micros = client->progress_age_micros();
        sample.speculatable =
            !slot_finished_[f][t] && !slot_recovering_[f][t] &&
            speculated_.count({static_cast<int>(f),
                               static_cast<int>(t)}) == 0 &&
            client->worker_alive();
        samples.push_back(sample);
      }
    }
    std::vector<std::pair<int, int>> stragglers =
        PickStragglers(samples, policy, static_cast<int>(alive.size()));
    size_t cursor = 0;
    for (const auto& [fi, ti] : stragglers) {
      size_t f = static_cast<size_t>(fi);
      size_t t = static_cast<size_t>(ti);
      // The replica must run on a different live worker than the original.
      int target = -1;
      for (size_t i = 0; i < alive.size(); ++i) {
        int w = alive[(cursor + i) % alive.size()];
        if (w != placement_[f][t]) {
          target = w;
          cursor = cursor + i + 1;
          break;
        }
      }
      if (target < 0) continue;
      const int replica_generation = generations_[f][t] + 1;
      auto client =
          MakeRemoteClientForLocked(fi, ti, target, replica_generation);
      SpecReplica replica;
      replica.generation = replica_generation;
      replica.worker = target;
      replica.client = client;
      spec_replicas_[{fi, ti}] = replica;
      speculated_.insert({fi, ti});
      // The replica's own terminal callback joins the drain count; every
      // exit path (win, loss, recovery absorption, query failure) settles
      // exactly this +1.
      ++remaining_tasks_;
      launches.push_back({fi, ti, replica_generation, client});
      if (speculations_counter_ != nullptr) {
        speculations_counter_->Increment();
      }
      if (lifecycle_ != nullptr && lifecycle_->trace() != nullptr) {
        lifecycle_->trace()->RecordInstant(
            "coordinator", "task_speculate", 0, 0,
            {{"fragment", std::to_string(fi)},
             {"task", std::to_string(ti)},
             {"generation", std::to_string(replica_generation)},
             {"worker", std::to_string(target)}});
      }
    }
  }
  if (launches.empty()) return;

  // Create RPCs outside every lock (a failure re-enters OnTaskDone).
  for (auto& launch : launches) {
    QueryExecution* self = this;
    const int f = launch.fragment;
    const int t = launch.task;
    const int gen = launch.generation;
    Status launched = launch.client->Launch([self, f, t, gen](Status status) {
      self->OnTaskDone(f, t, gen, status);
    });
    if (!launched.ok()) {
      launch.launch_failed = true;
      launch.launch_status = launched;
    }
  }

  // Journal replay: everything the original ever received, then mark the
  // replica live for split-loop forwarding — atomically under tasks_mu_,
  // so no split can be both replayed and forwarded.
  {
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    for (const auto& launch : launches) {
      if (launch.launch_failed) continue;
      auto it = spec_replicas_.find({launch.fragment, launch.task});
      if (it == spec_replicas_.end() ||
          it->second.generation != launch.generation) {
        continue;  // already settled (e.g. a recovery round absorbed it)
      }
      size_t f = static_cast<size_t>(launch.fragment);
      size_t t = static_cast<size_t>(launch.task);
      for (const auto& [node, entries] : journal_[f][t].splits) {
        for (const auto& [split, connector] : entries) {
          launch.client->AddSplit(node, split, connector);
        }
      }
      (void)launch.client->FlushSplits();
      for (int node : no_more_splits_[f]) {
        launch.client->NoMoreSplits(node);
      }
      it->second.replayed = true;
    }
  }

  for (const auto& launch : launches) {
    if (!launch.launch_failed) continue;
    // No callback will ever fire for this replica; settle it through the
    // lost path directly.
    OnTaskDone(launch.fragment, launch.task, launch.generation,
               Status::IOError("speculative replica create failed: " +
                               launch.launch_status.message()));
  }
}

void QueryExecution::RunPromotion(int fragment, int task, int generation) {
  // Same hard barrier as a recovery round: the split loop must not feed a
  // client between the swap below and its (already-complete) replay state.
  recovery_pause_.store(true);
  struct Replacement {
    int fragment;
    int task;
    int generation;
    std::shared_ptr<TaskClient> client;
  };
  std::vector<Replacement> replacements;
  std::shared_ptr<TaskClient> losing_original;
  bool promoted = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return launch_complete_; });
    size_t f = static_cast<size_t>(fragment);
    size_t t = static_cast<size_t>(task);
    const bool settled =
        finished_ || finalized_ || defer_finalize_ || memory_->killed();
    {
      std::lock_guard<std::mutex> tlock(tasks_mu_);
      auto rit = spec_replicas_.find({fragment, task});
      if (rit == spec_replicas_.end() ||
          rit->second.generation != generation || !rit->second.won) {
        // A recovery round or teardown already settled this replica (and
        // discharged its held callback).
        recovery_pause_.store(false);
        return;
      }
      // Decide commit vs abandon. Promotion restarts every unfinished
      // task of every fragment transitively consuming the promoted one:
      // their RemoteSources are bound to the losing original's buffers
      // and their own partial frame sequences are not reproducible — the
      // same collateral rule recovery applies (DESIGN.md §13).
      bool illegal = settled || slot_finished_[f][t] || slot_recovering_[f][t];
      std::vector<std::pair<int, int>> restart;
      bool restarts_root = fragment == plan_.root_id;
      if (!illegal) {
        std::vector<std::vector<int>> consumers_of(plan_.fragments.size());
        for (const auto& frag : plan_.fragments) {
          for (int input : frag.inputs) {
            consumers_of[static_cast<size_t>(input)].push_back(frag.id);
          }
        }
        std::set<int> affected;
        std::vector<int> worklist{fragment};
        while (!worklist.empty()) {
          int g = worklist.back();
          worklist.pop_back();
          for (int consumer : consumers_of[static_cast<size_t>(g)]) {
            if (affected.insert(consumer).second) worklist.push_back(consumer);
          }
        }
        for (int af : affected) {
          size_t a = static_cast<size_t>(af);
          for (size_t at = 0; at < slot_finished_[a].size(); ++at) {
            if (slot_finished_[a][at]) continue;
            if (slot_recovering_[a][at]) {
              // A recovery round owns part of the closure; bail out of the
              // promotion rather than fight it (the original keeps
              // running — slow but correct).
              illegal = true;
              break;
            }
            restart.emplace_back(af, static_cast<int>(at));
            if (af == plan_.root_id) restarts_root = true;
          }
          if (illegal) break;
        }
      }
      std::unique_lock<std::mutex> flock(fetch_mu_, std::defer_lock);
      if (!illegal && restarts_root) {
        flock.lock();
        // Frames already delivered to the client cannot be un-delivered;
        // a root restart is only legal before the first one.
        if (root_frames_consumed_ > 0) illegal = true;
      }
      if (illegal) {
        // Abandon the win: abort the replica and let the original keep
        // running. Its held callback settles as a plain count drop.
        SpecReplica replica = rit->second;
        spec_replicas_.erase(rit);
        replica.client->MarkSuperseded();
        replica.client->Abort();
        superseded_clients_.push_back(replica.client);
        --remaining_tasks_;
        if (lifecycle_ != nullptr && lifecycle_->trace() != nullptr) {
          lifecycle_->trace()->RecordInstant(
              "coordinator", "speculation_lose", 0, 0,
              {{"fragment", std::to_string(fragment)},
               {"task", std::to_string(task)},
               {"generation", std::to_string(generation)},
               {"reason", "promotion_illegal"}});
        }
      } else {
        promoted = true;
        SpecReplica replica = rit->second;
        spec_replicas_.erase(rit);
        // The replica becomes the slot's incarnation; its held callback
        // becomes the slot's completion.
        losing_original = tasks_[f][t];
        losing_original->MarkSuperseded();
        superseded_clients_.push_back(losing_original);
        tasks_[f][t] = replica.client;
        generations_[f][t] = replica.generation;
        placement_[f][t] = replica.worker;
        slot_finished_[f][t] = true;
        --remaining_tasks_;
        --fragment_remaining_[f];
        if (fragment_remaining_[f] == 0) fragment_done_[f] = true;
        // Collateral consumer restarts, exactly like RunRecovery's: they
        // stay on their workers (the same-id higher-generation create
        // supersedes the old worker-side entry in place).
        for (const auto& [ci, cti] : restart) {
          size_t cf = static_cast<size_t>(ci);
          size_t ct = static_cast<size_t>(cti);
          ++generations_[cf][ct];
          // The replacement's callback joins the count; the still-running
          // original settles later through the stale path.
          ++remaining_tasks_;
          tasks_[cf][ct]->MarkSuperseded();
          superseded_clients_.push_back(tasks_[cf][ct]);
          auto fresh = MakeRemoteClientLocked(ci, cti);
          tasks_[cf][ct] = fresh;
          replacements.push_back({ci, cti, generations_[cf][ct], fresh});
        }
        if (restarts_root) {
          ++root_epoch_;
          size_t root = static_cast<size_t>(plan_.root_id);
          root_fetch_port_ = cluster_->http_port(placement_[root][0]);
          root_fetch_generation_ = generations_[root][0];
        }
        if (wins_counter_ != nullptr) wins_counter_->Increment();
        if (lifecycle_ != nullptr && lifecycle_->trace() != nullptr) {
          lifecycle_->trace()->RecordInstant(
              "coordinator", "speculation_win", 0, 0,
              {{"fragment", std::to_string(fragment)},
               {"task", std::to_string(task)},
               {"generation", std::to_string(generation)},
               {"collateral", std::to_string(restart.size())}});
        }
      }
    }
    // The losing original gets a task-scoped kCancelled: the worker kills
    // its drivers and retires the entry, and the coordinator-side callback
    // settles through the stale path (its generation is now behind).
    if (losing_original != nullptr) losing_original->Abort();
    FinishIfDrainedLocked();
    done_cv_.notify_all();
  }
  if (!promoted || replacements.empty()) {
    recovery_pause_.store(false);
    return;
  }

  // Launch the collateral replacements outside every lock, then replay
  // their journals — the same tail as a recovery round.
  std::vector<std::tuple<int, int, int, Status>> launch_failures;
  for (const auto& r : replacements) {
    QueryExecution* self = this;
    const int rf = r.fragment;
    const int rt = r.task;
    const int rgen = r.generation;
    Status launched = r.client->Launch([self, rf, rt, rgen](Status status) {
      self->OnTaskDone(rf, rt, rgen, status);
    });
    if (!launched.ok()) {
      launch_failures.emplace_back(rf, rt, rgen, launched);
    }
  }
  {
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    for (const auto& r : replacements) {
      size_t rf = static_cast<size_t>(r.fragment);
      size_t rt = static_cast<size_t>(r.task);
      if (generations_[rf][rt] != r.generation) continue;  // superseded again
      for (const auto& [node, entries] : journal_[rf][rt].splits) {
        for (const auto& [split, connector] : entries) {
          r.client->AddSplit(node, split, connector);
        }
      }
      (void)r.client->FlushSplits();
      for (int node : no_more_splits_[rf]) {
        r.client->NoMoreSplits(node);
      }
    }
  }
  recovery_pause_.store(false);
  for (const auto& [rf, rt, rgen, launched] : launch_failures) {
    OnTaskDone(rf, rt, rgen,
               Status::IOError("post-promotion restart create failed: " +
                               launched.message()));
  }
}

void QueryExecution::FinalizeLocked() {
  if (finalized_) return;
  finalized_ = true;
  // Every task callback has fired, so nothing references the drivers
  // (or, over HTTP, the worker-side task entries) anymore. Release
  // them now — regardless of whether the query finished, failed, was
  // cancelled, or was abandoned — returning every memory-pool
  // reservation, dropping exchange-buffer references, and deleting
  // spill files. A final stats snapshot is cached first so EXPLAIN
  // ANALYZE still works after teardown. (Recovery swaps hold mu_ too,
  // so iterating tasks_ under mu_ alone is race-free here.)
  for (auto& fragment_tasks : tasks_) {
    for (auto& task : fragment_tasks) task->ReleaseResources();
  }
  // Superseded pre-recovery clients are NOT destroyed here: the last stale
  // callback is delivered on its own client's poll thread, which may be
  // the very thread running this finalization — destroying that client
  // would join the current thread with itself. ~QueryExecution (a waiter
  // thread) frees them instead. No ReleaseResources for them either —
  // their task ids now belong to the replacements released above.
  if (cluster_ != nullptr) cluster_->exchange().RemoveQuery(query_id_);
  // Finalize the lifecycle before mu_ is released: a Wait()-er may
  // destroy this object the moment the lock drops, and QueryInfoFor
  // after Wait() must observe the terminal state.
  if (lifecycle_ != nullptr) {
    lifecycle_->Finalize(final_status_, client_cancelled_.load(),
                         StatsSnapshot());
  }
  // Release the admission slot before the unlock too: it only takes
  // the coordinator's admission mutex, which is never held while an
  // execution's mu_ is acquired, so there is no lock cycle.
  if (on_complete_) {
    on_complete_();
    on_complete_ = nullptr;
  }
}

void QueryExecution::FinalizeIfDeferred() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!defer_finalize_ || finalized_) return;
    finished_ = true;
    // Belt and braces: the fetch thread normally finished the stream
    // before getting here; if it exited on an error, Cancel() already
    // finished it with that error (first-wins makes this a no-op then).
    results_.Finish(final_status_);
    FinalizeLocked();
  }
  done_cv_.notify_all();
}

void QueryExecution::ResultFetchLoop() {
  int my_epoch;
  int port;
  int generation;
  {
    std::lock_guard<std::mutex> flock(fetch_mu_);
    my_epoch = root_epoch_;
    port = root_fetch_port_;
    generation = root_fetch_generation_;
  }
  ExchangeHttpClient fetcher(
      &cluster_->exchange(), port,
      StreamId{query_id_, plan_.root_id, /*task=*/0, /*partition=*/0},
      generation);
  TraceRecorder* trace =
      lifecycle_ != nullptr ? lifecycle_->trace().get() : nullptr;
  if (trace != nullptr) fetcher.SetTraceContext(trace, 0, 0);
  // Fetch errors are tolerated for this long while recovery is enabled:
  // the window covers the liveness verdict on a dead root worker plus the
  // recovery round that re-points us at the replacement.
  const int64_t patience_micros =
      cluster_->config().heartbeat_timeout_micros * 3 + 2'000'000;
  Stopwatch error_timer;
  bool error_window_open = false;
  while (!stop_fetch_thread_.load() && !results_.finished()) {
    {
      std::lock_guard<std::mutex> flock(fetch_mu_);
      if (root_epoch_ != my_epoch) {
        // Recovery moved the root task: re-open against the replacement,
        // back at token 0. The fetcher's internal delivered count may
        // exceed root_frames_consumed_ — a batch Fetch() returned but the
        // epoch check below dropped was counted there yet never reached
        // the client — so the replay watermark must be the committed
        // count (zero: a root restart is only legal at zero consumed
        // frames), not the fetcher's.
        my_epoch = root_epoch_;
        fetcher.ResetForReplacement(root_fetch_port_,
                                    root_fetch_generation_,
                                    root_frames_consumed_);
        error_window_open = false;
      }
    }
    auto fetched = fetcher.Fetch();
    if (!fetched.ok()) {
      if (recovery_enabled_) {
        if (!error_window_open) {
          error_window_open = true;
          error_timer.Reset();
        }
        if (error_timer.ElapsedMicros() < patience_micros) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
      }
      Cancel(fetched.status());
      break;
    }
    error_window_open = false;
    // Commit the batch to the current epoch BEFORE delivering any page:
    // recovery may only restart the root while the consumed count is
    // zero, so the count must be visible first — and a batch that raced a
    // root restart is dropped (the replacement replays from token 0).
    {
      std::lock_guard<std::mutex> flock(fetch_mu_);
      if (root_epoch_ != my_epoch) continue;
      root_frames_consumed_ += fetched->frame_count - fetched->skip_frames;
    }
    cluster_->exchange().RecordTransfer(
        static_cast<int64_t>(fetched->body.size()));
    size_t offset = 0;
    int64_t to_skip = fetched->skip_frames;
    bool decode_failed = false;
    while (offset < fetched->body.size()) {
      auto page = cluster_->exchange().codec().Decode(fetched->body, &offset);
      if (!page.ok()) {
        Cancel(page.status());
        decode_failed = true;
        break;
      }
      if (to_skip > 0) {
        // Replayed frame already delivered before a reset: decode (to
        // advance the offset) and drop.
        --to_skip;
        continue;
      }
      // TryPush consumes its argument even on failure, so retry with
      // copies; the bounded queue is the client-backpressure point.
      Page decoded = std::move(*page);
      while (!stop_fetch_thread_.load() && !results_.finished()) {
        Page attempt = decoded;
        if (results_.TryPush(std::move(attempt))) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (decode_failed) break;
    if (fetched->complete) {
      // With recovery enabled the root buffer is retained like any other;
      // FinalizeLocked()'s task release tears it down with the query.
      if (!recovery_enabled_) (void)fetcher.DeleteBuffer();
      // First-wins with Cancel()/task-failure finalization: whichever
      // reason reached the queue first sticks.
      results_.Finish(Status::OK());
      // Tear down upstream producers still running after a short-circuit
      // root (LIMIT): their buffers have lost their only consumer.
      AbortAllTasks();
      break;
    }
    if (fetched->body.empty()) {
      // Long-poll timeout, or the root task's create RPC is still in
      // flight (the exchange answers token 0 with an empty batch then).
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // If the last task completed while we were still draining, OnTaskDone
  // left end-of-query teardown to us.
  FinalizeIfDeferred();
}

void QueryExecution::SplitSchedulingLoop() {
  const ClusterConfig& config = cluster_->config();
  TraceRecorder* trace =
      lifecycle_ != nullptr ? lifecycle_->trace().get() : nullptr;
  // Pending split sources: (fragment, scan node id, source, exhausted).
  struct PendingSource {
    int fragment;
    int node_id;
    std::shared_ptr<const TableScanNode> scan;
    Connector* connector;
    std::unique_ptr<SplitSource> source;
    bool exhausted = false;
    /// Splits pulled but not yet assignable (no live task at the time);
    /// retried once recovery re-created the fragment's tasks.
    std::vector<SplitPtr> carryover;
  };
  std::vector<PendingSource> sources;
  for (const auto& fragment : plan_.fragments) {
    if (fragment.partitioning != PartitioningKind::kSource &&
        fragment.partitioning != PartitioningKind::kColocated) {
      continue;
    }
    std::vector<std::shared_ptr<const TableScanNode>> scans;
    CollectScans(fragment.root, &scans);
    for (const auto& scan : scans) {
      auto connector = catalog_->Get(scan->connector());
      if (!connector.ok()) {
        Cancel(connector.status());
        return;
      }
      ScanSpec spec;
      spec.table = scan->table();
      spec.layout_id = scan->layout_id();
      spec.columns = scan->columns();
      spec.predicates = scan->predicates();
      spec.num_workers = cluster_->num_workers();
      // Through the split cache when attached (ISSUE 8): a repeated scan
      // of an unchanged table replays the materialized split list instead
      // of re-enumerating against the connector.
      auto source = metadata_manager_ != nullptr
                        ? metadata_manager_->GetSplits(scan->connector(),
                                                       *connector, spec)
                        : (*connector)->GetSplits(spec);
      if (!source.ok()) {
        Cancel(source.status());
        return;
      }
      sources.push_back(PendingSource{fragment.id, scan->id(), scan,
                                      *connector, std::move(*source), false,
                                      {}});
    }
  }
  // Writer-scaling bookkeeping.
  Stopwatch scale_timer;

  auto all_deps_done = [this](const PlanFragment& fragment) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int dep : fragment.build_dependencies) {
      if (!fragment_done_[static_cast<size_t>(dep)]) return false;
    }
    return true;
  };
  auto snapshot_tasks = [this](int fragment) {
    std::lock_guard<std::mutex> tlock(tasks_mu_);
    return tasks_[static_cast<size_t>(fragment)];
  };

  bool work_left = true;
  while (!stop_split_thread_.load() && !memory_->killed()) {
    if (recovery_pause_.load()) {
      // A recovery round is swapping task clients and replaying journals;
      // park until the tables are consistent again.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    work_left = false;
    for (auto& pending : sources) {
      if (pending.exhausted) continue;
      work_left = true;
      const PlanFragment& fragment =
          plan_.fragments[static_cast<size_t>(pending.fragment)];
      // Phased scheduling (§IV-D1): defer probe-side split enumeration
      // until join build producers completed.
      if (config.phased_scheduling && !fragment.build_dependencies.empty() &&
          !all_deps_done(fragment)) {
        continue;
      }
      std::vector<std::shared_ptr<TaskClient>> fragment_tasks =
          snapshot_tasks(pending.fragment);
      // Lazy enumeration: pause while queues are deep (§IV-D3).
      size_t min_queue = SIZE_MAX;
      for (const auto& task : fragment_tasks) {
        auto size = task->SplitQueueSize(pending.node_id);
        if (size.has_value()) min_queue = std::min(min_queue, *size);
      }
      if (min_queue != SIZE_MAX &&
          min_queue > static_cast<size_t>(config.split_queue_soft_limit)) {
        continue;
      }
      std::vector<SplitPtr> batch;
      if (!pending.carryover.empty()) {
        batch = std::move(pending.carryover);
        pending.carryover.clear();
      } else {
        auto batch_or = pending.source->NextBatch(config.split_batch_size);
        if (!batch_or.ok()) {
          Cancel(batch_or.status());
          return;
        }
        if (batch_or->empty()) {
          {
            // Journal the end-of-splits marker and deliver it to the
            // CURRENT clients under the same lock, so a replacement
            // created concurrently can never miss it (it either gets the
            // RPC directly or finds the marker in the journal replay).
            std::lock_guard<std::mutex> tlock(tasks_mu_);
            if (recovery_pause_.load()) {
              // A recovery round is between its client swap and its
              // journal replay: a marker delivered to a fresh client now
              // would precede the replayed splits. Retry after the round
              // (the drained source returns another empty batch).
              continue;
            }
            pending.exhausted = true;
            if (recovery_enabled_) {
              no_more_splits_[static_cast<size_t>(pending.fragment)].insert(
                  pending.node_id);
            }
            for (const auto& task :
                 tasks_[static_cast<size_t>(pending.fragment)]) {
              task->NoMoreSplits(pending.node_id);
            }
            // Racing speculative replicas of this fragment see the marker
            // too (pre-replay replicas get it from the journal replay).
            for (auto& [slot, replica] : spec_replicas_) {
              if (slot.first == pending.fragment && replica.replayed) {
                replica.client->NoMoreSplits(pending.node_id);
              }
            }
          }
          if (trace != nullptr) {
            trace->RecordInstant(
                "scheduler", "splits_exhausted", 0, 0,
                {{"fragment", std::to_string(pending.fragment)},
                 {"scan_node", std::to_string(pending.node_id)}});
          }
          continue;
        }
        batch = std::move(*batch_or);
      }
      if (trace != nullptr) {
        trace->RecordInstant(
            "scheduler", "split_batch", 0, 0,
            {{"fragment", std::to_string(pending.fragment)},
             {"scan_node", std::to_string(pending.node_id)},
             {"splits", std::to_string(batch.size())}});
      }
      Status assign_failure = Status::OK();
      {
        // One lock scope covers target choice, journal append, and the
        // AddSplit — a recovery swap can therefore never slip between the
        // choice and the delivery and strand the split on a superseded
        // client whose buffered updates go nowhere.
        std::lock_guard<std::mutex> tlock(tasks_mu_);
        if (recovery_pause_.load()) {
          // Loop-top check raced a recovery round: the round may already
          // have swapped fresh clients but not replayed their journals
          // yet, and a split journaled + delivered now would arrive a
          // second time with the replay. Park the batch instead.
          pending.carryover = std::move(batch);
          continue;
        }
        auto& current = tasks_[static_cast<size_t>(pending.fragment)];
        for (size_t si = 0; si < batch.size(); ++si) {
          const auto& split = batch[si];
          int target = -1;
          if (split->preferred_worker() >= 0 && split->hard_affinity()) {
            // Shared-nothing placement (§IV-D2).
            target = split->preferred_worker() %
                     static_cast<int>(current.size());
          } else {
            // Shortest-queue assignment (§IV-D3) over live workers only.
            auto target_or = ChooseSplitTarget(current, pending.node_id);
            if (!target_or.ok()) {
              if (recovery_enabled_) {
                // Park the unassigned remainder; recovery is about to
                // re-create the fragment's tasks on live workers.
                pending.carryover.assign(batch.begin() +
                                             static_cast<int64_t>(si),
                                         batch.end());
              } else {
                // Fail fast instead of silently dumping the split on task
                // 0 (which may sit on the very worker that just died).
                assign_failure = target_or.status();
              }
              break;
            }
            target = *target_or;
          }
          if (recovery_enabled_) {
            journal_[static_cast<size_t>(pending.fragment)]
                    [static_cast<size_t>(target)]
                        .splits[pending.node_id]
                        .emplace_back(split, pending.connector);
          }
          current[static_cast<size_t>(target)]->AddSplit(
              pending.node_id, split, pending.connector);
          // Mirror the delivery into a racing replica of the same slot —
          // only once its journal replay completed; earlier splits reach
          // it through the replay (forwarding before that would deliver
          // this split twice).
          auto rit = spec_replicas_.find({pending.fragment, target});
          if (rit != spec_replicas_.end() && rit->second.replayed) {
            rit->second.client->AddSplit(pending.node_id, split,
                                         pending.connector);
          }
        }
      }
      if (!assign_failure.ok()) {
        Cancel(assign_failure);
        return;
      }
      // Ship the batch (buffered update POSTs; no-op in-process). A
      // superseded client turns this into a no-op; a client whose worker
      // just died reports an IOError the journal replay makes good.
      for (const auto& task : snapshot_tasks(pending.fragment)) {
        Status flushed = task->FlushSplits();
        if (!flushed.ok()) {
          if (recovery_enabled_ &&
              flushed.code() == StatusCode::kIOError &&
              !task->worker_alive()) {
            continue;
          }
          Cancel(flushed);
          return;
        }
      }
      // Best-effort flush for racing replicas: a failing replica cannot
      // fail the query (its own terminal callback settles the race).
      if (speculation_enabled_) {
        std::vector<std::shared_ptr<TaskClient>> replica_tasks;
        {
          std::lock_guard<std::mutex> tlock(tasks_mu_);
          for (auto& [slot, replica] : spec_replicas_) {
            if (slot.first == pending.fragment && replica.replayed) {
              replica_tasks.push_back(replica.client);
            }
          }
        }
        for (const auto& task : replica_tasks) (void)task->FlushSplits();
      }
    }

    // Adaptive writer scaling (§IV-E3): while producer output buffers stay
    // busy, activate more writer partitions.
    if (config.adaptive_writer_scaling && scale_timer.ElapsedMillis() > 10) {
      scale_timer.Reset();
      for (const auto& fragment : plan_.fragments) {
        if (fragment.output_kind != ExchangeKind::kRoundRobin) continue;
        auto& counter = active_writers_[static_cast<size_t>(fragment.id)];
        if (counter == nullptr) continue;
        std::vector<std::shared_ptr<TaskClient>> producer_tasks =
            snapshot_tasks(fragment.id);
        int consumer_tasks =
            static_cast<int>(snapshot_tasks(fragment.consumer).size());
        if (counter->load() >= consumer_tasks) continue;
        double utilization = 0;
        int count = 0;
        for (const auto& task : producer_tasks) {
          utilization += task->OutputUtilization();
          ++count;
        }
        if (count > 0 && utilization / count > 0.5) {
          counter->fetch_add(1);
          // Direct tasks read the shared counter; remote tasks learn the
          // new width over the wire.
          int writers = counter->load();
          for (const auto& task : producer_tasks) {
            task->SetActiveWriters(writers);
          }
        }
      }
      work_left = true;  // keep monitoring while the query runs
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (remaining_tasks_ == 0) return;
    }
    if (!work_left && !config.adaptive_writer_scaling) return;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

Result<std::shared_ptr<QueryExecution>> Coordinator::Execute(
    const std::string& query_id, FragmentedPlan plan,
    std::shared_ptr<QueryLifecycle> lifecycle) {
  const bool process_mode = cluster_->mode() == ClusterMode::kProcess;
  if (process_mode) {
    if (cluster_->num_workers() == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "process-mode cluster has no remote workers");
    }
    for (const auto& fragment : plan.fragments) {
      if (ContainsTableWrite(fragment.root)) {
        return Status(StatusCode::kUnsupported,
                      "table writes are not supported with out-of-process "
                      "workers");
      }
    }
  }

  // Admission control: bounded concurrent queries (queueing, §III).
  TraceRecorder* trace =
      lifecycle != nullptr ? lifecycle->trace().get() : nullptr;
  if (lifecycle != nullptr) lifecycle->MarkQueuedForAdmission();
  {
    int64_t admit_start = trace != nullptr ? trace->NowNanos() : 0;
    queued_.fetch_add(1);
    std::unique_lock<std::mutex> lock(admission_mu_);
    admission_cv_.wait(lock, [this] {
      return running_ < cluster_->config().max_concurrent_queries;
    });
    ++running_;
    queued_.fetch_sub(1);
    if (trace != nullptr) {
      trace->RecordSpan("coordinator", "admission_wait", 0, 0, admit_start,
                        trace->NowNanos() - admit_start);
    }
  }

  auto execution = std::shared_ptr<QueryExecution>(new QueryExecution());
  execution->query_id_ = query_id;
  execution->lifecycle_ = std::move(lifecycle);
  execution->cluster_ = cluster_;
  execution->catalog_ = catalog_;
  execution->metadata_manager_ = metadata_manager_;
  execution->plan_ = std::move(plan);
  execution->process_mode_ = process_mode;
  execution->memory_ =
      std::make_unique<QueryMemory>(query_id, &cluster_->config().memory);
  execution->memory_->set_trace(trace);
  execution->schema_ =
      execution->plan_.fragments[static_cast<size_t>(
                                     execution->plan_.root_id)]
          .root->output();
  execution->on_complete_ = [this] {
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      --running_;
    }
    admission_cv_.notify_all();
  };

  const FragmentedPlan& fplan = execution->plan_;
  const ClusterConfig& config = cluster_->config();
  size_t num_fragments = fplan.fragments.size();
  execution->tasks_.resize(num_fragments);
  execution->active_writers_.resize(num_fragments);
  execution->fragment_remaining_.assign(num_fragments, 0);
  execution->fragment_done_.assign(num_fragments, false);

  // Decide task counts per fragment.
  std::vector<int> task_counts(num_fragments, 1);
  for (const auto& fragment : fplan.fragments) {
    switch (fragment.partitioning) {
      case PartitioningKind::kSingle:
        task_counts[static_cast<size_t>(fragment.id)] = 1;
        break;
      case PartitioningKind::kHash:
      case PartitioningKind::kSource:
      case PartitioningKind::kColocated:
        // Leaf stages run on every worker when unconstrained (§IV-D2).
        task_counts[static_cast<size_t>(fragment.id)] =
            cluster_->num_workers();
        break;
    }
  }

  // Writer-scaling counters for round-robin producer fragments.
  for (const auto& fragment : fplan.fragments) {
    if (fragment.output_kind == ExchangeKind::kRoundRobin &&
        fragment.consumer >= 0) {
      int consumers = task_counts[static_cast<size_t>(fragment.consumer)];
      int initial = config.adaptive_writer_scaling ? 1 : consumers;
      execution->active_writers_[static_cast<size_t>(fragment.id)] =
          std::make_unique<std::atomic<int>>(initial);
    }
  }

  // Placement: fragment -> task index -> worker id. Shared by both modes
  // (process mode ships the same placement as endpoint lists).
  int single_task_worker =
      round_robin_worker_.load(std::memory_order_relaxed);
  std::vector<std::vector<int>> placement(num_fragments);
  for (const auto& fragment : fplan.fragments) {
    int count = task_counts[static_cast<size_t>(fragment.id)];
    for (int t = 0; t < count; ++t) {
      int worker = count == 1
                       ? (single_task_worker++ % cluster_->num_workers())
                       : t;
      placement[static_cast<size_t>(fragment.id)].push_back(worker);
    }
  }
  round_robin_worker_.store(single_task_worker % cluster_->num_workers(),
                            std::memory_order_relaxed);

  // Route around workers already known to be dead: launching a task there
  // would only fail the create and bounce through a recovery round (or,
  // with retries exhausted, fail the query outright). Dead slots re-home
  // to live workers round-robin; a cluster with no live worker at all
  // cannot run anything.
  if (process_mode) {
    std::vector<int> live;
    for (int w = 0; w < cluster_->num_workers(); ++w) {
      if (cluster_->liveness().IsAlive(w)) live.push_back(w);
    }
    if (live.empty()) {
      return Status::IOError("no live workers to place query tasks on");
    }
    size_t cursor = 0;
    for (auto& fragment_slots : placement) {
      for (int& worker : fragment_slots) {
        if (cluster_->liveness().IsAlive(worker)) continue;
        worker = live[cursor++ % live.size()];
      }
    }
  }

  // Scheduling tables: kept for the query's lifetime so recovery can
  // rebuild any task's create request (ISSUE 7).
  execution->recovery_enabled_ =
      process_mode && config.max_task_retries > 0;
  execution->max_task_retries_ = config.max_task_retries;
  execution->task_counts_ = task_counts;
  execution->placement_ = placement;
  execution->fragment_jsons_.resize(num_fragments);
  execution->generations_.resize(num_fragments);
  execution->retry_counts_.resize(num_fragments);
  execution->slot_finished_.resize(num_fragments);
  execution->slot_recovering_.resize(num_fragments);
  execution->journal_.resize(num_fragments);
  execution->no_more_splits_.resize(num_fragments);
  for (size_t f = 0; f < num_fragments; ++f) {
    size_t count = static_cast<size_t>(task_counts[f]);
    execution->generations_[f].assign(count, 0);
    execution->retry_counts_[f].assign(count, 0);
    execution->slot_finished_[f].assign(count, false);
    execution->slot_recovering_[f].assign(count, false);
    execution->journal_[f].resize(count);
  }
  execution->retries_counter_ = retries_counter_;
  execution->recovery_histogram_ = recovery_histogram_;
  execution->speculations_counter_ = speculations_counter_;
  execution->wins_counter_ = speculation_wins_counter_;
  execution->trace_shipped_counters_ = trace_shipped_counters_;
  execution->trace_dropped_counters_ = trace_dropped_counters_;
  // Speculation rides on the recovery machinery (journal replay,
  // generations, superseded clients) and needs a second worker to place
  // replicas on; off by default (max_speculative_tasks = 0).
  execution->speculation_enabled_ = execution->recovery_enabled_ &&
                                    config.max_speculative_tasks > 0 &&
                                    cluster_->num_workers() > 1;
  if (execution->speculation_enabled_) {
    execution->speculation_policy_.max_speculative_tasks =
        config.max_speculative_tasks;
    execution->speculation_policy_.quantile = config.speculation_quantile;
    execution->speculation_policy_.min_samples = config.speculation_min_samples;
    execution->speculation_policy_.min_stall_micros =
        config.speculation_min_stall_micros;
  }

  // Create the per-task clients.
  for (const auto& fragment : fplan.fragments) {
    int count = task_counts[static_cast<size_t>(fragment.id)];
    execution->fragment_remaining_[static_cast<size_t>(fragment.id)] = count;
    execution->remaining_tasks_ += count;
    if (process_mode) {
      auto serialized = PlanFragmentToJson(fragment);
      if (!serialized.ok()) return serialized.status();
      execution->fragment_jsons_[static_cast<size_t>(fragment.id)] =
          std::move(*serialized);
    }
    for (int t = 0; t < count; ++t) {
      int worker = placement[static_cast<size_t>(fragment.id)]
                            [static_cast<size_t>(t)];
      if (process_mode) {
        // Out-of-process task: ship the serialized fragment plus the
        // exchange endpoints of every producer task feeding it. (No lock
        // needed pre-launch — nothing else references the tables yet.)
        execution->tasks_[static_cast<size_t>(fragment.id)].push_back(
            execution->MakeRemoteClientLocked(fragment.id, t));
        continue;
      }

      TaskSpec spec;
      spec.query_id = query_id;
      spec.fragment_id = fragment.id;
      spec.task_index = t;
      spec.num_tasks = count;
      spec.consumer_partitions =
          fragment.consumer >= 0
              ? task_counts[static_cast<size_t>(fragment.consumer)]
              : 1;
      spec.worker_id = worker;
      for (int input : fragment.inputs) {
        spec.source_task_counts[input] =
            task_counts[static_cast<size_t>(input)];
      }

      // In-process task: the pre-ISSUE-6 path, byte for byte, behind
      // DirectTaskClient.
      if (config.network.transport == TransportMode::kHttp) {
        // Consumers resolve a producer task's output via its worker's
        // exchange endpoint; the coordinator owns placement, so it owns
        // the (task -> endpoint) map too.
        cluster_->exchange().RegisterTaskEndpoint(
            query_id, fragment.id, t, cluster_->http_port(worker));
      }
      TaskRuntime runtime;
      runtime.query_memory = execution->memory_.get();
      runtime.worker_memory = &cluster_->worker(worker).memory();
      runtime.exchange = &cluster_->exchange();
      runtime.catalog = catalog_;
      runtime.eval_mode = config.eval_mode;
      runtime.exchange_buffer_bytes = config.exchange_buffer_bytes;
      runtime.max_drivers_per_pipeline = config.max_drivers_per_pipeline;
      runtime.trace = trace;
      if (fragment.id == fplan.root_id) {
        runtime.results = &execution->results_;
      }
      const auto& writer_counter =
          execution->active_writers_[static_cast<size_t>(fragment.id)];
      if (writer_counter != nullptr) {
        runtime.active_output_partitions = writer_counter.get();
      }
      auto task = std::make_shared<TaskExec>(
          spec, runtime,
          &fplan.fragments[static_cast<size_t>(fragment.id)]);
      PRESTO_RETURN_IF_ERROR(task->Initialize());
      execution->tasks_[static_cast<size_t>(fragment.id)].push_back(
          std::make_shared<DirectTaskClient>(std::move(task),
                                             &cluster_->worker(worker)
                                                  .executor(),
                                             &cluster_->exchange()));
    }
  }

  if (execution->lifecycle_ != nullptr) {
    std::map<int, int> fragment_task_counts;
    for (const auto& fragment : fplan.fragments) {
      fragment_task_counts[fragment.id] =
          task_counts[static_cast<size_t>(fragment.id)];
    }
    execution->lifecycle_->MarkRunning(std::move(fragment_task_counts));
  }

  // The root fetch target must be set before any Launch is issued: a
  // create that fails synchronously can trigger a recovery round that
  // re-points root_fetch_port_ at a replacement worker (with an epoch
  // bump), and a later assignment from the stale local placement would
  // silently undo that redirect.
  if (process_mode) {
    execution->root_fetch_port_ = cluster_->http_port(
        placement[static_cast<size_t>(fplan.root_id)][0]);
  }

  // Recovery plumbing must exist before the first Launch: a create that
  // fails on a just-dead worker re-enters OnTaskDone, which may absorb
  // the failure into a recovery request immediately.
  QueryExecution* raw = execution.get();
  if (execution->recovery_enabled_) {
    execution->recovery_ = std::make_unique<TaskRecoveryManager>(
        [raw](const RecoveryRequest& request) { raw->RunRecovery(request); });
    execution->liveness_listener_ = cluster_->liveness().AddDeathListener(
        [raw](int worker) { raw->OnWorkerDeath(worker); });
  }
  if (execution->speculation_enabled_) {
    // Ticks started now are harmless: SpeculationTick early-outs until
    // launch_complete_.
    execution->speculation_ = std::make_unique<SpeculationManager>(
        config.speculation_interval_micros, [raw] { raw->SpeculationTick(); });
  }

  // Launch: register every task with its worker's executor — local MLFQ in
  // kThreads mode, a remote daemon's via the create RPC in kProcess mode
  // (all-at-once; phased mode defers only split enumeration, keeping
  // pipelines available to consume build sides without deadlocks).
  for (const auto& fragment_tasks : execution->tasks_) {
    if (trace != nullptr && !fragment_tasks.empty()) {
      trace->RecordInstant(
          "scheduler", "stage_scheduled", 0, 0,
          {{"fragment",
            std::to_string(fragment_tasks.front()->spec().fragment_id)},
           {"tasks", std::to_string(fragment_tasks.size())}});
    }
    for (const auto& task : fragment_tasks) {
      int fragment = task->spec().fragment_id;
      int task_index = task->spec().task_index;
      // A create failure earlier in this loop may already have failed the
      // query (no retry budget) and aborted every task launched so far.
      // Creating MORE tasks after that sweep would strand them: nothing
      // aborts them again, their callbacks never fire, and Wait() hangs.
      // Settle the accounting without launching instead.
      bool already_failed;
      {
        std::lock_guard<std::mutex> lock(execution->mu_);
        already_failed = execution->finished_;
      }
      if (already_failed) {
        raw->OnTaskDone(fragment, task_index, /*generation=*/0,
                        Status::Cancelled("query failed before launch"));
        continue;
      }
      // Raw capture is safe: ~QueryExecution waits for every task callback
      // before releasing the object.
      Status launched =
          task->Launch([raw, fragment, task_index](Status status) {
            raw->OnTaskDone(fragment, task_index, /*generation=*/0, status);
          });
      if (!launched.ok()) {
        // The callback will never fire for this task; settle its
        // accounting directly so Wait() terminates and the failure
        // becomes the query status (or a recovery request).
        raw->OnTaskDone(fragment, task_index, /*generation=*/0, launched);
      }
    }
  }
  // An asynchronous failure can interleave with the loop above: a task
  // launched after that failure's abort sweep would be missed by it.
  // Re-sweep now that the task set is complete.
  if (process_mode) {
    bool failed_during_launch;
    {
      std::lock_guard<std::mutex> lock(execution->mu_);
      failed_during_launch = execution->finished_;
    }
    if (failed_during_launch) execution->AbortAllTasks();
  }

  // Unblock recovery: every gen-0 Launch has been issued, so the recovery
  // thread may now swap replacement clients into tasks_.
  {
    std::lock_guard<std::mutex> lock(execution->mu_);
    execution->launch_complete_ = true;
  }
  execution->done_cv_.notify_all();

  // Start the split/monitor thread. It captures a raw pointer: the
  // destructor joins the thread before members are destroyed.
  execution->split_thread_ =
      std::thread([raw] { raw->SplitSchedulingLoop(); });
  if (process_mode) {
    execution->result_fetch_thread_ =
        std::thread([raw] { raw->ResultFetchLoop(); });
  }
  execution->launched_ = true;

  return execution;
}

}  // namespace presto
