#include "schedule/coordinator.h"

#include <algorithm>
#include <cstdint>

#include "common/stopwatch.h"
#include "plan/plan_serde.h"

namespace presto {

namespace {

// Collects the TableScanNodes of a fragment (by node id).
void CollectScans(const PlanNodePtr& node,
                  std::vector<std::shared_ptr<const TableScanNode>>* out) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    out->push_back(std::static_pointer_cast<const TableScanNode>(node));
  }
  for (const auto& c : node->children()) CollectScans(c, out);
}

bool ContainsTableWrite(const PlanNodePtr& node) {
  if (node->kind() == PlanNodeKind::kTableWrite) return true;
  for (const auto& c : node->children()) {
    if (ContainsTableWrite(c)) return true;
  }
  return false;
}

}  // namespace

QueryExecution::~QueryExecution() {
  // Tear down any still-running tasks (client abandoned the query) and wait
  // for them: executor callbacks and operators reference our members. Only
  // a launched execution may wait — if Execute() failed before registering
  // the tasks, no callback will ever fire and Wait() would hang.
  if (launched_) {
    bool running;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running = remaining_tasks_ > 0;
    }
    if (running) Cancel(Status::Cancelled("query abandoned"));
    (void)Wait();
  }
  stop_split_thread_.store(true);
  if (split_thread_.joinable()) split_thread_.join();
  stop_fetch_thread_.store(true);
  if (result_fetch_thread_.joinable()) result_fetch_thread_.join();
  if (cluster_ != nullptr) {
    // Backstop only: normal finalization (OnTaskDone on the last task)
    // already removed this query's exchange state. RemoveQuery is
    // idempotent, and unlaunched executions still need the cleanup.
    cluster_->exchange().RemoveQuery(query_id_);
  }
}

Status QueryExecution::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_tasks_ == 0; });
  return final_status_;
}

void QueryExecution::Cancel(const Status& reason) {
  // Client cancel, an internal error, and destructor abandonment can race;
  // the latch makes teardown exactly-once with the first reason winning.
  std::call_once(cancel_once_, [this, &reason] {
    if (reason.code() == StatusCode::kCancelled) {
      client_cancelled_.store(true);
    }
    memory_->Kill(reason);
    results_.Finish(reason);
    // Remote tasks share no memory context with the coordinator, so the
    // kill must travel over the wire.
    if (process_mode_) AbortAllTasks();
  });
}

void QueryExecution::AbortAllTasks() {
  for (auto& fragment_tasks : tasks_) {
    for (auto& task : fragment_tasks) task->Abort();
  }
}

QueryStats QueryExecution::StatsSnapshot() const {
  std::vector<TaskStats> task_stats;
  int64_t peak = memory_->peak_user();
  for (const auto& fragment_tasks : tasks_) {
    for (const auto& task : fragment_tasks) {
      task_stats.push_back(task->CollectStats());
      peak = std::max(peak, task->peak_user_memory_bytes());
    }
  }
  return BuildQueryStats(std::move(task_stats), peak);
}

int64_t QueryExecution::total_cpu_nanos() const {
  int64_t total = 0;
  for (const auto& fragment_tasks : tasks_) {
    for (const auto& task : fragment_tasks) {
      total += task->cpu_nanos();
    }
  }
  return total;
}

int QueryExecution::active_writers(int fragment) const {
  if (fragment < 0 ||
      static_cast<size_t>(fragment) >= active_writers_.size()) {
    return -1;
  }
  const auto& counter = active_writers_[static_cast<size_t>(fragment)];
  return counter == nullptr ? -1 : counter->load();
}

void QueryExecution::OnTaskDone(int fragment, const Status& status) {
  // NOTE: once remaining_tasks_ hits zero, a waiter in Wait() may destroy
  // this object — and the engine around it — the moment mu_ is released, so
  // ALL finalization (resource release, exchange cleanup, lifecycle, the
  // admission-slot callback) must complete under the lock; a waiter cannot
  // wake before the unlock. Touch no members after the scope ends.
  {
    std::lock_guard<std::mutex> lock(mu_);
    --remaining_tasks_;
    --fragment_remaining_[static_cast<size_t>(fragment)];
    if (fragment_remaining_[static_cast<size_t>(fragment)] == 0) {
      fragment_done_[static_cast<size_t>(fragment)] = true;
    }
    if (!status.ok() && !finished_ &&
        status.code() != StatusCode::kCancelled) {
      final_status_ = status;
      finished_ = true;
      results_.Finish(status);
      memory_->Kill(status);
      // Stop the surviving remote tasks too; killing the coordinator-side
      // memory context does not reach them.
      if (process_mode_) AbortAllTasks();
    }
    if (fragment == plan_.root_id &&
        fragment_done_[static_cast<size_t>(fragment)] && !finished_ &&
        !process_mode_) {
      // Root produced everything: complete the result stream and tear down
      // any still-running upstream producers (e.g. after LIMIT). In
      // process mode the result-fetch thread finishes the stream instead,
      // once it drained the root task's output buffer.
      finished_ = true;
      results_.Finish(Status::OK());
      memory_->Kill(Status::Cancelled("query completed"));
    }
    if (remaining_tasks_ == 0) {
      if (!finished_ && process_mode_ && final_status_.ok() &&
          !results_.finished()) {
        // A successful out-of-process query: the root task finished, but
        // its output buffer may still hold pages the result-fetch thread
        // has not pulled yet. Finishing the stream (or releasing the
        // worker-side tasks, which drops that buffer) now would lose
        // them, so the fetch thread finishes the stream and runs
        // FinalizeLocked() once the buffer reports complete.
        defer_finalize_ = true;
      } else {
        if (!finished_) {
          finished_ = true;
          results_.Finish(final_status_);
        }
        FinalizeLocked();
      }
    }
    done_cv_.notify_all();
  }
}

void QueryExecution::FinalizeLocked() {
  if (finalized_) return;
  finalized_ = true;
  // Every task callback has fired, so nothing references the drivers
  // (or, over HTTP, the worker-side task entries) anymore. Release
  // them now — regardless of whether the query finished, failed, was
  // cancelled, or was abandoned — returning every memory-pool
  // reservation, dropping exchange-buffer references, and deleting
  // spill files. A final stats snapshot is cached first so EXPLAIN
  // ANALYZE still works after teardown.
  for (auto& fragment_tasks : tasks_) {
    for (auto& task : fragment_tasks) task->ReleaseResources();
  }
  if (cluster_ != nullptr) cluster_->exchange().RemoveQuery(query_id_);
  // Finalize the lifecycle before mu_ is released: a Wait()-er may
  // destroy this object the moment the lock drops, and QueryInfoFor
  // after Wait() must observe the terminal state.
  if (lifecycle_ != nullptr) {
    lifecycle_->Finalize(final_status_, client_cancelled_.load(),
                         StatsSnapshot());
  }
  // Release the admission slot before the unlock too: it only takes
  // the coordinator's admission mutex, which is never held while an
  // execution's mu_ is acquired, so there is no lock cycle.
  if (on_complete_) {
    on_complete_();
    on_complete_ = nullptr;
  }
}

void QueryExecution::FinalizeIfDeferred() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!defer_finalize_ || finalized_) return;
    finished_ = true;
    // Belt and braces: the fetch thread normally finished the stream
    // before getting here; if it exited on an error, Cancel() already
    // finished it with that error (first-wins makes this a no-op then).
    results_.Finish(final_status_);
    FinalizeLocked();
  }
  done_cv_.notify_all();
}

void QueryExecution::ResultFetchLoop() {
  ExchangeHttpClient fetcher(
      &cluster_->exchange(), root_fetch_port_,
      StreamId{query_id_, plan_.root_id, /*task=*/0, /*partition=*/0});
  TraceRecorder* trace =
      lifecycle_ != nullptr ? lifecycle_->trace().get() : nullptr;
  if (trace != nullptr) fetcher.SetTraceContext(trace, 0, 0);
  while (!stop_fetch_thread_.load() && !results_.finished()) {
    auto fetched = fetcher.Fetch();
    if (!fetched.ok()) {
      Cancel(fetched.status());
      break;
    }
    cluster_->exchange().RecordTransfer(
        static_cast<int64_t>(fetched->body.size()));
    size_t offset = 0;
    bool decode_failed = false;
    while (offset < fetched->body.size()) {
      auto page = cluster_->exchange().codec().Decode(fetched->body, &offset);
      if (!page.ok()) {
        Cancel(page.status());
        decode_failed = true;
        break;
      }
      // TryPush consumes its argument even on failure, so retry with
      // copies; the bounded queue is the client-backpressure point.
      Page decoded = std::move(*page);
      while (!stop_fetch_thread_.load() && !results_.finished()) {
        Page attempt = decoded;
        if (results_.TryPush(std::move(attempt))) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (decode_failed) break;
    if (fetched->complete) {
      (void)fetcher.DeleteBuffer();
      // First-wins with Cancel()/task-failure finalization: whichever
      // reason reached the queue first sticks.
      results_.Finish(Status::OK());
      // Tear down upstream producers still running after a short-circuit
      // root (LIMIT): their buffers have lost their only consumer.
      AbortAllTasks();
      break;
    }
    if (fetched->body.empty()) {
      // Long-poll timeout, or the root task's create RPC is still in
      // flight (the exchange answers token 0 with an empty batch then).
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // If the last task completed while we were still draining, OnTaskDone
  // left end-of-query teardown to us.
  FinalizeIfDeferred();
}

void QueryExecution::SplitSchedulingLoop() {
  const ClusterConfig& config = cluster_->config();
  TraceRecorder* trace =
      lifecycle_ != nullptr ? lifecycle_->trace().get() : nullptr;
  // Pending split sources: (fragment, scan node id, source, exhausted).
  struct PendingSource {
    int fragment;
    int node_id;
    std::shared_ptr<const TableScanNode> scan;
    Connector* connector;
    std::unique_ptr<SplitSource> source;
    bool exhausted = false;
  };
  std::vector<PendingSource> sources;
  for (const auto& fragment : plan_.fragments) {
    if (fragment.partitioning != PartitioningKind::kSource &&
        fragment.partitioning != PartitioningKind::kColocated) {
      continue;
    }
    std::vector<std::shared_ptr<const TableScanNode>> scans;
    CollectScans(fragment.root, &scans);
    for (const auto& scan : scans) {
      auto connector = catalog_->Get(scan->connector());
      if (!connector.ok()) {
        Cancel(connector.status());
        return;
      }
      ScanSpec spec;
      spec.table = scan->table();
      spec.layout_id = scan->layout_id();
      spec.columns = scan->columns();
      spec.predicates = scan->predicates();
      spec.num_workers = cluster_->num_workers();
      auto source = (*connector)->GetSplits(spec);
      if (!source.ok()) {
        Cancel(source.status());
        return;
      }
      sources.push_back(PendingSource{fragment.id, scan->id(), scan,
                                      *connector, std::move(*source), false});
    }
  }
  // Writer-scaling bookkeeping.
  Stopwatch scale_timer;

  auto all_deps_done = [this](const PlanFragment& fragment) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int dep : fragment.build_dependencies) {
      if (!fragment_done_[static_cast<size_t>(dep)]) return false;
    }
    return true;
  };

  bool work_left = true;
  while (!stop_split_thread_.load() && !memory_->killed()) {
    work_left = false;
    for (auto& pending : sources) {
      if (pending.exhausted) continue;
      work_left = true;
      const PlanFragment& fragment =
          plan_.fragments[static_cast<size_t>(pending.fragment)];
      // Phased scheduling (§IV-D1): defer probe-side split enumeration
      // until join build producers completed.
      if (config.phased_scheduling && !fragment.build_dependencies.empty() &&
          !all_deps_done(fragment)) {
        continue;
      }
      auto& fragment_tasks = tasks_[static_cast<size_t>(pending.fragment)];
      // Lazy enumeration: pause while queues are deep (§IV-D3).
      size_t min_queue = SIZE_MAX;
      for (const auto& task : fragment_tasks) {
        auto size = task->SplitQueueSize(pending.node_id);
        if (size.has_value()) min_queue = std::min(min_queue, *size);
      }
      if (min_queue != SIZE_MAX &&
          min_queue > static_cast<size_t>(config.split_queue_soft_limit)) {
        continue;
      }
      auto batch = pending.source->NextBatch(config.split_batch_size);
      if (!batch.ok()) {
        Cancel(batch.status());
        return;
      }
      if (batch->empty()) {
        pending.exhausted = true;
        for (const auto& task : fragment_tasks) {
          task->NoMoreSplits(pending.node_id);
        }
        if (trace != nullptr) {
          trace->RecordInstant(
              "scheduler", "splits_exhausted", 0, 0,
              {{"fragment", std::to_string(pending.fragment)},
               {"scan_node", std::to_string(pending.node_id)}});
        }
        continue;
      }
      if (trace != nullptr) {
        trace->RecordInstant(
            "scheduler", "split_batch", 0, 0,
            {{"fragment", std::to_string(pending.fragment)},
             {"scan_node", std::to_string(pending.node_id)},
             {"splits", std::to_string(batch->size())}});
      }
      for (const auto& split : *batch) {
        int target = -1;
        if (split->preferred_worker() >= 0 && split->hard_affinity()) {
          // Shared-nothing placement (§IV-D2).
          target = split->preferred_worker() %
                   static_cast<int>(fragment_tasks.size());
        } else {
          // Shortest-queue assignment (§IV-D3), skipping tasks on workers
          // the failure detector declared dead (their queues would only
          // grow; the task failure is already in flight).
          size_t best = 0;
          size_t best_size = SIZE_MAX;
          for (size_t t = 0; t < fragment_tasks.size(); ++t) {
            if (!fragment_tasks[t]->worker_alive()) continue;
            auto size = fragment_tasks[t]->SplitQueueSize(pending.node_id);
            if (size.has_value() && *size < best_size) {
              best_size = *size;
              best = t;
            }
          }
          target = static_cast<int>(best);
        }
        fragment_tasks[static_cast<size_t>(target)]->AddSplit(
            pending.node_id, split, pending.connector);
      }
      // Ship the batch (buffered update POSTs; no-op in-process).
      for (const auto& task : fragment_tasks) {
        Status flushed = task->FlushSplits();
        if (!flushed.ok()) {
          Cancel(flushed);
          return;
        }
      }
    }

    // Adaptive writer scaling (§IV-E3): while producer output buffers stay
    // busy, activate more writer partitions.
    if (config.adaptive_writer_scaling && scale_timer.ElapsedMillis() > 10) {
      scale_timer.Reset();
      for (const auto& fragment : plan_.fragments) {
        if (fragment.output_kind != ExchangeKind::kRoundRobin) continue;
        auto& counter = active_writers_[static_cast<size_t>(fragment.id)];
        if (counter == nullptr) continue;
        int consumer_tasks = static_cast<int>(
            tasks_[static_cast<size_t>(fragment.consumer)].size());
        if (counter->load() >= consumer_tasks) continue;
        double utilization = 0;
        int count = 0;
        for (const auto& task : tasks_[static_cast<size_t>(fragment.id)]) {
          utilization += task->OutputUtilization();
          ++count;
        }
        if (count > 0 && utilization / count > 0.5) {
          counter->fetch_add(1);
          // Direct tasks read the shared counter; remote tasks learn the
          // new width over the wire.
          int writers = counter->load();
          for (const auto& task :
               tasks_[static_cast<size_t>(fragment.id)]) {
            task->SetActiveWriters(writers);
          }
        }
      }
      work_left = true;  // keep monitoring while the query runs
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (remaining_tasks_ == 0) return;
    }
    if (!work_left && !config.adaptive_writer_scaling) return;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

Result<std::shared_ptr<QueryExecution>> Coordinator::Execute(
    const std::string& query_id, FragmentedPlan plan,
    std::shared_ptr<QueryLifecycle> lifecycle) {
  const bool process_mode = cluster_->mode() == ClusterMode::kProcess;
  if (process_mode) {
    if (cluster_->num_workers() == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "process-mode cluster has no remote workers");
    }
    for (const auto& fragment : plan.fragments) {
      if (ContainsTableWrite(fragment.root)) {
        return Status(StatusCode::kUnsupported,
                      "table writes are not supported with out-of-process "
                      "workers");
      }
    }
  }

  // Admission control: bounded concurrent queries (queueing, §III).
  TraceRecorder* trace =
      lifecycle != nullptr ? lifecycle->trace().get() : nullptr;
  if (lifecycle != nullptr) lifecycle->MarkQueuedForAdmission();
  {
    int64_t admit_start = trace != nullptr ? trace->NowNanos() : 0;
    queued_.fetch_add(1);
    std::unique_lock<std::mutex> lock(admission_mu_);
    admission_cv_.wait(lock, [this] {
      return running_ < cluster_->config().max_concurrent_queries;
    });
    ++running_;
    queued_.fetch_sub(1);
    if (trace != nullptr) {
      trace->RecordSpan("coordinator", "admission_wait", 0, 0, admit_start,
                        trace->NowNanos() - admit_start);
    }
  }

  auto execution = std::shared_ptr<QueryExecution>(new QueryExecution());
  execution->query_id_ = query_id;
  execution->lifecycle_ = std::move(lifecycle);
  execution->cluster_ = cluster_;
  execution->catalog_ = catalog_;
  execution->plan_ = std::move(plan);
  execution->process_mode_ = process_mode;
  execution->memory_ =
      std::make_unique<QueryMemory>(query_id, &cluster_->config().memory);
  execution->memory_->set_trace(trace);
  execution->schema_ =
      execution->plan_.fragments[static_cast<size_t>(
                                     execution->plan_.root_id)]
          .root->output();
  execution->on_complete_ = [this] {
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      --running_;
    }
    admission_cv_.notify_all();
  };

  const FragmentedPlan& fplan = execution->plan_;
  const ClusterConfig& config = cluster_->config();
  size_t num_fragments = fplan.fragments.size();
  execution->tasks_.resize(num_fragments);
  execution->active_writers_.resize(num_fragments);
  execution->fragment_remaining_.assign(num_fragments, 0);
  execution->fragment_done_.assign(num_fragments, false);

  // Decide task counts per fragment.
  std::vector<int> task_counts(num_fragments, 1);
  for (const auto& fragment : fplan.fragments) {
    switch (fragment.partitioning) {
      case PartitioningKind::kSingle:
        task_counts[static_cast<size_t>(fragment.id)] = 1;
        break;
      case PartitioningKind::kHash:
      case PartitioningKind::kSource:
      case PartitioningKind::kColocated:
        // Leaf stages run on every worker when unconstrained (§IV-D2).
        task_counts[static_cast<size_t>(fragment.id)] =
            cluster_->num_workers();
        break;
    }
  }

  // Writer-scaling counters for round-robin producer fragments.
  for (const auto& fragment : fplan.fragments) {
    if (fragment.output_kind == ExchangeKind::kRoundRobin &&
        fragment.consumer >= 0) {
      int consumers = task_counts[static_cast<size_t>(fragment.consumer)];
      int initial = config.adaptive_writer_scaling ? 1 : consumers;
      execution->active_writers_[static_cast<size_t>(fragment.id)] =
          std::make_unique<std::atomic<int>>(initial);
    }
  }

  // Placement: fragment -> task index -> worker id. Shared by both modes
  // (process mode ships the same placement as endpoint lists).
  int single_task_worker =
      round_robin_worker_.load(std::memory_order_relaxed);
  std::vector<std::vector<int>> placement(num_fragments);
  for (const auto& fragment : fplan.fragments) {
    int count = task_counts[static_cast<size_t>(fragment.id)];
    for (int t = 0; t < count; ++t) {
      int worker = count == 1
                       ? (single_task_worker++ % cluster_->num_workers())
                       : t;
      placement[static_cast<size_t>(fragment.id)].push_back(worker);
    }
  }
  round_robin_worker_.store(single_task_worker % cluster_->num_workers(),
                            std::memory_order_relaxed);

  // Create the per-task clients.
  for (const auto& fragment : fplan.fragments) {
    int count = task_counts[static_cast<size_t>(fragment.id)];
    execution->fragment_remaining_[static_cast<size_t>(fragment.id)] = count;
    execution->remaining_tasks_ += count;
    Json fragment_json;
    if (process_mode) {
      auto serialized = PlanFragmentToJson(fragment);
      if (!serialized.ok()) return serialized.status();
      fragment_json = std::move(*serialized);
    }
    for (int t = 0; t < count; ++t) {
      int worker = placement[static_cast<size_t>(fragment.id)]
                            [static_cast<size_t>(t)];
      TaskSpec spec;
      spec.query_id = query_id;
      spec.fragment_id = fragment.id;
      spec.task_index = t;
      spec.num_tasks = count;
      spec.consumer_partitions =
          fragment.consumer >= 0
              ? task_counts[static_cast<size_t>(fragment.consumer)]
              : 1;
      spec.worker_id = worker;
      for (int input : fragment.inputs) {
        spec.source_task_counts[input] =
            task_counts[static_cast<size_t>(input)];
      }

      if (process_mode) {
        // Out-of-process task: ship the serialized fragment plus the
        // exchange endpoints of every producer task feeding it.
        TaskCreateRequest create;
        create.spec = spec;
        create.fragment = fragment_json;
        create.eval_mode = config.eval_mode;
        create.exchange_buffer_bytes = config.exchange_buffer_bytes;
        create.max_drivers_per_pipeline = config.max_drivers_per_pipeline;
        const auto& writer_counter =
            execution->active_writers_[static_cast<size_t>(fragment.id)];
        create.active_writers =
            writer_counter != nullptr ? writer_counter->load() : -1;
        create.emit_results_via_exchange = fragment.id == fplan.root_id;
        for (int input : fragment.inputs) {
          const auto& input_placement =
              placement[static_cast<size_t>(input)];
          for (size_t it = 0; it < input_placement.size(); ++it) {
            create.endpoints.push_back(
                {input, static_cast<int>(it),
                 cluster_->http_port(input_placement[it])});
          }
        }
        HttpTaskClient::Options options;
        options.task_port = cluster_->task_port(worker);
        options.liveness = &cluster_->liveness();
        execution->tasks_[static_cast<size_t>(fragment.id)].push_back(
            std::make_shared<HttpTaskClient>(spec, create.ToJson(),
                                             options));
        continue;
      }

      // In-process task: the pre-ISSUE-6 path, byte for byte, behind
      // DirectTaskClient.
      if (config.network.transport == TransportMode::kHttp) {
        // Consumers resolve a producer task's output via its worker's
        // exchange endpoint; the coordinator owns placement, so it owns
        // the (task -> endpoint) map too.
        cluster_->exchange().RegisterTaskEndpoint(
            query_id, fragment.id, t, cluster_->http_port(worker));
      }
      TaskRuntime runtime;
      runtime.query_memory = execution->memory_.get();
      runtime.worker_memory = &cluster_->worker(worker).memory();
      runtime.exchange = &cluster_->exchange();
      runtime.catalog = catalog_;
      runtime.eval_mode = config.eval_mode;
      runtime.exchange_buffer_bytes = config.exchange_buffer_bytes;
      runtime.max_drivers_per_pipeline = config.max_drivers_per_pipeline;
      runtime.trace = trace;
      if (fragment.id == fplan.root_id) {
        runtime.results = &execution->results_;
      }
      const auto& writer_counter =
          execution->active_writers_[static_cast<size_t>(fragment.id)];
      if (writer_counter != nullptr) {
        runtime.active_output_partitions = writer_counter.get();
      }
      auto task = std::make_shared<TaskExec>(
          spec, runtime,
          &fplan.fragments[static_cast<size_t>(fragment.id)]);
      PRESTO_RETURN_IF_ERROR(task->Initialize());
      execution->tasks_[static_cast<size_t>(fragment.id)].push_back(
          std::make_shared<DirectTaskClient>(std::move(task),
                                             &cluster_->worker(worker)
                                                  .executor(),
                                             &cluster_->exchange()));
    }
  }

  if (execution->lifecycle_ != nullptr) {
    std::map<int, int> fragment_task_counts;
    for (const auto& fragment : fplan.fragments) {
      fragment_task_counts[fragment.id] =
          task_counts[static_cast<size_t>(fragment.id)];
    }
    execution->lifecycle_->MarkRunning(std::move(fragment_task_counts));
  }

  // Launch: register every task with its worker's executor — local MLFQ in
  // kThreads mode, a remote daemon's via the create RPC in kProcess mode
  // (all-at-once; phased mode defers only split enumeration, keeping
  // pipelines available to consume build sides without deadlocks).
  for (const auto& fragment_tasks : execution->tasks_) {
    if (trace != nullptr && !fragment_tasks.empty()) {
      trace->RecordInstant(
          "scheduler", "stage_scheduled", 0, 0,
          {{"fragment",
            std::to_string(fragment_tasks.front()->spec().fragment_id)},
           {"tasks", std::to_string(fragment_tasks.size())}});
    }
    for (const auto& task : fragment_tasks) {
      int fragment = task->spec().fragment_id;
      // Raw capture is safe: ~QueryExecution waits for every task callback
      // before releasing the object.
      QueryExecution* raw_exec = execution.get();
      Status launched =
          task->Launch([raw_exec, fragment](Status status) {
            raw_exec->OnTaskDone(fragment, status);
          });
      if (!launched.ok()) {
        // The callback will never fire for this task; settle its
        // accounting directly so Wait() terminates and the failure
        // becomes the query status.
        raw_exec->OnTaskDone(fragment, launched);
      }
    }
  }

  // Start the split/monitor thread. It captures a raw pointer: the
  // destructor joins the thread before members are destroyed.
  QueryExecution* raw = execution.get();
  execution->split_thread_ =
      std::thread([raw] { raw->SplitSchedulingLoop(); });
  if (process_mode) {
    execution->root_fetch_port_ = cluster_->http_port(
        placement[static_cast<size_t>(fplan.root_id)][0]);
    execution->result_fetch_thread_ =
        std::thread([raw] { raw->ResultFetchLoop(); });
  }
  execution->launched_ = true;

  return execution;
}

}  // namespace presto
