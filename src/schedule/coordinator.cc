#include "schedule/coordinator.h"

#include <algorithm>
#include <cstdint>

#include "common/stopwatch.h"

namespace presto {

namespace {

// Collects the TableScanNodes of a fragment (by node id).
void CollectScans(const PlanNodePtr& node,
                  std::vector<std::shared_ptr<const TableScanNode>>* out) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    out->push_back(std::static_pointer_cast<const TableScanNode>(node));
  }
  for (const auto& c : node->children()) CollectScans(c, out);
}

}  // namespace

QueryExecution::~QueryExecution() {
  // Tear down any still-running tasks (client abandoned the query) and wait
  // for them: executor callbacks and operators reference our members. Only
  // a launched execution may wait — if Execute() failed before registering
  // the tasks, no callback will ever fire and Wait() would hang.
  if (launched_) {
    bool running;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running = remaining_tasks_ > 0;
    }
    if (running) Cancel(Status::Cancelled("query abandoned"));
    (void)Wait();
  }
  stop_split_thread_.store(true);
  if (split_thread_.joinable()) split_thread_.join();
  if (cluster_ != nullptr) {
    // Backstop only: normal finalization (OnTaskDone on the last task)
    // already removed this query's exchange state. RemoveQuery is
    // idempotent, and unlaunched executions still need the cleanup.
    cluster_->exchange().RemoveQuery(query_id_);
  }
}

Status QueryExecution::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_tasks_ == 0; });
  return final_status_;
}

void QueryExecution::Cancel(const Status& reason) {
  // Client cancel, an internal error, and destructor abandonment can race;
  // the latch makes teardown exactly-once with the first reason winning.
  std::call_once(cancel_once_, [this, &reason] {
    if (reason.code() == StatusCode::kCancelled) {
      client_cancelled_.store(true);
    }
    memory_->Kill(reason);
    results_.Finish(reason);
  });
}

QueryStats QueryExecution::StatsSnapshot() const {
  std::vector<TaskStats> task_stats;
  for (const auto& fragment_tasks : tasks_) {
    for (const auto& task : fragment_tasks) {
      task_stats.push_back(task->CollectStats());
    }
  }
  return BuildQueryStats(std::move(task_stats), memory_->peak_user());
}

int64_t QueryExecution::total_cpu_nanos() const {
  int64_t total = 0;
  for (const auto& fragment_tasks : tasks_) {
    for (const auto& task : fragment_tasks) {
      total += task->cpu_nanos().load();
    }
  }
  return total;
}

int QueryExecution::active_writers(int fragment) const {
  if (fragment < 0 ||
      static_cast<size_t>(fragment) >= active_writers_.size()) {
    return -1;
  }
  const auto& counter = active_writers_[static_cast<size_t>(fragment)];
  return counter == nullptr ? -1 : counter->load();
}

void QueryExecution::OnTaskDone(int fragment, const Status& status) {
  // NOTE: once remaining_tasks_ hits zero, a waiter in Wait() may destroy
  // this object — and the engine around it — the moment mu_ is released, so
  // ALL finalization (driver release, exchange cleanup, lifecycle, the
  // admission-slot callback) must complete under the lock; a waiter cannot
  // wake before the unlock. Touch no members after the scope ends.
  {
    std::lock_guard<std::mutex> lock(mu_);
    --remaining_tasks_;
    --fragment_remaining_[static_cast<size_t>(fragment)];
    if (fragment_remaining_[static_cast<size_t>(fragment)] == 0) {
      fragment_done_[static_cast<size_t>(fragment)] = true;
    }
    if (!status.ok() && !finished_ &&
        status.code() != StatusCode::kCancelled) {
      final_status_ = status;
      finished_ = true;
      results_.Finish(status);
      memory_->Kill(status);
    }
    if (fragment == plan_.root_id &&
        fragment_done_[static_cast<size_t>(fragment)] && !finished_) {
      // Root produced everything: complete the result stream and tear down
      // any still-running upstream producers (e.g. after LIMIT).
      finished_ = true;
      results_.Finish(Status::OK());
      memory_->Kill(Status::Cancelled("query completed"));
    }
    if (remaining_tasks_ == 0) {
      if (!finished_) {
        finished_ = true;
        results_.Finish(final_status_);
      }
      // Every executor callback has fired, so nothing references the
      // drivers anymore. Release them now — regardless of whether the query
      // finished, failed, was cancelled, or was abandoned — returning every
      // memory-pool reservation, dropping exchange-buffer references, and
      // deleting spill files. A final stats snapshot is cached first so
      // EXPLAIN ANALYZE still works after teardown.
      for (auto& fragment_tasks : tasks_) {
        for (auto& task : fragment_tasks) task->ReleaseDrivers();
      }
      if (cluster_ != nullptr) cluster_->exchange().RemoveQuery(query_id_);
      // Finalize the lifecycle before mu_ is released: a Wait()-er may
      // destroy this object the moment the lock drops, and QueryInfoFor
      // after Wait() must observe the terminal state.
      if (lifecycle_ != nullptr) {
        lifecycle_->Finalize(final_status_, client_cancelled_.load(),
                             StatsSnapshot());
      }
      // Release the admission slot before the unlock too: it only takes
      // the coordinator's admission mutex, which is never held while an
      // execution's mu_ is acquired, so there is no lock cycle.
      if (on_complete_) {
        on_complete_();
        on_complete_ = nullptr;
      }
    }
    done_cv_.notify_all();
  }
}

void QueryExecution::SplitSchedulingLoop() {
  const ClusterConfig& config = cluster_->config();
  TraceRecorder* trace =
      lifecycle_ != nullptr ? lifecycle_->trace().get() : nullptr;
  // Pending split sources: (fragment, scan node id, source, exhausted).
  struct PendingSource {
    int fragment;
    int node_id;
    std::shared_ptr<const TableScanNode> scan;
    std::unique_ptr<SplitSource> source;
    bool exhausted = false;
  };
  std::vector<PendingSource> sources;
  for (const auto& fragment : plan_.fragments) {
    if (fragment.partitioning != PartitioningKind::kSource &&
        fragment.partitioning != PartitioningKind::kColocated) {
      continue;
    }
    std::vector<std::shared_ptr<const TableScanNode>> scans;
    CollectScans(fragment.root, &scans);
    for (const auto& scan : scans) {
      auto connector = catalog_->Get(scan->connector());
      if (!connector.ok()) {
        Cancel(connector.status());
        return;
      }
      ScanSpec spec;
      spec.table = scan->table();
      spec.layout_id = scan->layout_id();
      spec.columns = scan->columns();
      spec.predicates = scan->predicates();
      spec.num_workers = cluster_->num_workers();
      auto source = (*connector)->GetSplits(spec);
      if (!source.ok()) {
        Cancel(source.status());
        return;
      }
      sources.push_back(PendingSource{fragment.id, scan->id(), scan,
                                      std::move(*source), false});
    }
  }
  // Writer-scaling bookkeeping.
  Stopwatch scale_timer;

  auto all_deps_done = [this](const PlanFragment& fragment) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int dep : fragment.build_dependencies) {
      if (!fragment_done_[static_cast<size_t>(dep)]) return false;
    }
    return true;
  };

  bool work_left = true;
  while (!stop_split_thread_.load() && !memory_->killed()) {
    work_left = false;
    for (auto& pending : sources) {
      if (pending.exhausted) continue;
      work_left = true;
      const PlanFragment& fragment =
          plan_.fragments[static_cast<size_t>(pending.fragment)];
      // Phased scheduling (§IV-D1): defer probe-side split enumeration
      // until join build producers completed.
      if (config.phased_scheduling && !fragment.build_dependencies.empty() &&
          !all_deps_done(fragment)) {
        continue;
      }
      auto& fragment_tasks = tasks_[static_cast<size_t>(pending.fragment)];
      // Lazy enumeration: pause while queues are deep (§IV-D3).
      size_t min_queue = SIZE_MAX;
      for (const auto& task : fragment_tasks) {
        SplitQueue* queue = task->splits(pending.node_id);
        if (queue != nullptr) min_queue = std::min(min_queue, queue->size());
      }
      if (min_queue != SIZE_MAX &&
          min_queue > static_cast<size_t>(config.split_queue_soft_limit)) {
        continue;
      }
      auto batch = pending.source->NextBatch(config.split_batch_size);
      if (!batch.ok()) {
        Cancel(batch.status());
        return;
      }
      if (batch->empty()) {
        pending.exhausted = true;
        for (const auto& task : fragment_tasks) {
          SplitQueue* queue = task->splits(pending.node_id);
          if (queue != nullptr) queue->NoMoreSplits();
        }
        if (trace != nullptr) {
          trace->RecordInstant(
              "scheduler", "splits_exhausted", 0, 0,
              {{"fragment", std::to_string(pending.fragment)},
               {"scan_node", std::to_string(pending.node_id)}});
        }
        continue;
      }
      if (trace != nullptr) {
        trace->RecordInstant(
            "scheduler", "split_batch", 0, 0,
            {{"fragment", std::to_string(pending.fragment)},
             {"scan_node", std::to_string(pending.node_id)},
             {"splits", std::to_string(batch->size())}});
      }
      for (const auto& split : *batch) {
        int target = -1;
        if (split->preferred_worker() >= 0 && split->hard_affinity()) {
          // Shared-nothing placement (§IV-D2).
          target = split->preferred_worker() %
                   static_cast<int>(fragment_tasks.size());
        } else {
          // Shortest-queue assignment (§IV-D3).
          size_t best = 0;
          size_t best_size = SIZE_MAX;
          for (size_t t = 0; t < fragment_tasks.size(); ++t) {
            SplitQueue* queue = fragment_tasks[t]->splits(pending.node_id);
            if (queue != nullptr && queue->size() < best_size) {
              best_size = queue->size();
              best = t;
            }
          }
          target = static_cast<int>(best);
        }
        SplitQueue* queue =
            fragment_tasks[static_cast<size_t>(target)]->splits(
                pending.node_id);
        if (queue != nullptr) queue->Add(split);
      }
    }

    // Adaptive writer scaling (§IV-E3): while producer output buffers stay
    // busy, activate more writer partitions.
    if (config.adaptive_writer_scaling && scale_timer.ElapsedMillis() > 10) {
      scale_timer.Reset();
      for (const auto& fragment : plan_.fragments) {
        if (fragment.output_kind != ExchangeKind::kRoundRobin) continue;
        auto& counter = active_writers_[static_cast<size_t>(fragment.id)];
        if (counter == nullptr) continue;
        int consumer_tasks = static_cast<int>(
            tasks_[static_cast<size_t>(fragment.consumer)].size());
        if (counter->load() >= consumer_tasks) continue;
        double utilization = 0;
        int count = 0;
        for (const auto& task : tasks_[static_cast<size_t>(fragment.id)]) {
          utilization += cluster_->exchange().OutputUtilization(
              query_id_, fragment.id, task->spec().task_index);
          ++count;
        }
        if (count > 0 && utilization / count > 0.5) {
          counter->fetch_add(1);
        }
      }
      work_left = true;  // keep monitoring while the query runs
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (remaining_tasks_ == 0) return;
    }
    if (!work_left && !config.adaptive_writer_scaling) return;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

Result<std::shared_ptr<QueryExecution>> Coordinator::Execute(
    const std::string& query_id, FragmentedPlan plan,
    std::shared_ptr<QueryLifecycle> lifecycle) {
  // Admission control: bounded concurrent queries (queueing, §III).
  TraceRecorder* trace =
      lifecycle != nullptr ? lifecycle->trace().get() : nullptr;
  if (lifecycle != nullptr) lifecycle->MarkQueuedForAdmission();
  {
    int64_t admit_start = trace != nullptr ? trace->NowNanos() : 0;
    queued_.fetch_add(1);
    std::unique_lock<std::mutex> lock(admission_mu_);
    admission_cv_.wait(lock, [this] {
      return running_ < cluster_->config().max_concurrent_queries;
    });
    ++running_;
    queued_.fetch_sub(1);
    if (trace != nullptr) {
      trace->RecordSpan("coordinator", "admission_wait", 0, 0, admit_start,
                        trace->NowNanos() - admit_start);
    }
  }

  auto execution = std::shared_ptr<QueryExecution>(new QueryExecution());
  execution->query_id_ = query_id;
  execution->lifecycle_ = std::move(lifecycle);
  execution->cluster_ = cluster_;
  execution->catalog_ = catalog_;
  execution->plan_ = std::move(plan);
  execution->memory_ =
      std::make_unique<QueryMemory>(query_id, &cluster_->config().memory);
  execution->memory_->set_trace(trace);
  execution->schema_ =
      execution->plan_.fragments[static_cast<size_t>(
                                     execution->plan_.root_id)]
          .root->output();
  execution->on_complete_ = [this] {
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      --running_;
    }
    admission_cv_.notify_all();
  };

  const FragmentedPlan& fplan = execution->plan_;
  const ClusterConfig& config = cluster_->config();
  size_t num_fragments = fplan.fragments.size();
  execution->tasks_.resize(num_fragments);
  execution->active_writers_.resize(num_fragments);
  execution->fragment_remaining_.assign(num_fragments, 0);
  execution->fragment_done_.assign(num_fragments, false);

  // Decide task counts per fragment.
  std::vector<int> task_counts(num_fragments, 1);
  for (const auto& fragment : fplan.fragments) {
    switch (fragment.partitioning) {
      case PartitioningKind::kSingle:
        task_counts[static_cast<size_t>(fragment.id)] = 1;
        break;
      case PartitioningKind::kHash:
      case PartitioningKind::kSource:
      case PartitioningKind::kColocated:
        // Leaf stages run on every worker when unconstrained (§IV-D2).
        task_counts[static_cast<size_t>(fragment.id)] =
            cluster_->num_workers();
        break;
    }
  }

  // Writer-scaling counters for round-robin producer fragments.
  for (const auto& fragment : fplan.fragments) {
    if (fragment.output_kind == ExchangeKind::kRoundRobin &&
        fragment.consumer >= 0) {
      int consumers = task_counts[static_cast<size_t>(fragment.consumer)];
      int initial = config.adaptive_writer_scaling ? 1 : consumers;
      execution->active_writers_[static_cast<size_t>(fragment.id)] =
          std::make_unique<std::atomic<int>>(initial);
    }
  }

  // Create and register tasks.
  int single_task_worker =
      round_robin_worker_.load(std::memory_order_relaxed);
  for (const auto& fragment : fplan.fragments) {
    int count = task_counts[static_cast<size_t>(fragment.id)];
    execution->fragment_remaining_[static_cast<size_t>(fragment.id)] = count;
    execution->remaining_tasks_ += count;
    for (int t = 0; t < count; ++t) {
      int worker = count == 1
                       ? (single_task_worker++ % cluster_->num_workers())
                       : t;
      TaskSpec spec;
      spec.query_id = query_id;
      spec.fragment_id = fragment.id;
      spec.task_index = t;
      spec.num_tasks = count;
      spec.consumer_partitions =
          fragment.consumer >= 0
              ? task_counts[static_cast<size_t>(fragment.consumer)]
              : 1;
      spec.worker_id = worker;
      if (config.network.transport == TransportMode::kHttp) {
        // Consumers resolve a producer task's output via its worker's
        // exchange endpoint; the coordinator owns placement, so it owns
        // the (task -> endpoint) map too.
        cluster_->exchange().RegisterTaskEndpoint(
            query_id, fragment.id, t, cluster_->http_port(worker));
      }
      for (int input : fragment.inputs) {
        spec.source_task_counts[input] =
            task_counts[static_cast<size_t>(input)];
      }
      TaskRuntime runtime;
      runtime.query_memory = execution->memory_.get();
      runtime.worker_memory = &cluster_->worker(worker).memory();
      runtime.exchange = &cluster_->exchange();
      runtime.catalog = catalog_;
      runtime.eval_mode = config.eval_mode;
      runtime.exchange_buffer_bytes = config.exchange_buffer_bytes;
      runtime.max_drivers_per_pipeline = config.max_drivers_per_pipeline;
      runtime.trace = trace;
      if (fragment.id == fplan.root_id) {
        runtime.results = &execution->results_;
      }
      const auto& writer_counter =
          execution->active_writers_[static_cast<size_t>(fragment.id)];
      if (writer_counter != nullptr) {
        runtime.active_output_partitions = writer_counter.get();
      }
      auto task = std::make_shared<TaskExec>(
          spec, runtime,
          &fplan.fragments[static_cast<size_t>(fragment.id)]);
      PRESTO_RETURN_IF_ERROR(task->Initialize());
      execution->tasks_[static_cast<size_t>(fragment.id)].push_back(task);
    }
  }
  round_robin_worker_.store(single_task_worker % cluster_->num_workers(),
                            std::memory_order_relaxed);

  if (execution->lifecycle_ != nullptr) {
    std::map<int, int> fragment_task_counts;
    for (const auto& fragment : fplan.fragments) {
      fragment_task_counts[fragment.id] =
          task_counts[static_cast<size_t>(fragment.id)];
    }
    execution->lifecycle_->MarkRunning(std::move(fragment_task_counts));
  }

  // Launch: register every task with its worker's executor (all-at-once;
  // phased mode defers only split enumeration, keeping pipelines available
  // to consume build sides without deadlocks).
  for (const auto& fragment_tasks : execution->tasks_) {
    if (trace != nullptr && !fragment_tasks.empty()) {
      trace->RecordInstant(
          "scheduler", "stage_scheduled", 0, 0,
          {{"fragment",
            std::to_string(fragment_tasks.front()->spec().fragment_id)},
           {"tasks", std::to_string(fragment_tasks.size())}});
    }
    for (const auto& task : fragment_tasks) {
      int fragment = task->spec().fragment_id;
      // Raw capture is safe: ~QueryExecution waits for every task callback
      // before releasing the object.
      QueryExecution* raw_exec = execution.get();
      cluster_->worker(task->spec().worker_id)
          .executor()
          .AddTask(task, [raw_exec, fragment](Status status) {
            raw_exec->OnTaskDone(fragment, status);
          });
    }
  }

  // Start the split/monitor thread. It captures a raw pointer: the
  // destructor joins the thread before members are destroyed.
  QueryExecution* raw = execution.get();
  execution->split_thread_ =
      std::thread([raw] { raw->SplitSchedulingLoop(); });
  execution->launched_ = true;

  return execution;
}

}  // namespace presto
