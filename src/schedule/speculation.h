#ifndef PRESTOCPP_SCHEDULE_SPECULATION_H_
#define PRESTOCPP_SCHEDULE_SPECULATION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace presto {

/// One task slot's progress as sampled from the status long-poll cache
/// (ISSUE 9). `progress` must be monotone and comparable among sibling
/// tasks of the same fragment (rows emitted by the task's pipeline sinks).
struct TaskProgressSample {
  int fragment = 0;
  int task = 0;
  /// Monotone progress indicator; only compared within a fragment.
  double progress = 0;
  /// Micros since the hosting worker last observed progress advance.
  int64_t stall_micros = 0;
  /// May host a replica: running, current generation, live worker, not
  /// already speculated. Ineligible samples (finished siblings, slots
  /// with an active replica) still anchor the quantile distribution.
  bool speculatable = true;
};

/// Straggler-selection policy (ClusterConfig knobs, ISSUE 9).
struct SpeculationPolicy {
  /// A task is a straggler when its progress is strictly below the value
  /// at this quantile of its fragment's sibling distribution.
  double quantile = 0.5;
  /// Minimum sibling samples per fragment before quantiles mean anything;
  /// single-task fragments are never speculated.
  int min_samples = 2;
  /// Budget: maximum straggler candidates returned (concurrent replicas).
  int max_speculative_tasks = 2;
  /// A straggler must additionally have made no progress for at least this
  /// long (the caller scales the config floor by observed heartbeat RTT so
  /// slow control planes do not trigger spurious replicas).
  int64_t min_stall_micros = 0;
};

/// Pure candidate selection (unit-tested like ComputeRestartSet): returns
/// the (fragment, task) slots worth racing a replica against, slowest
/// first, truncated to the policy budget. Rules:
///
///   - fewer than two live workers -> no candidates (a replica must run on
///     a different worker than the original);
///   - a fragment contributes candidates only when it has at least
///     `min_samples` samples;
///   - the straggler threshold is the progress value at index
///     floor(quantile * n) of the fragment's sorted sample progresses;
///     a candidate's progress must be STRICTLY below it, so all-equal
///     progress (including everyone-at-zero startup) selects nobody;
///   - a candidate must be speculatable and stalled >= min_stall_micros.
///
/// Each slot appears at most once; the caller's speculatable flag is the
/// never-two-replicas-of-one-task dedup across ticks.
std::vector<std::pair<int, int>> PickStragglers(
    const std::vector<TaskProgressSample>& samples,
    const SpeculationPolicy& policy, int live_workers);

/// Serializes speculation work onto one background thread (sibling of
/// TaskRecoveryManager): a periodic tick samples progress and launches
/// replicas; enqueued jobs (replica-win promotions) run ahead of the next
/// tick. The tick/jobs run without any SpeculationManager lock held, so
/// they may freely block on coordinator mutexes or call back into
/// Enqueue().
class SpeculationManager {
 public:
  using Tick = std::function<void()>;

  SpeculationManager(int64_t interval_micros, Tick tick);
  ~SpeculationManager() { Stop(); }

  SpeculationManager(const SpeculationManager&) = delete;
  SpeculationManager& operator=(const SpeculationManager&) = delete;

  /// Runs `job` on the manager thread before the next tick. Used for
  /// replica-win promotions so they serialize with candidate selection.
  void Enqueue(std::function<void()> job);

  /// Stops the thread after draining queued jobs (a queued promotion may
  /// be the only thing discharging a held task callback). Idempotent.
  void Stop();

 private:
  void Loop();

  const int64_t interval_micros_;
  Tick tick_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_SPECULATION_H_
