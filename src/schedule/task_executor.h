#ifndef PRESTOCPP_SCHEDULE_TASK_EXECUTOR_H_
#define PRESTOCPP_SCHEDULE_TASK_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/task.h"
#include "stats/metrics_registry.h"

namespace presto {

/// Executor configuration. The quantum mirrors the paper's one-second
/// maximum (scaled to our much smaller cluster); five MLFQ levels with
/// decreasing CPU shares match §IV-F1.
struct ExecutorConfig {
  int threads = 2;
  int64_t quantum_nanos = 2'000'000;  // 2 ms
  /// Cumulative task-CPU thresholds (nanos) separating the 5 levels.
  int64_t level_thresholds[4] = {10'000'000, 100'000'000, 1'000'000'000,
                                 10'000'000'000};
  /// Target CPU share per level (highest priority first).
  double level_shares[5] = {0.35, 0.25, 0.18, 0.12, 0.10};
  /// Output-buffer utilization above which a task's effective driver
  /// concurrency is reduced (§IV-E2).
  double buffer_backpressure_threshold = 0.9;
  /// True scheduling policy: kMlfq (paper) or kFifo (ablation baseline).
  bool use_mlfq = true;
};

/// Cooperative multi-tasking executor for one worker (§IV-F1): many tasks'
/// drivers share a small pool of threads; a driver runs for at most one
/// quantum, then yields. Tasks are classified into the five levels of a
/// multi-level feedback queue by their accumulated CPU time, so new and
/// inexpensive queries get CPU within milliseconds even under load (Fig. 8).
class TaskExecutor {
 public:
  TaskExecutor(ExecutorConfig config, int worker_id);
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  /// Registers a task: all its drivers become runnable. `on_done` fires
  /// exactly once, after EVERY driver has drained from the executor — with
  /// OK if all finished, else the first error. Firing only on drain means
  /// the callback may safely destroy the task and everything its drivers
  /// reference; errors still propagate fast because the first failing
  /// driver kills the query memory, which makes the remaining drivers fail
  /// their next scheduling check.
  void AddTask(std::shared_ptr<TaskExec> task,
               std::function<void(Status)> on_done);

  /// Total CPU-busy nanoseconds across executor threads (Fig. 8 metric).
  int64_t busy_nanos() const { return busy_nanos_.load(); }
  /// Number of tasks currently registered.
  int active_tasks() const;

  /// Quanta executed at MLFQ level `level` (0..4) since startup.
  int64_t quanta_at_level(int level) const {
    return quanta_[static_cast<size_t>(level)].load();
  }

  /// Live scheduling-queue readings for the worker's /v1/metrics and
  /// /v1/status endpoints (ISSUE 10). Each takes mu_ briefly.
  /// Runnable drivers queued at MLFQ level `level` (0..4).
  int64_t queue_depth(int level) const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(levels_[static_cast<size_t>(level)].size());
  }
  /// Blocked drivers parked outside the runnable queues.
  int64_t parked_drivers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(parked_.size());
  }
  /// Drivers not yet drained, runnable or parked or mid-quantum.
  int64_t running_drivers() const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t total = 0;
    for (const auto& entry : tasks_) total += entry->remaining_drivers;
    return total;
  }
  /// MLFQ level a task with `cpu_nanos` accumulated CPU runs at.
  int LevelForCpu(int64_t cpu_nanos) const { return LevelOf(cpu_nanos); }

  /// Installs a histogram observing each quantum's CPU seconds (may be
  /// null; swapped in by the engine after construction).
  void set_quantum_histogram(Histogram* histogram) {
    quantum_histogram_.store(histogram);
  }

 private:
  struct TaskEntry {
    std::shared_ptr<TaskExec> task;
    std::function<void(Status)> on_done;
    int remaining_drivers = 0;
    /// First driver error; reported to on_done when the last driver drains.
    Status first_error;
  };

  struct DriverEntry {
    Driver* driver;
    std::shared_ptr<TaskEntry> task_entry;
    // Consecutive blocked runs; drives exponential park backoff so blocked
    // drivers do not livelock small machines.
    int consecutive_blocks = 0;
    // When the driver last became runnable; the wait until dequeue is the
    // driver's queued time (charged to its sink operator).
    std::chrono::steady_clock::time_point runnable_since{};
    // MLFQ level of the previous quantum, for level-change trace instants.
    int last_level = 0;
  };

  void WorkerLoop();
  int LevelOf(int64_t cpu_nanos) const;
  // Picks the next runnable driver honoring level shares; nullopt if empty.
  // Promotes blocked drivers whose retry deadline passed first.
  std::optional<DriverEntry> NextDriver();
  void Requeue(DriverEntry entry);
  // Parks a blocked driver outside the runnable queues (§IV-F1: blocked
  // drivers relinquish their thread and are not schedulable until re-armed).
  void Park(DriverEntry entry);
  void DriverDone(const DriverEntry& entry, const Status& status);

  ExecutorConfig config_;
  int worker_id_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<DriverEntry> levels_[5];
  // Blocked drivers with their earliest retry time.
  std::deque<std::pair<std::chrono::steady_clock::time_point, DriverEntry>>
      parked_;
  std::vector<std::shared_ptr<TaskEntry>> tasks_;
  double level_consumed_[5] = {0, 0, 0, 0, 0};
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> busy_nanos_{0};
  std::atomic<int64_t> quanta_[5] = {};
  std::atomic<Histogram*> quantum_histogram_{nullptr};
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_TASK_EXECUTOR_H_
