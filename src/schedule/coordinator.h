#ifndef PRESTOCPP_SCHEDULE_COORDINATOR_H_
#define PRESTOCPP_SCHEDULE_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "connector/connector.h"
#include "exec/task.h"
#include "fragment/fragmenter.h"
#include "schedule/cluster.h"
#include "schedule/speculation.h"
#include "schedule/task_recovery.h"
#include "stats/metrics_registry.h"
#include "stats/query_stats.h"
#include "worker/task_client.h"

namespace presto {

class MetadataManager;

/// Shortest-queue split assignment (§IV-D3) restricted to tasks whose
/// worker is alive and which actually own a split queue for `node_id`.
/// Errors when no candidate exists — the pre-ISSUE-7 code silently fell
/// back to task index 0 then, quietly feeding splits to a task that could
/// be sitting on a dead worker.
Result<int> ChooseSplitTarget(
    const std::vector<std::shared_ptr<TaskClient>>& tasks, int node_id);

/// A running (or finished) distributed query: owns the per-fragment task
/// clients, the lazy split-scheduling thread, the writer-scaling monitor,
/// and the client-facing result stream.
class QueryExecution {
 public:
  ~QueryExecution();

  const std::string& query_id() const { return query_id_; }
  const RowSchema& schema() const { return schema_; }
  ResultQueue& results() { return results_; }
  QueryMemory& memory() { return *memory_; }

  /// Blocks until every task completed; returns the query's final status.
  Status Wait();

  /// Kills the query (client cancellation, internal error, or abandonment).
  /// Callable from any thread any number of times; only the first call's
  /// reason takes effect.
  void Cancel(const Status& reason);

  /// Total CPU nanoseconds consumed across all tasks.
  int64_t total_cpu_nanos() const;

  /// Current number of active writer partitions (adaptive scaling).
  int active_writers(int fragment) const;

  /// The fragmented plan this execution runs (for EXPLAIN ANALYZE).
  const FragmentedPlan& plan() const { return plan_; }

  /// Aggregates per-operator runtime stats across every task. Safe while
  /// the query runs (counters are atomics); exact once it finished.
  QueryStats StatsSnapshot() const;

  /// Live per-slot progress from the status caches (ISSUE 10): the
  /// /v1/query/{id} "taskProgress" payload. Safe to call at any time.
  std::vector<TaskProgress> TaskProgressSnapshot() const;

 private:
  friend class Coordinator;
  QueryExecution() = default;

  void SplitSchedulingLoop();
  /// Terminal-status callback for task slot (fragment, task). `generation`
  /// identifies the incarnation that completed: a callback from a
  /// superseded incarnation only settles its accounting, while a
  /// current-generation worker-loss failure is absorbed into a recovery
  /// request instead of failing the query (ISSUE 7).
  void OnTaskDone(int fragment, int task, int generation,
                  const Status& status);
  /// Best-effort cancel RPC to every task (no-op clients ignore it).
  /// Snapshots the client vector under tasks_mu_, then calls outside it.
  void AbortAllTasks();
  /// Liveness death listener (kProcess with retries): queues a recovery
  /// request for every unfinished slot placed on `worker`.
  void OnWorkerDeath(int worker);
  /// Recovery-thread handler for one queued request: computes the restart
  /// closure, re-places the dead worker's slots on live workers, launches
  /// generation+1 replacements, and replays their journaled splits — or
  /// fails the query cleanly when retries are exhausted, no live worker
  /// remains, or a non-replayable stage (result frames already delivered
  /// to the client) is involved.
  void RunRecovery(const RecoveryRequest& request);
  /// Builds the HTTP client + create request for slot (fragment, task)
  /// from the current placement_/generations_ tables. Caller holds
  /// tasks_mu_ (or is single-threaded pre-launch inside Execute()).
  std::shared_ptr<TaskClient> MakeRemoteClientLocked(int fragment, int task);
  /// Same, but for an explicit worker and generation (speculative replicas
  /// run at generation+1 on a worker the placement table does not know
  /// about until the replica is promoted). Caller holds tasks_mu_.
  std::shared_ptr<TaskClient> MakeRemoteClientForLocked(int fragment,
                                                        int task, int worker,
                                                        int generation);
  /// SpeculationManager tick (ISSUE 9): samples every slot's progress from
  /// the status caches, picks stragglers via PickStragglers, and races a
  /// higher-generation replica on a different live worker against each.
  void SpeculationTick();
  /// Speculation-thread handler for a replica that finished first: decides
  /// promotion (the replica becomes the slot's incarnation, consumers of
  /// its fragment restart like a recovery round, the original is aborted
  /// kCancelled) or abandonment (results already delivered / recovery owns
  /// the slot — the replica is aborted and the original keeps running).
  void RunPromotion(int fragment, int task, int generation);
  /// Settles every speculative replica during query failure/teardown:
  /// aborts it, parks its client in superseded_clients_, and discharges a
  /// won-replica's held completion. Caller holds mu_ and tasks_mu_.
  void DischargeSpeculationLocked();
  /// The shared tail of OnTaskDone/RunRecovery under mu_: finishes the
  /// stream and finalizes once remaining_tasks_ drained to zero.
  void FinishIfDrainedLocked();
  /// Converts every absorbed recovery hold back into a completed-task
  /// decrement (the query is failing; no replacement will consume them).
  /// Caller holds mu_ and tasks_mu_.
  void DischargeRecoveryHoldsLocked();
  /// kProcess only: pulls the root task's output buffer over the exchange
  /// protocol into results_, finishing the stream when the buffer
  /// completes (and aborting still-running upstream producers, e.g. after
  /// LIMIT).
  void ResultFetchLoop();
  /// One-shot end-of-query teardown under mu_: releases every task's
  /// resources (coordinator- and worker-side), drops this query's exchange
  /// state, finalizes the lifecycle record, and frees the admission slot.
  void FinalizeLocked();
  /// Run by the result-fetch thread on exit: performs the finalization the
  /// last OnTaskDone deferred so the root output buffer outlived its drain.
  void FinalizeIfDeferred();

  std::string query_id_;
  RowSchema schema_;
  Cluster* cluster_ = nullptr;
  const Catalog* catalog_ = nullptr;
  // Optional split-enumeration cache (ISSUE 8); null when the coordinator
  // is driven without an engine (direct tests).
  MetadataManager* metadata_manager_ = nullptr;
  FragmentedPlan plan_;
  std::unique_ptr<QueryMemory> memory_;
  ResultQueue results_;
  // tasks_[fragment][task_index]; DirectTaskClient in kThreads mode,
  // HttpTaskClient in kProcess mode. The vector shape is immutable once
  // launched; individual elements are swapped by recovery under tasks_mu_.
  std::vector<std::vector<std::shared_ptr<TaskClient>>> tasks_;
  // Round-robin writer-scaling state per fragment (producer side).
  std::vector<std::unique_ptr<std::atomic<int>>> active_writers_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  int remaining_tasks_ = 0;
  std::vector<int> fragment_remaining_;
  std::vector<bool> fragment_done_;
  Status final_status_;
  bool finished_ = false;
  /// kProcess: set when the last task completed successfully but the
  /// result-fetch thread had not yet drained the root output buffer; that
  /// thread then owns finishing the stream and running FinalizeLocked().
  bool defer_finalize_ = false;
  bool finalized_ = false;
  /// Set (under mu_) once Execute()'s initial launch loop has issued every
  /// gen-0 Launch. RunRecovery() blocks on it: a create that fails
  /// synchronously mid-loop (worker died before the query started) would
  /// otherwise let the recovery thread swap replacement clients into
  /// tasks_ while the loop is still walking it — and the loop would then
  /// Launch an already-launched replacement a second time.
  bool launch_complete_ = false;

  std::thread split_thread_;
  std::atomic<bool> stop_split_thread_{false};
  std::function<void()> on_complete_;  // admission-slot release
  /// True once every task is registered with an executor (i.e. OnTaskDone
  /// callbacks will eventually fire). A failed Execute() tears down an
  /// unlaunched execution, and waiting for callbacks then would hang.
  bool launched_ = false;
  /// Makes Cancel() exactly-once across client cancel, internal errors,
  /// and destructor abandonment racing each other.
  std::once_flag cancel_once_;

  /// Out-of-process execution state (ISSUE 6).
  bool process_mode_ = false;
  int root_fetch_port_ = -1;
  std::thread result_fetch_thread_;
  std::atomic<bool> stop_fetch_thread_{false};

  /// ---- Task recovery on worker death (ISSUE 7; kProcess only). ----
  /// Guards the slot tables below plus the elements of tasks_. Lock order:
  /// mu_ before tasks_mu_ before fetch_mu_; never the reverse.
  mutable std::mutex tasks_mu_;
  bool recovery_enabled_ = false;
  int max_task_retries_ = 0;
  /// Serialized fragments + scheduling tables kept so a replacement task's
  /// create request can be rebuilt at any time.
  std::vector<Json> fragment_jsons_;
  std::vector<int> task_counts_;
  std::vector<std::vector<int>> placement_;    // [fragment][task] -> worker
  std::vector<std::vector<int>> generations_;  // current incarnation
  std::vector<std::vector<int>> retry_counts_; // dead-worker restarts only
  std::vector<std::vector<bool>> slot_finished_;
  /// Slot whose terminal callback was absorbed into a pending recovery
  /// request: remaining_tasks_ still counts it (the "hold") until a
  /// recovery round launches its replacement or fails the query.
  std::vector<std::vector<bool>> slot_recovering_;
  /// Split-assignment journal: everything ever routed to a slot, replayed
  /// verbatim into its replacement. Connector pointers outlive the query
  /// (catalog-owned).
  struct SlotJournal {
    std::map<int, std::vector<std::pair<SplitPtr, Connector*>>> splits;
  };
  std::vector<std::vector<SlotJournal>> journal_;
  std::vector<std::set<int>> no_more_splits_;  // per fragment: closed nodes
  /// Clients replaced by recovery, kept alive until the execution is
  /// destroyed: destroying an HttpTaskClient joins its poll thread, and
  /// that thread may be blocked on mu_ delivering the stale callback (so
  /// freeing inside the recovery round would deadlock) or may itself be
  /// the thread running FinalizeLocked() (a self-join). Only
  /// ~QueryExecution — a waiter thread, after every callback settled —
  /// may free them. Guarded by tasks_mu_.
  std::vector<std::shared_ptr<TaskClient>> superseded_clients_;
  /// Parks the split-scheduling loop while a recovery round swaps clients
  /// and replays journals.
  std::atomic<bool> recovery_pause_{false};
  std::unique_ptr<TaskRecoveryManager> recovery_;
  int liveness_listener_ = -1;
  Counter* retries_counter_ = nullptr;        // presto_task_retries_total
  Histogram* recovery_histogram_ = nullptr;   // recovery latency, seconds

  /// ---- Speculative execution of stragglers (ISSUE 9; kProcess only). ----
  /// One active replica racing a slot's current incarnation. Guarded by
  /// tasks_mu_. Every registry entry holds +1 in remaining_tasks_ (the
  /// replica's own terminal callback), so the registry is provably empty
  /// by the time FinalizeLocked() runs.
  struct SpecReplica {
    int generation = 0;   // original generation + 1 at launch time
    int worker = -1;      // never equal to placement_[fragment][task]
    /// Journal replayed into the replica; the split loop may forward live
    /// deliveries only afterwards (pre-replay splits reach the replica via
    /// the journal — forwarding earlier would deliver them twice).
    bool replayed = false;
    /// The replica finished OK and its callback is held until RunPromotion
    /// decides commit-vs-abandon (mirrors the recovery holds).
    bool won = false;
    std::shared_ptr<TaskClient> client;
  };
  std::map<std::pair<int, int>, SpecReplica> spec_replicas_;
  /// Slots ever speculated this query — never two replicas of one task.
  std::set<std::pair<int, int>> speculated_;
  bool speculation_enabled_ = false;
  SpeculationPolicy speculation_policy_;
  std::unique_ptr<SpeculationManager> speculation_;
  Counter* speculations_counter_ = nullptr;  // presto_task_speculations_total
  Counter* wins_counter_ = nullptr;          // presto_speculation_wins_total

  /// Cross-process trace shipping instruments (ISSUE 10), indexed by
  /// worker id: spans merged from / dropped by each worker's recorder.
  /// Empty when the engine did not install them.
  std::vector<Counter*> trace_shipped_counters_;
  std::vector<Counter*> trace_dropped_counters_;

  /// Root result-stream epoch: the fetch loop rebinds its exchange client
  /// whenever recovery moved the root task. root_frames_consumed_ counts
  /// frames already delivered to the client under the current epoch — a
  /// root restart is only legal while it is zero (otherwise replayed
  /// frames would duplicate delivered rows, so the query fails cleanly).
  std::mutex fetch_mu_;
  int root_epoch_ = 0;
  int root_fetch_generation_ = 0;
  int64_t root_frames_consumed_ = 0;

  /// Lifecycle record finalized when the last task completes; may be null
  /// (tests that drive the coordinator directly).
  std::shared_ptr<QueryLifecycle> lifecycle_;
  std::atomic<bool> client_cancelled_{false};
};

/// The coordinator (§III): admits queries, places fragment tasks on
/// workers, feeds splits lazily with shortest-queue assignment (§IV-D3),
/// honors phased scheduling dependencies (§IV-D1), and scales writer stages
/// adaptively (§IV-E3). In ClusterMode::kProcess the same scheduling logic
/// drives remote worker daemons through the /v1/task HTTP protocol.
class Coordinator {
 public:
  Coordinator(Cluster* cluster, const Catalog* catalog)
      : cluster_(cluster), catalog_(catalog) {}

  /// Starts executing a fragmented plan; blocks only for admission. The
  /// optional lifecycle is transitioned through admission/running and
  /// finalized when the last task completes.
  Result<std::shared_ptr<QueryExecution>> Execute(
      const std::string& query_id, FragmentedPlan plan,
      std::shared_ptr<QueryLifecycle> lifecycle = nullptr);

  /// Installs the recovery observability instruments (ISSUE 7): the
  /// presto_task_retries_total counter and the recovery-latency histogram,
  /// both registry-owned and outliving the coordinator. Either may be
  /// null (tests that drive the coordinator directly).
  void SetRecoveryInstruments(Counter* retries, Histogram* latency) {
    retries_counter_ = retries;
    recovery_histogram_ = latency;
  }

  /// Installs the speculation observability instruments (ISSUE 9):
  /// presto_task_speculations_total and presto_speculation_wins_total.
  /// Either may be null (tests that drive the coordinator directly).
  void SetSpeculationInstruments(Counter* speculations, Counter* wins) {
    speculations_counter_ = speculations;
    speculation_wins_counter_ = wins;
  }

  /// Installs the cross-process trace-shipping instruments (ISSUE 10),
  /// indexed by worker id: presto_trace_shipped_spans_total and
  /// presto_trace_dropped_spans_total, labeled {worker="w<i>"}. Registry-
  /// owned; empty vectors are fine (tests that drive the coordinator
  /// directly).
  void SetTraceShippingInstruments(std::vector<Counter*> shipped,
                                   std::vector<Counter*> dropped) {
    trace_shipped_counters_ = std::move(shipped);
    trace_dropped_counters_ = std::move(dropped);
  }

  /// Installs the planning-path cache subsystem (ISSUE 8): split
  /// enumeration then goes through the manager's split cache. May be null
  /// (tests that drive the coordinator directly enumerate uncached).
  void SetMetadataManager(MetadataManager* manager) {
    metadata_manager_ = manager;
  }

  int running_queries() const {
    std::lock_guard<std::mutex> lock(admission_mu_);
    return running_;
  }

  /// Queries waiting for an admission slot right now.
  int queued_queries() const { return queued_.load(); }

 private:
  Cluster* cluster_;
  const Catalog* catalog_;
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int running_ = 0;
  std::atomic<int> queued_{0};
  // Best-effort placement cursor for single-task fragments; relaxed atomic
  // because concurrent Execute() calls may interleave and exact rotation
  // does not matter, only rough spread.
  std::atomic<int> round_robin_worker_{0};
  Counter* retries_counter_ = nullptr;
  Histogram* recovery_histogram_ = nullptr;
  Counter* speculations_counter_ = nullptr;
  Counter* speculation_wins_counter_ = nullptr;
  std::vector<Counter*> trace_shipped_counters_;
  std::vector<Counter*> trace_dropped_counters_;
  MetadataManager* metadata_manager_ = nullptr;
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_COORDINATOR_H_
