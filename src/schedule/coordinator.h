#ifndef PRESTOCPP_SCHEDULE_COORDINATOR_H_
#define PRESTOCPP_SCHEDULE_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "connector/connector.h"
#include "exec/task.h"
#include "fragment/fragmenter.h"
#include "schedule/cluster.h"
#include "stats/query_stats.h"
#include "worker/task_client.h"

namespace presto {

/// A running (or finished) distributed query: owns the per-fragment task
/// clients, the lazy split-scheduling thread, the writer-scaling monitor,
/// and the client-facing result stream.
class QueryExecution {
 public:
  ~QueryExecution();

  const std::string& query_id() const { return query_id_; }
  const RowSchema& schema() const { return schema_; }
  ResultQueue& results() { return results_; }
  QueryMemory& memory() { return *memory_; }

  /// Blocks until every task completed; returns the query's final status.
  Status Wait();

  /// Kills the query (client cancellation, internal error, or abandonment).
  /// Callable from any thread any number of times; only the first call's
  /// reason takes effect.
  void Cancel(const Status& reason);

  /// Total CPU nanoseconds consumed across all tasks.
  int64_t total_cpu_nanos() const;

  /// Current number of active writer partitions (adaptive scaling).
  int active_writers(int fragment) const;

  /// The fragmented plan this execution runs (for EXPLAIN ANALYZE).
  const FragmentedPlan& plan() const { return plan_; }

  /// Aggregates per-operator runtime stats across every task. Safe while
  /// the query runs (counters are atomics); exact once it finished.
  QueryStats StatsSnapshot() const;

 private:
  friend class Coordinator;
  QueryExecution() = default;

  void SplitSchedulingLoop();
  void OnTaskDone(int fragment, const Status& status);
  /// Best-effort cancel RPC to every task (no-op clients ignore it).
  /// Touches only the immutable tasks_ vector, so callable with or
  /// without mu_ held.
  void AbortAllTasks();
  /// kProcess only: pulls the root task's output buffer over the exchange
  /// protocol into results_, finishing the stream when the buffer
  /// completes (and aborting still-running upstream producers, e.g. after
  /// LIMIT).
  void ResultFetchLoop();
  /// One-shot end-of-query teardown under mu_: releases every task's
  /// resources (coordinator- and worker-side), drops this query's exchange
  /// state, finalizes the lifecycle record, and frees the admission slot.
  void FinalizeLocked();
  /// Run by the result-fetch thread on exit: performs the finalization the
  /// last OnTaskDone deferred so the root output buffer outlived its drain.
  void FinalizeIfDeferred();

  std::string query_id_;
  RowSchema schema_;
  Cluster* cluster_ = nullptr;
  const Catalog* catalog_ = nullptr;
  FragmentedPlan plan_;
  std::unique_ptr<QueryMemory> memory_;
  ResultQueue results_;
  // tasks_[fragment][task_index]; DirectTaskClient in kThreads mode,
  // HttpTaskClient in kProcess mode. Immutable once launched.
  std::vector<std::vector<std::shared_ptr<TaskClient>>> tasks_;
  // Round-robin writer-scaling state per fragment (producer side).
  std::vector<std::unique_ptr<std::atomic<int>>> active_writers_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  int remaining_tasks_ = 0;
  std::vector<int> fragment_remaining_;
  std::vector<bool> fragment_done_;
  Status final_status_;
  bool finished_ = false;
  /// kProcess: set when the last task completed successfully but the
  /// result-fetch thread had not yet drained the root output buffer; that
  /// thread then owns finishing the stream and running FinalizeLocked().
  bool defer_finalize_ = false;
  bool finalized_ = false;

  std::thread split_thread_;
  std::atomic<bool> stop_split_thread_{false};
  std::function<void()> on_complete_;  // admission-slot release
  /// True once every task is registered with an executor (i.e. OnTaskDone
  /// callbacks will eventually fire). A failed Execute() tears down an
  /// unlaunched execution, and waiting for callbacks then would hang.
  bool launched_ = false;
  /// Makes Cancel() exactly-once across client cancel, internal errors,
  /// and destructor abandonment racing each other.
  std::once_flag cancel_once_;

  /// Out-of-process execution state (ISSUE 6).
  bool process_mode_ = false;
  int root_fetch_port_ = -1;
  std::thread result_fetch_thread_;
  std::atomic<bool> stop_fetch_thread_{false};

  /// Lifecycle record finalized when the last task completes; may be null
  /// (tests that drive the coordinator directly).
  std::shared_ptr<QueryLifecycle> lifecycle_;
  std::atomic<bool> client_cancelled_{false};
};

/// The coordinator (§III): admits queries, places fragment tasks on
/// workers, feeds splits lazily with shortest-queue assignment (§IV-D3),
/// honors phased scheduling dependencies (§IV-D1), and scales writer stages
/// adaptively (§IV-E3). In ClusterMode::kProcess the same scheduling logic
/// drives remote worker daemons through the /v1/task HTTP protocol.
class Coordinator {
 public:
  Coordinator(Cluster* cluster, const Catalog* catalog)
      : cluster_(cluster), catalog_(catalog) {}

  /// Starts executing a fragmented plan; blocks only for admission. The
  /// optional lifecycle is transitioned through admission/running and
  /// finalized when the last task completes.
  Result<std::shared_ptr<QueryExecution>> Execute(
      const std::string& query_id, FragmentedPlan plan,
      std::shared_ptr<QueryLifecycle> lifecycle = nullptr);

  int running_queries() const {
    std::lock_guard<std::mutex> lock(admission_mu_);
    return running_;
  }

  /// Queries waiting for an admission slot right now.
  int queued_queries() const { return queued_.load(); }

 private:
  Cluster* cluster_;
  const Catalog* catalog_;
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int running_ = 0;
  std::atomic<int> queued_{0};
  // Best-effort placement cursor for single-task fragments; relaxed atomic
  // because concurrent Execute() calls may interleave and exact rotation
  // does not matter, only rough spread.
  std::atomic<int> round_robin_worker_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_COORDINATOR_H_
