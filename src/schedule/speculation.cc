#include "schedule/speculation.h"

#include <algorithm>
#include <chrono>
#include <map>

namespace presto {

std::vector<std::pair<int, int>> PickStragglers(
    const std::vector<TaskProgressSample>& samples,
    const SpeculationPolicy& policy, int live_workers) {
  std::vector<std::pair<int, int>> picked;
  if (live_workers < 2 || policy.max_speculative_tasks <= 0) return picked;

  std::map<int, std::vector<const TaskProgressSample*>> by_fragment;
  for (const auto& sample : samples) {
    by_fragment[sample.fragment].push_back(&sample);
  }

  std::vector<const TaskProgressSample*> stragglers;
  for (const auto& [fragment, group] : by_fragment) {
    const int n = static_cast<int>(group.size());
    if (n < policy.min_samples) continue;
    std::vector<double> progresses;
    progresses.reserve(group.size());
    for (const TaskProgressSample* sample : group) {
      progresses.push_back(sample->progress);
    }
    std::sort(progresses.begin(), progresses.end());
    int index = static_cast<int>(policy.quantile * n);
    index = std::min(std::max(index, 0), n - 1);
    const double threshold = progresses[index];
    for (const TaskProgressSample* sample : group) {
      if (!sample->speculatable) continue;
      if (sample->stall_micros < policy.min_stall_micros) continue;
      // Strict comparison: all-equal progress (e.g. everyone still at
      // zero during startup) selects nobody, and a singleton fragment
      // can never beat its own progress.
      if (sample->progress < threshold) stragglers.push_back(sample);
    }
  }

  std::sort(stragglers.begin(), stragglers.end(),
            [](const TaskProgressSample* a, const TaskProgressSample* b) {
              if (a->progress != b->progress) return a->progress < b->progress;
              if (a->fragment != b->fragment) return a->fragment < b->fragment;
              return a->task < b->task;
            });
  for (const TaskProgressSample* sample : stragglers) {
    if (static_cast<int>(picked.size()) >= policy.max_speculative_tasks) break;
    picked.emplace_back(sample->fragment, sample->task);
  }
  return picked;
}

SpeculationManager::SpeculationManager(int64_t interval_micros, Tick tick)
    : interval_micros_(interval_micros > 0 ? interval_micros : 50'000),
      tick_(std::move(tick)) {
  thread_ = std::thread([this] { Loop(); });
}

void SpeculationManager::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_all();
}

void SpeculationManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SpeculationManager::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait_for(lock, std::chrono::microseconds(interval_micros_),
                 [this] { return stop_ || !jobs_.empty(); });
    // Drain jobs first: a promotion decides a replica race and must not
    // wait behind another sampling pass.
    while (!jobs_.empty()) {
      auto job = std::move(jobs_.front());
      jobs_.pop_front();
      lock.unlock();
      job();
      lock.lock();
    }
    if (stop_) return;
    lock.unlock();
    tick_();
    lock.lock();
  }
}

}  // namespace presto
