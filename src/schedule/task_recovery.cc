#include "schedule/task_recovery.h"

namespace presto {

std::vector<std::pair<int, int>> ComputeRestartSet(
    const std::vector<std::vector<int>>& placement,
    const std::vector<std::vector<bool>>& finished,
    const std::vector<std::vector<int>>& inputs_of, int root_fragment,
    bool root_needed, int dead_worker) {
  size_t num_fragments = placement.size();
  std::vector<std::vector<bool>> restart(num_fragments);
  for (size_t f = 0; f < num_fragments; ++f) {
    restart[f].assign(placement[f].size(), false);
  }
  // Producer -> consumer edges (inverse of inputs_of).
  std::vector<std::vector<int>> consumers_of(num_fragments);
  for (size_t f = 0; f < num_fragments; ++f) {
    for (int input : inputs_of[f]) {
      consumers_of[static_cast<size_t>(input)].push_back(
          static_cast<int>(f));
    }
  }
  auto output_needed = [&](size_t f) {
    if (static_cast<int>(f) == root_fragment) return root_needed;
    for (int c : consumers_of[f]) {
      const auto& slots = finished[static_cast<size_t>(c)];
      for (size_t t = 0; t < slots.size(); ++t) {
        if (!slots[t] || restart[static_cast<size_t>(c)][t]) return true;
      }
    }
    return false;
  };
  auto any_input_restarting = [&](size_t f) {
    for (int input : inputs_of[f]) {
      for (bool r : restart[static_cast<size_t>(input)]) {
        if (r) return true;
      }
    }
    return false;
  };
  // Both rules are monotone in the restart set, so iterating to fixpoint
  // terminates (each pass either adds a slot or stops).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t f = 0; f < num_fragments; ++f) {
      for (size_t t = 0; t < placement[f].size(); ++t) {
        if (restart[f][t]) continue;
        if (placement[f][t] == dead_worker) {
          if (output_needed(f)) {
            restart[f][t] = true;
            changed = true;
          }
        } else if (!finished[f][t] && any_input_restarting(f)) {
          restart[f][t] = true;
          changed = true;
        }
      }
    }
  }
  std::vector<std::pair<int, int>> result;
  for (size_t f = 0; f < num_fragments; ++f) {
    for (size_t t = 0; t < restart[f].size(); ++t) {
      if (restart[f][t]) {
        result.emplace_back(static_cast<int>(f), static_cast<int>(t));
      }
    }
  }
  return result;
}

void TaskRecoveryManager::Enqueue(RecoveryRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return;
  if (!seen_.insert({request.fragment, request.task, request.generation})
           .second) {
    return;
  }
  queue_.push_back(std::move(request));
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  cv_.notify_all();
}

void TaskRecoveryManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void TaskRecoveryManager::Loop() {
  for (;;) {
    RecoveryRequest request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain before stopping: every queued request may carry an
      // accounting hold the owner's Wait() depends on.
      if (queue_.empty()) return;
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    handler_(request);
    {
      // Re-arm the dedup entry: a round that turned into a no-op (restart
      // set empty, hold consumed) must not block a later re-absorb of the
      // same (fragment, task, generation) from ever being processed.
      std::lock_guard<std::mutex> lock(mu_);
      seen_.erase({request.fragment, request.task, request.generation});
    }
  }
}

}  // namespace presto
