#ifndef PRESTOCPP_SCHEDULE_CLUSTER_H_
#define PRESTOCPP_SCHEDULE_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "exchange/exchange.h"
#include "exchange/http/exchange_http.h"
#include "memory/memory.h"
#include "schedule/task_executor.h"

namespace presto {

/// Configuration of the simulated cluster (§III): one coordinator plus
/// `num_workers` workers, each with its own MLFQ executor and memory pools.
struct ClusterConfig {
  int num_workers = 4;
  ExecutorConfig executor;
  MemoryConfig memory;
  NetworkConfig network;
  /// Stage scheduling policy (§IV-D1): all-at-once (latency-optimal) or
  /// phased (memory-optimal for large joins).
  bool phased_scheduling = false;
  /// Expression engine (§V-B ablation).
  EvalMode eval_mode = EvalMode::kCompiled;
  int max_drivers_per_pipeline = 2;
  /// Lazy split enumeration batch size (§IV-D3).
  int split_batch_size = 32;
  /// Max splits queued per task before enumeration pauses.
  int split_queue_soft_limit = 64;
  int64_t exchange_buffer_bytes = 4 << 20;
  /// Adaptive writer scaling (§IV-E3): writer stages start with one active
  /// writer and scale up while producer buffers stay busy.
  bool adaptive_writer_scaling = true;
  int64_t writer_scale_up_bytes = 2 << 20;
  /// Admission control: maximum concurrently running queries.
  int max_concurrent_queries = 100;
};

/// One worker node: executor threads plus memory pools.
class WorkerNode {
 public:
  WorkerNode(int id, const ClusterConfig& config)
      : id_(id),
        memory_(&config.memory, id),
        executor_(config.executor, id) {}

  int id() const { return id_; }
  WorkerMemory& memory() { return memory_; }
  TaskExecutor& executor() { return executor_; }

 private:
  int id_;
  WorkerMemory memory_;
  TaskExecutor executor_;
};

/// The simulated cluster: workers + the in-process shuffle fabric.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config)
      : config_(std::move(config)), exchange_(config_.network) {
    for (int i = 0; i < config_.num_workers; ++i) {
      workers_.push_back(std::make_unique<WorkerNode>(i, config_));
    }
    if (config_.network.transport == TransportMode::kHttp) {
      // One exchange endpoint per worker, as in production Presto where
      // every worker serves its own task output buffers.
      for (int i = 0; i < config_.num_workers; ++i) {
        auto service = std::make_unique<ExchangeHttpService>(&exchange_, i);
        PRESTO_CHECK(service->Start().ok());
        http_services_.push_back(std::move(service));
      }
    }
  }

  ~Cluster() {
    for (auto& service : http_services_) service->Stop();
  }

  const ClusterConfig& config() const { return config_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  WorkerNode& worker(int i) { return *workers_[static_cast<size_t>(i)]; }
  ExchangeManager& exchange() { return exchange_; }

  /// Exchange endpoint port of a worker; -1 when HTTP transport is off.
  int http_port(int worker) const {
    if (http_services_.empty()) return -1;
    return http_services_[static_cast<size_t>(worker)]->port();
  }

  /// Aggregate executor busy time across workers (Fig. 8's CPU metric).
  int64_t total_busy_nanos() const {
    int64_t total = 0;
    for (const auto& w : workers_) total += w->executor().busy_nanos();
    return total;
  }

 private:
  ClusterConfig config_;
  ExchangeManager exchange_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::vector<std::unique_ptr<ExchangeHttpService>> http_services_;
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_CLUSTER_H_
