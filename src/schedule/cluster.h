#ifndef PRESTOCPP_SCHEDULE_CLUSTER_H_
#define PRESTOCPP_SCHEDULE_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "exchange/exchange.h"
#include "exchange/http/exchange_http.h"
#include "memory/memory.h"
#include "schedule/task_executor.h"
#include "worker/liveness.h"

namespace presto {

/// How worker compute is hosted (ISSUE 6).
enum class ClusterMode {
  /// Workers are threads inside this process (the pre-ISSUE-6 simulated
  /// cluster): shared address space, optional HTTP shuffle.
  kThreads,
  /// Workers are separate presto_worker processes reached over the
  /// /v1/task HTTP protocol; shuffle always goes over HTTP.
  kProcess,
};

/// Address of one out-of-process worker daemon.
struct RemoteWorkerAddress {
  int task_port = 0;      // /v1/task lifecycle + /v1/info
  int exchange_port = 0;  // /v1/task/.../results shuffle endpoint
  /// /v1/metrics + /v1/status observability endpoint (ISSUE 10); -1 when
  /// unknown at config time (the worker also advertises it in heartbeats).
  int metrics_port = -1;
};

/// Configuration of the simulated cluster (§III): one coordinator plus
/// `num_workers` workers, each with its own MLFQ executor and memory pools.
struct ClusterConfig {
  int num_workers = 4;
  ExecutorConfig executor;
  MemoryConfig memory;
  NetworkConfig network;
  /// Stage scheduling policy (§IV-D1): all-at-once (latency-optimal) or
  /// phased (memory-optimal for large joins).
  bool phased_scheduling = false;
  /// Expression engine (§V-B ablation).
  EvalMode eval_mode = EvalMode::kCompiled;
  int max_drivers_per_pipeline = 2;
  /// Lazy split enumeration batch size (§IV-D3).
  int split_batch_size = 32;
  /// Max splits queued per task before enumeration pauses.
  int split_queue_soft_limit = 64;
  int64_t exchange_buffer_bytes = 4 << 20;
  /// Adaptive writer scaling (§IV-E3): writer stages start with one active
  /// writer and scale up while producer buffers stay busy.
  bool adaptive_writer_scaling = true;
  int64_t writer_scale_up_bytes = 2 << 20;
  /// Admission control: maximum concurrently running queries.
  int max_concurrent_queries = 100;

  /// Out-of-process workers (ISSUE 6). In kProcess mode `remote_workers`
  /// lists the daemons (num_workers is ignored) and the shuffle transport
  /// is forced to HTTP.
  ClusterMode mode = ClusterMode::kThreads;
  std::vector<RemoteWorkerAddress> remote_workers;
  /// A worker that heartbeated once and then stayed silent this long is
  /// declared dead; its tasks fail and it stops receiving splits.
  int64_t heartbeat_timeout_micros = 2'000'000;
  /// Task recovery (ISSUE 7): how many times a (fragment, task) slot may be
  /// re-created on a surviving worker after its worker died, before the
  /// query fails with the original error. 0 disables recovery (PR 6's
  /// clean-failure behavior). Only meaningful in kProcess mode.
  int max_task_retries = 1;
  /// Grace period for a registered worker that has never heartbeated: once
  /// any worker's first heartbeat activates the tracker, a still-silent
  /// worker is declared dead this long after registration/activation.
  /// 0 means "use heartbeat_timeout_micros".
  int64_t first_heartbeat_grace_micros = 0;
  /// Speculative execution of stragglers (ISSUE 9; kProcess mode with
  /// recovery enabled). A running task whose progress falls strictly below
  /// speculation_quantile of its fragment siblings' progress — and whose
  /// progress has stalled for at least speculation_min_stall_micros
  /// (scaled up by the observed heartbeat RTT) — gets a higher-generation
  /// replica raced against it on a different live worker; the first
  /// finisher wins and the loser is aborted with task-scoped kCancelled.
  /// max_speculative_tasks bounds concurrent replicas per query; 0
  /// disables speculation entirely.
  int max_speculative_tasks = 0;
  double speculation_quantile = 0.5;
  /// Minimum sibling samples per fragment before quantiles mean anything;
  /// single-task fragments are never speculated.
  int speculation_min_samples = 2;
  int64_t speculation_min_stall_micros = 1'000'000;
  /// Progress-sampling cadence of the SpeculationManager.
  int64_t speculation_interval_micros = 50'000;
  /// Cross-process trace shipping (ISSUE 10): when a traced query runs in
  /// kProcess mode, ask workers to record spans and ship them back on
  /// status responses so EXPLAIN ANALYZE VERBOSE / the trace JSON show one
  /// timeline across all processes. Off = pre-ISSUE-10 coordinator-only
  /// traces.
  bool ship_worker_trace = true;
};

/// One worker node: executor threads plus memory pools.
class WorkerNode {
 public:
  WorkerNode(int id, const ClusterConfig& config)
      : id_(id),
        memory_(&config.memory, id),
        executor_(config.executor, id) {}

  int id() const { return id_; }
  WorkerMemory& memory() { return memory_; }
  TaskExecutor& executor() { return executor_; }

 private:
  int id_;
  WorkerMemory memory_;
  TaskExecutor executor_;
};

/// The cluster: in kThreads mode the workers + the in-process shuffle
/// fabric; in kProcess mode the coordinator-side view of remote worker
/// daemons (endpoint registry, page codec, liveness tracker).
class Cluster {
 public:
  explicit Cluster(ClusterConfig config)
      : config_(Normalize(std::move(config))),
        exchange_(config_.network),
        liveness_(config_.heartbeat_timeout_micros) {
    if (config_.mode == ClusterMode::kProcess) {
      liveness_.set_first_beat_grace_micros(
          config_.first_heartbeat_grace_micros > 0
              ? config_.first_heartbeat_grace_micros
              : config_.heartbeat_timeout_micros);
      // Register every expected worker so a daemon killed before its first
      // heartbeat is still declared dead once the grace deadline passes.
      for (size_t i = 0; i < config_.remote_workers.size(); ++i) {
        liveness_.RegisterWorker(static_cast<int>(i));
      }
      return;
    }
    for (int i = 0; i < config_.num_workers; ++i) {
      workers_.push_back(std::make_unique<WorkerNode>(i, config_));
    }
    if (config_.network.transport == TransportMode::kHttp) {
      // One exchange endpoint per worker, as in production Presto where
      // every worker serves its own task output buffers.
      for (int i = 0; i < config_.num_workers; ++i) {
        auto service = std::make_unique<ExchangeHttpService>(&exchange_, i);
        PRESTO_CHECK(service->Start().ok());
        http_services_.push_back(std::move(service));
      }
    }
  }

  ~Cluster() {
    for (auto& service : http_services_) service->Stop();
  }

  const ClusterConfig& config() const { return config_; }
  ClusterMode mode() const { return config_.mode; }

  int num_workers() const {
    return config_.mode == ClusterMode::kProcess
               ? static_cast<int>(config_.remote_workers.size())
               : static_cast<int>(workers_.size());
  }
  /// Workers hosted inside this process (0 in kProcess mode). Gauge loops
  /// over executor/memory state must iterate these, not num_workers().
  int local_workers() const { return static_cast<int>(workers_.size()); }
  WorkerNode& worker(int i) { return *workers_[static_cast<size_t>(i)]; }
  ExchangeManager& exchange() { return exchange_; }
  WorkerLivenessTracker& liveness() { return liveness_; }

  /// Exchange endpoint port of a worker; -1 when HTTP transport is off.
  int http_port(int worker) const {
    if (config_.mode == ClusterMode::kProcess) {
      return config_.remote_workers[static_cast<size_t>(worker)]
          .exchange_port;
    }
    if (http_services_.empty()) return -1;
    return http_services_[static_cast<size_t>(worker)]->port();
  }

  /// Task-lifecycle endpoint port of a remote worker; -1 in kThreads mode.
  int task_port(int worker) const {
    if (config_.mode != ClusterMode::kProcess) return -1;
    return config_.remote_workers[static_cast<size_t>(worker)].task_port;
  }

  /// Observability endpoint port of a remote worker (ISSUE 10): the
  /// heartbeat-advertised port when one arrived, else the configured one,
  /// else -1 (kThreads mode or daemon without a metrics service).
  int metrics_port(int worker) const {
    if (config_.mode != ClusterMode::kProcess) return -1;
    int advertised = liveness_.metrics_port(worker);
    if (advertised > 0) return advertised;
    return config_.remote_workers[static_cast<size_t>(worker)].metrics_port;
  }

  /// Aggregate executor busy time across workers (Fig. 8's CPU metric).
  int64_t total_busy_nanos() const {
    int64_t total = 0;
    for (const auto& w : workers_) total += w->executor().busy_nanos();
    return total;
  }

 private:
  static ClusterConfig Normalize(ClusterConfig config) {
    if (config.mode == ClusterMode::kProcess) {
      // Remote tasks can only ship pages over the wire.
      config.network.transport = TransportMode::kHttp;
    }
    return config;
  }

  ClusterConfig config_;
  ExchangeManager exchange_;
  WorkerLivenessTracker liveness_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::vector<std::unique_ptr<ExchangeHttpService>> http_services_;
};

}  // namespace presto

#endif  // PRESTOCPP_SCHEDULE_CLUSTER_H_
