#include "schedule/task_executor.h"

#include "common/fault_injection.h"
#include "common/stopwatch.h"

namespace presto {

TaskExecutor::TaskExecutor(ExecutorConfig config, int worker_id)
    : config_(config), worker_id_(worker_id) {
  threads_.reserve(static_cast<size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskExecutor::AddTask(std::shared_ptr<TaskExec> task,
                           std::function<void(Status)> on_done) {
  auto entry = std::make_shared<TaskEntry>();
  entry->task = std::move(task);
  entry->on_done = std::move(on_done);
  entry->remaining_drivers =
      static_cast<int>(entry->task->drivers().size());
  if (entry->remaining_drivers == 0) {
    // Degenerate task with no drivers: complete immediately, never register.
    entry->on_done(Status::OK());
    return;
  }
  auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(entry);
    for (auto& driver : entry->task->drivers()) {
      DriverEntry de{driver.get(), entry};
      de.runnable_since = now;
      levels_[0].push_back(std::move(de));
    }
  }
  cv_.notify_all();
}

int TaskExecutor::active_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tasks_.size());
}

int TaskExecutor::LevelOf(int64_t cpu_nanos) const {
  for (int level = 0; level < 4; ++level) {
    if (cpu_nanos < config_.level_thresholds[level]) return level;
  }
  return 4;
}

std::optional<TaskExecutor::DriverEntry> TaskExecutor::NextDriver() {
  // Caller holds mu_. Re-arm parked (blocked) drivers whose retry deadline
  // passed: blocked drivers live outside the runnable queues so they never
  // distort the MLFQ level shares.
  auto now = std::chrono::steady_clock::now();
  while (!parked_.empty() && parked_.front().first <= now) {
    DriverEntry parked = std::move(parked_.front().second);
    parked_.pop_front();
    parked.runnable_since = now;  // parked time is blocked, not queued
    int level = LevelOf(parked.task_entry->task->cpu_nanos().load());
    levels_[level].push_back(std::move(parked));
  }
  // Pick the non-empty level with the lowest consumed/share ratio so each
  // level receives its configured fraction of CPU time (§IV-F1).
  if (!config_.use_mlfq) {
    for (auto& level : levels_) {
      if (!level.empty()) {
        DriverEntry entry = level.front();
        level.pop_front();
        return entry;
      }
    }
    return std::nullopt;
  }
  int best = -1;
  double best_ratio = 0;
  for (int level = 0; level < 5; ++level) {
    if (levels_[level].empty()) continue;
    double ratio = level_consumed_[level] / config_.level_shares[level];
    if (best < 0 || ratio < best_ratio) {
      best = level;
      best_ratio = ratio;
    }
  }
  if (best < 0) return std::nullopt;
  DriverEntry entry = levels_[best].front();
  levels_[best].pop_front();
  return entry;
}

void TaskExecutor::Requeue(DriverEntry entry) {
  entry.runnable_since = std::chrono::steady_clock::now();
  int level = LevelOf(entry.task_entry->task->cpu_nanos().load());
  {
    std::lock_guard<std::mutex> lock(mu_);
    levels_[level].push_back(std::move(entry));
  }
  cv_.notify_one();
}

void TaskExecutor::Park(DriverEntry entry) {
  // Exponential backoff: 100us doubling to 6.4ms.
  int shift = std::min(entry.consecutive_blocks, 6);
  ++entry.consecutive_blocks;
  auto retry = std::chrono::steady_clock::now() +
               std::chrono::microseconds(100LL << shift);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = parked_.begin();
  while (it != parked_.end() && it->first <= retry) ++it;
  parked_.emplace(it, retry, std::move(entry));
}

void TaskExecutor::DriverDone(const DriverEntry& entry,
                              const Status& status) {
  std::function<void(Status)> callback;
  Status callback_status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TaskEntry& te = *entry.task_entry;
    --te.remaining_drivers;
    if (!status.ok() && te.first_error.ok()) te.first_error = status;
    if (te.remaining_drivers > 0) return;
    // Last driver drained: nothing in the executor references this task
    // anymore, so the callback may tear it down. Firing on the FIRST error
    // instead (as this used to) let the owner destroy the task while
    // sibling drivers were still queued — a use-after-free.
    callback = std::move(te.on_done);
    te.on_done = nullptr;
    callback_status = te.first_error;
    tasks_.erase(std::remove_if(tasks_.begin(), tasks_.end(),
                                [&](const auto& t) {
                                  return t.get() == &te;
                                }),
                 tasks_.end());
  }
  if (callback) callback(callback_status);
}

void TaskExecutor::WorkerLoop() {
  for (;;) {
    DriverEntry entry{nullptr, nullptr};
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return;
      auto next = NextDriver();
      if (!next.has_value()) {
        cv_.wait_for(lock, std::chrono::microseconds(100));
        if (stop_) return;
        continue;
      }
      entry = std::move(*next);
    }
    TaskExec& task = *entry.task_entry->task;

    // Runnable-to-dispatch wait: charged to the pipeline's sink operator
    // (the EXPLAIN ANALYZE "queued" column).
    if (entry.runnable_since != std::chrono::steady_clock::time_point{}) {
      int64_t waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() -
                           entry.runnable_since)
                           .count();
      entry.driver->sink().ctx().queued_nanos.fetch_add(waited);
    }

    // Query killed (OOM, cancel, or early finish): drop the driver.
    if (task.runtime().query_memory != nullptr &&
        task.runtime().query_memory->killed()) {
      DriverDone(entry, task.runtime().query_memory->kill_reason());
      continue;
    }

    // §IV-E2: consistently full output buffers reduce a task's effective
    // concurrency — run this driver only if buffers have room.
    if (task.spec().consumer_partitions > 0 &&
        task.runtime().exchange != nullptr) {
      double utilization = task.runtime().exchange->OutputUtilization(
          task.spec().query_id, task.spec().fragment_id,
          task.spec().task_index);
      if (utilization > config_.buffer_backpressure_threshold) {
        // The driver would only stall on its full output buffers; park it
        // (reducing the task's effective concurrency, Â§IV-E2).
        Park(std::move(entry));
        continue;
      }
    }

    if (FaultInjection::Enabled()) {
      // Deterministic straggler injection (ISSUE 9): a delay-only point
      // that stalls the quantum without failing it. Any armed error is
      // ignored here — failures belong to executor.run_driver below.
      (void)FaultInjection::Instance().Hit("executor.driver_stall");
      Status injected = FaultInjection::Instance().Hit("executor.run_driver");
      if (!injected.ok()) {
        if (task.runtime().query_memory != nullptr) {
          task.runtime().query_memory->Kill(injected);
        }
        DriverDone(entry, injected);
        continue;
      }
    }

    TraceRecorder* trace = entry.driver->trace();
    int64_t quantum_start = trace != nullptr ? trace->NowNanos() : 0;
    int64_t cpu = 0;
    auto result = entry.driver->Process(config_.quantum_nanos, &cpu);
    busy_nanos_.fetch_add(cpu);
    task.cpu_nanos().fetch_add(cpu);
    int level;
    {
      std::lock_guard<std::mutex> lock(mu_);
      level = LevelOf(task.cpu_nanos().load());
      quanta_[level].fetch_add(1);
      level_consumed_[level] += static_cast<double>(cpu);
      // Periodically decay so shares adapt to the current mix.
      if (level_consumed_[level] > 1e12) {
        for (double& c : level_consumed_) c /= 2;
      }
    }
    if (Histogram* histogram = quantum_histogram_.load()) {
      histogram->Observe(static_cast<double>(cpu) / 1e9);
    }
    if (trace != nullptr) {
      const char* state = !result.ok() ? "failed"
                          : *result == Driver::State::kFinished
                              ? "finished"
                          : *result == Driver::State::kBlocked ? "blocked"
                                                               : "yielded";
      trace->RecordSpan("executor", "quantum", entry.driver->trace_pid(),
                        entry.driver->trace_tid(), quantum_start,
                        trace->NowNanos() - quantum_start,
                        {{"level", std::to_string(level)}, {"state", state}});
      if (level != entry.last_level) {
        trace->RecordInstant("executor", "level_change",
                             entry.driver->trace_pid(),
                             entry.driver->trace_tid(),
                             {{"from", std::to_string(entry.last_level)},
                              {"to", std::to_string(level)}});
      }
    }
    entry.last_level = level;
    if (!result.ok()) {
      // Fail-fast propagation: a genuine error kills the query's sibling
      // drivers via the shared memory context. A Cancelled status is
      // excluded — it is aimed at one task (recovery superseding it, or a
      // coordinator task-delete), and killing the query-wide context here
      // would take down the very replacement tasks recovery just created
      // on this worker (ISSUE 7). Query-wide cancels kill the memory
      // context at their source already.
      if (task.runtime().query_memory != nullptr &&
          result.status().code() != StatusCode::kCancelled) {
        task.runtime().query_memory->Kill(result.status());
      }
      DriverDone(entry, result.status());
      continue;
    }
    switch (*result) {
      case Driver::State::kFinished:
        DriverDone(entry, Status::OK());
        break;
      case Driver::State::kYielded:
        // Still runnable: back into its MLFQ level.
        entry.consecutive_blocks = 0;
        Requeue(std::move(entry));
        break;
      case Driver::State::kBlocked:
        // Out of the runnable queues until the retry deadline (Â§IV-F1:
        // blocked drivers relinquish the thread and must not distort the
        // MLFQ level shares).
        Park(std::move(entry));
        break;
      case Driver::State::kFailed: {
        Status failed = Status::Internal("driver failed");
        // Kill here too (like the !result.ok() path above) so sibling
        // drivers of the same query stop promptly instead of running on.
        if (task.runtime().query_memory != nullptr) {
          task.runtime().query_memory->Kill(failed);
        }
        DriverDone(entry, failed);
        break;
      }
    }
  }
}

}  // namespace presto
