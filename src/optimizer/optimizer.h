#ifndef PRESTOCPP_OPTIMIZER_OPTIMIZER_H_
#define PRESTOCPP_OPTIMIZER_OPTIMIZER_H_

#include "common/status.h"
#include "connector/connector.h"
#include "plan/plan_node.h"

namespace presto {

/// Optimizer configuration. The Fig. 6 experiment toggles `enable_cbo` to
/// contrast the "no stats" and "table/column stats" configurations.
struct OptimizerOptions {
  bool enable_constant_folding = true;
  bool enable_predicate_pushdown = true;
  bool enable_column_pruning = true;
  bool enable_cbo = true;  // join re-ordering + join strategy selection
  /// Build sides estimated below this size are broadcast (§IV-C join
  /// strategy selection).
  double broadcast_threshold_bytes = 8.0 * 1024 * 1024;
};

/// Rule-based plan optimizer (§IV-C): evaluates transformation passes
/// greedily until a fixed point. Implements predicate pushdown (including
/// into connectors via the pushdown API), column pruning, constant folding,
/// identity-project removal, and the paper's two cost-based optimizations:
/// join re-ordering and join strategy (broadcast/partitioned/co-located)
/// selection driven by connector statistics.
class Optimizer {
 public:
  Optimizer(const Catalog* catalog, OptimizerOptions options = {})
      : catalog_(catalog), options_(options) {}

  Result<PlanNodePtr> Optimize(PlanNodePtr plan);

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
};

}  // namespace presto

#endif  // PRESTOCPP_OPTIMIZER_OPTIMIZER_H_
