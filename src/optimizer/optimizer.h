#ifndef PRESTOCPP_OPTIMIZER_OPTIMIZER_H_
#define PRESTOCPP_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "common/status.h"
#include "connector/connector.h"
#include "metadata/metadata_resolver.h"
#include "plan/plan_node.h"

namespace presto {

class MetadataSnapshot;

/// Optimizer configuration. The Fig. 6 experiment toggles `enable_cbo` to
/// contrast the "no stats" and "table/column stats" configurations.
struct OptimizerOptions {
  bool enable_constant_folding = true;
  bool enable_predicate_pushdown = true;
  bool enable_column_pruning = true;
  bool enable_cbo = true;  // join re-ordering + join strategy selection
  /// Build sides estimated below this size are broadcast (§IV-C join
  /// strategy selection).
  double broadcast_threshold_bytes = 8.0 * 1024 * 1024;
};

/// Rule-based plan optimizer (§IV-C): evaluates transformation passes
/// greedily until a fixed point. Implements predicate pushdown (including
/// into connectors via the pushdown API), column pruning, constant folding,
/// identity-project removal, and the paper's two cost-based optimizations:
/// join re-ordering and join strategy (broadcast/partitioned/co-located)
/// selection driven by connector statistics.
class Optimizer {
 public:
  /// Compatibility constructor: reads metadata through an owned, uncached
  /// per-optimizer MetadataSnapshot over `catalog`.
  explicit Optimizer(const Catalog* catalog, OptimizerOptions options = {});

  /// Reads all table metadata through `resolver` (ISSUE 8) — typically the
  /// query's MetadataSnapshot, so the optimizer sees the same versions the
  /// planner saw and its reads are recorded as plan dependencies.
  explicit Optimizer(MetadataResolver* resolver, OptimizerOptions options = {});

  ~Optimizer();

  Result<PlanNodePtr> Optimize(PlanNodePtr plan);

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
  std::unique_ptr<MetadataSnapshot> owned_snapshot_;  // compat ctor only
  MetadataResolver* resolver_;
};

}  // namespace presto

#endif  // PRESTOCPP_OPTIMIZER_OPTIMIZER_H_
