#include "optimizer/stats_estimator.h"

#include "expr/function_registry.h"

#include <algorithm>
#include <cmath>

namespace presto {

namespace {

// Per-column estimate bundle propagated bottom-up.
struct Estimate {
  double rows = -1;
  std::vector<double> ndv;  // per output column; -1 unknown
  double avg_row_bytes = 0;

  bool known() const { return rows >= 0; }
};

double TypeWidth(TypeKind t) {
  switch (t) {
    case TypeKind::kBoolean:
      return 1;
    case TypeKind::kVarchar:
      return 24;
    default:
      return 8;
  }
}

double ColumnNdv(const Estimate& est, int col) {
  if (col < 0 || static_cast<size_t>(col) >= est.ndv.size()) return -1;
  return est.ndv[static_cast<size_t>(col)];
}

// Selectivity of a bound predicate given child column NDVs.
double Selectivity(const Expr& expr, const Estimate& child) {
  switch (expr.kind()) {
    case ExprKind::kAnd: {
      double s = 1.0;
      for (const auto& c : expr.children()) s *= Selectivity(*c, child);
      return s;
    }
    case ExprKind::kOr: {
      double s = 0.0;
      for (const auto& c : expr.children()) s += Selectivity(*c, child);
      return std::min(1.0, s);
    }
    case ExprKind::kCall: {
      const std::string& name = expr.function()->name;
      if (name == "not") {
        return std::max(0.0, 1.0 - Selectivity(*expr.children()[0], child));
      }
      auto column_of = [](const Expr& e) -> int {
        if (e.kind() == ExprKind::kColumnRef) return e.column();
        if (e.kind() == ExprKind::kCast &&
            e.children()[0]->kind() == ExprKind::kColumnRef) {
          return e.children()[0]->column();
        }
        return -1;
      };
      if (name == "eq" && expr.children().size() == 2) {
        int col = column_of(*expr.children()[0]);
        if (col < 0) col = column_of(*expr.children()[1]);
        double ndv = ColumnNdv(child, col);
        if (ndv > 0) return 1.0 / ndv;
        return 0.05;
      }
      if (name == "lt" || name == "lte" || name == "gt" || name == "gte") {
        return 1.0 / 3.0;
      }
      if (name == "neq") return 0.9;
      if (name == "like") return 0.25;
      return 1.0 / 3.0;
    }
    case ExprKind::kIn: {
      int col = expr.children()[0]->kind() == ExprKind::kColumnRef
                    ? expr.children()[0]->column()
                    : -1;
      double ndv = ColumnNdv(child, col);
      double k = static_cast<double>(expr.children().size() - 1);
      if (ndv > 0) return std::min(1.0, k / ndv);
      return std::min(1.0, 0.05 * k);
    }
    case ExprKind::kIsNull:
      return 0.1;
    case ExprKind::kLiteral:
      if (!expr.literal().is_null() &&
          expr.literal().type() == TypeKind::kBoolean) {
        return expr.literal().AsBoolean() ? 1.0 : 0.0;
      }
      return 1.0;
    default:
      return 1.0 / 3.0;
  }
}

Estimate EstimateNode(const PlanNode& node);

Estimate EstimateScan(const TableScanNode& scan) {
  Estimate est;
  const TableStats& stats = scan.stats();
  if (!stats.valid()) {
    est.rows = -1;
    return est;
  }
  est.rows = static_cast<double>(stats.row_count);
  double width = 0;
  const RowSchema& table_schema = scan.table()->schema();
  for (int ordinal : scan.columns()) {
    const auto& col = table_schema.at(static_cast<size_t>(ordinal));
    width += TypeWidth(col.type);
    auto it = stats.columns.find(col.name);
    est.ndv.push_back(it != stats.columns.end()
                          ? static_cast<double>(it->second.distinct_values)
                          : -1);
  }
  est.avg_row_bytes = width;
  // Account for pushed-down predicates.
  for (const auto& pred : scan.predicates()) {
    double sel = 1.0 / 3.0;
    auto idx = scan.output().IndexOf(pred.column);
    double ndv = idx.has_value() ? ColumnNdv(est, static_cast<int>(*idx)) : -1;
    switch (pred.op) {
      case ColumnPredicate::Op::kEq:
        sel = ndv > 0 ? 1.0 / ndv : 0.05;
        break;
      case ColumnPredicate::Op::kIn:
        sel = ndv > 0 ? std::min(1.0, static_cast<double>(pred.values.size()) /
                                          ndv)
                      : 0.1;
        break;
      case ColumnPredicate::Op::kNeq:
        sel = 0.9;
        break;
      default:
        sel = 1.0 / 3.0;
    }
    est.rows *= sel;
  }
  return est;
}

Estimate EstimateNode(const PlanNode& node) {
  switch (node.kind()) {
    case PlanNodeKind::kTableScan:
      return EstimateScan(static_cast<const TableScanNode&>(node));
    case PlanNodeKind::kValues: {
      Estimate est;
      est.rows = static_cast<double>(
          static_cast<const ValuesNode&>(node).rows().size());
      est.avg_row_bytes = 16;
      return est;
    }
    case PlanNodeKind::kFilter: {
      Estimate child = EstimateNode(*node.child());
      if (!child.known()) return child;
      const auto& filter = static_cast<const FilterNode&>(node);
      Estimate est = child;
      est.rows = child.rows * Selectivity(*filter.predicate(), child);
      for (auto& n : est.ndv) {
        if (n > est.rows) n = est.rows;
      }
      return est;
    }
    case PlanNodeKind::kProject: {
      Estimate child = EstimateNode(*node.child());
      const auto& project = static_cast<const ProjectNode&>(node);
      Estimate est;
      est.rows = child.rows;
      double width = 0;
      for (size_t i = 0; i < project.expressions().size(); ++i) {
        const auto& e = project.expressions()[i];
        width += TypeWidth(e->type());
        if (e->kind() == ExprKind::kColumnRef) {
          est.ndv.push_back(ColumnNdv(child, e->column()));
        } else {
          est.ndv.push_back(-1);
        }
      }
      est.avg_row_bytes = width;
      return est;
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      Estimate left = EstimateNode(*join.child(0));
      Estimate right = EstimateNode(*join.child(1));
      Estimate est;
      est.avg_row_bytes = left.avg_row_bytes + right.avg_row_bytes;
      if (!left.known() || !right.known()) return est;
      if (join.left_keys().empty()) {
        est.rows = left.rows * right.rows;  // cross join
      } else {
        double max_ndv = 1;
        for (size_t i = 0; i < join.left_keys().size(); ++i) {
          double l = ColumnNdv(left, join.left_keys()[i]);
          double r = ColumnNdv(right, join.right_keys()[i]);
          max_ndv = std::max(max_ndv, std::max(l, r));
        }
        est.rows = left.rows * right.rows / std::max(1.0, max_ndv);
      }
      if (join.residual_filter() != nullptr) est.rows /= 3.0;
      switch (join.join_type()) {
        case sql::JoinType::kLeft:
          est.rows = std::max(est.rows, left.rows);
          break;
        case sql::JoinType::kRight:
          est.rows = std::max(est.rows, right.rows);
          break;
        case sql::JoinType::kFull:
          est.rows = std::max(est.rows, left.rows + right.rows);
          break;
        default:
          break;
      }
      for (double n : left.ndv) est.ndv.push_back(std::min(n, est.rows));
      for (double n : right.ndv) est.ndv.push_back(std::min(n, est.rows));
      return est;
    }
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      Estimate child = EstimateNode(*node.child());
      Estimate est;
      est.avg_row_bytes = 8.0 * static_cast<double>(node.output().size());
      if (!child.known()) return est;
      if (agg.group_keys().empty()) {
        est.rows = 1;
      } else {
        double groups = 1;
        for (int k : agg.group_keys()) {
          double ndv = ColumnNdv(child, k);
          groups *= ndv > 0 ? ndv : 100;
        }
        est.rows = std::min(child.rows, groups);
      }
      for (size_t i = 0; i < node.output().size(); ++i) {
        est.ndv.push_back(std::min(est.rows, est.rows));
      }
      return est;
    }
    case PlanNodeKind::kLimit: {
      Estimate child = EstimateNode(*node.child());
      const auto& limit = static_cast<const LimitNode&>(node);
      if (child.known()) {
        child.rows = std::min(child.rows, static_cast<double>(limit.n()));
      } else {
        child.rows = static_cast<double>(limit.n());
      }
      return child;
    }
    case PlanNodeKind::kTopN: {
      Estimate child = EstimateNode(*node.child());
      const auto& topn = static_cast<const TopNNode&>(node);
      if (child.known()) {
        child.rows = std::min(child.rows, static_cast<double>(topn.n()));
      } else {
        child.rows = static_cast<double>(topn.n());
      }
      return child;
    }
    case PlanNodeKind::kUnionAll: {
      Estimate est;
      est.rows = 0;
      bool known = true;
      for (const auto& c : node.children()) {
        Estimate ce = EstimateNode(*c);
        if (!ce.known()) {
          known = false;
          break;
        }
        est.rows += ce.rows;
        est.avg_row_bytes = std::max(est.avg_row_bytes, ce.avg_row_bytes);
      }
      if (!known) est.rows = -1;
      return est;
    }
    default: {
      // Pass-through nodes (Sort, Window, Output, Exchange, TableWrite).
      if (node.children().empty()) return Estimate{};
      return EstimateNode(*node.child());
    }
  }
}

}  // namespace

PlanEstimate EstimatePlan(const PlanNode& node) {
  Estimate est = EstimateNode(node);
  PlanEstimate out;
  out.rows = est.rows;
  out.avg_row_bytes = est.avg_row_bytes;
  return out;
}

}  // namespace presto
