#ifndef PRESTOCPP_OPTIMIZER_STATS_ESTIMATOR_H_
#define PRESTOCPP_OPTIMIZER_STATS_ESTIMATOR_H_

#include "plan/plan_node.h"

namespace presto {

/// Cardinality and width estimates used by the cost-based optimizations
/// (§IV-C: join strategy selection and join re-ordering). Estimates derive
/// from connector TableStats; when a scan reports no stats the estimate is
/// marked unknown and cost-based rules fall back to syntactic order and
/// partitioned joins — exactly the degradation Fig. 6 measures between the
/// "no stats" and "table/column stats" Hive configurations.
struct PlanEstimate {
  double rows = -1;          // -1 = unknown
  double avg_row_bytes = 0;  // 0 = unknown

  bool known() const { return rows >= 0; }
  double OutputBytes() const {
    return rows * (avg_row_bytes > 0 ? avg_row_bytes : 64.0);
  }
};

/// Estimates the output cardinality of `node` recursively. Selectivity
/// heuristics (in the tradition of System R defaults):
///   equality on column: 1/NDV; range: 1/3; LIKE: 1/4; other: 1/3.
/// Join output: |L|*|R| / max(NDV(left key), NDV(right key)).
/// Group-by: min(input, product of key NDVs).
PlanEstimate EstimatePlan(const PlanNode& node);

}  // namespace presto

#endif  // PRESTOCPP_OPTIMIZER_STATS_ESTIMATOR_H_
