#include "optimizer/optimizer.h"

#include <algorithm>

#include "common/check.h"
#include "expr/evaluator.h"
#include "expr/function_registry.h"
#include "metadata/metadata_snapshot.h"
#include "optimizer/stats_estimator.h"

namespace presto {

namespace {

using Conjuncts = std::vector<ExprPtr>;

// Monotonically increasing node-id source for nodes the optimizer creates.
struct Ctx {
  const Catalog* catalog;
  const OptimizerOptions* options;
  MetadataResolver* resolver;
  int next_id = 100000;
  int NewId() { return next_id++; }
};

void SplitConjuncts(const ExprPtr& expr, Conjuncts* out) {
  if (expr->kind() == ExprKind::kAnd) {
    for (const auto& c : expr->children()) SplitConjuncts(c, out);
    return;
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(Conjuncts conjuncts) {
  PRESTO_CHECK(!conjuncts.empty());
  if (conjuncts.size() == 1) return conjuncts[0];
  return Expr::MakeAnd(std::move(conjuncts));
}

PlanNodePtr ApplyFilter(PlanNodePtr node, Conjuncts conjuncts, Ctx* ctx) {
  if (conjuncts.empty()) return node;
  return std::make_shared<FilterNode>(
      ctx->NewId(), CombineConjuncts(std::move(conjuncts)), std::move(node));
}

bool RefsInRange(const Expr& expr, int lo, int hi) {
  std::vector<int> cols;
  CollectReferencedColumns(expr, &cols);
  for (int c : cols) {
    if (c < lo || c >= hi) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Constant folding.
// ---------------------------------------------------------------------------

ExprPtr FoldExpr(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kLiteral ||
      expr->kind() == ExprKind::kColumnRef) {
    return expr;
  }
  std::vector<ExprPtr> children;
  children.reserve(expr->children().size());
  bool changed = false;
  for (const auto& c : expr->children()) {
    auto f = FoldExpr(c);
    changed = changed || f != c;
    children.push_back(std::move(f));
  }
  // AND/OR simplification with literal operands.
  if (expr->kind() == ExprKind::kAnd || expr->kind() == ExprKind::kOr) {
    bool is_and = expr->kind() == ExprKind::kAnd;
    std::vector<ExprPtr> kept;
    for (auto& c : children) {
      if (c->kind() == ExprKind::kLiteral && !c->literal().is_null() &&
          c->literal().type() == TypeKind::kBoolean) {
        bool v = c->literal().AsBoolean();
        if (is_and && !v) return Expr::MakeLiteral(Value::Boolean(false));
        if (!is_and && v) return Expr::MakeLiteral(Value::Boolean(true));
        continue;  // neutral element
      }
      kept.push_back(std::move(c));
    }
    if (kept.empty()) return Expr::MakeLiteral(Value::Boolean(is_and));
    if (kept.size() == 1) return kept[0];
    return is_and ? Expr::MakeAnd(std::move(kept))
                  : Expr::MakeOr(std::move(kept));
  }
  ExprPtr rebuilt =
      changed ? ExprWithChildren(*expr, std::move(children)) : expr;
  if (IsConstantExpr(*rebuilt)) {
    auto value = EvalConstantExpr(*rebuilt);
    if (value.ok()) {
      Value v = *value;
      if (v.type() != rebuilt->type() &&
          rebuilt->type() != TypeKind::kUnknown) {
        v = CastValue(rebuilt->type(), v);
      }
      return Expr::MakeLiteral(std::move(v));
    }
  }
  return rebuilt;
}

PlanNodePtr FoldConstantsInPlan(const PlanNodePtr& node, Ctx* ctx) {
  std::vector<PlanNodePtr> children;
  children.reserve(node->children().size());
  for (const auto& c : node->children()) {
    children.push_back(FoldConstantsInPlan(c, ctx));
  }
  switch (node->kind()) {
    case PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(*node);
      ExprPtr pred = FoldExpr(filter.predicate());
      if (pred->kind() == ExprKind::kLiteral && !pred->literal().is_null() &&
          pred->literal().type() == TypeKind::kBoolean &&
          pred->literal().AsBoolean()) {
        return children[0];  // always-true filter
      }
      return std::make_shared<FilterNode>(ctx->NewId(), std::move(pred),
                                          children[0]);
    }
    case PlanNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      std::vector<ExprPtr> exprs;
      exprs.reserve(project.expressions().size());
      for (const auto& e : project.expressions()) exprs.push_back(FoldExpr(e));
      return std::make_shared<ProjectNode>(ctx->NewId(), std::move(exprs),
                                           project.output(), children[0]);
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(*node);
      ExprPtr residual = join.residual_filter();
      if (residual != nullptr) residual = FoldExpr(residual);
      return std::make_shared<JoinNode>(
          ctx->NewId(), join.join_type(), join.left_keys(), join.right_keys(),
          std::move(residual), join.distribution(), join.output(), children[0],
          children[1]);
    }
    default:
      break;
  }
  if (children == node->children()) return node;
  // Rebuild pass-through nodes with the new children.
  switch (node->kind()) {
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(*node);
      return std::make_shared<AggregateNode>(
          ctx->NewId(), agg.step(), agg.group_keys(), agg.aggregates(),
          agg.output(), children[0]);
    }
    case PlanNodeKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(*node);
      return std::make_shared<SortNode>(ctx->NewId(), sort.keys(),
                                        children[0]);
    }
    case PlanNodeKind::kTopN: {
      const auto& topn = static_cast<const TopNNode&>(*node);
      return std::make_shared<TopNNode>(ctx->NewId(), topn.keys(), topn.n(),
                                        topn.partial(), children[0]);
    }
    case PlanNodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(*node);
      return std::make_shared<LimitNode>(ctx->NewId(), limit.n(),
                                         limit.partial(), children[0]);
    }
    case PlanNodeKind::kWindow: {
      const auto& w = static_cast<const WindowNode&>(*node);
      return std::make_shared<WindowNode>(ctx->NewId(), w.partition_keys(),
                                          w.order_keys(), w.functions(),
                                          w.output(), children[0]);
    }
    case PlanNodeKind::kUnionAll:
      return std::make_shared<UnionAllNode>(ctx->NewId(), node->output(),
                                            std::move(children));
    case PlanNodeKind::kOutput: {
      const auto& out = static_cast<const OutputNode&>(*node);
      return std::make_shared<OutputNode>(ctx->NewId(), out.column_names(),
                                          children[0]);
    }
    case PlanNodeKind::kTableWrite: {
      const auto& tw = static_cast<const TableWriteNode&>(*node);
      return std::make_shared<TableWriteNode>(ctx->NewId(), tw.connector(),
                                              tw.table(), tw.output(),
                                              children[0]);
    }
    default:
      return node;
  }
}

// ---------------------------------------------------------------------------
// Predicate pushdown.
// ---------------------------------------------------------------------------

// Attempts to express `conj` as a connector ColumnPredicate on `scan`.
std::optional<ColumnPredicate> TryMakeColumnPredicate(
    const Expr& conj, const TableScanNode& scan) {
  auto column_name = [&](const Expr& e) -> std::optional<std::string> {
    if (e.kind() == ExprKind::kColumnRef) {
      return scan.output().at(static_cast<size_t>(e.column())).name;
    }
    return std::nullopt;
  };
  auto literal_of = [](const Expr& e) -> std::optional<Value> {
    if (e.kind() == ExprKind::kLiteral && !e.literal().is_null()) {
      return e.literal();
    }
    return std::nullopt;
  };
  if (conj.kind() == ExprKind::kCall && conj.children().size() == 2) {
    const std::string& fn = conj.function()->name;
    ColumnPredicate::Op op;
    ColumnPredicate::Op flipped;
    if (fn == "eq") {
      op = flipped = ColumnPredicate::Op::kEq;
    } else if (fn == "neq") {
      op = flipped = ColumnPredicate::Op::kNeq;
    } else if (fn == "lt") {
      op = ColumnPredicate::Op::kLt;
      flipped = ColumnPredicate::Op::kGt;
    } else if (fn == "lte") {
      op = ColumnPredicate::Op::kLte;
      flipped = ColumnPredicate::Op::kGte;
    } else if (fn == "gt") {
      op = ColumnPredicate::Op::kGt;
      flipped = ColumnPredicate::Op::kLt;
    } else if (fn == "gte") {
      op = ColumnPredicate::Op::kGte;
      flipped = ColumnPredicate::Op::kLte;
    } else {
      return std::nullopt;
    }
    auto col = column_name(*conj.children()[0]);
    auto lit = literal_of(*conj.children()[1]);
    if (col.has_value() && lit.has_value()) {
      return ColumnPredicate{*col, op, {*lit}};
    }
    col = column_name(*conj.children()[1]);
    lit = literal_of(*conj.children()[0]);
    if (col.has_value() && lit.has_value()) {
      return ColumnPredicate{*col, flipped, {*lit}};
    }
    return std::nullopt;
  }
  if (conj.kind() == ExprKind::kIn) {
    auto col = column_name(*conj.children()[0]);
    if (!col.has_value()) return std::nullopt;
    std::vector<Value> values;
    for (size_t i = 1; i < conj.children().size(); ++i) {
      auto lit = literal_of(*conj.children()[i]);
      if (!lit.has_value()) return std::nullopt;
      values.push_back(*lit);
    }
    return ColumnPredicate{*col, ColumnPredicate::Op::kIn, std::move(values)};
  }
  return std::nullopt;
}

PlanNodePtr PushFilters(const PlanNodePtr& node, Conjuncts incoming,
                        Ctx* ctx) {
  switch (node->kind()) {
    case PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(*node);
      SplitConjuncts(filter.predicate(), &incoming);
      return PushFilters(node->child(), std::move(incoming), ctx);
    }
    case PlanNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      Conjuncts pushed;
      pushed.reserve(incoming.size());
      for (const auto& conj : incoming) {
        pushed.push_back(
            ReplaceColumnsWithExprs(conj, project.expressions()));
      }
      PlanNodePtr child = PushFilters(node->child(), std::move(pushed), ctx);
      return std::make_shared<ProjectNode>(ctx->NewId(),
                                           project.expressions(),
                                           project.output(), std::move(child));
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(*node);
      int left_width = static_cast<int>(join.child(0)->output().size());
      int total = static_cast<int>(join.output().size());
      bool push_left = join.join_type() == sql::JoinType::kInner ||
                       join.join_type() == sql::JoinType::kCross ||
                       join.join_type() == sql::JoinType::kLeft;
      bool push_right = join.join_type() == sql::JoinType::kInner ||
                        join.join_type() == sql::JoinType::kCross ||
                        join.join_type() == sql::JoinType::kRight;
      Conjuncts left_conjuncts;
      Conjuncts right_conjuncts;
      Conjuncts remaining;
      for (auto& conj : incoming) {
        if (push_left && RefsInRange(*conj, 0, left_width)) {
          left_conjuncts.push_back(std::move(conj));
        } else if (push_right && RefsInRange(*conj, left_width, total)) {
          std::vector<int> mapping(static_cast<size_t>(total), -1);
          for (int i = left_width; i < total; ++i) {
            mapping[static_cast<size_t>(i)] = i - left_width;
          }
          right_conjuncts.push_back(RemapColumns(conj, mapping));
        } else {
          remaining.push_back(std::move(conj));
        }
      }
      PlanNodePtr left =
          PushFilters(join.child(0), std::move(left_conjuncts), ctx);
      PlanNodePtr right =
          PushFilters(join.child(1), std::move(right_conjuncts), ctx);
      PlanNodePtr rebuilt = std::make_shared<JoinNode>(
          ctx->NewId(), join.join_type(), join.left_keys(), join.right_keys(),
          join.residual_filter(), join.distribution(), join.output(),
          std::move(left), std::move(right));
      return ApplyFilter(std::move(rebuilt), std::move(remaining), ctx);
    }
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(*node);
      int num_keys = static_cast<int>(agg.group_keys().size());
      Conjuncts pushable;
      Conjuncts remaining;
      for (auto& conj : incoming) {
        if (RefsInRange(*conj, 0, num_keys)) {
          // Key output i corresponds to child column group_keys[i].
          std::vector<int> mapping(node->output().size(), -1);
          for (int i = 0; i < num_keys; ++i) {
            mapping[static_cast<size_t>(i)] = agg.group_keys()[
                static_cast<size_t>(i)];
          }
          pushable.push_back(RemapColumns(conj, mapping));
        } else {
          remaining.push_back(std::move(conj));
        }
      }
      PlanNodePtr child =
          PushFilters(node->child(), std::move(pushable), ctx);
      PlanNodePtr rebuilt = std::make_shared<AggregateNode>(
          ctx->NewId(), agg.step(), agg.group_keys(), agg.aggregates(),
          agg.output(), std::move(child));
      return ApplyFilter(std::move(rebuilt), std::move(remaining), ctx);
    }
    case PlanNodeKind::kUnionAll: {
      std::vector<PlanNodePtr> children;
      for (const auto& c : node->children()) {
        children.push_back(PushFilters(c, incoming, ctx));
      }
      return std::make_shared<UnionAllNode>(ctx->NewId(), node->output(),
                                            std::move(children));
    }
    case PlanNodeKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(*node);
      PlanNodePtr child = PushFilters(node->child(), std::move(incoming), ctx);
      return std::make_shared<SortNode>(ctx->NewId(), sort.keys(),
                                        std::move(child));
    }
    case PlanNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(*node);
      std::vector<ColumnPredicate> pushed = scan.predicates();
      Conjuncts remaining;
      for (auto& conj : incoming) {
        bool handled = false;
        auto pred = TryMakeColumnPredicate(*conj, scan);
        if (pred.has_value()) {
          PushdownSupport support = ctx->resolver->GetPushdownSupport(
              scan.connector(), *scan.table(), *pred);
          if (support != PushdownSupport::kUnsupported) {
            pushed.push_back(*pred);
            if (support == PushdownSupport::kExact) handled = true;
          }
        }
        if (!handled) remaining.push_back(std::move(conj));
      }
      PlanNodePtr rebuilt = std::make_shared<TableScanNode>(
          ctx->NewId(), scan.connector(), scan.table(), scan.columns(),
          scan.output(), std::move(pushed), scan.layout_id(), scan.stats());
      return ApplyFilter(std::move(rebuilt), std::move(remaining), ctx);
    }
    default: {
      // Limit/TopN/Window/Values/Output/TableWrite: keep the filter above,
      // but continue pushing inside.
      std::vector<PlanNodePtr> children;
      for (const auto& c : node->children()) {
        children.push_back(PushFilters(c, {}, ctx));
      }
      PlanNodePtr rebuilt = node;
      if (children != node->children()) {
        switch (node->kind()) {
          case PlanNodeKind::kLimit: {
            const auto& limit = static_cast<const LimitNode&>(*node);
            rebuilt = std::make_shared<LimitNode>(
                ctx->NewId(), limit.n(), limit.partial(), children[0]);
            break;
          }
          case PlanNodeKind::kTopN: {
            const auto& topn = static_cast<const TopNNode&>(*node);
            rebuilt = std::make_shared<TopNNode>(ctx->NewId(), topn.keys(),
                                                 topn.n(), topn.partial(),
                                                 children[0]);
            break;
          }
          case PlanNodeKind::kWindow: {
            const auto& w = static_cast<const WindowNode&>(*node);
            rebuilt = std::make_shared<WindowNode>(
                ctx->NewId(), w.partition_keys(), w.order_keys(),
                w.functions(), w.output(), children[0]);
            break;
          }
          case PlanNodeKind::kOutput: {
            const auto& out = static_cast<const OutputNode&>(*node);
            rebuilt = std::make_shared<OutputNode>(
                ctx->NewId(), out.column_names(), children[0]);
            break;
          }
          case PlanNodeKind::kTableWrite: {
            const auto& tw = static_cast<const TableWriteNode&>(*node);
            rebuilt = std::make_shared<TableWriteNode>(
                ctx->NewId(), tw.connector(), tw.table(), tw.output(),
                children[0]);
            break;
          }
          default:
            break;
        }
      }
      return ApplyFilter(std::move(rebuilt), std::move(incoming), ctx);
    }
  }
}

// ---------------------------------------------------------------------------
// Column pruning.
// ---------------------------------------------------------------------------

struct Pruned {
  PlanNodePtr node;
  std::vector<int> mapping;  // old column index -> new index (-1 if dropped)
};

std::vector<int> IdentityMapping(size_t n) {
  std::vector<int> m(n);
  for (size_t i = 0; i < n; ++i) m[i] = static_cast<int>(i);
  return m;
}

void RequireExpr(const Expr& expr, std::vector<bool>* required) {
  std::vector<int> cols;
  CollectReferencedColumns(expr, &cols);
  for (int c : cols) (*required)[static_cast<size_t>(c)] = true;
}

Pruned PruneColumns(const PlanNodePtr& node, const std::vector<bool>& required,
                    Ctx* ctx);

// Prunes a child requiring everything (no pruning below this node).
Pruned PruneAll(const PlanNodePtr& node, Ctx* ctx) {
  return PruneColumns(node,
                      std::vector<bool>(node->output().size(), true), ctx);
}

Pruned PruneColumns(const PlanNodePtr& node, const std::vector<bool>& required,
                    Ctx* ctx) {
  switch (node->kind()) {
    case PlanNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(*node);
      std::vector<int> new_columns;
      RowSchema new_schema;
      std::vector<int> mapping(required.size(), -1);
      for (size_t i = 0; i < required.size(); ++i) {
        if (!required[i]) continue;
        mapping[i] = static_cast<int>(new_columns.size());
        new_columns.push_back(scan.columns()[i]);
        new_schema.Add(scan.output().at(i).name, scan.output().at(i).type);
      }
      auto pruned = std::make_shared<TableScanNode>(
          ctx->NewId(), scan.connector(), scan.table(), std::move(new_columns),
          std::move(new_schema), scan.predicates(), scan.layout_id(),
          scan.stats());
      return {std::move(pruned), std::move(mapping)};
    }
    case PlanNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(*node);
      std::vector<bool> child_required(node->child()->output().size(), false);
      for (size_t i = 0; i < required.size(); ++i) {
        if (required[i]) RequireExpr(*project.expressions()[i],
                                     &child_required);
      }
      Pruned child = PruneColumns(node->child(), child_required, ctx);
      std::vector<ExprPtr> exprs;
      RowSchema schema;
      std::vector<int> mapping(required.size(), -1);
      for (size_t i = 0; i < required.size(); ++i) {
        if (!required[i]) continue;
        mapping[i] = static_cast<int>(exprs.size());
        exprs.push_back(
            RemapColumns(project.expressions()[i], child.mapping));
        schema.Add(project.output().at(i).name, project.output().at(i).type);
      }
      auto pruned = std::make_shared<ProjectNode>(
          ctx->NewId(), std::move(exprs), std::move(schema),
          std::move(child.node));
      return {std::move(pruned), std::move(mapping)};
    }
    case PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(*node);
      std::vector<bool> child_required = required;
      RequireExpr(*filter.predicate(), &child_required);
      Pruned child = PruneColumns(node->child(), child_required, ctx);
      ExprPtr pred = RemapColumns(filter.predicate(), child.mapping);
      auto pruned = std::make_shared<FilterNode>(ctx->NewId(), std::move(pred),
                                                 std::move(child.node));
      return {std::move(pruned), child.mapping};
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(*node);
      auto left_width = join.child(0)->output().size();
      std::vector<bool> left_required(left_width, false);
      std::vector<bool> right_required(join.child(1)->output().size(), false);
      for (size_t i = 0; i < required.size(); ++i) {
        if (!required[i]) continue;
        if (i < left_width) {
          left_required[i] = true;
        } else {
          right_required[i - left_width] = true;
        }
      }
      for (int k : join.left_keys()) {
        left_required[static_cast<size_t>(k)] = true;
      }
      for (int k : join.right_keys()) {
        right_required[static_cast<size_t>(k)] = true;
      }
      if (join.residual_filter() != nullptr) {
        std::vector<int> cols;
        CollectReferencedColumns(*join.residual_filter(), &cols);
        for (int c : cols) {
          if (static_cast<size_t>(c) < left_width) {
            left_required[static_cast<size_t>(c)] = true;
          } else {
            right_required[static_cast<size_t>(c) - left_width] = true;
          }
        }
      }
      Pruned left = PruneColumns(join.child(0), left_required, ctx);
      Pruned right = PruneColumns(join.child(1), right_required, ctx);
      auto new_left_width = left.node->output().size();
      std::vector<int> mapping(required.size(), -1);
      RowSchema schema;
      for (const auto& col : left.node->output().columns()) {
        schema.Add(col.name, col.type);
      }
      for (const auto& col : right.node->output().columns()) {
        schema.Add(col.name, col.type);
      }
      for (size_t i = 0; i < required.size(); ++i) {
        if (i < left_width) {
          mapping[i] = left.mapping[i];
        } else if (right.mapping[i - left_width] >= 0) {
          mapping[i] = static_cast<int>(new_left_width) +
                       right.mapping[i - left_width];
        }
      }
      std::vector<int> left_keys;
      std::vector<int> right_keys;
      for (size_t i = 0; i < join.left_keys().size(); ++i) {
        left_keys.push_back(
            left.mapping[static_cast<size_t>(join.left_keys()[i])]);
        right_keys.push_back(
            right.mapping[static_cast<size_t>(join.right_keys()[i])]);
      }
      ExprPtr residual = join.residual_filter();
      if (residual != nullptr) {
        std::vector<int> combined(required.size(), -1);
        for (size_t i = 0; i < required.size(); ++i) {
          if (i < left_width) {
            combined[i] = left.mapping[i];
          } else if (right.mapping[i - left_width] >= 0) {
            combined[i] = static_cast<int>(new_left_width) +
                          right.mapping[i - left_width];
          }
        }
        residual = RemapColumns(residual, combined);
      }
      auto pruned = std::make_shared<JoinNode>(
          ctx->NewId(), join.join_type(), std::move(left_keys),
          std::move(right_keys), std::move(residual), join.distribution(),
          std::move(schema), std::move(left.node), std::move(right.node));
      return {std::move(pruned), std::move(mapping)};
    }
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(*node);
      size_t num_keys = agg.group_keys().size();
      std::vector<bool> child_required(node->child()->output().size(), false);
      for (int k : agg.group_keys()) {
        child_required[static_cast<size_t>(k)] = true;
      }
      std::vector<const AggregateCall*> kept;
      std::vector<int> mapping(required.size(), -1);
      for (size_t a = 0; a < agg.aggregates().size(); ++a) {
        if (!required[num_keys + a]) continue;
        kept.push_back(&agg.aggregates()[a]);
        if (agg.aggregates()[a].arg_column >= 0) {
          child_required[static_cast<size_t>(
              agg.aggregates()[a].arg_column)] = true;
        }
      }
      Pruned child = PruneColumns(node->child(), child_required, ctx);
      std::vector<int> group_keys;
      RowSchema schema;
      for (size_t k = 0; k < num_keys; ++k) {
        group_keys.push_back(
            child.mapping[static_cast<size_t>(agg.group_keys()[k])]);
        mapping[k] = static_cast<int>(k);
        schema.Add(node->output().at(k).name, node->output().at(k).type);
      }
      std::vector<AggregateCall> calls;
      size_t out_idx = num_keys;
      for (size_t a = 0; a < agg.aggregates().size(); ++a) {
        if (!required[num_keys + a]) continue;
        AggregateCall call = agg.aggregates()[a];
        if (call.arg_column >= 0) {
          call.arg_column =
              child.mapping[static_cast<size_t>(call.arg_column)];
        }
        mapping[num_keys + a] = static_cast<int>(out_idx++);
        schema.Add(node->output().at(num_keys + a).name,
                   node->output().at(num_keys + a).type);
        calls.push_back(std::move(call));
      }
      auto pruned = std::make_shared<AggregateNode>(
          ctx->NewId(), agg.step(), std::move(group_keys), std::move(calls),
          std::move(schema), std::move(child.node));
      return {std::move(pruned), std::move(mapping)};
    }
    case PlanNodeKind::kSort:
    case PlanNodeKind::kTopN: {
      const std::vector<SortKey>& keys =
          node->kind() == PlanNodeKind::kSort
              ? static_cast<const SortNode&>(*node).keys()
              : static_cast<const TopNNode&>(*node).keys();
      std::vector<bool> child_required = required;
      for (const auto& k : keys) {
        child_required[static_cast<size_t>(k.column)] = true;
      }
      Pruned child = PruneColumns(node->child(), child_required, ctx);
      std::vector<SortKey> new_keys = keys;
      for (auto& k : new_keys) {
        k.column = child.mapping[static_cast<size_t>(k.column)];
      }
      PlanNodePtr pruned;
      if (node->kind() == PlanNodeKind::kSort) {
        pruned = std::make_shared<SortNode>(ctx->NewId(), std::move(new_keys),
                                            std::move(child.node));
      } else {
        const auto& topn = static_cast<const TopNNode&>(*node);
        pruned = std::make_shared<TopNNode>(ctx->NewId(), std::move(new_keys),
                                            topn.n(), topn.partial(),
                                            std::move(child.node));
      }
      return {std::move(pruned), child.mapping};
    }
    case PlanNodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(*node);
      Pruned child = PruneColumns(node->child(), required, ctx);
      auto pruned = std::make_shared<LimitNode>(
          ctx->NewId(), limit.n(), limit.partial(), std::move(child.node));
      return {std::move(pruned), child.mapping};
    }
    case PlanNodeKind::kOutput: {
      const auto& out = static_cast<const OutputNode&>(*node);
      Pruned child = PruneAll(node->child(), ctx);
      auto pruned = std::make_shared<OutputNode>(
          ctx->NewId(), out.column_names(), std::move(child.node));
      return {std::move(pruned), IdentityMapping(required.size())};
    }
    case PlanNodeKind::kTableWrite: {
      const auto& tw = static_cast<const TableWriteNode&>(*node);
      Pruned child = PruneAll(node->child(), ctx);
      auto pruned = std::make_shared<TableWriteNode>(
          ctx->NewId(), tw.connector(), tw.table(), tw.output(),
          std::move(child.node));
      return {std::move(pruned), IdentityMapping(required.size())};
    }
    case PlanNodeKind::kWindow: {
      const auto& w = static_cast<const WindowNode&>(*node);
      Pruned child = PruneAll(node->child(), ctx);
      auto pruned = std::make_shared<WindowNode>(
          ctx->NewId(), w.partition_keys(), w.order_keys(), w.functions(),
          w.output(), std::move(child.node));
      return {std::move(pruned), IdentityMapping(required.size())};
    }
    case PlanNodeKind::kUnionAll: {
      std::vector<PlanNodePtr> children;
      for (const auto& c : node->children()) {
        children.push_back(PruneAll(c, ctx).node);
      }
      auto pruned = std::make_shared<UnionAllNode>(
          ctx->NewId(), node->output(), std::move(children));
      return {std::move(pruned), IdentityMapping(required.size())};
    }
    default:
      return {node, IdentityMapping(required.size())};
  }
}

// ---------------------------------------------------------------------------
// Identity-project removal.
// ---------------------------------------------------------------------------

PlanNodePtr RemoveIdentityProjects(const PlanNodePtr& node, Ctx* ctx) {
  std::vector<PlanNodePtr> children;
  children.reserve(node->children().size());
  for (const auto& c : node->children()) {
    children.push_back(RemoveIdentityProjects(c, ctx));
  }
  if (node->kind() == PlanNodeKind::kProject) {
    const auto& project = static_cast<const ProjectNode&>(*node);
    const PlanNodePtr& child = children[0];
    if (project.expressions().size() == child->output().size()) {
      bool identity = true;
      for (size_t i = 0; i < project.expressions().size(); ++i) {
        const auto& e = project.expressions()[i];
        if (e->kind() != ExprKind::kColumnRef ||
            e->column() != static_cast<int>(i)) {
          identity = false;
          break;
        }
      }
      if (identity) return child;
    }
    return std::make_shared<ProjectNode>(ctx->NewId(), project.expressions(),
                                         project.output(), children[0]);
  }
  if (children == node->children()) return node;
  // Rebuild with new children via the constant-folding rebuilder (reuses the
  // same switch; predicates/exprs unchanged).
  switch (node->kind()) {
    case PlanNodeKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(*node);
      return std::make_shared<FilterNode>(ctx->NewId(), f.predicate(),
                                          children[0]);
    }
    case PlanNodeKind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(*node);
      return std::make_shared<JoinNode>(
          ctx->NewId(), j.join_type(), j.left_keys(), j.right_keys(),
          j.residual_filter(), j.distribution(), j.output(), children[0],
          children[1]);
    }
    case PlanNodeKind::kAggregate: {
      const auto& a = static_cast<const AggregateNode&>(*node);
      return std::make_shared<AggregateNode>(ctx->NewId(), a.step(),
                                             a.group_keys(), a.aggregates(),
                                             a.output(), children[0]);
    }
    case PlanNodeKind::kSort: {
      const auto& s = static_cast<const SortNode&>(*node);
      return std::make_shared<SortNode>(ctx->NewId(), s.keys(), children[0]);
    }
    case PlanNodeKind::kTopN: {
      const auto& t = static_cast<const TopNNode&>(*node);
      return std::make_shared<TopNNode>(ctx->NewId(), t.keys(), t.n(),
                                        t.partial(), children[0]);
    }
    case PlanNodeKind::kLimit: {
      const auto& l = static_cast<const LimitNode&>(*node);
      return std::make_shared<LimitNode>(ctx->NewId(), l.n(), l.partial(),
                                         children[0]);
    }
    case PlanNodeKind::kWindow: {
      const auto& w = static_cast<const WindowNode&>(*node);
      return std::make_shared<WindowNode>(ctx->NewId(), w.partition_keys(),
                                          w.order_keys(), w.functions(),
                                          w.output(), children[0]);
    }
    case PlanNodeKind::kUnionAll:
      return std::make_shared<UnionAllNode>(ctx->NewId(), node->output(),
                                            std::move(children));
    case PlanNodeKind::kOutput: {
      const auto& o = static_cast<const OutputNode&>(*node);
      return std::make_shared<OutputNode>(ctx->NewId(), o.column_names(),
                                          children[0]);
    }
    case PlanNodeKind::kTableWrite: {
      const auto& tw = static_cast<const TableWriteNode&>(*node);
      return std::make_shared<TableWriteNode>(ctx->NewId(), tw.connector(),
                                              tw.table(), tw.output(),
                                              children[0]);
    }
    default:
      return node;
  }
}

// ---------------------------------------------------------------------------
// Cost-based: join re-ordering, distribution selection, co-location.
// ---------------------------------------------------------------------------

// Finds the TableScan under a chain of Filter / pure-column Project nodes and
// maps `column` (an output column of `node`) back to a scan column name.
// Returns nullopt if the shape is more complex.
struct ScanTrace {
  const TableScanNode* scan = nullptr;
  std::string column_name;
};

std::optional<ScanTrace> TraceToScan(const PlanNode& node, int column) {
  switch (node.kind()) {
    case PlanNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(node);
      return ScanTrace{&scan,
                       scan.output().at(static_cast<size_t>(column)).name};
    }
    case PlanNodeKind::kFilter:
      return TraceToScan(*node.child(), column);
    case PlanNodeKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(node);
      const auto& e = project.expressions()[static_cast<size_t>(column)];
      if (e->kind() != ExprKind::kColumnRef) return std::nullopt;
      return TraceToScan(*node.child(), e->column());
    }
    default:
      return std::nullopt;
  }
}

// Rebuilds a subtree replacing the scan's layout (used once co-location is
// detected). The subtree must be the Filter/Project/Scan chain TraceToScan
// accepted.
PlanNodePtr WithLayout(const PlanNodePtr& node, const std::string& layout_id,
                       Ctx* ctx) {
  switch (node->kind()) {
    case PlanNodeKind::kTableScan: {
      const auto& scan = static_cast<const TableScanNode&>(*node);
      return std::make_shared<TableScanNode>(
          ctx->NewId(), scan.connector(), scan.table(), scan.columns(),
          scan.output(), scan.predicates(), layout_id, scan.stats());
    }
    case PlanNodeKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(*node);
      return std::make_shared<FilterNode>(
          ctx->NewId(), f.predicate(), WithLayout(node->child(), layout_id,
                                                  ctx));
    }
    case PlanNodeKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(*node);
      return std::make_shared<ProjectNode>(
          ctx->NewId(), p.expressions(), p.output(),
          WithLayout(node->child(), layout_id, ctx));
    }
    default:
      PRESTO_UNREACHABLE();
  }
}

// Checks whether both join inputs are bucketed identically on the join keys
// (via the connector Data Layout API); returns the layout ids to pin.
struct ColocationMatch {
  std::string left_layout;
  std::string right_layout;
};

std::optional<ColocationMatch> FindColocation(const JoinNode& join,
                                              Ctx* ctx) {
  if (join.left_keys().empty()) return std::nullopt;
  std::vector<std::string> left_cols;
  std::vector<std::string> right_cols;
  const TableScanNode* left_scan = nullptr;
  const TableScanNode* right_scan = nullptr;
  for (size_t i = 0; i < join.left_keys().size(); ++i) {
    auto l = TraceToScan(*join.child(0), join.left_keys()[i]);
    auto r = TraceToScan(*join.child(1), join.right_keys()[i]);
    if (!l.has_value() || !r.has_value()) return std::nullopt;
    if (left_scan == nullptr) left_scan = l->scan;
    if (right_scan == nullptr) right_scan = r->scan;
    if (l->scan != left_scan || r->scan != right_scan) return std::nullopt;
    left_cols.push_back(l->column_name);
    right_cols.push_back(r->column_name);
  }
  auto lt = ctx->resolver->Resolve(left_scan->connector(),
                                   left_scan->table()->name());
  auto rt = ctx->resolver->Resolve(right_scan->connector(),
                                   right_scan->table()->name());
  if (!lt.ok() || !rt.ok()) return std::nullopt;
  const std::vector<DataLayout>& left_layouts = (*lt)->layouts;
  const std::vector<DataLayout>& right_layouts = (*rt)->layouts;
  for (const auto& ll : left_layouts) {
    if (ll.bucket_count <= 0 || ll.partition_columns != left_cols) continue;
    for (const auto& rl : right_layouts) {
      if (rl.bucket_count != ll.bucket_count ||
          rl.partition_columns != right_cols) {
        continue;
      }
      return ColocationMatch{ll.id, rl.id};
    }
  }
  return std::nullopt;
}

// Restores the original column order after joins were commuted/reordered.
PlanNodePtr RestoreOrder(PlanNodePtr node, const std::vector<int>& positions,
                         const RowSchema& schema, Ctx* ctx) {
  bool identity = node->output().size() == positions.size();
  if (identity) {
    for (size_t i = 0; i < positions.size(); ++i) {
      if (positions[i] != static_cast<int>(i)) {
        identity = false;
        break;
      }
    }
  }
  if (identity) return node;
  std::vector<ExprPtr> exprs;
  for (size_t i = 0; i < positions.size(); ++i) {
    exprs.push_back(Expr::MakeColumn(
        positions[i],
        node->output().at(static_cast<size_t>(positions[i])).type));
  }
  return std::make_shared<ProjectNode>(ctx->NewId(), std::move(exprs), schema,
                                       std::move(node));
}

// Flattened inner-join chain.
struct JoinChain {
  std::vector<PlanNodePtr> relations;  // in original left-to-right order
  std::vector<int> offsets;            // global column offset per relation
  struct Edge {
    int left_global;
    int right_global;
  };
  std::vector<Edge> edges;
  std::vector<ExprPtr> residuals;  // in global coordinates
  RowSchema schema;                // original join output schema
};

bool FlattenInnerChain(const PlanNodePtr& node, int offset, JoinChain* chain) {
  if (node->kind() == PlanNodeKind::kJoin) {
    const auto& join = static_cast<const JoinNode&>(*node);
    if (join.join_type() == sql::JoinType::kInner &&
        !join.left_keys().empty() &&
        join.distribution() == JoinDistribution::kUnset) {
      int left_width = static_cast<int>(join.child(0)->output().size());
      if (!FlattenInnerChain(join.child(0), offset, chain)) return false;
      if (!FlattenInnerChain(join.child(1), offset + left_width, chain)) {
        return false;
      }
      for (size_t i = 0; i < join.left_keys().size(); ++i) {
        chain->edges.push_back({offset + join.left_keys()[i],
                                offset + left_width + join.right_keys()[i]});
      }
      if (join.residual_filter() != nullptr) {
        // Residual in join-local coordinates == global with this offset.
        std::vector<int> mapping;
        for (size_t i = 0; i < join.output().size(); ++i) {
          mapping.push_back(offset + static_cast<int>(i));
        }
        chain->residuals.push_back(
            RemapColumns(join.residual_filter(), mapping));
      }
      return true;
    }
  }
  chain->relations.push_back(node);
  chain->offsets.push_back(offset);
  return true;
}

PlanNodePtr ReorderChain(const JoinChain& chain, Ctx* ctx) {
  size_t n = chain.relations.size();
  // Estimates per relation; bail out if any are unknown.
  std::vector<PlanEstimate> estimates(n);
  for (size_t i = 0; i < n; ++i) {
    estimates[i] = EstimatePlan(*chain.relations[i]);
    if (!estimates[i].known()) return nullptr;
  }
  auto relation_of_global = [&](int global) {
    for (size_t i = n; i-- > 0;) {
      if (global >= chain.offsets[i]) return i;
    }
    PRESTO_UNREACHABLE();
  };

  std::vector<bool> used(n, false);
  // global column -> position in the tree built so far (-1 = not included).
  int total_cols = chain.offsets.back() +
                   static_cast<int>(chain.relations.back()->output().size());
  std::vector<int> position(static_cast<size_t>(total_cols), -1);

  // Start from the smallest relation that has at least one edge.
  size_t start = 0;
  double best = -1;
  for (size_t i = 0; i < n; ++i) {
    bool has_edge = false;
    for (const auto& e : chain.edges) {
      if (relation_of_global(e.left_global) == i ||
          relation_of_global(e.right_global) == i) {
        has_edge = true;
        break;
      }
    }
    if (!has_edge) continue;
    if (best < 0 || estimates[i].rows < best) {
      best = estimates[i].rows;
      start = i;
    }
  }
  PlanNodePtr current = chain.relations[start];
  used[start] = true;
  for (size_t c = 0; c < chain.relations[start]->output().size(); ++c) {
    position[static_cast<size_t>(chain.offsets[start]) + c] =
        static_cast<int>(c);
  }

  for (size_t step = 1; step < n; ++step) {
    // Candidates: unused relations connected to the current set.
    double best_rows = -1;
    size_t best_rel = n;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const auto& e : chain.edges) {
        size_t lr = relation_of_global(e.left_global);
        size_t rr = relation_of_global(e.right_global);
        if ((used[lr] && rr == i) || (used[rr] && lr == i)) {
          connected = true;
          break;
        }
      }
      if (!connected) continue;
      // Estimate result of joining i into the current set: approximate with
      // |current| * |i| / max key ndv ~ use the simpler |current|*sel where
      // sel = 1/max(rows). Use EstimatePlan on a trial join below instead.
      double trial = EstimatePlan(*current).known()
                         ? EstimatePlan(*current).rows * estimates[i].rows /
                               std::max(1.0, std::max(
                                                 EstimatePlan(*current).rows,
                                                 estimates[i].rows))
                         : estimates[i].rows;
      if (best_rows < 0 || trial < best_rows) {
        best_rows = trial;
        best_rel = i;
      }
    }
    if (best_rel == n) {
      // Disconnected relation: give up (keep original plan).
      return nullptr;
    }
    // Join the current set with best_rel, putting the smaller side on the
    // build (right) side of the hash join.
    const PlanNodePtr& rel = chain.relations[best_rel];
    int current_width = static_cast<int>(current->output().size());
    int rel_width = static_cast<int>(rel->output().size());
    double current_rows = EstimatePlan(*current).rows;
    bool rel_is_build = estimates[best_rel].rows <= current_rows;
    std::vector<int> inside_keys;    // positions in `current`
    std::vector<int> incoming_keys;  // positions in `rel`
    for (const auto& e : chain.edges) {
      size_t lr = relation_of_global(e.left_global);
      size_t rr = relation_of_global(e.right_global);
      int inside = -1;
      int incoming = -1;
      if (used[lr] && rr == best_rel) {
        inside = e.left_global;
        incoming = e.right_global;
      } else if (used[rr] && lr == best_rel) {
        inside = e.right_global;
        incoming = e.left_global;
      } else {
        continue;
      }
      inside_keys.push_back(position[static_cast<size_t>(inside)]);
      incoming_keys.push_back(incoming - chain.offsets[best_rel]);
    }
    PlanNodePtr probe = rel_is_build ? current : rel;
    PlanNodePtr build = rel_is_build ? rel : current;
    std::vector<int> left_keys = rel_is_build ? inside_keys : incoming_keys;
    std::vector<int> right_keys = rel_is_build ? incoming_keys : inside_keys;
    RowSchema schema;
    for (const auto& col : probe->output().columns()) {
      schema.Add(col.name, col.type);
    }
    for (const auto& col : build->output().columns()) {
      schema.Add(col.name, col.type);
    }
    current = std::make_shared<JoinNode>(
        ctx->NewId(), sql::JoinType::kInner, std::move(left_keys),
        std::move(right_keys), nullptr, JoinDistribution::kUnset,
        std::move(schema), std::move(probe), std::move(build));
    if (rel_is_build) {
      for (int c = 0; c < rel_width; ++c) {
        position[static_cast<size_t>(chain.offsets[best_rel] + c)] =
            current_width + c;
      }
    } else {
      // Existing columns shift right by rel_width; rel occupies the front.
      for (auto& p : position) {
        if (p >= 0) p += rel_width;
      }
      for (int c = 0; c < rel_width; ++c) {
        position[static_cast<size_t>(chain.offsets[best_rel] + c)] = c;
      }
    }
    used[best_rel] = true;
  }

  // Apply residual filters in global coordinates remapped to tree positions.
  if (!chain.residuals.empty()) {
    Conjuncts remapped;
    for (const auto& r : chain.residuals) {
      remapped.push_back(RemapColumns(r, position));
    }
    current = ApplyFilter(std::move(current), std::move(remapped), ctx);
  }
  // Restore original column order.
  return RestoreOrder(std::move(current), position, chain.schema, ctx);
}

PlanNodePtr ApplyCbo(const PlanNodePtr& node, Ctx* ctx);

// Chooses distribution for a single join whose children are final.
PlanNodePtr FinalizeJoin(const JoinNode& join, PlanNodePtr left,
                         PlanNodePtr right, Ctx* ctx) {
  JoinDistribution dist = join.distribution();
  std::string left_layout;
  std::string right_layout;
  if (dist == JoinDistribution::kUnset) {
    // Co-location first: no shuffle at all (§IV-C3 data layout properties).
    JoinNode trial(ctx->NewId(), join.join_type(), join.left_keys(),
                   join.right_keys(), join.residual_filter(),
                   JoinDistribution::kUnset, join.output(), left, right);
    if (auto match = FindColocation(trial, ctx)) {
      dist = JoinDistribution::kColocated;
      left = WithLayout(left, match->left_layout, ctx);
      right = WithLayout(right, match->right_layout, ctx);
    }
  }
  if (dist == JoinDistribution::kUnset) {
    PlanEstimate build = EstimatePlan(*right);
    bool broadcast_safe = join.join_type() != sql::JoinType::kRight &&
                          join.join_type() != sql::JoinType::kFull;
    if (ctx->options->enable_cbo && build.known() && broadcast_safe &&
        build.OutputBytes() < ctx->options->broadcast_threshold_bytes) {
      dist = JoinDistribution::kBroadcast;
    } else {
      dist = JoinDistribution::kPartitioned;
    }
  }
  return std::make_shared<JoinNode>(
      ctx->NewId(), join.join_type(), join.left_keys(), join.right_keys(),
      join.residual_filter(), dist, join.output(), std::move(left),
      std::move(right));
}

PlanNodePtr ApplyCbo(const PlanNodePtr& node, Ctx* ctx) {
  if (node->kind() == PlanNodeKind::kJoin && ctx->options->enable_cbo) {
    const auto& join = static_cast<const JoinNode&>(*node);
    if (join.join_type() == sql::JoinType::kInner &&
        !join.left_keys().empty() &&
        join.distribution() == JoinDistribution::kUnset) {
      JoinChain chain;
      chain.schema = join.output();
      if (FlattenInnerChain(node, 0, &chain) && chain.relations.size() >= 2) {
        // Recurse into the relations first.
        for (auto& rel : chain.relations) rel = ApplyCbo(rel, ctx);
        PlanNodePtr reordered = ReorderChain(chain, ctx);
        if (reordered != nullptr) {
          // Distribution selection for the new joins.
          std::function<PlanNodePtr(const PlanNodePtr&)> finalize =
              [&](const PlanNodePtr& n) -> PlanNodePtr {
            if (n->kind() != PlanNodeKind::kJoin) return n;
            const auto& j = static_cast<const JoinNode&>(*n);
            PlanNodePtr l = finalize(j.child(0));
            PlanNodePtr r = finalize(j.child(1));
            if (j.distribution() != JoinDistribution::kUnset) {
              return std::make_shared<JoinNode>(
                  ctx->NewId(), j.join_type(), j.left_keys(), j.right_keys(),
                  j.residual_filter(), j.distribution(), j.output(), l, r);
            }
            return FinalizeJoin(j, std::move(l), std::move(r), ctx);
          };
          // `reordered` may be a Project/Filter over the join tree.
          std::function<PlanNodePtr(const PlanNodePtr&)> walk =
              [&](const PlanNodePtr& n) -> PlanNodePtr {
            if (n->kind() == PlanNodeKind::kJoin) return finalize(n);
            if (n->kind() == PlanNodeKind::kFilter) {
              const auto& f = static_cast<const FilterNode&>(*n);
              return std::make_shared<FilterNode>(ctx->NewId(), f.predicate(),
                                                  walk(n->child()));
            }
            if (n->kind() == PlanNodeKind::kProject) {
              const auto& p = static_cast<const ProjectNode&>(*n);
              return std::make_shared<ProjectNode>(
                  ctx->NewId(), p.expressions(), p.output(), walk(n->child()));
            }
            return n;
          };
          return walk(reordered);
        }
      }
    }
  }
  // Default: recurse and finalize joins bottom-up.
  std::vector<PlanNodePtr> children;
  for (const auto& c : node->children()) children.push_back(ApplyCbo(c, ctx));
  if (node->kind() == PlanNodeKind::kJoin) {
    const auto& join = static_cast<const JoinNode&>(*node);
    return FinalizeJoin(join, children[0], children[1], ctx);
  }
  if (children == node->children()) return node;
  switch (node->kind()) {
    case PlanNodeKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(*node);
      return std::make_shared<FilterNode>(ctx->NewId(), f.predicate(),
                                          children[0]);
    }
    case PlanNodeKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(*node);
      return std::make_shared<ProjectNode>(ctx->NewId(), p.expressions(),
                                           p.output(), children[0]);
    }
    case PlanNodeKind::kAggregate: {
      const auto& a = static_cast<const AggregateNode&>(*node);
      return std::make_shared<AggregateNode>(ctx->NewId(), a.step(),
                                             a.group_keys(), a.aggregates(),
                                             a.output(), children[0]);
    }
    case PlanNodeKind::kSort: {
      const auto& s = static_cast<const SortNode&>(*node);
      return std::make_shared<SortNode>(ctx->NewId(), s.keys(), children[0]);
    }
    case PlanNodeKind::kTopN: {
      const auto& t = static_cast<const TopNNode&>(*node);
      return std::make_shared<TopNNode>(ctx->NewId(), t.keys(), t.n(),
                                        t.partial(), children[0]);
    }
    case PlanNodeKind::kLimit: {
      const auto& l = static_cast<const LimitNode&>(*node);
      return std::make_shared<LimitNode>(ctx->NewId(), l.n(), l.partial(),
                                         children[0]);
    }
    case PlanNodeKind::kWindow: {
      const auto& w = static_cast<const WindowNode&>(*node);
      return std::make_shared<WindowNode>(ctx->NewId(), w.partition_keys(),
                                          w.order_keys(), w.functions(),
                                          w.output(), children[0]);
    }
    case PlanNodeKind::kUnionAll:
      return std::make_shared<UnionAllNode>(ctx->NewId(), node->output(),
                                            std::move(children));
    case PlanNodeKind::kOutput: {
      const auto& o = static_cast<const OutputNode&>(*node);
      return std::make_shared<OutputNode>(ctx->NewId(), o.column_names(),
                                          children[0]);
    }
    case PlanNodeKind::kTableWrite: {
      const auto& tw = static_cast<const TableWriteNode&>(*node);
      return std::make_shared<TableWriteNode>(ctx->NewId(), tw.connector(),
                                              tw.table(), tw.output(),
                                              children[0]);
    }
    default:
      return node;
  }
}

}  // namespace

Optimizer::Optimizer(const Catalog* catalog, OptimizerOptions options)
    : catalog_(catalog),
      options_(options),
      owned_snapshot_(std::make_unique<MetadataSnapshot>(catalog)),
      resolver_(owned_snapshot_.get()) {}

Optimizer::Optimizer(MetadataResolver* resolver, OptimizerOptions options)
    : catalog_(resolver->catalog()), options_(options), resolver_(resolver) {}

Optimizer::~Optimizer() = default;

Result<PlanNodePtr> Optimizer::Optimize(PlanNodePtr plan) {
  Ctx ctx{catalog_, &options_, resolver_, 100000};
  if (options_.enable_constant_folding) {
    plan = FoldConstantsInPlan(plan, &ctx);
  }
  if (options_.enable_predicate_pushdown) {
    plan = PushFilters(plan, {}, &ctx);
  }
  if (options_.enable_column_pruning) {
    plan = PruneColumns(plan,
                        std::vector<bool>(plan->output().size(), true), &ctx)
               .node;
  }
  plan = RemoveIdentityProjects(plan, &ctx);
  plan = ApplyCbo(plan, &ctx);
  plan = RemoveIdentityProjects(plan, &ctx);
  return plan;
}

}  // namespace presto
