#ifndef PRESTOCPP_WORKER_METRICS_SERVICE_H_
#define PRESTOCPP_WORKER_METRICS_SERVICE_H_

#include <chrono>
#include <string>

#include "common/status.h"
#include "exchange/exchange.h"
#include "exchange/http/http_server.h"
#include "memory/memory.h"
#include "schedule/task_executor.h"
#include "stats/metrics_registry.h"
#include "worker/liveness.h"
#include "worker/task_manager.h"

namespace presto {

/// Per-worker observability endpoint (ISSUE 10), the worker-daemon
/// analogue of the coordinator's ObservabilityHttpService:
///
///   GET /v1/metrics  Prometheus text exposition of the worker's registry
///                    (presto_worker_* gauges registered by WorkerRuntime)
///   GET /v1/status   One JSON snapshot of the worker's live state: memory
///                    pool usage, registered tasks, running drivers,
///                    per-level MLFQ queue depths, exchange buffer bytes,
///                    heartbeat counters, uptime
///
/// The port is advertised in the daemon's READY banner and in heartbeat
/// bodies, so the coordinator's /v1/cluster/metrics can scrape it without
/// static configuration. All reads go through thread-safe accessors, so
/// scrapes may race task lifecycle freely.
class WorkerMetricsService {
 public:
  /// All pointers are borrowed and must outlive the service; heartbeat may
  /// be null (protocol unit tests without a coordinator).
  struct Sources {
    int worker_id = 0;
    MetricsRegistry* metrics = nullptr;
    WorkerTaskManager* manager = nullptr;
    TaskExecutor* executor = nullptr;
    WorkerMemory* memory = nullptr;
    ExchangeManager* exchange = nullptr;
    HeartbeatSender* heartbeat = nullptr;
  };

  explicit WorkerMetricsService(Sources sources)
      : sources_(sources),
        started_(std::chrono::steady_clock::now()),
        server_([this](const HttpRequest& request) {
          return Handle(request);
        }) {}

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  int port() const { return server_.port(); }

  /// Exposed for tests; normal traffic arrives via the server.
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleStatus() const;

  Sources sources_;
  std::chrono::steady_clock::time_point started_;
  HttpServer server_;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_METRICS_SERVICE_H_
