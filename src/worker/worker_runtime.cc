#include "worker/worker_runtime.h"

namespace presto {

WorkerRuntime::WorkerRuntime(WorkerRuntimeConfig config,
                             std::shared_ptr<const Catalog> catalog)
    : config_(std::move(config)), catalog_(std::move(catalog)) {
  config_.network.transport = TransportMode::kHttp;
  memory_ = std::make_unique<WorkerMemory>(&config_.memory,
                                           config_.worker_id);
  exchange_ = std::make_unique<ExchangeManager>(config_.network);
  executor_ = std::make_unique<TaskExecutor>(config_.executor,
                                             config_.worker_id);
  WorkerTaskManagerOptions options;
  options.worker_memory = memory_.get();
  options.memory_config = &config_.memory;
  options.executor = executor_.get();
  options.exchange = exchange_.get();
  options.catalog = catalog_.get();
  options.worker_id = config_.worker_id;
  manager_ = std::make_unique<WorkerTaskManager>(options);
  exchange_service_ = std::make_unique<ExchangeHttpService>(
      exchange_.get(), config_.worker_id);
  // Always constructed (so /v1/info can report beat counters) but only
  // started once a coordinator port is known — at Start() when configured
  // up front, or later via StartHeartbeat() (stdin command).
  heartbeat_ = std::make_unique<HeartbeatSender>(
      config_.coordinator_port, config_.worker_id,
      config_.heartbeat_interval_micros);
  task_service_ = std::make_unique<TaskService>(
      manager_.get(), config_.worker_id, heartbeat_.get());
  WorkerMetricsService::Sources sources;
  sources.worker_id = config_.worker_id;
  sources.metrics = &metrics_;
  sources.manager = manager_.get();
  sources.executor = executor_.get();
  sources.memory = memory_.get();
  sources.exchange = exchange_.get();
  sources.heartbeat = heartbeat_.get();
  metrics_service_ = std::make_unique<WorkerMetricsService>(sources);
  RegisterWorkerGauges();
}

void WorkerRuntime::RegisterWorkerGauges() {
  // presto_worker_* gauges (ISSUE 10): the worker-side slice of the state
  // the coordinator's engine gauges cover for in-process workers. The
  // coordinator's /v1/cluster/metrics scrapes these and re-labels them per
  // worker, so names stay label-free here.
  WorkerMemory* memory = memory_.get();
  metrics_.RegisterGauge("presto_worker_memory_general_used_bytes",
                         "Bytes allocated from the worker general pool",
                         [memory] {
                           return static_cast<double>(memory->general_used());
                         });
  metrics_.RegisterGauge(
      "presto_worker_memory_reserved_used_bytes",
      "Bytes allocated from the worker reserved pool",
      [memory] { return static_cast<double>(memory->reserved_used()); });
  metrics_.RegisterGauge("presto_worker_memory_peak_general_used_bytes",
                         "Peak bytes allocated from the worker general pool",
                         [memory] {
                           return static_cast<double>(
                               memory->peak_general_used());
                         });
  WorkerTaskManager* manager = manager_.get();
  metrics_.RegisterGauge(
      "presto_worker_active_tasks",
      "Tasks currently registered with the worker task manager",
      [manager] { return static_cast<double>(manager->active_tasks()); });
  TaskExecutor* executor = executor_.get();
  metrics_.RegisterGauge(
      "presto_worker_running_drivers",
      "Drivers registered with the executor and not yet drained",
      [executor] { return static_cast<double>(executor->running_drivers()); });
  metrics_.RegisterGauge(
      "presto_worker_parked_drivers",
      "Blocked drivers parked outside the runnable queues",
      [executor] { return static_cast<double>(executor->parked_drivers()); });
  for (int level = 0; level < 5; ++level) {
    metrics_.RegisterGauge(
        "presto_worker_queue_depth",
        "Runnable drivers queued per MLFQ level",
        [executor, level] {
          return static_cast<double>(executor->queue_depth(level));
        },
        {{"level", std::to_string(level)}});
  }
  metrics_.RegisterGauge(
      "presto_worker_executor_busy_nanos",
      "Total CPU-busy nanoseconds across executor threads",
      [executor] { return static_cast<double>(executor->busy_nanos()); });
  ExchangeManager* exchange = exchange_.get();
  metrics_.RegisterGauge("presto_worker_exchange_buffered_bytes",
                         "Bytes sitting in live exchange output buffers",
                         [exchange] {
                           return static_cast<double>(
                               exchange->TotalBufferedBytes());
                         });
  metrics_.RegisterGauge("presto_worker_exchange_retained_bytes",
                         "Bytes retained for task-retry replay",
                         [exchange] {
                           return static_cast<double>(
                               exchange->TotalRetainedBytes());
                         });
  HeartbeatSender* heartbeat = heartbeat_.get();
  metrics_.RegisterGauge(
      "presto_worker_heartbeats_sent",
      "Heartbeat POSTs delivered to the coordinator",
      [heartbeat] { return static_cast<double>(heartbeat->sent()); });
  metrics_.RegisterGauge(
      "presto_worker_heartbeats_failed",
      "Heartbeat POSTs that failed in transport",
      [heartbeat] { return static_cast<double>(heartbeat->failed()); });
  metrics_.RegisterGauge("presto_worker_heartbeat_rtt_micros",
                         "Round trip of the worker's last heartbeat POST",
                         [heartbeat] {
                           return static_cast<double>(
                               heartbeat->last_rtt_micros());
                         });
}

WorkerRuntime::~WorkerRuntime() { Stop(); }

Status WorkerRuntime::Start() {
  PRESTO_RETURN_IF_ERROR(exchange_service_->Start());
  PRESTO_RETURN_IF_ERROR(task_service_->Start());
  // The metrics service starts before the heartbeat loop so every beat can
  // advertise the observability port (ISSUE 10).
  PRESTO_RETURN_IF_ERROR(metrics_service_->Start());
  heartbeat_->set_metrics_port(metrics_service_->port());
  if (config_.coordinator_port >= 0) heartbeat_->Start();
  return Status::OK();
}

void WorkerRuntime::StartHeartbeat(int coordinator_port) {
  if (coordinator_port < 0 || stopped_) return;
  heartbeat_->Stop();
  heartbeat_->set_coordinator_port(coordinator_port);
  heartbeat_->set_metrics_port(metrics_service_->port());
  heartbeat_->Start();
}

void WorkerRuntime::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (heartbeat_ != nullptr) heartbeat_->Stop();
  // Quiesce tasks first: in-flight long-polls wake immediately, so the
  // HTTP servers' Stop() (which joins handler threads) converges fast.
  manager_->Shutdown();
  task_service_->Stop();
  exchange_service_->Stop();
  metrics_service_->Stop();
}

}  // namespace presto
