#include "worker/worker_runtime.h"

namespace presto {

WorkerRuntime::WorkerRuntime(WorkerRuntimeConfig config,
                             std::shared_ptr<const Catalog> catalog)
    : config_(std::move(config)), catalog_(std::move(catalog)) {
  config_.network.transport = TransportMode::kHttp;
  memory_ = std::make_unique<WorkerMemory>(&config_.memory,
                                           config_.worker_id);
  exchange_ = std::make_unique<ExchangeManager>(config_.network);
  executor_ = std::make_unique<TaskExecutor>(config_.executor,
                                             config_.worker_id);
  WorkerTaskManagerOptions options;
  options.worker_memory = memory_.get();
  options.memory_config = &config_.memory;
  options.executor = executor_.get();
  options.exchange = exchange_.get();
  options.catalog = catalog_.get();
  options.worker_id = config_.worker_id;
  manager_ = std::make_unique<WorkerTaskManager>(options);
  exchange_service_ = std::make_unique<ExchangeHttpService>(
      exchange_.get(), config_.worker_id);
  // Always constructed (so /v1/info can report beat counters) but only
  // started once a coordinator port is known — at Start() when configured
  // up front, or later via StartHeartbeat() (stdin command).
  heartbeat_ = std::make_unique<HeartbeatSender>(
      config_.coordinator_port, config_.worker_id,
      config_.heartbeat_interval_micros);
  task_service_ = std::make_unique<TaskService>(
      manager_.get(), config_.worker_id, heartbeat_.get());
}

WorkerRuntime::~WorkerRuntime() { Stop(); }

Status WorkerRuntime::Start() {
  PRESTO_RETURN_IF_ERROR(exchange_service_->Start());
  PRESTO_RETURN_IF_ERROR(task_service_->Start());
  if (config_.coordinator_port >= 0) heartbeat_->Start();
  return Status::OK();
}

void WorkerRuntime::StartHeartbeat(int coordinator_port) {
  if (coordinator_port < 0 || stopped_) return;
  heartbeat_->Stop();
  heartbeat_->set_coordinator_port(coordinator_port);
  heartbeat_->Start();
}

void WorkerRuntime::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (heartbeat_ != nullptr) heartbeat_->Stop();
  // Quiesce tasks first: in-flight long-polls wake immediately, so the
  // HTTP servers' Stop() (which joins handler threads) converges fast.
  manager_->Shutdown();
  task_service_->Stop();
  exchange_service_->Stop();
}

}  // namespace presto
