#ifndef PRESTOCPP_WORKER_TASK_PROTOCOL_H_
#define PRESTOCPP_WORKER_TASK_PROTOCOL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "expr/evaluator.h"
#include "stats/operator_stats.h"
#include "stats/trace.h"

namespace presto {

/// Lifecycle of a task on a worker (§IV-B). Mirrors Presto's task state
/// machine: PLANNED -> RUNNING -> {FINISHED, CANCELED, ABORTED, FAILED}.
enum class TaskState {
  kPlanned,   // created, drivers not yet enqueued
  kRunning,   // drivers enqueued on the executor
  kFinished,  // all drivers drained successfully
  kCanceled,  // canceled by the coordinator (results no longer needed)
  kAborted,   // aborted by the coordinator (query failed elsewhere)
  kFailed,    // task itself failed
};

const char* TaskStateToString(TaskState state);
Result<TaskState> TaskStateFromString(const std::string& text);
bool IsTerminalTaskState(TaskState state);

/// "{query_id}.{fragment}.{task}" — the {taskId} path segment of the
/// /v1/task endpoints.
std::string MakeTaskId(const std::string& query_id, int fragment_id,
                       int task_index);

/// Body of POST /v1/task/{taskId} when the task does not exist yet.
/// Carries everything a worker needs to instantiate a TaskExec: the
/// serialized plan fragment, the TaskSpec coordinates, execution knobs,
/// and the exchange endpoints of every producer task this task reads from.
struct TaskCreateRequest {
  TaskSpec spec;
  Json fragment;  // PlanFragmentToJson output
  EvalMode eval_mode = EvalMode::kCompiled;
  int64_t exchange_buffer_bytes = 4 << 20;
  int max_drivers_per_pipeline = 2;
  /// Initial adaptive-writer count; -1 means "all consumer partitions".
  int active_writers = -1;
  /// Root task only: emit output through the exchange (a gather buffer the
  /// coordinator fetches over HTTP) instead of an in-process ResultQueue.
  bool emit_results_via_exchange = false;
  /// Retain acked exchange frames so a replacement consumer can re-fetch
  /// from token 0 after a task retry (ISSUE 7). Set by the coordinator when
  /// task recovery is enabled.
  bool retain_exchange_frames = false;
  /// ISSUE 10: record this task's spans in a worker-side TraceRecorder and
  /// ship them back on status responses (the coordinator sets this when the
  /// owning query is traced).
  bool enable_trace = false;
  /// [fragment, task, exchange HTTP port, producer generation] for every
  /// producer task feeding this task's RemoteSource operators.
  std::vector<std::array<int, 4>> endpoints;

  Json ToJson() const;
  static Result<TaskCreateRequest> FromJson(const Json& json);
};

/// Body of POST /v1/task/{taskId} for an existing task: incremental split
/// assignment (§IV-D3) and adaptive writer updates.
struct TaskUpdateRequest {
  /// scan node id -> connector-serialized splits to enqueue.
  std::map<int, std::vector<std::string>> splits;
  /// Scan node ids whose split streams are complete.
  std::vector<int> no_more_splits;
  /// New active-writer count; -1 means unchanged.
  int active_writers = -1;

  Json ToJson() const;
  static Result<TaskUpdateRequest> FromJson(const Json& json);
};

/// Body of GET /v1/task/{taskId}/status responses (and of create/update
/// responses, which return the post-apply status).
struct TaskStatusResponse {
  std::string task_id;
  TaskState state = TaskState::kPlanned;
  /// Monotone state-change counter; GET ?since=V long-polls until
  /// version > V or the wait expires.
  int64_t version = 0;
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;
  /// Live split accounting per scan node id.
  std::map<int, int64_t> queued_splits;
  std::map<int, int64_t> added_splits;
  double output_utilization = 0.0;
  int64_t cpu_nanos = 0;
  int64_t user_memory_bytes = 0;
  int64_t peak_user_memory_bytes = 0;
  /// Full operator stats (EXPLAIN ANALYZE material). Always present;
  /// final once the state is terminal.
  TaskStats stats;
  /// Per-task progress counters for straggler detection (ISSUE 9): rows
  /// emitted by each pipeline's sink operator, and micros since the
  /// hosting worker last observed progress advance (rows_out or completed
  /// splits changing).
  int64_t rows_out = 0;
  int64_t progress_age_micros = 0;
  /// ISSUE 10: worker-side trace spans drained into this response (bounded
  /// per response; the remainder ships at task retire), the drop count
  /// accumulated since the previous traced response (a delta, so drops are
  /// shipped exactly once even when sibling tasks share the recorder), and
  /// the worker recorder's NowNanos() at response-build time (-1 = tracing
  /// off) so the coordinator can rebase timestamps onto its own epoch.
  std::vector<TraceEvent> trace_events;
  int64_t trace_dropped = 0;
  int64_t trace_now_nanos = -1;
  /// Display names for the shipped events' pid/tid tracks (full maps;
  /// merging is idempotent). Shipped only alongside events.
  std::map<int, std::string> trace_process_names;
  std::map<std::pair<int, int64_t>, std::string> trace_thread_names;

  int64_t completed_splits() const {
    int64_t added = 0, queued = 0;
    for (const auto& [id, n] : added_splits) added += n;
    for (const auto& [id, n] : queued_splits) queued += n;
    return added - queued;
  }

  Status ToStatus() const {
    return error_code == StatusCode::kOk ? Status::OK()
                                         : Status(error_code, error_message);
  }

  Json ToJson() const;
  static Result<TaskStatusResponse> FromJson(const Json& json);
};

/// TaskStats <-> JSON (nested pipeline/operator arrays).
Json TaskStatsToJson(const TaskStats& stats);
Result<TaskStats> TaskStatsFromJson(const Json& json);

/// Body of GET /v1/info on both workers and the coordinator.
struct NodeInfo {
  std::string node_id;
  std::string state;  // "ACTIVE" or "SHUTTING_DOWN"
  int64_t uptime_millis = 0;
  int64_t active_tasks = 0;
  int64_t heartbeats = 0;       // worker: sent; coordinator: received
  int64_t last_rtt_micros = 0;  // worker-side last heartbeat round trip
  int64_t alive_workers = -1;   // coordinator only; -1 = n/a
  /// Exchange-memory gauges (leak detection in recovery tests): bytes
  /// sitting in live output buffers and bytes retained for task-retry
  /// replay. Both must drop to zero once every query is torn down.
  int64_t buffered_bytes = 0;
  int64_t retained_bytes = 0;

  Json ToJson() const;
  static Result<NodeInfo> FromJson(const Json& json);
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_TASK_PROTOCOL_H_
