#ifndef PRESTOCPP_WORKER_TASK_CLIENT_H_
#define PRESTOCPP_WORKER_TASK_CLIENT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exchange/exchange.h"
#include "exchange/http/http_io.h"
#include "exec/task.h"
#include "schedule/task_executor.h"
#include "worker/liveness.h"
#include "worker/task_protocol.h"

namespace presto {

class Counter;

/// Coordinator-side handle to one task of one fragment. The coordinator
/// drives every task — in-process or out-of-process — through this
/// interface, so scheduling logic is transport-agnostic: DirectTaskClient
/// wraps a local TaskExec byte-for-byte the way the coordinator always
/// did, and HttpTaskClient speaks the /v1/task protocol to a worker
/// daemon.
class TaskClient {
 public:
  virtual ~TaskClient() = default;

  virtual const TaskSpec& spec() const = 0;

  /// Creates/starts the task; `on_done` fires exactly once with the
  /// task's terminal status (also when Launch itself failed after
  /// partially starting). A non-OK return means the task never started
  /// and on_done will NOT fire.
  virtual Status Launch(std::function<void(Status)> on_done) = 0;

  /// nullopt when the fragment has no such scan node.
  virtual std::optional<size_t> SplitQueueSize(int node_id) const = 0;
  /// `connector` serializes the split for the wire (unused in-process).
  virtual void AddSplit(int node_id, const SplitPtr& split,
                        Connector* connector) = 0;
  virtual void NoMoreSplits(int node_id) = 0;
  /// Pushes buffered split updates to the worker (no-op in-process).
  virtual Status FlushSplits() = 0;

  virtual double OutputUtilization() const = 0;
  /// Propagates a new adaptive-writer count (no-op in-process: the task
  /// shares the coordinator's counter directly).
  virtual void SetActiveWriters(int writers) = 0;

  virtual TaskStats CollectStats() const = 0;
  virtual int64_t cpu_nanos() const = 0;
  virtual int64_t peak_user_memory_bytes() const = 0;

  /// False once the hosting worker was declared dead (always true for
  /// in-process tasks).
  virtual bool worker_alive() const = 0;

  /// Straggler-detection progress counters (ISSUE 9), from the cached
  /// status long-poll: rows emitted by the task's pipeline sinks, splits
  /// the worker finished, and micros since the hosting worker last saw
  /// progress advance. Zero in-process — speculation is kProcess-only.
  virtual int64_t rows_out() const { return 0; }
  virtual int64_t completed_splits() const { return 0; }
  virtual int64_t progress_age_micros() const { return 0; }

  /// True when the task's terminal status is attributable to losing the
  /// hosting worker (liveness death verdict, connect/poll retry
  /// exhaustion, create-on-dead-worker) rather than to query execution —
  /// the coordinator's recoverable-vs-terminal classification (ISSUE 7).
  /// Always false in-process: a vanished in-process task is a real bug.
  virtual bool worker_lost() const { return false; }

  /// Marks this client as superseded by a replacement generation: split
  /// and writer updates become no-op OK so schedulers still holding the
  /// stale handle cannot fail the query or resurrect worker-side state.
  virtual void MarkSuperseded() {}

  /// Requests cancellation (HTTP DELETE; no-op in-process where killing
  /// the query memory context already stops the drivers). Idempotent.
  virtual void Abort() = 0;

  /// Releases worker-side resources once on_done has fired: in-process
  /// this is ReleaseDrivers(); over HTTP a final DELETE retires the
  /// worker's task entry (and, for the query's last task, its buffers).
  virtual void ReleaseResources() = 0;
};

/// In-process client: the same TaskExec + TaskExecutor calls the
/// coordinator made before ISSUE 6, behind the interface.
class DirectTaskClient final : public TaskClient {
 public:
  DirectTaskClient(std::shared_ptr<TaskExec> task, TaskExecutor* executor,
                   ExchangeManager* exchange)
      : task_(std::move(task)), executor_(executor), exchange_(exchange) {}

  const TaskSpec& spec() const override { return task_->spec(); }

  Status Launch(std::function<void(Status)> on_done) override {
    executor_->AddTask(task_, std::move(on_done));
    return Status::OK();
  }

  std::optional<size_t> SplitQueueSize(int node_id) const override {
    SplitQueue* queue = task_->splits(node_id);
    if (queue == nullptr) return std::nullopt;
    return queue->size();
  }

  void AddSplit(int node_id, const SplitPtr& split,
                Connector* /*connector*/) override {
    SplitQueue* queue = task_->splits(node_id);
    if (queue != nullptr) queue->Add(split);
  }

  void NoMoreSplits(int node_id) override {
    SplitQueue* queue = task_->splits(node_id);
    if (queue != nullptr) queue->NoMoreSplits();
  }

  Status FlushSplits() override { return Status::OK(); }

  double OutputUtilization() const override {
    const TaskSpec& s = task_->spec();
    return exchange_->OutputUtilization(s.query_id, s.fragment_id,
                                        s.task_index);
  }

  void SetActiveWriters(int /*writers*/) override {}

  TaskStats CollectStats() const override { return task_->CollectStats(); }
  int64_t cpu_nanos() const override { return task_->cpu_nanos().load(); }
  int64_t peak_user_memory_bytes() const override { return 0; }
  bool worker_alive() const override { return true; }
  void Abort() override {}
  void ReleaseResources() override { task_->ReleaseDrivers(); }

  const std::shared_ptr<TaskExec>& task() const { return task_; }

 private:
  std::shared_ptr<TaskExec> task_;
  TaskExecutor* executor_;
  ExchangeManager* exchange_;
};

/// Out-of-process client: POSTs the create request, buffers split batches
/// into update POSTs, long-polls /status from a background thread (which
/// fires on_done exactly once on a terminal state, poll-retry exhaustion,
/// or a liveness-tracker death verdict), and DELETEs the task to abort or
/// retire it.
class HttpTaskClient final : public TaskClient {
 public:
  struct Options {
    int task_port = 0;
    /// Server-side long-poll per status request.
    int64_t poll_wait_micros = 100'000;
    /// Socket receive timeout (must exceed poll_wait_micros).
    int64_t io_timeout_micros = 2'000'000;
    int max_consecutive_failures = 5;
    int64_t retry_backoff_micros = 10'000;
    WorkerLivenessTracker* liveness = nullptr;
    /// ISSUE 10: merge target for worker-shipped trace spans. When set
    /// (and the create request carried enableTrace), every status response
    /// is mined for spans, which are rebased onto this recorder's epoch
    /// and merged so one Chrome timeline covers all processes.
    TraceRecorder* trace = nullptr;
    /// Per-worker shipping instruments (may be null): spans merged, and
    /// spans the worker dropped before they could ship.
    Counter* trace_shipped = nullptr;
    Counter* trace_dropped = nullptr;
  };

  HttpTaskClient(TaskSpec spec, Json create_request, Options options);
  ~HttpTaskClient() override;

  HttpTaskClient(const HttpTaskClient&) = delete;
  HttpTaskClient& operator=(const HttpTaskClient&) = delete;

  const TaskSpec& spec() const override { return spec_; }
  Status Launch(std::function<void(Status)> on_done) override;
  std::optional<size_t> SplitQueueSize(int node_id) const override;
  void AddSplit(int node_id, const SplitPtr& split,
                Connector* connector) override;
  void NoMoreSplits(int node_id) override;
  Status FlushSplits() override;
  double OutputUtilization() const override;
  void SetActiveWriters(int writers) override;
  TaskStats CollectStats() const override;
  int64_t cpu_nanos() const override;
  int64_t peak_user_memory_bytes() const override;
  bool worker_alive() const override;
  int64_t rows_out() const override;
  int64_t completed_splits() const override;
  int64_t progress_age_micros() const override;
  bool worker_lost() const override { return worker_lost_.load(); }
  void MarkSuperseded() override { superseded_.store(true); }
  void Abort() override;
  void ReleaseResources() override;

 private:
  /// One request/response over the shared control connection (reconnects
  /// once on a stale keep-alive socket).
  Result<HttpResponse> ControlRoundTrip(const HttpRequest& request);
  static Result<TaskStatusResponse> ParseStatusResponse(
      const HttpResponse& response);
  Result<TaskStatusResponse> PostControl(const Json& body);
  void CacheStatus(const TaskStatusResponse& status);
  /// Rebases and merges worker-shipped spans from a traced status response
  /// into options_.trace (ISSUE 10). Safe to call from any thread.
  void MergeShippedTrace(const TaskStatusResponse& status);
  void PollLoop();
  void FireDone(Status status);

  const TaskSpec spec_;
  const std::string task_id_;
  const Json create_request_;
  const Options options_;

  std::function<void(Status)> on_done_;
  std::once_flag done_once_;

  /// Control plane (create/update/delete), shared by coordinator threads.
  std::mutex control_mu_;
  std::unique_ptr<HttpConnection> control_conn_;
  std::map<int, std::vector<std::string>> pending_splits_;
  Status pending_error_ = Status::OK();

  /// Cached view of the last status response.
  mutable std::mutex cache_mu_;
  TaskStatusResponse cached_;
  std::map<int, int64_t> pending_counts_;  // buffered, not yet on worker

  /// Worker-epoch -> coordinator-epoch rebase offset, computed from the
  /// first traced status response (guarded by trace_mu_).
  std::mutex trace_mu_;
  bool trace_offset_set_ = false;
  int64_t trace_offset_nanos_ = 0;

  std::atomic<bool> launched_{false};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> worker_dead_{false};
  std::atomic<bool> worker_lost_{false};
  std::atomic<bool> superseded_{false};
  std::thread poll_thread_;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_TASK_CLIENT_H_
