#include "worker/task_manager.h"

#include <chrono>
#include <utility>

#include "common/fault_injection.h"
#include "plan/plan_serde.h"

namespace presto {

namespace {

constexpr int64_t kMaxStatusWaitMicros = 30'000'000;

// Maps a TableScanNode id to the connector serving it, for split
// deserialization on update requests.
void CollectScanConnectors(const PlanNode& node, const Catalog& catalog,
                           std::map<int, Connector*>* out) {
  if (node.kind() == PlanNodeKind::kTableScan) {
    const auto& scan = static_cast<const TableScanNode&>(node);
    auto connector_or = catalog.Get(scan.connector());
    if (connector_or.ok()) (*out)[node.id()] = connector_or.value();
  }
  for (const auto& child : node.children()) {
    CollectScanConnectors(*child, catalog, out);
  }
}

}  // namespace

struct WorkerTaskManager::TaskEntry {
  std::string id;
  TaskSpec spec;
  std::unique_ptr<PlanFragment> fragment;
  std::shared_ptr<QueryMemory> query_memory;
  /// Worker-side span recorder shared by this query's tasks on this worker
  /// (ISSUE 10); nullptr when the coordinator did not request tracing.
  std::shared_ptr<TraceRecorder> trace;
  std::shared_ptr<TaskExec> exec;
  std::map<int, Connector*> scan_connectors;
  std::atomic<int> active_writers{1};
  TaskState state = TaskState::kPlanned;
  Status error = Status::OK();
  int64_t version = 1;
  bool cancel_requested = false;
  bool abort_requested = false;
  bool remove_on_terminal = false;
  /// Detached by a higher-generation create (task recovery, ISSUE 7): the
  /// entry no longer owns its task id in tasks_ and is parked in retired_
  /// until its executor callback fires.
  bool superseded = false;
  std::map<int, int64_t> added_splits;
  /// Straggler-signal progress tracking (ISSUE 9): the last observed
  /// progress counters and when they last advanced.
  int64_t progress_rows = 0;
  int64_t progress_splits = 0;
  std::chrono::steady_clock::time_point progress_at =
      std::chrono::steady_clock::now();
  std::condition_variable cv;
};

WorkerTaskManager::WorkerTaskManager(WorkerTaskManagerOptions options)
    : options_(options) {}

WorkerTaskManager::~WorkerTaskManager() { Shutdown(); }

Result<std::shared_ptr<WorkerTaskManager::TaskEntry>>
WorkerTaskManager::FindLocked(const std::string& task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return Status::NotFound("no task '" + task_id + "' on this worker");
  }
  return it->second;
}

TaskStatusResponse WorkerTaskManager::BuildStatusLocked(TaskEntry& entry,
                                                        size_t trace_budget) {
  TaskStatusResponse response;
  response.task_id = entry.id;
  response.state = entry.state;
  response.version = entry.version;
  response.error_code = entry.error.code();
  response.error_message = entry.error.message();
  for (auto& [node_id, queue] : entry.exec->split_queues()) {
    response.queued_splits[node_id] =
        static_cast<int64_t>(queue.size());
  }
  response.added_splits = entry.added_splits;
  response.output_utilization = options_.exchange->OutputUtilization(
      entry.spec.query_id, entry.spec.fragment_id, entry.spec.task_index);
  response.cpu_nanos = entry.exec->cpu_nanos().load();
  response.user_memory_bytes = entry.query_memory->global_user();
  response.peak_user_memory_bytes = entry.query_memory->peak_user();
  response.stats = entry.exec->CollectStats();
  // Per-task progress counters (ISSUE 9): rows_out sums each pipeline's
  // sink-operator output rows; together with completed splits it is the
  // coordinator's straggler signal. The worker.status_progress_freeze
  // fault point (armed with any non-OK error) pins the reported counters
  // at their last values so tests can fake a stalled task without slowing
  // real execution — the injected error itself is never propagated.
  bool frozen = false;
  if (FaultInjection::Enabled()) {
    frozen = !FaultInjection::Instance().Hit("worker.status_progress_freeze")
                  .ok();
  }
  if (!frozen) {
    int64_t rows = 0;
    for (const auto& pipeline : response.stats.pipelines) {
      if (!pipeline.operators.empty()) {
        rows += pipeline.operators.back().output_rows;
      }
    }
    const int64_t splits = response.completed_splits();
    if (rows != entry.progress_rows || splits != entry.progress_splits) {
      entry.progress_rows = rows;
      entry.progress_splits = splits;
      entry.progress_at = std::chrono::steady_clock::now();
    }
  }
  response.rows_out = entry.progress_rows;
  response.progress_age_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - entry.progress_at)
          .count();
  // Trace shipping (ISSUE 10): drain a bounded batch of worker-side spans
  // into this response. The recorder is per-query on this worker, so any
  // task's status poll ships sibling tasks' spans too; traceNowNanos lets
  // the coordinator rebase timestamps onto its own epoch.
  if (entry.trace != nullptr) {
    response.trace_now_nanos = entry.trace->NowNanos();
    entry.trace->Drain(trace_budget, &response.trace_events);
    response.trace_dropped = entry.trace->TakeDropped();
    if (!response.trace_events.empty()) {
      response.trace_process_names = entry.trace->ProcessNames();
      response.trace_thread_names = entry.trace->ThreadNames();
    }
  }
  return response;
}

Result<TaskStatusResponse> WorkerTaskManager::CreateOrUpdate(
    const std::string& task_id, const Json& body) {
  if (body.Find("spec") == nullptr) {
    PRESTO_ASSIGN_OR_RETURN(TaskUpdateRequest update,
                            TaskUpdateRequest::FromJson(body));
    std::unique_lock<std::mutex> lock(mu_);
    PRESTO_ASSIGN_OR_RETURN(auto entry, FindLocked(task_id));
    PRESTO_RETURN_IF_ERROR(ApplyUpdateLocked(*entry, update));
    return BuildStatusLocked(*entry);
  }

  PRESTO_ASSIGN_OR_RETURN(TaskCreateRequest request,
                          TaskCreateRequest::FromJson(body));
  std::string expected_id =
      MakeTaskId(request.spec.query_id, request.spec.fragment_id,
                 request.spec.task_index);
  if (task_id != expected_id) {
    return Status::InvalidArgument("task id '" + task_id +
                                   "' does not match request spec '" +
                                   expected_id + "'");
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::Cancelled("worker is shutting down");
  }
  if (auto it = tasks_.find(task_id); it != tasks_.end()) {
    if (request.spec.generation <= it->second->spec.generation) {
      return BuildStatusLocked(*it->second);  // duplicate create: idempotent
    }
    // Higher generation: a recovery re-creation supersedes this entry
    // (ISSUE 7). Kill just this task — sibling tasks of the same query on
    // this worker keep running — park it until its executor callback
    // fires, and drop its stale output buffers so the replacement's sink
    // recreates them under the new generation.
    std::shared_ptr<TaskEntry> old = it->second;
    tasks_.erase(it);
    if (!IsTerminalTaskState(old->state)) {
      old->superseded = true;
      old->cancel_requested = true;
      old->abort_requested = true;
      old->exec->Kill(Status::Cancelled(
          "task " + task_id + " superseded by generation " +
          std::to_string(request.spec.generation)));
      ++old->version;
      old->cv.notify_all();
      retired_.push_back(old);
    } else {
      // Already terminal: it will get no further callback, so release its
      // query ref now (mirrors RemoveEntryLocked).
      ReleaseQueryRefLocked(old->spec.query_id);
    }
    options_.exchange->RemoveTaskBuffers(request.spec.query_id,
                                         request.spec.fragment_id,
                                         request.spec.task_index);
  }

  PRESTO_ASSIGN_OR_RETURN(
      PlanFragment fragment,
      PlanFragmentFromJson(request.fragment, *options_.catalog));

  auto entry = std::make_shared<TaskEntry>();
  entry->id = task_id;
  entry->fragment = std::make_unique<PlanFragment>(std::move(fragment));
  if (request.emit_results_via_exchange) {
    // Root fragments normally end in an in-process OutputSink; rewire the
    // sink through a single-partition gather buffer the coordinator
    // fetches over HTTP. `consumer` is only inspected for >= 0 when
    // picking the sink operator, so the fragment's own id is a safe
    // stand-in.
    entry->fragment->consumer = entry->fragment->id;
    entry->fragment->output_kind = ExchangeKind::kGather;
    request.spec.consumer_partitions = 1;
  }
  entry->spec = request.spec;
  entry->active_writers.store(request.active_writers >= 0
                                  ? request.active_writers
                                  : request.spec.consumer_partitions);
  CollectScanConnectors(*entry->fragment->root, *options_.catalog,
                        &entry->scan_connectors);

  auto& query_slot = queries_[request.spec.query_id];
  if (query_slot.memory == nullptr) {
    query_slot.memory = std::make_shared<QueryMemory>(request.spec.query_id,
                                                      options_.memory_config);
  }
  ++query_slot.refs;
  entry->query_memory = query_slot.memory;
  if (request.enable_trace) {
    if (query_slot.trace == nullptr) {
      query_slot.trace = std::make_shared<TraceRecorder>(
          request.spec.query_id, kWorkerTraceMaxEvents);
      // Memory-revocation waits record spans against the query context.
      query_slot.memory->set_trace(query_slot.trace.get());
    }
    entry->trace = query_slot.trace;
  }

  // Retention must be on before the sink creates its buffers during
  // Initialize(); the flag is sticky for the life of this manager.
  if (request.retain_exchange_frames) {
    options_.exchange->set_retain_for_replay(true);
  }

  for (const auto& endpoint : request.endpoints) {
    options_.exchange->RegisterTaskEndpoint(request.spec.query_id,
                                            endpoint[0], endpoint[1],
                                            endpoint[2], endpoint[3]);
  }

  TaskRuntime runtime;
  runtime.query_memory = entry->query_memory.get();
  runtime.worker_memory = options_.worker_memory;
  runtime.exchange = options_.exchange;
  runtime.catalog = options_.catalog;
  runtime.eval_mode = request.eval_mode;
  runtime.exchange_buffer_bytes = request.exchange_buffer_bytes;
  runtime.max_drivers_per_pipeline = request.max_drivers_per_pipeline;
  runtime.active_output_partitions = &entry->active_writers;
  runtime.trace = entry->trace.get();

  entry->exec = std::make_shared<TaskExec>(entry->spec, runtime,
                                           entry->fragment.get());
  Status init = entry->exec->Initialize();
  if (!init.ok()) {
    ReleaseQueryRefLocked(request.spec.query_id);
    return init;
  }

  tasks_[task_id] = entry;
  entry->state = TaskState::kRunning;
  ++running_tasks_;

  lock.unlock();
  options_.executor->AddTask(entry->exec, [this, entry](Status status) {
    OnTaskDone(entry, std::move(status));
  });
  lock.lock();
  return BuildStatusLocked(*entry);
}

Status WorkerTaskManager::ApplyUpdateLocked(TaskEntry& entry,
                                            const TaskUpdateRequest& update) {
  if (IsTerminalTaskState(entry.state)) {
    // The coordinator may race a split batch against task completion
    // (e.g. a failure elsewhere); drop the update, the status response
    // carries the terminal state.
    return Status::OK();
  }
  for (const auto& [node_id, serialized_splits] : update.splits) {
    SplitQueue* queue = entry.exec->splits(node_id);
    if (queue == nullptr) {
      return Status::InvalidArgument(
          "task '" + entry.id + "' has no scan node " +
          std::to_string(node_id));
    }
    auto connector_it = entry.scan_connectors.find(node_id);
    if (connector_it == entry.scan_connectors.end()) {
      return Status::Internal("no connector for scan node " +
                              std::to_string(node_id));
    }
    for (const std::string& data : serialized_splits) {
      PRESTO_ASSIGN_OR_RETURN(SplitPtr split,
                              connector_it->second->DeserializeSplit(data));
      queue->Add(std::move(split));
      ++entry.added_splits[node_id];
    }
  }
  for (int node_id : update.no_more_splits) {
    SplitQueue* queue = entry.exec->splits(node_id);
    if (queue == nullptr) {
      return Status::InvalidArgument(
          "task '" + entry.id + "' has no scan node " +
          std::to_string(node_id));
    }
    queue->NoMoreSplits();
  }
  if (update.active_writers >= 0) {
    entry.active_writers.store(update.active_writers);
  }
  return Status::OK();
}

Result<TaskStatusResponse> WorkerTaskManager::GetStatus(
    const std::string& task_id, int64_t since_version, int64_t wait_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  PRESTO_ASSIGN_OR_RETURN(auto entry, FindLocked(task_id));
  if (wait_micros > 0 && entry->version <= since_version && !shutting_down_) {
    wait_micros = std::min(wait_micros, kMaxStatusWaitMicros);
    entry->cv.wait_for(lock, std::chrono::microseconds(wait_micros),
                       [&entry, since_version, this] {
                         return entry->version > since_version ||
                                shutting_down_;
                       });
  }
  return BuildStatusLocked(*entry);
}

Result<TaskStatusResponse> WorkerTaskManager::Delete(
    const std::string& task_id, bool abort) {
  std::unique_lock<std::mutex> lock(mu_);
  PRESTO_ASSIGN_OR_RETURN(auto entry, FindLocked(task_id));
  if (IsTerminalTaskState(entry->state)) {
    // Retire flush: drain up to the whole worker-side trace backlog into
    // the DELETE response — the recorder may die with the query slot right
    // after, and the cap guarantees the backlog fits one response.
    TaskStatusResponse response =
        BuildStatusLocked(*entry, kWorkerTraceMaxEvents);
    RemoveEntryLocked(entry);
    return response;
  }
  entry->cancel_requested = true;
  if (abort) entry->abort_requested = true;
  entry->remove_on_terminal = true;
  ++entry->version;
  entry->cv.notify_all();
  // Task-scoped kill (ISSUE 7): a whole-query abort arrives as one DELETE
  // per task, so net behavior is unchanged, but aborting a single task
  // (recovery superseding one slot) no longer kills the per-query memory
  // context its sibling tasks on this worker share. Limitation: a driver
  // parked inside a memory-revocation wait only observes the query-level
  // kill; task-level kills reach it on its next scheduled quantum.
  entry->exec->Kill(Status::Cancelled(
      "task " + task_id + (abort ? " aborted" : " canceled") +
      " by coordinator"));
  return BuildStatusLocked(*entry, kWorkerTraceMaxEvents);
}

void WorkerTaskManager::OnTaskDone(const std::shared_ptr<TaskEntry>& entry,
                                   Status status) {
  // Safe here: on_done fires after the executor dropped every driver
  // reference. Outside mu_ so status polls keep flowing (CollectStats
  // serializes against the release via the task's stats mutex).
  entry->exec->ReleaseDrivers();

  std::lock_guard<std::mutex> lock(mu_);
  if (entry->abort_requested) {
    entry->state = TaskState::kAborted;
  } else if (entry->cancel_requested ||
             status.code() == StatusCode::kCancelled) {
    entry->state = TaskState::kCanceled;
  } else if (status.ok()) {
    entry->state = TaskState::kFinished;
  } else {
    entry->state = TaskState::kFailed;
  }
  entry->error = status;
  ++entry->version;
  entry->cv.notify_all();
  --running_tasks_;
  if (entry->superseded) {
    // The entry was detached from tasks_ when a higher generation took its
    // id; removing "by id" here would erase the replacement. Drop it from
    // the retired list and release its query ref directly.
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (*it == entry) {
        retired_.erase(it);
        break;
      }
    }
    ReleaseQueryRefLocked(entry->spec.query_id);
  } else if (entry->remove_on_terminal) {
    RemoveEntryLocked(entry);
  }
  idle_cv_.notify_all();
}

void WorkerTaskManager::RemoveEntryLocked(
    const std::shared_ptr<TaskEntry>& entry) {
  // Pointer-identity removal: a same-id entry in tasks_ may be a newer
  // generation that must survive this entry's teardown.
  auto it = tasks_.find(entry->id);
  if (it == tasks_.end() || it->second != entry) return;
  tasks_.erase(it);
  ReleaseQueryRefLocked(entry->spec.query_id);
}

void WorkerTaskManager::ReleaseQueryRefLocked(const std::string& query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  if (--it->second.refs <= 0) {
    queries_.erase(it);
    // Last task of the query on this worker: drop its exchange buffers
    // and endpoint registrations.
    options_.exchange->RemoveQuery(query_id);
  }
}

int64_t WorkerTaskManager::active_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_tasks_;
}

bool WorkerTaskManager::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

void WorkerTaskManager::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutting_down_) {
    idle_cv_.wait(lock, [this] { return running_tasks_ == 0; });
    return;
  }
  shutting_down_ = true;
  for (auto& [id, entry] : tasks_) {
    if (!IsTerminalTaskState(entry->state)) {
      entry->abort_requested = true;
      // Whole-worker teardown: the query-level kill is both faster and
      // reaches drivers parked in memory waits.
      entry->query_memory->Kill(
          Status::Cancelled("worker is shutting down"));
    }
    entry->cv.notify_all();
  }
  for (auto& entry : retired_) {
    if (!IsTerminalTaskState(entry->state)) {
      entry->query_memory->Kill(
          Status::Cancelled("worker is shutting down"));
    }
    entry->cv.notify_all();
  }
  idle_cv_.wait(lock, [this] { return running_tasks_ == 0; });
  std::vector<std::string> query_ids;
  query_ids.reserve(queries_.size());
  for (auto& [query_id, slot] : queries_) query_ids.push_back(query_id);
  tasks_.clear();
  retired_.clear();
  queries_.clear();
  for (const std::string& query_id : query_ids) {
    options_.exchange->RemoveQuery(query_id);
  }
}

}  // namespace presto
