#include "worker/task_protocol.h"

#include <utility>

namespace presto {
namespace {

Json IntMapToJson(const std::map<int, int64_t>& m) {
  Json out = Json::Object();
  for (const auto& [k, v] : m) out.Set(std::to_string(k), Json::Int(v));
  return out;
}

Result<std::map<int, int64_t>> IntMapFromJson(const Json& json) {
  std::map<int, int64_t> out;
  for (const auto& [key, value] : json.members()) {
    if (!value.is_int()) {
      return Status::InvalidArgument("expected integer map value for key '" +
                                     key + "'");
    }
    out[std::atoi(key.c_str())] = value.int_value();
  }
  return out;
}

}  // namespace

const char* TaskStateToString(TaskState state) {
  switch (state) {
    case TaskState::kPlanned:
      return "PLANNED";
    case TaskState::kRunning:
      return "RUNNING";
    case TaskState::kFinished:
      return "FINISHED";
    case TaskState::kCanceled:
      return "CANCELED";
    case TaskState::kAborted:
      return "ABORTED";
    case TaskState::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

Result<TaskState> TaskStateFromString(const std::string& text) {
  if (text == "PLANNED") return TaskState::kPlanned;
  if (text == "RUNNING") return TaskState::kRunning;
  if (text == "FINISHED") return TaskState::kFinished;
  if (text == "CANCELED") return TaskState::kCanceled;
  if (text == "ABORTED") return TaskState::kAborted;
  if (text == "FAILED") return TaskState::kFailed;
  return Status::InvalidArgument("unknown task state '" + text + "'");
}

bool IsTerminalTaskState(TaskState state) {
  return state != TaskState::kPlanned && state != TaskState::kRunning;
}

std::string MakeTaskId(const std::string& query_id, int fragment_id,
                       int task_index) {
  return query_id + "." + std::to_string(fragment_id) + "." +
         std::to_string(task_index);
}

Json TaskCreateRequest::ToJson() const {
  Json spec_json = Json::Object();
  spec_json.Set("queryId", Json::Str(spec.query_id))
      .Set("fragmentId", Json::Int(spec.fragment_id))
      .Set("taskIndex", Json::Int(spec.task_index))
      .Set("numTasks", Json::Int(spec.num_tasks))
      .Set("consumerPartitions", Json::Int(spec.consumer_partitions))
      .Set("workerId", Json::Int(spec.worker_id))
      .Set("generation", Json::Int(spec.generation));
  Json source_counts = Json::Object();
  for (const auto& [fragment_id, count] : spec.source_task_counts) {
    source_counts.Set(std::to_string(fragment_id), Json::Int(count));
  }
  spec_json.Set("sourceTaskCounts", std::move(source_counts));

  Json endpoints_json = Json::Array();
  for (const auto& e : endpoints) {
    Json entry = Json::Array();
    entry.Append(Json::Int(e[0]));
    entry.Append(Json::Int(e[1]));
    entry.Append(Json::Int(e[2]));
    entry.Append(Json::Int(e[3]));
    endpoints_json.Append(std::move(entry));
  }

  Json out = Json::Object();
  out.Set("spec", std::move(spec_json))
      .Set("fragment", fragment)
      .Set("evalMode", Json::Int(static_cast<int>(eval_mode)))
      .Set("exchangeBufferBytes", Json::Int(exchange_buffer_bytes))
      .Set("maxDriversPerPipeline", Json::Int(max_drivers_per_pipeline))
      .Set("activeWriters", Json::Int(active_writers))
      .Set("emitResultsViaExchange", Json::Bool(emit_results_via_exchange))
      .Set("retainExchangeFrames", Json::Bool(retain_exchange_frames))
      .Set("enableTrace", Json::Bool(enable_trace))
      .Set("endpoints", std::move(endpoints_json));
  return out;
}

Result<TaskCreateRequest> TaskCreateRequest::FromJson(const Json& json) {
  TaskCreateRequest request;
  PRESTO_ASSIGN_OR_RETURN(const Json* spec_json, json.GetObject("spec"));
  PRESTO_ASSIGN_OR_RETURN(request.spec.query_id,
                          spec_json->GetString("queryId"));
  PRESTO_ASSIGN_OR_RETURN(int64_t fragment_id,
                          spec_json->GetInt("fragmentId"));
  PRESTO_ASSIGN_OR_RETURN(int64_t task_index, spec_json->GetInt("taskIndex"));
  PRESTO_ASSIGN_OR_RETURN(int64_t num_tasks, spec_json->GetInt("numTasks"));
  PRESTO_ASSIGN_OR_RETURN(int64_t consumer_partitions,
                          spec_json->GetInt("consumerPartitions"));
  PRESTO_ASSIGN_OR_RETURN(int64_t worker_id, spec_json->GetInt("workerId"));
  request.spec.fragment_id = static_cast<int>(fragment_id);
  request.spec.task_index = static_cast<int>(task_index);
  request.spec.num_tasks = static_cast<int>(num_tasks);
  request.spec.consumer_partitions = static_cast<int>(consumer_partitions);
  request.spec.worker_id = static_cast<int>(worker_id);
  if (const Json* generation = spec_json->Find("generation")) {
    if (!generation->is_int()) {
      return Status::InvalidArgument("spec.generation must be an integer");
    }
    request.spec.generation = static_cast<int>(generation->int_value());
  }
  if (const Json* counts = spec_json->Find("sourceTaskCounts")) {
    PRESTO_ASSIGN_OR_RETURN(auto m, IntMapFromJson(*counts));
    for (const auto& [k, v] : m) {
      request.spec.source_task_counts[k] = static_cast<int>(v);
    }
  }

  const Json* fragment = json.Find("fragment");
  if (fragment == nullptr || !fragment->is_object()) {
    return Status::InvalidArgument("task create request missing 'fragment'");
  }
  request.fragment = *fragment;

  PRESTO_ASSIGN_OR_RETURN(int64_t eval_mode, json.GetInt("evalMode"));
  if (eval_mode < 0 || eval_mode > static_cast<int>(EvalMode::kCompiled)) {
    return Status::InvalidArgument("bad evalMode " + std::to_string(eval_mode));
  }
  request.eval_mode = static_cast<EvalMode>(eval_mode);
  PRESTO_ASSIGN_OR_RETURN(request.exchange_buffer_bytes,
                          json.GetInt("exchangeBufferBytes"));
  PRESTO_ASSIGN_OR_RETURN(int64_t max_drivers,
                          json.GetInt("maxDriversPerPipeline"));
  request.max_drivers_per_pipeline = static_cast<int>(max_drivers);
  PRESTO_ASSIGN_OR_RETURN(int64_t writers, json.GetInt("activeWriters"));
  request.active_writers = static_cast<int>(writers);
  PRESTO_ASSIGN_OR_RETURN(request.emit_results_via_exchange,
                          json.GetBool("emitResultsViaExchange"));
  if (const Json* retain = json.Find("retainExchangeFrames")) {
    if (!retain->is_bool()) {
      return Status::InvalidArgument("retainExchangeFrames must be a bool");
    }
    request.retain_exchange_frames = retain->bool_value();
  }
  // Optional (absent in pre-trace-shipping payloads).
  if (const Json* trace = json.Find("enableTrace")) {
    if (!trace->is_bool()) {
      return Status::InvalidArgument("enableTrace must be a bool");
    }
    request.enable_trace = trace->bool_value();
  }

  PRESTO_ASSIGN_OR_RETURN(const Json* endpoints_json,
                          json.GetArray("endpoints"));
  for (const Json& entry : endpoints_json->items()) {
    // Generation-less [f, t, port] entries (pre-recovery senders) default
    // the producer generation to 0.
    if (!entry.is_array() || entry.size() < 3 || entry.size() > 4) {
      return Status::InvalidArgument(
          "endpoint entry must be [f, t, port, generation]");
    }
    std::array<int, 4> e{};
    for (size_t i = 0; i < entry.size(); ++i) {
      const Json& field = entry.items()[i];
      if (!field.is_int()) {
        return Status::InvalidArgument("endpoint entry must be integers");
      }
      e[i] = static_cast<int>(field.int_value());
    }
    request.endpoints.push_back(e);
  }
  return request;
}

Json TaskUpdateRequest::ToJson() const {
  Json splits_json = Json::Object();
  for (const auto& [node_id, serialized] : splits) {
    Json list = Json::Array();
    for (const std::string& s : serialized) list.Append(Json::Str(s));
    splits_json.Set(std::to_string(node_id), std::move(list));
  }
  Json no_more = Json::Array();
  for (int node_id : no_more_splits) no_more.Append(Json::Int(node_id));

  Json out = Json::Object();
  out.Set("splits", std::move(splits_json))
      .Set("noMoreSplits", std::move(no_more))
      .Set("activeWriters", Json::Int(active_writers));
  return out;
}

Result<TaskUpdateRequest> TaskUpdateRequest::FromJson(const Json& json) {
  TaskUpdateRequest request;
  if (const Json* splits_json = json.Find("splits")) {
    if (!splits_json->is_object()) {
      return Status::InvalidArgument("'splits' must be an object");
    }
    for (const auto& [key, list] : splits_json->members()) {
      if (!list.is_array()) {
        return Status::InvalidArgument("'splits' values must be arrays");
      }
      std::vector<std::string>& out = request.splits[std::atoi(key.c_str())];
      for (const Json& item : list.items()) {
        if (!item.is_string()) {
          return Status::InvalidArgument("split payloads must be strings");
        }
        out.push_back(item.string_value());
      }
    }
  }
  if (const Json* no_more = json.Find("noMoreSplits")) {
    if (!no_more->is_array()) {
      return Status::InvalidArgument("'noMoreSplits' must be an array");
    }
    for (const Json& item : no_more->items()) {
      if (!item.is_int()) {
        return Status::InvalidArgument("'noMoreSplits' must be integers");
      }
      request.no_more_splits.push_back(static_cast<int>(item.int_value()));
    }
  }
  if (const Json* writers = json.Find("activeWriters")) {
    if (!writers->is_int()) {
      return Status::InvalidArgument("'activeWriters' must be an integer");
    }
    request.active_writers = static_cast<int>(writers->int_value());
  }
  return request;
}

namespace {

Json OperatorStatsToJson(const OperatorStats& op) {
  Json out = Json::Object();
  out.Set("label", Json::Str(op.label))
      .Set("planNodeId", Json::Int(op.plan_node_id))
      .Set("pipelineId", Json::Int(op.pipeline_id))
      .Set("fragmentId", Json::Int(op.fragment_id))
      .Set("instances", Json::Int(op.instances))
      .Set("inputRows", Json::Int(op.input_rows))
      .Set("inputPages", Json::Int(op.input_pages))
      .Set("inputBytes", Json::Int(op.input_bytes))
      .Set("outputRows", Json::Int(op.output_rows))
      .Set("outputPages", Json::Int(op.output_pages))
      .Set("outputBytes", Json::Int(op.output_bytes))
      .Set("addInputNanos", Json::Int(op.add_input_nanos))
      .Set("getOutputNanos", Json::Int(op.get_output_nanos))
      .Set("blockedNanos", Json::Int(op.blocked_nanos))
      .Set("queuedNanos", Json::Int(op.queued_nanos))
      .Set("peakMemoryBytes", Json::Int(op.peak_memory_bytes))
      .Set("spilledBytes", Json::Int(op.spilled_bytes))
      .Set("serdeNanos", Json::Int(op.serde_nanos));
  return out;
}

Result<OperatorStats> OperatorStatsFromJson(const Json& json) {
  OperatorStats op;
  PRESTO_ASSIGN_OR_RETURN(op.label, json.GetString("label"));
  int64_t v = 0;
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("planNodeId"));
  op.plan_node_id = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("pipelineId"));
  op.pipeline_id = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("fragmentId"));
  op.fragment_id = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("instances"));
  op.instances = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(op.input_rows, json.GetInt("inputRows"));
  PRESTO_ASSIGN_OR_RETURN(op.input_pages, json.GetInt("inputPages"));
  PRESTO_ASSIGN_OR_RETURN(op.input_bytes, json.GetInt("inputBytes"));
  PRESTO_ASSIGN_OR_RETURN(op.output_rows, json.GetInt("outputRows"));
  PRESTO_ASSIGN_OR_RETURN(op.output_pages, json.GetInt("outputPages"));
  PRESTO_ASSIGN_OR_RETURN(op.output_bytes, json.GetInt("outputBytes"));
  PRESTO_ASSIGN_OR_RETURN(op.add_input_nanos, json.GetInt("addInputNanos"));
  PRESTO_ASSIGN_OR_RETURN(op.get_output_nanos, json.GetInt("getOutputNanos"));
  PRESTO_ASSIGN_OR_RETURN(op.blocked_nanos, json.GetInt("blockedNanos"));
  PRESTO_ASSIGN_OR_RETURN(op.queued_nanos, json.GetInt("queuedNanos"));
  PRESTO_ASSIGN_OR_RETURN(op.peak_memory_bytes,
                          json.GetInt("peakMemoryBytes"));
  PRESTO_ASSIGN_OR_RETURN(op.spilled_bytes, json.GetInt("spilledBytes"));
  PRESTO_ASSIGN_OR_RETURN(op.serde_nanos, json.GetInt("serdeNanos"));
  return op;
}

}  // namespace

Json TaskStatsToJson(const TaskStats& stats) {
  Json pipelines = Json::Array();
  for (const PipelineStats& pipeline : stats.pipelines) {
    Json operators = Json::Array();
    for (const OperatorStats& op : pipeline.operators) {
      operators.Append(OperatorStatsToJson(op));
    }
    Json p = Json::Object();
    p.Set("pipelineId", Json::Int(pipeline.pipeline_id))
        .Set("numDrivers", Json::Int(pipeline.num_drivers))
        .Set("operators", std::move(operators));
    pipelines.Append(std::move(p));
  }
  Json out = Json::Object();
  out.Set("fragmentId", Json::Int(stats.fragment_id))
      .Set("taskIndex", Json::Int(stats.task_index))
      .Set("workerId", Json::Int(stats.worker_id))
      .Set("cpuNanos", Json::Int(stats.cpu_nanos))
      .Set("pipelines", std::move(pipelines));
  return out;
}

Result<TaskStats> TaskStatsFromJson(const Json& json) {
  TaskStats stats;
  int64_t v = 0;
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("fragmentId"));
  stats.fragment_id = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("taskIndex"));
  stats.task_index = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(v, json.GetInt("workerId"));
  stats.worker_id = static_cast<int>(v);
  PRESTO_ASSIGN_OR_RETURN(stats.cpu_nanos, json.GetInt("cpuNanos"));
  PRESTO_ASSIGN_OR_RETURN(const Json* pipelines, json.GetArray("pipelines"));
  for (const Json& p : pipelines->items()) {
    PipelineStats pipeline;
    PRESTO_ASSIGN_OR_RETURN(v, p.GetInt("pipelineId"));
    pipeline.pipeline_id = static_cast<int>(v);
    PRESTO_ASSIGN_OR_RETURN(v, p.GetInt("numDrivers"));
    pipeline.num_drivers = static_cast<int>(v);
    PRESTO_ASSIGN_OR_RETURN(const Json* operators, p.GetArray("operators"));
    for (const Json& op : operators->items()) {
      PRESTO_ASSIGN_OR_RETURN(OperatorStats parsed, OperatorStatsFromJson(op));
      pipeline.operators.push_back(std::move(parsed));
    }
    stats.pipelines.push_back(std::move(pipeline));
  }
  return stats;
}

Json TaskStatusResponse::ToJson() const {
  Json out = Json::Object();
  out.Set("taskId", Json::Str(task_id))
      .Set("state", Json::Str(TaskStateToString(state)))
      .Set("version", Json::Int(version))
      .Set("errorCode", Json::Int(static_cast<int>(error_code)))
      .Set("errorMessage", Json::Str(error_message))
      .Set("queuedSplits", IntMapToJson(queued_splits))
      .Set("addedSplits", IntMapToJson(added_splits))
      .Set("outputUtilization", Json::Real(output_utilization))
      .Set("cpuNanos", Json::Int(cpu_nanos))
      .Set("userMemoryBytes", Json::Int(user_memory_bytes))
      .Set("peakUserMemoryBytes", Json::Int(peak_user_memory_bytes))
      .Set("stats", TaskStatsToJson(stats))
      .Set("rowsOut", Json::Int(rows_out))
      .Set("progressAgeMicros", Json::Int(progress_age_micros));
  // Trace-shipping fields only appear when tracing is live on the worker,
  // keeping untraced status payloads byte-identical to before ISSUE 10.
  if (trace_now_nanos >= 0) {
    out.Set("traceNowNanos", Json::Int(trace_now_nanos))
        .Set("traceDropped", Json::Int(trace_dropped));
    if (!trace_events.empty()) {
      Json events = Json::Array();
      for (const TraceEvent& event : trace_events) {
        events.Append(TraceEventToJson(event));
      }
      out.Set("traceEvents", std::move(events));
      Json process_names = Json::Object();
      for (const auto& [pid, name] : trace_process_names) {
        process_names.Set(std::to_string(pid), Json::Str(name));
      }
      out.Set("traceProcessNames", std::move(process_names));
      Json thread_names = Json::Array();
      for (const auto& [key, name] : trace_thread_names) {
        Json entry = Json::Array();
        entry.Append(Json::Int(key.first));
        entry.Append(Json::Int(key.second));
        entry.Append(Json::Str(name));
        thread_names.Append(std::move(entry));
      }
      out.Set("traceThreadNames", std::move(thread_names));
    }
  }
  return out;
}

Result<TaskStatusResponse> TaskStatusResponse::FromJson(const Json& json) {
  TaskStatusResponse status;
  PRESTO_ASSIGN_OR_RETURN(status.task_id, json.GetString("taskId"));
  PRESTO_ASSIGN_OR_RETURN(std::string state_text, json.GetString("state"));
  PRESTO_ASSIGN_OR_RETURN(status.state, TaskStateFromString(state_text));
  PRESTO_ASSIGN_OR_RETURN(status.version, json.GetInt("version"));
  PRESTO_ASSIGN_OR_RETURN(int64_t code, json.GetInt("errorCode"));
  if (code < 0 || code > static_cast<int>(StatusCode::kInternal)) {
    return Status::InvalidArgument("bad errorCode " + std::to_string(code));
  }
  status.error_code = static_cast<StatusCode>(code);
  PRESTO_ASSIGN_OR_RETURN(status.error_message, json.GetString("errorMessage"));
  if (const Json* queued = json.Find("queuedSplits")) {
    PRESTO_ASSIGN_OR_RETURN(status.queued_splits, IntMapFromJson(*queued));
  }
  if (const Json* added = json.Find("addedSplits")) {
    PRESTO_ASSIGN_OR_RETURN(status.added_splits, IntMapFromJson(*added));
  }
  PRESTO_ASSIGN_OR_RETURN(status.output_utilization,
                          json.GetDouble("outputUtilization"));
  PRESTO_ASSIGN_OR_RETURN(status.cpu_nanos, json.GetInt("cpuNanos"));
  PRESTO_ASSIGN_OR_RETURN(status.user_memory_bytes,
                          json.GetInt("userMemoryBytes"));
  PRESTO_ASSIGN_OR_RETURN(status.peak_user_memory_bytes,
                          json.GetInt("peakUserMemoryBytes"));
  if (const Json* stats_json = json.Find("stats")) {
    PRESTO_ASSIGN_OR_RETURN(status.stats, TaskStatsFromJson(*stats_json));
  }
  // Optional (absent in pre-speculation payloads).
  if (json.Find("rowsOut") != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(status.rows_out, json.GetInt("rowsOut"));
  }
  if (json.Find("progressAgeMicros") != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(status.progress_age_micros,
                            json.GetInt("progressAgeMicros"));
  }
  // Optional (absent when the worker isn't tracing, ISSUE 10).
  if (json.Find("traceNowNanos") != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(status.trace_now_nanos,
                            json.GetInt("traceNowNanos"));
    PRESTO_ASSIGN_OR_RETURN(status.trace_dropped, json.GetInt("traceDropped"));
  }
  if (const Json* events = json.Find("traceEvents")) {
    if (!events->is_array()) {
      return Status::InvalidArgument("'traceEvents' must be an array");
    }
    for (const Json& event_json : events->items()) {
      PRESTO_ASSIGN_OR_RETURN(TraceEvent event,
                              TraceEventFromJson(event_json));
      status.trace_events.push_back(std::move(event));
    }
  }
  if (const Json* process_names = json.Find("traceProcessNames")) {
    for (const auto& [pid, name] : process_names->members()) {
      if (!name.is_string()) {
        return Status::InvalidArgument("process names must be strings");
      }
      status.trace_process_names[std::atoi(pid.c_str())] = name.string_value();
    }
  }
  if (const Json* thread_names = json.Find("traceThreadNames")) {
    if (!thread_names->is_array()) {
      return Status::InvalidArgument("'traceThreadNames' must be an array");
    }
    for (const Json& entry : thread_names->items()) {
      if (!entry.is_array() || entry.size() != 3 ||
          !entry.items()[0].is_int() || !entry.items()[1].is_int() ||
          !entry.items()[2].is_string()) {
        return Status::InvalidArgument(
            "thread name entry must be [pid, tid, name]");
      }
      status.trace_thread_names[{static_cast<int>(
                                     entry.items()[0].int_value()),
                                 entry.items()[1].int_value()}] =
          entry.items()[2].string_value();
    }
  }
  return status;
}

Json NodeInfo::ToJson() const {
  Json out = Json::Object();
  out.Set("nodeId", Json::Str(node_id))
      .Set("state", Json::Str(state))
      .Set("uptimeMillis", Json::Int(uptime_millis))
      .Set("activeTasks", Json::Int(active_tasks))
      .Set("heartbeats", Json::Int(heartbeats))
      .Set("lastRttMicros", Json::Int(last_rtt_micros))
      .Set("aliveWorkers", Json::Int(alive_workers))
      .Set("bufferedBytes", Json::Int(buffered_bytes))
      .Set("retainedBytes", Json::Int(retained_bytes));
  return out;
}

Result<NodeInfo> NodeInfo::FromJson(const Json& json) {
  NodeInfo info;
  PRESTO_ASSIGN_OR_RETURN(info.node_id, json.GetString("nodeId"));
  PRESTO_ASSIGN_OR_RETURN(info.state, json.GetString("state"));
  PRESTO_ASSIGN_OR_RETURN(info.uptime_millis, json.GetInt("uptimeMillis"));
  PRESTO_ASSIGN_OR_RETURN(info.active_tasks, json.GetInt("activeTasks"));
  PRESTO_ASSIGN_OR_RETURN(info.heartbeats, json.GetInt("heartbeats"));
  PRESTO_ASSIGN_OR_RETURN(info.last_rtt_micros, json.GetInt("lastRttMicros"));
  PRESTO_ASSIGN_OR_RETURN(info.alive_workers, json.GetInt("aliveWorkers"));
  // Optional (absent in pre-recovery payloads).
  if (json.Find("bufferedBytes") != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(info.buffered_bytes,
                            json.GetInt("bufferedBytes"));
  }
  if (json.Find("retainedBytes") != nullptr) {
    PRESTO_ASSIGN_OR_RETURN(info.retained_bytes,
                            json.GetInt("retainedBytes"));
  }
  return info;
}

}  // namespace presto
