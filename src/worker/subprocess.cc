#include "worker/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace presto {

Subprocess::~Subprocess() {
  if (pid_ > 0) {
    Kill();
    Wait();
  }
  if (stdout_fd_ >= 0) close(stdout_fd_);
  if (stdin_fd_ >= 0) close(stdin_fd_);
}

Status Subprocess::Start(const std::vector<std::string>& argv) {
  if (argv.empty()) return Status::InvalidArgument("empty argv");
  if (pid_ > 0) return Status::Internal("subprocess already started");

  int out_pipe[2];  // child stdout -> parent
  int in_pipe[2];   // parent -> child stdin
  if (pipe(out_pipe) != 0) return Status::IOError("pipe: failed");
  if (pipe(in_pipe) != 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    return Status::IOError("pipe: failed");
  }

  pid_t pid = fork();
  if (pid < 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    close(in_pipe[0]);
    close(in_pipe[1]);
    return Status::IOError("fork: failed");
  }
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    dup2(in_pipe[0], STDIN_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    close(in_pipe[0]);
    close(in_pipe[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    execv(args[0], args.data());
    _exit(127);
  }
  close(out_pipe[1]);
  close(in_pipe[0]);
  pid_ = pid;
  stdout_fd_ = out_pipe[0];
  stdin_fd_ = in_pipe[1];
  return Status::OK();
}

Result<std::string> Subprocess::WaitForLine(const std::string& prefix,
                                            int64_t timeout_millis) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_millis);
  while (true) {
    // Drain complete lines already buffered.
    size_t newline;
    while ((newline = buffer_.find('\n')) != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (line.rfind(prefix, 0) == 0) return line;
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::IOError("timed out waiting for '" + prefix +
                             "' from child");
    }
    struct pollfd pfd;
    pfd.fd = stdout_fd_;
    pfd.events = POLLIN;
    int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    int ready = poll(&pfd, 1, remaining);
    if (ready <= 0) {
      return Status::IOError("timed out waiting for '" + prefix +
                             "' from child");
    }
    char chunk[4096];
    ssize_t n = read(stdout_fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      return Status::IOError("child stdout closed before '" + prefix + "'");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status Subprocess::WriteLine(const std::string& line) {
  if (stdin_fd_ < 0) return Status::Internal("no child stdin");
  // Writing to a child that already died must surface as an error, not
  // kill this process: pipes raise SIGPIPE (there is no MSG_NOSIGNAL for
  // write), so suppress it for the duration of the write.
  struct sigaction ignore_pipe;
  struct sigaction saved_pipe;
  memset(&ignore_pipe, 0, sizeof(ignore_pipe));
  ignore_pipe.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &ignore_pipe, &saved_pipe);
  std::string payload = line + "\n";
  size_t written = 0;
  Status result = Status::OK();
  while (written < payload.size()) {
    ssize_t n = write(stdin_fd_, payload.data() + written,
                      payload.size() - written);
    if (n <= 0) {
      result = Status::IOError("write to child stdin failed");
      break;
    }
    written += static_cast<size_t>(n);
  }
  sigaction(SIGPIPE, &saved_pipe, nullptr);
  return result;
}

void Subprocess::Kill() {
  if (pid_ > 0) kill(pid_, SIGKILL);
}

void Subprocess::Terminate() {
  if (pid_ > 0) kill(pid_, SIGTERM);
}

int Subprocess::Wait() {
  if (pid_ <= 0) return -1;
  int wstatus = 0;
  waitpid(pid_, &wstatus, 0);
  pid_ = -1;
  return wstatus;
}

}  // namespace presto
