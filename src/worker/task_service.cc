#include "worker/task_service.h"

#include <cstdlib>

#include "common/fault_injection.h"
#include "common/json.h"
#include "stats/trace.h"

namespace presto {

namespace {

HttpResponse JsonResponse(int status, const std::string& reason, Json body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.headers["content-type"] = "application/json";
  response.body = body.Serialize();
  return response;
}

HttpResponse ErrorResponse(int status, const std::string& reason,
                           const std::string& message) {
  Json body = Json::Object();
  body.Set("error", Json::Str(message));
  return JsonResponse(status, reason, std::move(body));
}

HttpResponse StatusToResponse(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnsupported:
      return ErrorResponse(400, "Bad Request", status.message());
    case StatusCode::kNotFound:
      return ErrorResponse(404, "Not Found", status.message());
    case StatusCode::kCancelled:
      return ErrorResponse(409, "Conflict", status.message());
    default:
      return ErrorResponse(500, "Internal Server Error", status.message());
  }
}

// Parses "?since=V&wait=N" style query strings (integer values only).
int64_t QueryParam(const std::string& query, const std::string& key,
                   int64_t fallback) {
  std::string needle = key + "=";
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (query.compare(pos, needle.size(), needle) == 0) {
      return std::atoll(query.substr(pos + needle.size(),
                                     end - pos - needle.size())
                            .c_str());
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

TaskService::TaskService(WorkerTaskManager* manager, int worker_id,
                         HeartbeatSender* heartbeat)
    : manager_(manager),
      worker_id_(worker_id),
      heartbeat_(heartbeat),
      start_time_(std::chrono::steady_clock::now()) {}

Status TaskService::Start() {
  server_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
  return server_->Start();
}

void TaskService::Stop() {
  if (server_ != nullptr) server_->Stop();
}

HttpResponse TaskService::Handle(const HttpRequest& request) {
  if (FaultInjection::Enabled()) {
    Status fault = FaultInjection::Instance().Hit("worker.task_service");
    if (!fault.ok()) {
      return ErrorResponse(500, "Internal Server Error", fault.message());
    }
  }

  HttpResponse response;
  constexpr char kTaskPrefix[] = "/v1/task/";
  if (request.path == "/v1/info" && request.method == "GET") {
    response = HandleInfo();
  } else if (request.path.rfind(kTaskPrefix, 0) == 0) {
    response = HandleTask(request,
                          request.path.substr(sizeof(kTaskPrefix) - 1));
  } else {
    response = ErrorResponse(404, "Not Found",
                             "no route for " + request.path);
  }
  // Echo the trace id so cross-process spans correlate task RPCs.
  std::string trace_id = request.header(kTraceHeader);
  if (!trace_id.empty()) response.headers[kTraceHeader] = trace_id;
  return response;
}

HttpResponse TaskService::HandleTask(const HttpRequest& request,
                                     const std::string& rest) {
  // rest is "{taskId}", "{taskId}/status", either with an optional query
  // string.
  std::string path = rest;
  std::string query;
  if (size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path = path.substr(0, q);
  }
  std::string task_id = path;
  std::string action;
  if (size_t slash = path.find('/'); slash != std::string::npos) {
    task_id = path.substr(0, slash);
    action = path.substr(slash + 1);
  }
  if (task_id.empty()) {
    return ErrorResponse(400, "Bad Request", "missing task id");
  }

  if (request.method == "POST" && action.empty()) {
    auto body_or = Json::Parse(request.body);
    if (!body_or.ok()) {
      return ErrorResponse(400, "Bad Request",
                           "malformed task JSON: " +
                               body_or.status().message());
    }
    auto status_or = manager_->CreateOrUpdate(task_id, body_or.value());
    if (!status_or.ok()) return StatusToResponse(status_or.status());
    return JsonResponse(200, "OK", status_or.value().ToJson());
  }

  if (request.method == "GET" && action == "status") {
    int64_t since = QueryParam(query, "since", 0);
    int64_t wait = QueryParam(query, "wait", 0);
    auto status_or = manager_->GetStatus(task_id, since, wait);
    if (!status_or.ok()) return StatusToResponse(status_or.status());
    return JsonResponse(200, "OK", status_or.value().ToJson());
  }

  if (request.method == "DELETE" && action.empty()) {
    bool abort = QueryParam(query, "abort", 0) != 0;
    auto status_or = manager_->Delete(task_id, abort);
    if (!status_or.ok()) return StatusToResponse(status_or.status());
    return JsonResponse(200, "OK", status_or.value().ToJson());
  }

  return ErrorResponse(405, "Method Not Allowed",
                       request.method + " not supported on /v1/task/" +
                           path);
}

HttpResponse TaskService::HandleInfo() {
  NodeInfo info;
  info.node_id = "worker-" + std::to_string(worker_id_);
  info.state = manager_->shutting_down() ? "SHUTTING_DOWN" : "ACTIVE";
  info.uptime_millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count();
  info.active_tasks = manager_->active_tasks();
  if (ExchangeManager* exchange = manager_->exchange()) {
    info.buffered_bytes = exchange->TotalBufferedBytes();
    info.retained_bytes = exchange->TotalRetainedBytes();
  }
  if (heartbeat_ != nullptr) {
    info.heartbeats = heartbeat_->sent();
    info.last_rtt_micros = heartbeat_->last_rtt_micros();
  }
  return JsonResponse(200, "OK", info.ToJson());
}

}  // namespace presto
