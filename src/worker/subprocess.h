#ifndef PRESTOCPP_WORKER_SUBPROCESS_H_
#define PRESTOCPP_WORKER_SUBPROCESS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace presto {

/// Minimal fork/exec wrapper for launching `presto_worker` daemons from
/// tests and examples. The child's stdout is piped back so the parent can
/// read the "READY task_port=... exchange_port=..." banner; the child's
/// stdin is the pipe's write end, so an orphaned worker exits on EOF when
/// the parent dies.
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// argv[0] is the binary path.
  Status Start(const std::vector<std::string>& argv);

  /// Reads child stdout lines until one starts with `prefix` (or EOF /
  /// `timeout_millis` elapses). Returns the matching line.
  Result<std::string> WaitForLine(const std::string& prefix,
                                  int64_t timeout_millis);

  /// Writes `line` + '\n' to the child's stdin (the daemon's command
  /// channel, e.g. "coordinator_port=12345").
  Status WriteLine(const std::string& line);

  /// SIGKILL — models a crashed worker (no goodbye, no flush).
  void Kill();
  /// SIGTERM — asks for a graceful exit.
  void Terminate();
  /// Reaps the child (after Kill/Terminate or natural exit); returns its
  /// raw wait(2) status, or -1 if no child.
  int Wait();

  bool running() const { return pid_ > 0; }
  int pid() const { return pid_; }

 private:
  int pid_ = -1;
  int stdout_fd_ = -1;
  int stdin_fd_ = -1;
  std::string buffer_;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_SUBPROCESS_H_
