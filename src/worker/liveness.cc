#include "worker/liveness.h"

#include <algorithm>

#include "common/json.h"
#include "exchange/http/http_io.h"

namespace presto {

WorkerLivenessTracker::~WorkerLivenessTracker() {
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    monitor_stop_ = true;
    listener_cv_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();
}

void WorkerLivenessTracker::RegisterWorker(int worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  registered_.emplace(worker_id, Clock::now());  // first call wins
}

void WorkerLivenessTracker::Heartbeat(int worker_id, int64_t rtt_micros) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_beat_[worker_id] = Clock::now();
    if (!activated_at_.has_value()) activated_at_ = Clock::now();
    death_fired_.erase(worker_id);  // revived: re-arm death notification
  }
  heartbeats_received_.fetch_add(1, std::memory_order_relaxed);
  if (rtt_micros > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_rtt_micros_[worker_id] = rtt_micros;
    }
    if (rtt_histogram_ != nullptr) {
      rtt_histogram_->Observe(static_cast<double>(rtt_micros));
    }
  }
}

void WorkerLivenessTracker::SetMetricsPort(int worker_id, int port) {
  if (port <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ports_[worker_id] = port;
}

int WorkerLivenessTracker::metrics_port(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_ports_.find(worker_id);
  return it == metrics_ports_.end() ? -1 : it->second;
}

int64_t WorkerLivenessTracker::last_rtt_micros(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_rtt_micros_.find(worker_id);
  return it == last_rtt_micros_.end() ? -1 : it->second;
}

bool WorkerLivenessTracker::SeenHeartbeat(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_beat_.count(worker_id) > 0;
}

bool WorkerLivenessTracker::IsAliveLocked(int worker_id,
                                          Clock::time_point now) const {
  auto it = last_beat_.find(worker_id);
  if (it != last_beat_.end()) {
    int64_t silent_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(now - it->second)
            .count();
    return silent_micros <= timeout_micros_.load();
  }
  // Never heartbeated. Unregistered workers — or any worker before the
  // tracker saw its first heartbeat — are passive (alive): in-process
  // clusters and heartbeat-less tests must never expire.
  auto reg = registered_.find(worker_id);
  if (reg == registered_.end() || !activated_at_.has_value()) return true;
  int64_t grace = first_beat_grace_micros_.load();
  if (grace <= 0) grace = timeout_micros_.load();
  Clock::time_point since = std::max(reg->second, *activated_at_);
  int64_t waited_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(now - since)
          .count();
  return waited_micros <= grace;
}

bool WorkerLivenessTracker::IsAlive(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IsAliveLocked(worker_id, Clock::now());
}

int64_t WorkerLivenessTracker::AliveCount(int total_workers) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto now = Clock::now();
  int64_t alive = 0;
  for (int w = 0; w < total_workers; ++w) {
    if (IsAliveLocked(w, now)) ++alive;
  }
  return alive;
}

int WorkerLivenessTracker::AddDeathListener(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  int token = next_listener_token_++;
  listeners_[token] = std::move(fn);
  if (!monitor_.joinable()) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
  return token;
}

void WorkerLivenessTracker::RemoveDeathListener(int token) {
  // listener_mu_ is held while callbacks run, so returning from here
  // guarantees no further (or in-flight) invocation of this listener.
  std::lock_guard<std::mutex> lock(listener_mu_);
  listeners_.erase(token);
}

void WorkerLivenessTracker::MonitorLoop() {
  while (true) {
    // Collect fresh alive->dead transitions without listener_mu_ held.
    std::vector<int> newly_dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto now = Clock::now();
      auto check = [&](int worker) {
        if (death_fired_.count(worker) > 0) return;
        if (IsAliveLocked(worker, now)) return;
        death_fired_[worker] = true;
        newly_dead.push_back(worker);
      };
      for (const auto& [worker, when] : last_beat_) check(worker);
      for (const auto& [worker, when] : registered_) check(worker);
    }
    std::unique_lock<std::mutex> lock(listener_mu_);
    for (int worker : newly_dead) {
      for (const auto& [token, fn] : listeners_) fn(worker);
    }
    int64_t poll_micros =
        std::clamp<int64_t>(timeout_micros_.load() / 8, 5'000, 100'000);
    listener_cv_.wait_for(lock, std::chrono::microseconds(poll_micros),
                          [this] { return monitor_stop_; });
    if (monitor_stop_) return;
  }
}

HeartbeatSender::HeartbeatSender(int coordinator_port, int worker_id,
                                 int64_t interval_micros)
    : coordinator_port_(coordinator_port),
      worker_id_(worker_id),
      // A non-positive interval would busy-spin the loop and zero the
      // connect timeout; fall back to the default cadence.
      interval_micros_(interval_micros > 0 ? interval_micros : 200'000) {}

HeartbeatSender::~HeartbeatSender() { Stop(); }

void HeartbeatSender::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HeartbeatSender::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void HeartbeatSender::Loop() {
  while (true) {
    if (SendOnce()) {
      sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::microseconds(interval_micros_),
                 [this] { return stop_; });
    if (stop_) return;
  }
}

bool HeartbeatSender::SendOnce() {
  auto start = std::chrono::steady_clock::now();
  // Connect timeout: 4 beat intervals, clamped to [10ms, 2s] so a huge
  // configured interval cannot overflow (or stall a beat for minutes) and
  // a tiny one cannot starve the connect.
  int64_t connect_timeout_micros =
      interval_micros_ > 500'000 ? 2'000'000 : interval_micros_ * 4;
  connect_timeout_micros =
      std::clamp<int64_t>(connect_timeout_micros, 10'000, 2'000'000);
  auto conn_or = ConnectToLoopback(coordinator_port_, connect_timeout_micros);
  if (!conn_or.ok()) return false;
  std::unique_ptr<HttpConnection> conn = std::move(conn_or).value();

  Json body = Json::Object();
  // rttMicros -1 = "no round trip measured yet" (first beat); the
  // coordinator only records positive samples.
  int64_t last_rtt = last_rtt_micros_.load();
  body.Set("worker", Json::Int(worker_id_))
      .Set("rttMicros", Json::Int(last_rtt > 0 ? last_rtt : -1));
  // Advertise the observability port (ISSUE 10) so the coordinator can
  // federate /v1/metrics without static worker configuration.
  if (metrics_port_ > 0) {
    body.Set("metricsPort", Json::Int(metrics_port_));
  }

  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/heartbeat";
  request.body = body.Serialize();
  if (!conn->WriteRequest(request).ok()) return false;
  auto response_or = conn->ReadResponse();
  if (!response_or.ok() || response_or.value().status != 200) return false;

  // A sub-microsecond loopback round trip would store 0 and look "never
  // measured" forever; report at least 1µs so the first real RTT sticks.
  int64_t rtt = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  last_rtt_micros_.store(std::max<int64_t>(rtt, 1));
  return true;
}

}  // namespace presto
