#include "worker/liveness.h"

#include "common/json.h"
#include "exchange/http/http_io.h"

namespace presto {

void WorkerLivenessTracker::Heartbeat(int worker_id, int64_t rtt_micros) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_beat_[worker_id] = Clock::now();
  }
  heartbeats_received_.fetch_add(1, std::memory_order_relaxed);
  if (rtt_histogram_ != nullptr && rtt_micros > 0) {
    rtt_histogram_->Observe(static_cast<double>(rtt_micros));
  }
}

bool WorkerLivenessTracker::SeenHeartbeat(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_beat_.count(worker_id) > 0;
}

bool WorkerLivenessTracker::IsAlive(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_beat_.find(worker_id);
  if (it == last_beat_.end()) return true;  // never heartbeated: passive
  int64_t silent_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - it->second)
                              .count();
  return silent_micros <= timeout_micros_.load();
}

int64_t WorkerLivenessTracker::AliveCount(int total_workers) const {
  int64_t alive = 0;
  for (int w = 0; w < total_workers; ++w) {
    if (IsAlive(w)) ++alive;
  }
  return alive;
}

HeartbeatSender::HeartbeatSender(int coordinator_port, int worker_id,
                                 int64_t interval_micros)
    : coordinator_port_(coordinator_port),
      worker_id_(worker_id),
      interval_micros_(interval_micros) {}

HeartbeatSender::~HeartbeatSender() { Stop(); }

void HeartbeatSender::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HeartbeatSender::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void HeartbeatSender::Loop() {
  while (true) {
    if (SendOnce()) {
      sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::microseconds(interval_micros_),
                 [this] { return stop_; });
    if (stop_) return;
  }
}

bool HeartbeatSender::SendOnce() {
  auto start = std::chrono::steady_clock::now();
  auto conn_or = ConnectToLoopback(coordinator_port_, interval_micros_ * 4);
  if (!conn_or.ok()) return false;
  std::unique_ptr<HttpConnection> conn = std::move(conn_or).value();

  Json body = Json::Object();
  body.Set("worker", Json::Int(worker_id_))
      .Set("rttMicros", Json::Int(last_rtt_micros_.load()));

  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/heartbeat";
  request.body = body.Serialize();
  if (!conn->WriteRequest(request).ok()) return false;
  auto response_or = conn->ReadResponse();
  if (!response_or.ok() || response_or.value().status != 200) return false;

  last_rtt_micros_.store(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  return true;
}

}  // namespace presto
