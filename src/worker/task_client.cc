#include "worker/task_client.h"

#include <chrono>
#include <utility>

#include "stats/metrics_registry.h"
#include "stats/trace.h"

namespace presto {

namespace {

Status HttpStatusToStatus(const HttpResponse& response) {
  std::string detail = response.body;
  if (auto body_or = Json::Parse(response.body); body_or.ok()) {
    if (const Json* error = body_or.value().Find("error");
        error != nullptr && error->is_string()) {
      detail = error->string_value();
    }
  }
  switch (response.status) {
    case 400:
      return Status::InvalidArgument(detail);
    case 404:
      return Status::NotFound(detail);
    case 409:
      return Status::Cancelled(detail);
    default:
      return Status::IOError("task http: status " +
                             std::to_string(response.status) + ": " + detail);
  }
}

}  // namespace

HttpTaskClient::HttpTaskClient(TaskSpec spec, Json create_request,
                               Options options)
    : spec_(std::move(spec)),
      task_id_(MakeTaskId(spec_.query_id, spec_.fragment_id,
                          spec_.task_index)),
      create_request_(std::move(create_request)),
      options_(options) {
  cached_.task_id = task_id_;
  cached_.stats.fragment_id = spec_.fragment_id;
  cached_.stats.task_index = spec_.task_index;
  cached_.stats.worker_id = spec_.worker_id;
}

HttpTaskClient::~HttpTaskClient() {
  stop_.store(true);
  if (poll_thread_.joinable()) poll_thread_.join();
}

Result<HttpResponse> HttpTaskClient::ControlRoundTrip(
    const HttpRequest& request) {
  // Called under control_mu_. Reconnect once on a stale keep-alive socket.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (control_conn_ == nullptr) {
      auto conn_or =
          ConnectToLoopback(options_.task_port, options_.io_timeout_micros);
      if (!conn_or.ok()) return conn_or.status();
      control_conn_ = std::move(conn_or).value();
    }
    Status write = control_conn_->WriteRequest(request);
    if (write.ok()) {
      auto response_or = control_conn_->ReadResponse();
      if (response_or.ok()) return response_or;
      control_conn_.reset();
      if (attempt == 1) return response_or.status();
    } else {
      control_conn_.reset();
      if (attempt == 1) return write;
    }
  }
  return Status::IOError("task http: unreachable");
}

Result<TaskStatusResponse> HttpTaskClient::ParseStatusResponse(
    const HttpResponse& response) {
  if (response.status != 200) return HttpStatusToStatus(response);
  PRESTO_ASSIGN_OR_RETURN(Json body, Json::Parse(response.body));
  return TaskStatusResponse::FromJson(body);
}

Result<TaskStatusResponse> HttpTaskClient::PostControl(const Json& body) {
  HttpRequest request;
  request.method = "POST";
  request.path = "/v1/task/" + task_id_;
  request.headers[kTraceHeader] = spec_.query_id;
  request.body = body.Serialize();
  PRESTO_ASSIGN_OR_RETURN(HttpResponse response, ControlRoundTrip(request));
  return ParseStatusResponse(response);
}

void HttpTaskClient::CacheStatus(const TaskStatusResponse& status) {
  // Mine the response for shipped trace spans first: even a late response
  // that loses the terminal-state race below still carries spans the
  // worker drained exactly once.
  MergeShippedTrace(status);
  std::lock_guard<std::mutex> lock(cache_mu_);
  // Never regress a terminal snapshot (a late control response racing the
  // poll thread's terminal status).
  if (IsTerminalTaskState(cached_.state) &&
      !IsTerminalTaskState(status.state)) {
    return;
  }
  cached_ = status;
}

void HttpTaskClient::MergeShippedTrace(const TaskStatusResponse& status) {
  if (options_.trace == nullptr || status.trace_now_nanos < 0) return;
  int64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (!trace_offset_set_) {
      // First traced response: the worker's recorder epoch differs from
      // the coordinator's, so anchor "worker now" to "coordinator now".
      // The error is one-way network latency — microseconds on loopback,
      // far below span durations of interest.
      trace_offset_nanos_ =
          options_.trace->NowNanos() - status.trace_now_nanos;
      trace_offset_set_ = true;
    }
    offset = trace_offset_nanos_;
  }
  if (status.trace_dropped > 0) {
    options_.trace->AddDropped(status.trace_dropped);
    if (options_.trace_dropped != nullptr) {
      options_.trace_dropped->Increment(status.trace_dropped);
    }
  }
  if (status.trace_events.empty()) return;
  for (const auto& [pid, name] : status.trace_process_names) {
    options_.trace->SetProcessName(pid, name);
  }
  for (const auto& [key, name] : status.trace_thread_names) {
    options_.trace->SetThreadName(key.first, key.second, name);
  }
  for (const TraceEvent& event : status.trace_events) {
    TraceEvent rebased = event;
    rebased.start_nanos += offset;
    options_.trace->MergeEvent(std::move(rebased));
  }
  if (options_.trace_shipped != nullptr) {
    options_.trace_shipped->Increment(
        static_cast<int64_t>(status.trace_events.size()));
  }
}

Status HttpTaskClient::Launch(std::function<void(Status)> on_done) {
  on_done_ = std::move(on_done);
  TaskStatusResponse status;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    auto status_or = PostControl(create_request_);
    if (!status_or.ok()) {
      // A create that cannot reach (or be served by) the worker is a
      // worker-loss signal, not a query error — lets recovery retry the
      // replacement elsewhere when the chosen worker died in between.
      if (status_or.status().code() == StatusCode::kIOError) {
        worker_lost_.store(true);
      }
      return Status::IOError("task create failed on worker " +
                             std::to_string(spec_.worker_id) + ": " +
                             status_or.status().ToString());
    }
    status = std::move(status_or).value();
  }
  CacheStatus(status);
  launched_.store(true);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::OK();
}

std::optional<size_t> HttpTaskClient::SplitQueueSize(int node_id) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cached_.queued_splits.find(node_id);
  if (it == cached_.queued_splits.end()) return std::nullopt;
  int64_t pending = 0;
  if (auto p = pending_counts_.find(node_id); p != pending_counts_.end()) {
    pending = p->second;
  }
  return static_cast<size_t>(it->second + pending);
}

void HttpTaskClient::AddSplit(int node_id, const SplitPtr& split,
                              Connector* connector) {
  if (superseded_.load()) return;  // replacement generation owns the splits
  if (connector == nullptr) {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (pending_error_.ok()) {
      pending_error_ = Status::Internal("no connector for split of node " +
                                        std::to_string(node_id));
    }
    return;
  }
  auto serialized_or = connector->SerializeSplit(*split);
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!serialized_or.ok()) {
    if (pending_error_.ok()) pending_error_ = serialized_or.status();
    return;
  }
  pending_splits_[node_id].push_back(std::move(serialized_or).value());
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  ++pending_counts_[node_id];
}

void HttpTaskClient::NoMoreSplits(int node_id) {
  if (superseded_.load()) return;
  // Flush anything buffered for the node first so ordering holds.
  (void)FlushSplits();
  TaskUpdateRequest update;
  update.no_more_splits.push_back(node_id);
  std::lock_guard<std::mutex> lock(control_mu_);
  auto status_or = PostControl(update.ToJson());
  if (status_or.ok()) CacheStatus(status_or.value());
}

Status HttpTaskClient::FlushSplits() {
  if (superseded_.load()) return Status::OK();
  TaskUpdateRequest update;
  // control_mu_ stays held from the pending_splits_ move through the POST:
  // dropping it in between would let a concurrent NoMoreSplits (recovery
  // replay racing the split thread's flush) post the end-of-splits marker
  // first, and the worker would drop the splits arriving after it.
  std::lock_guard<std::mutex> lock(control_mu_);
  if (!pending_error_.ok()) {
    Status error = pending_error_;
    pending_error_ = Status::OK();
    return error;
  }
  if (pending_splits_.empty()) return Status::OK();
  update.splits = std::move(pending_splits_);
  pending_splits_.clear();
  auto status_or = PostControl(update.ToJson());
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    for (const auto& [node_id, splits] : update.splits) {
      pending_counts_[node_id] -=
          static_cast<int64_t>(splits.size());
    }
  }
  if (!status_or.ok()) {
    // A terminal/raced task swallows updates server-side; only transport
    // and protocol errors surface.
    return status_or.status();
  }
  CacheStatus(status_or.value());
  return Status::OK();
}

double HttpTaskClient::OutputUtilization() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.output_utilization;
}

void HttpTaskClient::SetActiveWriters(int writers) {
  if (superseded_.load()) return;
  TaskUpdateRequest update;
  update.active_writers = writers;
  std::lock_guard<std::mutex> lock(control_mu_);
  auto status_or = PostControl(update.ToJson());
  if (status_or.ok()) CacheStatus(status_or.value());
}

TaskStats HttpTaskClient::CollectStats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.stats;
}

int64_t HttpTaskClient::cpu_nanos() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.cpu_nanos;
}

int64_t HttpTaskClient::peak_user_memory_bytes() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.peak_user_memory_bytes;
}

int64_t HttpTaskClient::rows_out() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.rows_out;
}

int64_t HttpTaskClient::completed_splits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.completed_splits();
}

int64_t HttpTaskClient::progress_age_micros() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cached_.progress_age_micros;
}

bool HttpTaskClient::worker_alive() const {
  if (worker_dead_.load()) return false;
  return options_.liveness == nullptr ||
         options_.liveness->IsAlive(spec_.worker_id);
}

void HttpTaskClient::Abort() {
  if (aborted_.exchange(true)) return;
  HttpRequest request;
  request.method = "DELETE";
  request.path = "/v1/task/" + task_id_ + "?abort=1";
  request.headers[kTraceHeader] = spec_.query_id;
  std::lock_guard<std::mutex> lock(control_mu_);
  // Best-effort (the poll loop converges), but parse a successful response:
  // the DELETE drains the worker recorder's remaining spans (ISSUE 10).
  auto response_or = ControlRoundTrip(request);
  if (response_or.ok()) {
    if (auto status_or = ParseStatusResponse(response_or.value());
        status_or.ok()) {
      CacheStatus(status_or.value());
    }
  }
}

void HttpTaskClient::ReleaseResources() {
  // on_done has fired; retire the worker-side entry (last task of the
  // query also drops its exchange state there). Best-effort: a dead
  // worker's entries die with its process.
  HttpRequest request;
  request.method = "DELETE";
  request.path = "/v1/task/" + task_id_;
  request.headers[kTraceHeader] = spec_.query_id;
  std::lock_guard<std::mutex> lock(control_mu_);
  // The retire DELETE's response carries the final trace flush (the worker
  // drains up to the full backlog cap into it) — parse it so cross-process
  // spans recorded after the last long-poll still reach the merged trace.
  auto response_or = ControlRoundTrip(request);
  if (response_or.ok()) {
    if (auto status_or = ParseStatusResponse(response_or.value());
        status_or.ok()) {
      CacheStatus(status_or.value());
    }
  }
}

void HttpTaskClient::FireDone(Status status) {
  std::call_once(done_once_, [this, &status] {
    if (on_done_) on_done_(std::move(status));
  });
}

void HttpTaskClient::PollLoop() {
  int consecutive_failures = 0;
  std::unique_ptr<HttpConnection> conn;
  int64_t since = 0;
  while (!stop_.load()) {
    if (options_.liveness != nullptr &&
        options_.liveness->SeenHeartbeat(spec_.worker_id) &&
        !options_.liveness->IsAlive(spec_.worker_id)) {
      worker_dead_.store(true);
      worker_lost_.store(true);
      FireDone(Status::IOError(
          "worker " + std::to_string(spec_.worker_id) +
          " lost: missed heartbeats past liveness timeout; task " +
          task_id_ + " presumed dead"));
      return;
    }

    if (conn == nullptr) {
      auto conn_or =
          ConnectToLoopback(options_.task_port, options_.io_timeout_micros);
      if (!conn_or.ok()) {
        if (++consecutive_failures > options_.max_consecutive_failures) {
          if (!aborted_.load()) worker_lost_.store(true);
          FireDone(aborted_.load()
                       ? Status::Cancelled("task " + task_id_ + " aborted")
                       : Status::IOError("worker " +
                                         std::to_string(spec_.worker_id) +
                                         " unreachable: " +
                                         conn_or.status().message()));
          return;
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.retry_backoff_micros));
        continue;
      }
      conn = std::move(conn_or).value();
    }

    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      since = cached_.version;
    }
    HttpRequest request;
    request.method = "GET";
    request.path = "/v1/task/" + task_id_ + "/status?since=" +
                   std::to_string(since) +
                   "&wait=" + std::to_string(options_.poll_wait_micros);
    request.headers[kTraceHeader] = spec_.query_id;

    Status write = conn->WriteRequest(request);
    Result<HttpResponse> response_or =
        write.ok() ? conn->ReadResponse() : Result<HttpResponse>(write);
    if (!response_or.ok()) {
      conn.reset();
      if (++consecutive_failures > options_.max_consecutive_failures) {
        if (!aborted_.load()) worker_lost_.store(true);
        FireDone(aborted_.load()
                     ? Status::Cancelled("task " + task_id_ + " aborted")
                     : Status::IOError(
                           "worker " + std::to_string(spec_.worker_id) +
                           " unreachable polling task " + task_id_ + ": " +
                           response_or.status().message()));
        return;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.retry_backoff_micros));
      continue;
    }
    consecutive_failures = 0;

    const HttpResponse& response = response_or.value();
    if (response.status == 404) {
      // Entry retired underneath us (e.g. an abort raced completion).
      FireDone(aborted_.load()
                   ? Status::Cancelled("task " + task_id_ + " aborted")
                   : Status::IOError("task " + task_id_ +
                                     " disappeared from worker"));
      return;
    }
    auto status_or = ParseStatusResponse(response);
    if (!status_or.ok()) {
      // Protocol-level failure (5xx fault injection, malformed body):
      // retry within the failure budget.
      conn.reset();
      if (++consecutive_failures > options_.max_consecutive_failures) {
        FireDone(status_or.status());
        return;
      }
      continue;
    }
    const TaskStatusResponse& status = status_or.value();
    CacheStatus(status);
    if (IsTerminalTaskState(status.state)) {
      switch (status.state) {
        case TaskState::kFinished:
          FireDone(Status::OK());
          break;
        case TaskState::kCanceled:
        case TaskState::kAborted:
          FireDone(status.error_code == StatusCode::kOk
                       ? Status::Cancelled("task " + task_id_ + " canceled")
                       : status.ToStatus());
          break;
        default:
          FireDone(status.error_code == StatusCode::kOk
                       ? Status::Internal("task " + task_id_ +
                                          " failed without error detail")
                       : status.ToStatus());
          break;
      }
      return;
    }
  }
  // Stopped externally without a terminal state (client destruction during
  // teardown): report cancellation so a pending waiter is not stranded.
  FireDone(Status::Cancelled("task " + task_id_ + " poll stopped"));
}

}  // namespace presto
