#ifndef PRESTOCPP_WORKER_TASK_SERVICE_H_
#define PRESTOCPP_WORKER_TASK_SERVICE_H_

#include <chrono>
#include <memory>
#include <string>

#include "exchange/http/http_server.h"
#include "worker/liveness.h"
#include "worker/task_manager.h"

namespace presto {

/// The worker's task-lifecycle HTTP endpoint (§IV-B):
///
///   POST   /v1/task/{taskId}            create (body has "spec") / update
///   GET    /v1/task/{taskId}/status     ?since=V&wait=micros long-poll
///   DELETE /v1/task/{taskId}[?abort=1]  cancel/abort + retire the entry
///   GET    /v1/info                     node status
///
/// All bodies are JSON. Error mapping: malformed JSON / bad arguments ->
/// 400, unknown task -> 404, shutdown races -> 409, internal errors ->
/// 500. The x-presto-trace header is echoed on every response so
/// cross-process spans can be correlated.
class TaskService {
 public:
  /// `heartbeat` (optional) feeds /v1/info's heartbeat fields.
  TaskService(WorkerTaskManager* manager, int worker_id,
              HeartbeatSender* heartbeat = nullptr);

  Status Start();
  void Stop();
  int port() const { return server_ == nullptr ? 0 : server_->port(); }

  /// Exposed for in-process tests (no socket needed).
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleTask(const HttpRequest& request,
                          const std::string& rest);
  HttpResponse HandleInfo();

  WorkerTaskManager* manager_;
  int worker_id_;
  HeartbeatSender* heartbeat_;
  std::chrono::steady_clock::time_point start_time_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_TASK_SERVICE_H_
