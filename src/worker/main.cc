// presto_worker: out-of-process worker daemon (ISSUE 6).
//
// Hosts a TaskExecutor + WorkerMemory + exchange fabric behind the
// /v1/task and exchange HTTP endpoints, heartbeating to the coordinator.
// Prints "READY task_port=<p> exchange_port=<p> metrics_port=<p>" once
// serving, then runs until stdin reaches EOF (parent died or closed the
// pipe) or SIGTERM.
//
// Usage:
//   presto_worker --worker_id=0 --coordinator_port=12345
//       --tpch_scale=0.05 --threads=2

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/fault_injection.h"
#include "connectors/tpch/tpch_connector.h"
#include "worker/worker_runtime.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  signal(SIGTERM, HandleSignal);
  signal(SIGINT, HandleSignal);
  signal(SIGPIPE, SIG_IGN);

  presto::WorkerRuntimeConfig config;
  config.worker_id = static_cast<int>(FlagInt(argc, argv, "worker_id", 0));
  config.coordinator_port =
      static_cast<int>(FlagInt(argc, argv, "coordinator_port", -1));
  config.heartbeat_interval_micros =
      FlagInt(argc, argv, "heartbeat_interval_micros", 200'000);
  config.executor.threads =
      static_cast<int>(FlagInt(argc, argv, "threads", 2));
  // Driver time slice; tests shrink it so work splits into many quanta
  // (each quantum is a straggler-injection point, ISSUE 9).
  config.executor.quantum_nanos =
      FlagInt(argc, argv, "quantum_nanos", config.executor.quantum_nanos);
  config.memory.per_worker_general =
      FlagInt(argc, argv, "general_memory_bytes",
              config.memory.per_worker_general);

  // The catalog must match the coordinator's: TPC-H is generated
  // deterministically from the scale factor, so both processes agree on
  // table contents without shipping data.
  double tpch_scale = FlagDouble(argc, argv, "tpch_scale", 1.0);
  auto catalog = std::make_shared<presto::Catalog>();
  catalog->Register(
      std::make_shared<presto::TpchConnector>("tpch", tpch_scale));
  catalog->SetDefault("tpch");

  presto::WorkerRuntime runtime(config, catalog);
  presto::Status started = runtime.Start();
  if (!started.ok()) {
    fprintf(stderr, "worker %d failed to start: %s\n", config.worker_id,
            started.ToString().c_str());
    return 1;
  }
  printf("READY task_port=%d exchange_port=%d metrics_port=%d\n",
         runtime.task_port(), runtime.exchange_port(),
         runtime.metrics_port());
  fflush(stdout);

  // Serve until asked to stop: SIGTERM, or stdin EOF (the parent process
  // died or dropped the pipe — keeps CI from leaking daemons). Complete
  // stdin lines are commands:
  //   coordinator_port=N     start heartbeating against a coordinator whose
  //                          ephemeral port only became known after launch
  //   arm_stall_micros=N     straggler injection (ISSUE 9): N>0 arms the
  //                          executor.driver_stall delay point so every
  //                          driver quantum on THIS worker pays N micros;
  //                          N=0 disarms it
  //   arm_progress_freeze=B  B=1 pins this worker's reported task-progress
  //                          counters (worker.status_progress_freeze);
  //                          B=0 disarms
  std::string command_buffer;
  bool eof = false;
  while (!g_stop.load() && !eof) {
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, 200);
    if (ready > 0) {
      char buf[256];
      ssize_t n = read(STDIN_FILENO, buf, sizeof(buf));
      if (n <= 0) {
        eof = true;
      } else {
        command_buffer.append(buf, static_cast<size_t>(n));
        size_t newline;
        while ((newline = command_buffer.find('\n')) != std::string::npos) {
          std::string line = command_buffer.substr(0, newline);
          command_buffer.erase(0, newline + 1);
          constexpr char kPortCommand[] = "coordinator_port=";
          constexpr char kStallCommand[] = "arm_stall_micros=";
          constexpr char kFreezeCommand[] = "arm_progress_freeze=";
          if (line.rfind(kPortCommand, 0) == 0) {
            runtime.StartHeartbeat(
                atoi(line.c_str() + sizeof(kPortCommand) - 1));
          } else if (line.rfind(kStallCommand, 0) == 0) {
            int64_t micros = atoll(line.c_str() + sizeof(kStallCommand) - 1);
            if (micros > 0) {
              presto::FaultSpec spec;
              spec.delay_micros = micros;
              presto::FaultInjection::Instance().Arm("executor.driver_stall",
                                                     spec);
            } else {
              presto::FaultInjection::Instance().Disarm(
                  "executor.driver_stall");
            }
          } else if (line.rfind(kFreezeCommand, 0) == 0) {
            if (atoi(line.c_str() + sizeof(kFreezeCommand) - 1) != 0) {
              presto::FaultSpec spec;
              spec.error = presto::Status::Internal("progress frozen");
              presto::FaultInjection::Instance().Arm(
                  "worker.status_progress_freeze", spec);
            } else {
              presto::FaultInjection::Instance().Disarm(
                  "worker.status_progress_freeze");
            }
          }
        }
      }
    }
  }
  runtime.Stop();
  return 0;
}
