#ifndef PRESTOCPP_WORKER_LIVENESS_H_
#define PRESTOCPP_WORKER_LIVENESS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "stats/metrics_registry.h"

namespace presto {

/// Coordinator-side failure detector (ISSUE 6/7): workers POST periodic
/// heartbeats; a worker that has heartbeated at least once and then goes
/// silent past the timeout is declared dead. A *registered* worker that
/// never heartbeated is granted a first-heartbeat grace period measured
/// from max(its registration, the tracker's activation — the first
/// heartbeat from any worker): once heartbeats are demonstrably flowing,
/// a still-silent worker is dead, closing the "killed before the first
/// beat = immortal" hole. Unregistered workers (in-process clusters,
/// tests that never start heartbeat senders) stay fully passive.
class WorkerLivenessTracker {
 public:
  explicit WorkerLivenessTracker(int64_t timeout_micros = 2'000'000)
      : timeout_micros_(timeout_micros) {}
  ~WorkerLivenessTracker();

  void set_timeout_micros(int64_t micros) { timeout_micros_ = micros; }
  int64_t timeout_micros() const { return timeout_micros_; }
  /// Grace before a registered, never-heartbeated worker is declared dead
  /// (only once the tracker is activated by some worker's first beat).
  /// 0 means "use timeout_micros".
  void set_first_beat_grace_micros(int64_t micros) {
    first_beat_grace_micros_ = micros;
  }

  /// Declares that `worker_id` is expected to heartbeat, starting its
  /// first-heartbeat grace clock. Idempotent (first call wins).
  void RegisterWorker(int worker_id);

  /// Records a heartbeat from `worker_id` (rtt as reported by the worker:
  /// the round trip of its previous heartbeat POST).
  void Heartbeat(int worker_id, int64_t rtt_micros);

  /// Observability-port advertisement (ISSUE 10): heartbeat bodies carry
  /// the worker's /v1/metrics port so the coordinator can federate worker
  /// metrics without static configuration.
  void SetMetricsPort(int worker_id, int port);
  /// -1 when the worker never advertised one.
  int metrics_port(int worker_id) const;
  /// Last heartbeat-reported round trip of this worker, micros; -1 before
  /// the first beat carrying one. Feeds the per-worker RTT gauges of
  /// /v1/cluster/metrics.
  int64_t last_rtt_micros(int worker_id) const;

  bool SeenHeartbeat(int worker_id) const;
  /// False for workers that heartbeated and then went silent past the
  /// timeout, and for registered workers that never heartbeated within the
  /// grace period of an activated tracker.
  bool IsAlive(int worker_id) const;

  /// Workers among [0, total) currently considered alive.
  int64_t AliveCount(int total_workers) const;

  int64_t heartbeats_received() const { return heartbeats_received_.load(); }

  /// Heartbeat round-trip latency histogram (micros), optional.
  void set_rtt_histogram(Histogram* histogram) { rtt_histogram_ = histogram; }
  /// Null until set_rtt_histogram; speculation (ISSUE 9) reads the mean
  /// RTT to scale its minimum-stall threshold on slow control planes.
  Histogram* rtt_histogram() const { return rtt_histogram_; }

  /// Death notifications (ISSUE 7): `fn(worker_id)` fires once per
  /// alive->dead transition (a later heartbeat revives the worker and
  /// re-arms the notification). Callbacks run on an internal monitor
  /// thread, started lazily with the first listener, without any tracker
  /// lock held. Returns a token for RemoveDeathListener, which blocks
  /// until any in-flight callback has returned.
  int AddDeathListener(std::function<void(int)> fn);
  void RemoveDeathListener(int token);

 private:
  using Clock = std::chrono::steady_clock;

  bool IsAliveLocked(int worker_id, Clock::time_point now) const;
  void MonitorLoop();

  std::atomic<int64_t> timeout_micros_;
  std::atomic<int64_t> first_beat_grace_micros_{0};
  mutable std::mutex mu_;
  std::map<int, Clock::time_point> last_beat_;
  std::map<int, Clock::time_point> registered_;
  std::map<int, int> metrics_ports_;       // heartbeat-advertised (ISSUE 10)
  std::map<int, int64_t> last_rtt_micros_;  // last reported round trip
  /// Set by the first heartbeat from any worker; grace clocks only run
  /// against an activated tracker so heartbeat-less setups never expire.
  std::optional<Clock::time_point> activated_at_;
  /// Workers whose death has been reported and not yet revived.
  std::map<int, bool> death_fired_;
  std::atomic<int64_t> heartbeats_received_{0};
  Histogram* rtt_histogram_ = nullptr;

  /// Listener registry + monitor thread. listener_mu_ is held while
  /// invoking callbacks, so RemoveDeathListener synchronizes with them;
  /// it is never taken while mu_ is held with callbacks pending.
  std::mutex listener_mu_;
  std::condition_variable listener_cv_;
  std::map<int, std::function<void(int)>> listeners_;
  int next_listener_token_ = 0;
  bool monitor_stop_ = false;
  std::thread monitor_;
};

/// Worker-side heartbeat loop: POSTs /v1/heartbeat to the coordinator's
/// observability port every `interval_micros`, reporting the round-trip
/// time of the previous beat. Transport errors are counted and retried on
/// the next tick (the coordinator decides liveness, not the worker).
class HeartbeatSender {
 public:
  HeartbeatSender(int coordinator_port, int worker_id,
                  int64_t interval_micros = 200'000);
  ~HeartbeatSender();

  HeartbeatSender(const HeartbeatSender&) = delete;
  HeartbeatSender& operator=(const HeartbeatSender&) = delete;

  void Start();
  void Stop();

  /// Retargets the coordinator (late binding: a daemon learns the
  /// coordinator's port over stdin after both processes are up). Only
  /// valid while stopped.
  void set_coordinator_port(int port) { coordinator_port_ = port; }
  int coordinator_port() const { return coordinator_port_; }

  /// Advertises the worker's observability port in every heartbeat body
  /// (ISSUE 10). Only valid while stopped; <= 0 omits the field.
  void set_metrics_port(int port) { metrics_port_ = port; }

  int64_t sent() const { return sent_.load(); }
  int64_t failed() const { return failed_.load(); }
  int64_t last_rtt_micros() const { return last_rtt_micros_.load(); }

 private:
  void Loop();
  bool SendOnce();

  int coordinator_port_;
  const int worker_id_;
  const int64_t interval_micros_;
  int metrics_port_ = -1;
  std::atomic<int64_t> sent_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> last_rtt_micros_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_LIVENESS_H_
