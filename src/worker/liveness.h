#ifndef PRESTOCPP_WORKER_LIVENESS_H_
#define PRESTOCPP_WORKER_LIVENESS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "stats/metrics_registry.h"

namespace presto {

/// Coordinator-side failure detector (ISSUE 6): workers POST periodic
/// heartbeats; a worker that has heartbeated at least once and then goes
/// silent past the timeout is declared dead. Workers that never heartbeated
/// are treated as alive — in-process clusters (and tests that never start
/// heartbeat senders) stay fully passive.
class WorkerLivenessTracker {
 public:
  explicit WorkerLivenessTracker(int64_t timeout_micros = 2'000'000)
      : timeout_micros_(timeout_micros) {}

  void set_timeout_micros(int64_t micros) { timeout_micros_ = micros; }
  int64_t timeout_micros() const { return timeout_micros_; }

  /// Records a heartbeat from `worker_id` (rtt as reported by the worker:
  /// the round trip of its previous heartbeat POST).
  void Heartbeat(int worker_id, int64_t rtt_micros);

  bool SeenHeartbeat(int worker_id) const;
  /// False only for workers that heartbeated and then went silent past the
  /// timeout.
  bool IsAlive(int worker_id) const;

  /// Workers among [0, total) currently considered alive.
  int64_t AliveCount(int total_workers) const;

  int64_t heartbeats_received() const { return heartbeats_received_.load(); }

  /// Heartbeat round-trip latency histogram (micros), optional.
  void set_rtt_histogram(Histogram* histogram) { rtt_histogram_ = histogram; }

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<int64_t> timeout_micros_;
  mutable std::mutex mu_;
  std::map<int, Clock::time_point> last_beat_;
  std::atomic<int64_t> heartbeats_received_{0};
  Histogram* rtt_histogram_ = nullptr;
};

/// Worker-side heartbeat loop: POSTs /v1/heartbeat to the coordinator's
/// observability port every `interval_micros`, reporting the round-trip
/// time of the previous beat. Transport errors are counted and retried on
/// the next tick (the coordinator decides liveness, not the worker).
class HeartbeatSender {
 public:
  HeartbeatSender(int coordinator_port, int worker_id,
                  int64_t interval_micros = 200'000);
  ~HeartbeatSender();

  HeartbeatSender(const HeartbeatSender&) = delete;
  HeartbeatSender& operator=(const HeartbeatSender&) = delete;

  void Start();
  void Stop();

  /// Retargets the coordinator (late binding: a daemon learns the
  /// coordinator's port over stdin after both processes are up). Only
  /// valid while stopped.
  void set_coordinator_port(int port) { coordinator_port_ = port; }
  int coordinator_port() const { return coordinator_port_; }

  int64_t sent() const { return sent_.load(); }
  int64_t failed() const { return failed_.load(); }
  int64_t last_rtt_micros() const { return last_rtt_micros_.load(); }

 private:
  void Loop();
  bool SendOnce();

  int coordinator_port_;
  const int worker_id_;
  const int64_t interval_micros_;
  std::atomic<int64_t> sent_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> last_rtt_micros_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_LIVENESS_H_
