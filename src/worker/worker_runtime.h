#ifndef PRESTOCPP_WORKER_WORKER_RUNTIME_H_
#define PRESTOCPP_WORKER_WORKER_RUNTIME_H_

#include <memory>

#include "connector/connector.h"
#include "exchange/http/exchange_http.h"
#include "memory/memory.h"
#include "schedule/task_executor.h"
#include "stats/metrics_registry.h"
#include "worker/liveness.h"
#include "worker/metrics_service.h"
#include "worker/task_manager.h"
#include "worker/task_service.h"

namespace presto {

struct WorkerRuntimeConfig {
  int worker_id = 0;
  ExecutorConfig executor;
  MemoryConfig memory;
  /// transport is forced to kHttp: a daemonized worker always serves its
  /// output buffers over sockets.
  NetworkConfig network;
  /// Observability port of the coordinator to heartbeat against; < 0
  /// disables the heartbeat loop (protocol unit tests).
  int coordinator_port = -1;
  int64_t heartbeat_interval_micros = 200'000;
};

/// Everything one `presto_worker` process hosts: memory pools, the MLFQ
/// executor, the exchange fabric with its HTTP endpoint, the task manager
/// behind the /v1/task service, and the coordinator heartbeat. Also used
/// in-process by protocol tests (it is just objects + two loopback ports).
///
/// Teardown order (the ISSUE 6 ordering fix): Stop() first quiesces the
/// task manager (kills queries, wakes long-polls, waits for the executor
/// to drain), then stops the HTTP services; only afterwards do members
/// destruct (services before manager/executor/memory — reverse member
/// order). A status poll arriving mid-shutdown therefore sees a fast
/// response or a dropped connection, never a use-after-free.
class WorkerRuntime {
 public:
  WorkerRuntime(WorkerRuntimeConfig config, std::shared_ptr<const Catalog> catalog);
  ~WorkerRuntime();

  WorkerRuntime(const WorkerRuntime&) = delete;
  WorkerRuntime& operator=(const WorkerRuntime&) = delete;

  /// Starts the exchange + task HTTP services (and the heartbeat loop
  /// when a coordinator port was configured).
  Status Start();

  /// Graceful shutdown; idempotent.
  void Stop();

  /// Starts (or retargets) the heartbeat loop after launch — for the
  /// bootstrap order where the coordinator's observability port becomes
  /// known only once both processes are up (delivered over stdin).
  void StartHeartbeat(int coordinator_port);

  int task_port() const { return task_service_->port(); }
  int exchange_port() const { return exchange_service_->port(); }
  /// /v1/metrics + /v1/status observability endpoint (ISSUE 10).
  int metrics_port() const { return metrics_service_->port(); }

  WorkerTaskManager& task_manager() { return *manager_; }
  TaskService& task_service() { return *task_service_; }
  WorkerMemory& memory() { return *memory_; }
  TaskExecutor& executor() { return *executor_; }
  ExchangeManager& exchange() { return *exchange_; }
  MetricsRegistry& metrics() { return metrics_; }
  WorkerMetricsService& metrics_service() { return *metrics_service_; }

 private:
  void RegisterWorkerGauges();

  WorkerRuntimeConfig config_;
  std::shared_ptr<const Catalog> catalog_;
  /// Worker-local registry behind /v1/metrics. Gauge callbacks capture raw
  /// component pointers; that is safe because Stop() halts the metrics
  /// service (joining handler threads) before any component destructs.
  MetricsRegistry metrics_;
  std::unique_ptr<WorkerMemory> memory_;
  std::unique_ptr<ExchangeManager> exchange_;
  std::unique_ptr<TaskExecutor> executor_;
  std::unique_ptr<WorkerTaskManager> manager_;
  std::unique_ptr<ExchangeHttpService> exchange_service_;
  std::unique_ptr<HeartbeatSender> heartbeat_;
  std::unique_ptr<TaskService> task_service_;
  std::unique_ptr<WorkerMetricsService> metrics_service_;
  bool stopped_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_WORKER_RUNTIME_H_
