#include "worker/metrics_service.h"

#include <utility>

#include "common/json.h"

namespace presto {

HttpResponse WorkerMetricsService::HandleStatus() const {
  Json status = Json::Object();
  status.Set("workerId", Json::Int(sources_.worker_id));
  status.Set("state", Json::Str(sources_.manager != nullptr &&
                                        sources_.manager->shutting_down()
                                    ? "SHUTTING_DOWN"
                                    : "ACTIVE"));
  status.Set("uptimeMillis",
             Json::Int(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started_)
                           .count()));
  if (sources_.manager != nullptr) {
    status.Set("activeTasks", Json::Int(sources_.manager->active_tasks()));
  }
  if (sources_.executor != nullptr) {
    status.Set("runningDrivers",
               Json::Int(sources_.executor->running_drivers()));
    status.Set("parkedDrivers",
               Json::Int(sources_.executor->parked_drivers()));
    Json depths = Json::Array();
    for (int level = 0; level < 5; ++level) {
      depths.Append(Json::Int(sources_.executor->queue_depth(level)));
    }
    status.Set("queueDepths", std::move(depths));
    status.Set("busyNanos", Json::Int(sources_.executor->busy_nanos()));
  }
  if (sources_.memory != nullptr) {
    Json memory = Json::Object();
    memory.Set("generalUsedBytes",
               Json::Int(sources_.memory->general_used()));
    memory.Set("reservedUsedBytes",
               Json::Int(sources_.memory->reserved_used()));
    memory.Set("peakGeneralUsedBytes",
               Json::Int(sources_.memory->peak_general_used()));
    memory.Set("revocations", Json::Int(sources_.memory->revocations()));
    status.Set("memory", std::move(memory));
  }
  if (sources_.exchange != nullptr) {
    status.Set("bufferedBytes",
               Json::Int(sources_.exchange->TotalBufferedBytes()));
    status.Set("retainedBytes",
               Json::Int(sources_.exchange->TotalRetainedBytes()));
  }
  if (sources_.heartbeat != nullptr) {
    status.Set("heartbeatsSent", Json::Int(sources_.heartbeat->sent()));
    status.Set("heartbeatsFailed", Json::Int(sources_.heartbeat->failed()));
    status.Set("lastRttMicros",
               Json::Int(sources_.heartbeat->last_rtt_micros()));
  }
  HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = status.Serialize();
  return response;
}

HttpResponse WorkerMetricsService::Handle(const HttpRequest& request) {
  auto error = [](int status, const std::string& reason,
                  const std::string& message) {
    HttpResponse response;
    response.status = status;
    response.reason = reason;
    response.headers["content-type"] = "text/plain";
    response.body = message;
    return response;
  };
  if (request.method != "GET") {
    return error(405, "Method Not Allowed", "only GET is supported");
  }
  if (request.path == "/v1/metrics") {
    HttpResponse response;
    response.headers["content-type"] = "text/plain; version=0.0.4";
    response.body = sources_.metrics != nullptr
                        ? sources_.metrics->RenderText()
                        : std::string();
    return response;
  }
  if (request.path == "/v1/status") {
    return HandleStatus();
  }
  return error(404, "Not Found", "unknown path: " + request.path);
}

}  // namespace presto
