#ifndef PRESTOCPP_WORKER_TASK_MANAGER_H_
#define PRESTOCPP_WORKER_TASK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exchange/exchange.h"
#include "exec/task.h"
#include "schedule/task_executor.h"
#include "memory/memory.h"
#include "worker/task_protocol.h"

namespace presto {

struct WorkerTaskManagerOptions {
  WorkerMemory* worker_memory = nullptr;
  const MemoryConfig* memory_config = nullptr;
  TaskExecutor* executor = nullptr;
  ExchangeManager* exchange = nullptr;
  const Catalog* catalog = nullptr;
  int worker_id = 0;
};

/// Worker-side task registry behind the /v1/task endpoints: materializes
/// TaskExecs from wire-format create requests, feeds them splits, serves
/// long-poll status, and owns per-query memory contexts shared by tasks of
/// the same query on this worker.
///
/// Lifecycle of an entry: Create -> RUNNING on the executor -> terminal
/// state when on_done fires (drivers released immediately; final stats
/// cached). Entries are removed by DELETE — immediately when already
/// terminal, else when the canceled task drains — and when the last task
/// of a query goes away its exchange state is dropped (RemoveQuery).
class WorkerTaskManager {
 public:
  explicit WorkerTaskManager(WorkerTaskManagerOptions options);
  ~WorkerTaskManager();

  WorkerTaskManager(const WorkerTaskManager&) = delete;
  WorkerTaskManager& operator=(const WorkerTaskManager&) = delete;

  /// POST /v1/task/{taskId}. A body with a "spec" member is a create
  /// (idempotent: re-creating an existing task returns its current
  /// status); otherwise it is a split/writer update.
  Result<TaskStatusResponse> CreateOrUpdate(const std::string& task_id,
                                            const Json& body);

  /// GET /v1/task/{taskId}/status?since=V&wait=micros. Blocks until the
  /// task's version exceeds `since` or the wait expires; the response
  /// always carries live split/memory/cpu readings, plus up to
  /// kMaxTraceEventsPerStatus drained trace spans when tracing (ISSUE 10).
  Result<TaskStatusResponse> GetStatus(const std::string& task_id,
                                       int64_t since_version,
                                       int64_t wait_micros);

  /// Per-query worker-side trace cap: bounds the backlog of spans awaiting
  /// shipment to the coordinator; overflow increments the recorder's
  /// dropped counter (shipped in every traced status response).
  static constexpr int64_t kWorkerTraceMaxEvents = 16'384;
  /// Spans drained into one regular status response; a DELETE response
  /// (task retire) drains up to the full cap so nothing pending is lost.
  static constexpr size_t kMaxTraceEventsPerStatus = 512;

  /// DELETE /v1/task/{taskId}[?abort=1]: cancels a running task via its
  /// task-scoped kill switch (sibling tasks of the same query on this
  /// worker keep running — needed when recovery aborts one slot, ISSUE 7)
  /// and schedules the entry for removal. Responds immediately with the
  /// current status; the caller polls to terminal.
  Result<TaskStatusResponse> Delete(const std::string& task_id, bool abort);

  int64_t active_tasks() const;
  bool shutting_down() const;

  /// The worker's exchange manager (leak gauges for /v1/info).
  ExchangeManager* exchange() const { return options_.exchange; }

  /// Kills every query, wakes all long-polls, waits for all tasks to
  /// drain, and drops all entries. Called before the HTTP services stop
  /// (ISSUE 6 teardown-ordering fix) so in-flight polls return promptly.
  void Shutdown();

 private:
  struct TaskEntry;

  /// Per-query state shared by this worker's tasks of one query: the
  /// memory context, a live-task refcount, and (when the coordinator asked
  /// for tracing) the worker-side span recorder.
  struct QuerySlot {
    std::shared_ptr<QueryMemory> memory;
    int refs = 0;
    std::shared_ptr<TraceRecorder> trace;
  };

  TaskStatusResponse BuildStatusLocked(
      TaskEntry& entry, size_t trace_budget = kMaxTraceEventsPerStatus);
  Result<std::shared_ptr<TaskEntry>> FindLocked(const std::string& task_id);
  Status ApplyUpdateLocked(TaskEntry& entry, const TaskUpdateRequest& update);
  void OnTaskDone(const std::shared_ptr<TaskEntry>& entry, Status status);
  void RemoveEntryLocked(const std::shared_ptr<TaskEntry>& entry);
  void ReleaseQueryRefLocked(const std::string& query_id);

  WorkerTaskManagerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::map<std::string, std::shared_ptr<TaskEntry>> tasks_;
  /// Entries detached by a higher-generation create, still draining on the
  /// executor (their callbacks release them).
  std::vector<std::shared_ptr<TaskEntry>> retired_;
  std::map<std::string, QuerySlot> queries_;
  int64_t running_tasks_ = 0;
  bool shutting_down_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_WORKER_TASK_MANAGER_H_
