#include "fragment/fragmenter.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace presto {

namespace {

// Output partitioning property of a subtree, used for shuffle elision.
// Each partitioning key carries a set of equivalent output columns (an
// equi-join makes both sides' key columns interchangeable): data is
// partitioned by the key if grouping/joining uses ANY alias of it.
struct Property {
  enum class Kind : uint8_t { kArbitrary, kHashed, kSingle, kColocated };
  Kind kind = Kind::kArbitrary;
  std::vector<std::vector<int>> keys;  // alias sets of output column indices
  int bucket_count = 0;
};

struct WithProperty {
  PlanNodePtr node;
  Property property;
};

struct Ctx {
  int next_id = 1000000;
  int NewId() { return next_id++; }
};

PlanNodePtr MakeRemote(ExchangeKind kind, std::vector<int> keys,
                       PlanNodePtr child, Ctx* ctx) {
  return std::make_shared<ExchangeNode>(ctx->NewId(), kind,
                                        ExchangeScope::kRemote,
                                        std::move(keys), std::move(child));
}

// True if every partitioning key has at least one alias in `columns`.
bool KeysCoveredBy(const std::vector<std::vector<int>>& keys,
                   const std::vector<int>& columns) {
  for (const auto& aliases : keys) {
    bool found = false;
    for (int alias : aliases) {
      if (std::find(columns.begin(), columns.end(), alias) !=
          columns.end()) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// True if the property keys align positionally with the exchange keys
// (required for the two sides of a partitioned join to line up).
bool KeysAlign(const std::vector<std::vector<int>>& keys,
               const std::vector<int>& exchange_keys) {
  if (keys.size() != exchange_keys.size()) return false;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (std::find(keys[i].begin(), keys[i].end(), exchange_keys[i]) ==
        keys[i].end()) {
      return false;
    }
  }
  return true;
}

// Splits a kSingle AggregateNode into partial (returned) + final above an
// exchange; `exchange_kind` is kGather (global aggregates) or kRepartition.
PlanNodePtr SplitAggregate(const AggregateNode& agg, PlanNodePtr child,
                           Ctx* ctx) {
  size_t num_keys = agg.group_keys().size();
  // Partial: same keys, intermediate output types.
  RowSchema partial_schema;
  for (size_t k = 0; k < num_keys; ++k) {
    partial_schema.Add(agg.output().at(k).name, agg.output().at(k).type);
  }
  for (const auto& call : agg.aggregates()) {
    partial_schema.Add(call.output_name, call.signature.intermediate_type);
  }
  auto partial = std::make_shared<AggregateNode>(
      ctx->NewId(), AggregationStep::kPartial, agg.group_keys(),
      agg.aggregates(), partial_schema, std::move(child));

  std::vector<int> exchange_keys;
  for (size_t k = 0; k < num_keys; ++k) {
    exchange_keys.push_back(static_cast<int>(k));
  }
  PlanNodePtr exchange =
      num_keys == 0
          ? MakeRemote(ExchangeKind::kGather, {}, partial, ctx)
          : MakeRemote(ExchangeKind::kRepartition, exchange_keys, partial,
                       ctx);

  // Final: keys are the first columns of the partial output; each aggregate
  // merges the corresponding intermediate column.
  std::vector<int> final_keys;
  for (size_t k = 0; k < num_keys; ++k) {
    final_keys.push_back(static_cast<int>(k));
  }
  std::vector<AggregateCall> final_calls;
  for (size_t a = 0; a < agg.aggregates().size(); ++a) {
    AggregateCall call = agg.aggregates()[a];
    call.arg_column = static_cast<int>(num_keys + a);
    final_calls.push_back(std::move(call));
  }
  return std::make_shared<AggregateNode>(
      ctx->NewId(), AggregationStep::kFinal, std::move(final_keys),
      std::move(final_calls), agg.output(), std::move(exchange));
}

class ExchangePlanner {
 public:
  explicit ExchangePlanner(Ctx* ctx) : ctx_(ctx) {}

  WithProperty Add(const PlanNodePtr& node) {
    switch (node->kind()) {
      case PlanNodeKind::kTableScan: {
        // Bucketed layouts give a co-located (bucket-aligned) property; the
        // optimizer encodes the choice by setting layout_id, and connectors
        // name bucketed layouts "bucketed:<column>:<count>". The property's
        // keys are the bucket column's positions in the scan output — data
        // is only guaranteed task-local per those keys.
        const auto& scan = static_cast<const TableScanNode&>(*node);
        Property prop;
        prop.kind = Property::Kind::kArbitrary;
        if (!scan.layout_id().empty()) {
          prop.kind = Property::Kind::kColocated;
          const std::string& id = scan.layout_id();
          size_t first = id.find(':');
          size_t last = id.rfind(':');
          if (first != std::string::npos && last != std::string::npos &&
              last > first) {
            std::string column = id.substr(first + 1, last - first - 1);
            auto idx = scan.output().IndexOf(column);
            if (idx.has_value()) {
              prop.keys.push_back({static_cast<int>(*idx)});
            }
          }
        }
        return {node, prop};
      }
      case PlanNodeKind::kValues:
        return {node, {Property::Kind::kSingle, {}, 0}};
      case PlanNodeKind::kFilter: {
        const auto& filter = static_cast<const FilterNode&>(*node);
        WithProperty child = Add(node->child());
        return {std::make_shared<FilterNode>(ctx_->NewId(),
                                             filter.predicate(), child.node),
                child.property};
      }
      case PlanNodeKind::kProject: {
        const auto& project = static_cast<const ProjectNode&>(*node);
        WithProperty child = Add(node->child());
        Property prop = child.property;
        if (prop.kind == Property::Kind::kHashed ||
            prop.kind == Property::Kind::kColocated) {
          // Remap partitioning keys through pass-through column refs; an
          // alias survives if any projection passes it through.
          std::vector<std::vector<int>> remapped;
          bool ok = true;
          for (const auto& aliases : prop.keys) {
            std::vector<int> out;
            for (int key : aliases) {
              for (size_t i = 0; i < project.expressions().size(); ++i) {
                const auto& e = project.expressions()[i];
                if (e->kind() == ExprKind::kColumnRef &&
                    e->column() == key) {
                  out.push_back(static_cast<int>(i));
                }
              }
            }
            if (out.empty()) {
              ok = false;
              break;
            }
            remapped.push_back(std::move(out));
          }
          if (ok) {
            prop.keys = std::move(remapped);
          } else if (prop.kind == Property::Kind::kHashed) {
            prop = {Property::Kind::kArbitrary, {}, 0};
          } else {
            // Still bucket-aligned physically, but with unknown keys no
            // further shuffle elision is safe.
            prop.keys.clear();
          }
        }
        return {std::make_shared<ProjectNode>(ctx_->NewId(),
                                              project.expressions(),
                                              project.output(), child.node),
                prop};
      }
      case PlanNodeKind::kAggregate: {
        const auto& agg = static_cast<const AggregateNode&>(*node);
        WithProperty child = Add(node->child());
        PRESTO_CHECK(agg.step() == AggregationStep::kSingle);
        if (agg.group_keys().empty()) {
          if (child.property.kind == Property::Kind::kSingle) {
            // Already on one task: aggregate in place.
            return {std::make_shared<AggregateNode>(
                        ctx_->NewId(), AggregationStep::kSingle,
                        agg.group_keys(), agg.aggregates(), agg.output(),
                        child.node),
                    {Property::Kind::kSingle, {}, 0}};
          }
          return {SplitAggregate(agg, child.node, ctx_),
                  {Property::Kind::kSingle, {}, 0}};
        }
        // Shuffle elision: input already partitioned on a (non-empty)
        // subset of the group keys => every group is task-local. A
        // co-located (bucketed) input only covers its bucket columns.
        bool elide =
            child.property.kind == Property::Kind::kSingle ||
            ((child.property.kind == Property::Kind::kHashed ||
              child.property.kind == Property::Kind::kColocated) &&
             !child.property.keys.empty() &&
             KeysCoveredBy(child.property.keys, agg.group_keys()));
        if (elide) {
          Property prop = child.property;
          if (prop.kind == Property::Kind::kHashed ||
              prop.kind == Property::Kind::kColocated) {
            // Output keys: positions of the partitioning keys among the
            // group-key outputs.
            std::vector<std::vector<int>> out_keys;
            for (const auto& aliases : prop.keys) {
              std::vector<int> out;
              for (int key : aliases) {
                for (size_t k = 0; k < agg.group_keys().size(); ++k) {
                  if (agg.group_keys()[k] == key) {
                    out.push_back(static_cast<int>(k));
                  }
                }
              }
              if (!out.empty()) out_keys.push_back(std::move(out));
            }
            prop.keys = std::move(out_keys);
          }
          return {std::make_shared<AggregateNode>(
                      ctx_->NewId(), AggregationStep::kSingle,
                      agg.group_keys(), agg.aggregates(), agg.output(),
                      child.node),
                  prop};
        }
        PlanNodePtr split = SplitAggregate(agg, child.node, ctx_);
        Property prop;
        prop.kind = Property::Kind::kHashed;
        for (size_t k = 0; k < agg.group_keys().size(); ++k) {
          prop.keys.push_back({static_cast<int>(k)});
        }
        return {std::move(split), prop};
      }
      case PlanNodeKind::kJoin: {
        const auto& join = static_cast<const JoinNode&>(*node);
        WithProperty left = Add(join.child(0));
        WithProperty right = Add(join.child(1));
        PlanNodePtr lnode = left.node;
        PlanNodePtr rnode = right.node;
        Property prop;
        JoinDistribution dist = join.distribution();
        // Cross joins and unset distributions default to broadcasting the
        // build side.
        if (dist == JoinDistribution::kUnset) {
          dist = join.left_keys().empty() ? JoinDistribution::kBroadcast
                                          : JoinDistribution::kPartitioned;
        }
        switch (dist) {
          case JoinDistribution::kColocated: {
            // Connector-aligned buckets: no exchange on either side. The
            // join makes the right-side key columns aliases of the left's.
            prop = left.property;
            int left_width = static_cast<int>(join.child(0)->output().size());
            for (auto& aliases : prop.keys) {
              std::vector<int> extra;
              for (int alias : aliases) {
                for (size_t i = 0; i < join.left_keys().size(); ++i) {
                  if (join.left_keys()[i] == alias) {
                    extra.push_back(left_width + join.right_keys()[i]);
                  }
                }
              }
              aliases.insert(aliases.end(), extra.begin(), extra.end());
            }
            break;
          }
          case JoinDistribution::kBroadcast:
            rnode = MakeRemote(ExchangeKind::kBroadcast, {}, rnode, ctx_);
            prop = left.property;
            break;
          case JoinDistribution::kPartitioned: {
            bool left_ok = left.property.kind == Property::Kind::kHashed &&
                           KeysAlign(left.property.keys, join.left_keys());
            bool right_ok = right.property.kind == Property::Kind::kHashed &&
                            KeysAlign(right.property.keys,
                                      join.right_keys());
            if (!left_ok) {
              lnode = MakeRemote(ExchangeKind::kRepartition,
                                 join.left_keys(), lnode, ctx_);
            }
            if (!right_ok) {
              rnode = MakeRemote(ExchangeKind::kRepartition,
                                 join.right_keys(), rnode, ctx_);
            }
            prop.kind = Property::Kind::kHashed;
            // Both sides' key columns are equivalent in the join output.
            {
              int left_width =
                  static_cast<int>(join.child(0)->output().size());
              for (size_t i = 0; i < join.left_keys().size(); ++i) {
                prop.keys.push_back({join.left_keys()[i],
                                     left_width + join.right_keys()[i]});
              }
            }
            break;
          }
          case JoinDistribution::kUnset:
            PRESTO_UNREACHABLE();
        }
        return {std::make_shared<JoinNode>(
                    ctx_->NewId(), join.join_type(), join.left_keys(),
                    join.right_keys(), join.residual_filter(), dist,
                    join.output(), std::move(lnode), std::move(rnode)),
                prop};
      }
      case PlanNodeKind::kSort: {
        const auto& sort = static_cast<const SortNode&>(*node);
        WithProperty child = Add(node->child());
        PlanNodePtr input = child.node;
        if (child.property.kind != Property::Kind::kSingle) {
          input = MakeRemote(ExchangeKind::kGather, {}, input, ctx_);
        }
        return {std::make_shared<SortNode>(ctx_->NewId(), sort.keys(),
                                           std::move(input)),
                {Property::Kind::kSingle, {}, 0}};
      }
      case PlanNodeKind::kTopN: {
        const auto& topn = static_cast<const TopNNode&>(*node);
        WithProperty child = Add(node->child());
        if (child.property.kind == Property::Kind::kSingle) {
          return {std::make_shared<TopNNode>(ctx_->NewId(), topn.keys(),
                                             topn.n(), false, child.node),
                  {Property::Kind::kSingle, {}, 0}};
        }
        auto partial = std::make_shared<TopNNode>(
            ctx_->NewId(), topn.keys(), topn.n(), /*partial=*/true,
            child.node);
        PlanNodePtr gather =
            MakeRemote(ExchangeKind::kGather, {}, partial, ctx_);
        return {std::make_shared<TopNNode>(ctx_->NewId(), topn.keys(),
                                           topn.n(), false,
                                           std::move(gather)),
                {Property::Kind::kSingle, {}, 0}};
      }
      case PlanNodeKind::kLimit: {
        const auto& limit = static_cast<const LimitNode&>(*node);
        WithProperty child = Add(node->child());
        if (child.property.kind == Property::Kind::kSingle) {
          return {std::make_shared<LimitNode>(ctx_->NewId(), limit.n(), false,
                                              child.node),
                  {Property::Kind::kSingle, {}, 0}};
        }
        auto partial = std::make_shared<LimitNode>(ctx_->NewId(), limit.n(),
                                                   /*partial=*/true,
                                                   child.node);
        PlanNodePtr gather =
            MakeRemote(ExchangeKind::kGather, {}, partial, ctx_);
        return {std::make_shared<LimitNode>(ctx_->NewId(), limit.n(), false,
                                            std::move(gather)),
                {Property::Kind::kSingle, {}, 0}};
      }
      case PlanNodeKind::kWindow: {
        const auto& window = static_cast<const WindowNode&>(*node);
        WithProperty child = Add(node->child());
        PlanNodePtr input = child.node;
        Property prop;
        if (window.partition_keys().empty()) {
          if (child.property.kind != Property::Kind::kSingle) {
            input = MakeRemote(ExchangeKind::kGather, {}, input, ctx_);
          }
          prop = {Property::Kind::kSingle, {}, 0};
        } else {
          bool aligned = child.property.kind == Property::Kind::kSingle ||
                         ((child.property.kind == Property::Kind::kHashed ||
                           child.property.kind ==
                               Property::Kind::kColocated) &&
                          !child.property.keys.empty() &&
                          KeysCoveredBy(child.property.keys,
                                        window.partition_keys()));
          if (!aligned) {
            input = MakeRemote(ExchangeKind::kRepartition,
                               window.partition_keys(), input, ctx_);
            prop.kind = Property::Kind::kHashed;
            for (int k : window.partition_keys()) prop.keys.push_back({k});
          } else {
            prop = child.property;
          }
        }
        return {std::make_shared<WindowNode>(
                    ctx_->NewId(), window.partition_keys(),
                    window.order_keys(), window.functions(), window.output(),
                    std::move(input)),
                prop};
      }
      case PlanNodeKind::kUnionAll: {
        // Each branch is gathered into a single-task union stage.
        std::vector<PlanNodePtr> children;
        for (const auto& c : node->children()) {
          WithProperty child = Add(c);
          PlanNodePtr input = child.node;
          if (child.property.kind != Property::Kind::kSingle) {
            input = MakeRemote(ExchangeKind::kGather, {}, input, ctx_);
          }
          children.push_back(std::move(input));
        }
        return {std::make_shared<UnionAllNode>(ctx_->NewId(), node->output(),
                                               std::move(children)),
                {Property::Kind::kSingle, {}, 0}};
      }
      case PlanNodeKind::kTableWrite: {
        const auto& write = static_cast<const TableWriteNode&>(*node);
        WithProperty child = Add(node->child());
        // Writers live in their own scalable stage behind a round-robin
        // exchange so the engine can adapt writer parallelism (§IV-E3).
        PlanNodePtr input =
            MakeRemote(ExchangeKind::kRoundRobin, {}, child.node, ctx_);
        return {std::make_shared<TableWriteNode>(ctx_->NewId(),
                                                 write.connector(),
                                                 write.table(), write.output(),
                                                 std::move(input)),
                {Property::Kind::kArbitrary, {}, 0}};
      }
      case PlanNodeKind::kOutput: {
        const auto& output = static_cast<const OutputNode&>(*node);
        WithProperty child = Add(node->child());
        PlanNodePtr input = child.node;
        if (child.property.kind != Property::Kind::kSingle) {
          input = MakeRemote(ExchangeKind::kGather, {}, input, ctx_);
        }
        return {std::make_shared<OutputNode>(ctx_->NewId(),
                                             output.column_names(),
                                             std::move(input)),
                {Property::Kind::kSingle, {}, 0}};
      }
      default:
        PRESTO_CHECK(false);
    }
  }

 private:
  Ctx* ctx_;
};

// ---------------------------------------------------------------------------
// Phase 2: split the exchange-annotated tree into fragments.
// ---------------------------------------------------------------------------

class Splitter {
 public:
  explicit Splitter(Ctx* ctx) : ctx_(ctx) {}

  FragmentedPlan Split(const PlanNodePtr& root) {
    FragmentedPlan plan;
    fragments_ = &plan.fragments;
    plan.root_id = BuildFragment(root, ExchangeKind::kGather, {}, -1);
    // Fix fragment ids to be dense indices (already are, by construction).
    ComputeBuildDependencies(&plan);
    return plan;
  }

 private:
  int BuildFragment(const PlanNodePtr& subtree, ExchangeKind output_kind,
                    std::vector<int> output_keys, int consumer) {
    int id = static_cast<int>(fragments_->size());
    fragments_->push_back(PlanFragment{});
    {
      PlanFragment& f = (*fragments_)[static_cast<size_t>(id)];
      f.id = id;
      f.output_kind = output_kind;
      f.output_keys = std::move(output_keys);
      f.consumer = consumer;
    }
    bool has_scan = false;
    bool has_colocated_scan = false;
    bool has_partitioned_input = false;
    PlanNodePtr root = Strip(subtree, id, &has_scan, &has_colocated_scan,
                             &has_partitioned_input);
    PlanFragment& f = (*fragments_)[static_cast<size_t>(id)];
    f.root = std::move(root);
    if (has_scan) {
      f.partitioning = has_colocated_scan ? PartitioningKind::kColocated
                                          : PartitioningKind::kSource;
    } else if (has_partitioned_input) {
      f.partitioning = PartitioningKind::kHash;
    } else {
      f.partitioning = PartitioningKind::kSingle;
    }
    return id;
  }

  PlanNodePtr Strip(const PlanNodePtr& node, int fragment_id, bool* has_scan,
                    bool* has_colocated_scan, bool* has_partitioned_input) {
    if (node->kind() == PlanNodeKind::kExchange) {
      const auto& exchange = static_cast<const ExchangeNode&>(*node);
      PRESTO_CHECK(exchange.scope() == ExchangeScope::kRemote);
      int child_id = BuildFragment(node->child(), exchange.exchange_kind(),
                                   exchange.partition_keys(), fragment_id);
      (*fragments_)[static_cast<size_t>(fragment_id)].inputs.push_back(
          child_id);
      if (exchange.exchange_kind() == ExchangeKind::kRepartition ||
          exchange.exchange_kind() == ExchangeKind::kRoundRobin) {
        *has_partitioned_input = true;
      }
      return std::make_shared<RemoteSourceNode>(ctx_->NewId(), child_id,
                                                exchange.exchange_kind(),
                                                node->output());
    }
    if (node->kind() == PlanNodeKind::kTableScan) {
      *has_scan = true;
      const auto& scan = static_cast<const TableScanNode&>(*node);
      if (!scan.layout_id().empty()) *has_colocated_scan = true;
      return node;
    }
    std::vector<PlanNodePtr> children;
    bool changed = false;
    for (const auto& c : node->children()) {
      auto nc = Strip(c, fragment_id, has_scan, has_colocated_scan,
                      has_partitioned_input);
      changed = changed || nc != c;
      children.push_back(std::move(nc));
    }
    if (!changed) return node;
    return RebuildWithChildren(node, std::move(children));
  }

  PlanNodePtr RebuildWithChildren(const PlanNodePtr& node,
                                  std::vector<PlanNodePtr> children) {
    switch (node->kind()) {
      case PlanNodeKind::kFilter: {
        const auto& f = static_cast<const FilterNode&>(*node);
        return std::make_shared<FilterNode>(ctx_->NewId(), f.predicate(),
                                            children[0]);
      }
      case PlanNodeKind::kProject: {
        const auto& p = static_cast<const ProjectNode&>(*node);
        return std::make_shared<ProjectNode>(ctx_->NewId(), p.expressions(),
                                             p.output(), children[0]);
      }
      case PlanNodeKind::kAggregate: {
        const auto& a = static_cast<const AggregateNode&>(*node);
        return std::make_shared<AggregateNode>(ctx_->NewId(), a.step(),
                                               a.group_keys(),
                                               a.aggregates(), a.output(),
                                               children[0]);
      }
      case PlanNodeKind::kJoin: {
        const auto& j = static_cast<const JoinNode&>(*node);
        return std::make_shared<JoinNode>(
            ctx_->NewId(), j.join_type(), j.left_keys(), j.right_keys(),
            j.residual_filter(), j.distribution(), j.output(), children[0],
            children[1]);
      }
      case PlanNodeKind::kSort: {
        const auto& s = static_cast<const SortNode&>(*node);
        return std::make_shared<SortNode>(ctx_->NewId(), s.keys(),
                                          children[0]);
      }
      case PlanNodeKind::kTopN: {
        const auto& t = static_cast<const TopNNode&>(*node);
        return std::make_shared<TopNNode>(ctx_->NewId(), t.keys(), t.n(),
                                          t.partial(), children[0]);
      }
      case PlanNodeKind::kLimit: {
        const auto& l = static_cast<const LimitNode&>(*node);
        return std::make_shared<LimitNode>(ctx_->NewId(), l.n(), l.partial(),
                                           children[0]);
      }
      case PlanNodeKind::kWindow: {
        const auto& w = static_cast<const WindowNode&>(*node);
        return std::make_shared<WindowNode>(ctx_->NewId(),
                                            w.partition_keys(),
                                            w.order_keys(), w.functions(),
                                            w.output(), children[0]);
      }
      case PlanNodeKind::kUnionAll:
        return std::make_shared<UnionAllNode>(ctx_->NewId(), node->output(),
                                              std::move(children));
      case PlanNodeKind::kOutput: {
        const auto& o = static_cast<const OutputNode&>(*node);
        return std::make_shared<OutputNode>(ctx_->NewId(), o.column_names(),
                                            children[0]);
      }
      case PlanNodeKind::kTableWrite: {
        const auto& tw = static_cast<const TableWriteNode&>(*node);
        return std::make_shared<TableWriteNode>(ctx_->NewId(),
                                                tw.connector(), tw.table(),
                                                tw.output(), children[0]);
      }
      default:
        PRESTO_CHECK(false);
    }
  }

  // Records, per fragment, the producers of hash-join build sides so the
  // phased scheduler can defer probe-side split enumeration (§IV-D1).
  void ComputeBuildDependencies(FragmentedPlan* plan) {
    for (auto& fragment : plan->fragments) {
      std::set<int> deps;
      CollectBuildSources(*fragment.root, /*under_build=*/false, plan, &deps);
      fragment.build_dependencies.assign(deps.begin(), deps.end());
    }
  }

  void CollectRemoteSources(const PlanNode& node, std::set<int>* out) {
    if (node.kind() == PlanNodeKind::kRemoteSource) {
      out->insert(static_cast<const RemoteSourceNode&>(node)
                      .source_fragment());
    }
    for (const auto& c : node.children()) CollectRemoteSources(*c, out);
  }

  void CollectBuildSources(const PlanNode& node, bool under_build,
                           FragmentedPlan* plan, std::set<int>* deps) {
    if (node.kind() == PlanNodeKind::kRemoteSource && under_build) {
      int source = static_cast<const RemoteSourceNode&>(node)
                       .source_fragment();
      // Include the producer and all its transitive inputs.
      std::vector<int> stack = {source};
      while (!stack.empty()) {
        int id = stack.back();
        stack.pop_back();
        if (!deps->insert(id).second) continue;
        for (int in : plan->fragments[static_cast<size_t>(id)].inputs) {
          stack.push_back(in);
        }
      }
      return;
    }
    if (node.kind() == PlanNodeKind::kJoin) {
      CollectBuildSources(*node.child(0), under_build, plan, deps);
      CollectBuildSources(*node.child(1), /*under_build=*/true, plan, deps);
      return;
    }
    for (const auto& c : node.children()) {
      CollectBuildSources(*c, under_build, plan, deps);
    }
  }

  Ctx* ctx_;
  std::vector<PlanFragment>* fragments_ = nullptr;
};

}  // namespace

const char* PartitioningKindToString(PartitioningKind kind) {
  switch (kind) {
    case PartitioningKind::kSingle:
      return "SINGLE";
    case PartitioningKind::kHash:
      return "HASH";
    case PartitioningKind::kSource:
      return "SOURCE";
    case PartitioningKind::kColocated:
      return "COLOCATED";
  }
  return "?";
}

std::string FragmentedPlan::ToString() const {
  std::string out;
  for (const auto& f : fragments) {
    out += "Fragment " + std::to_string(f.id) + " [" +
           PartitioningKindToString(f.partitioning) + "]";
    if (f.consumer >= 0) {
      out += " -> fragment " + std::to_string(f.consumer);
    }
    if (!f.build_dependencies.empty()) {
      out += " build-deps={";
      for (size_t i = 0; i < f.build_dependencies.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(f.build_dependencies[i]);
      }
      out += "}";
    }
    out += "\n";
    out += PlanToString(*f.root);
  }
  return out;
}

Result<FragmentedPlan> Fragmenter::Fragment(const PlanNodePtr& plan) {
  Ctx ctx;
  ExchangePlanner planner(&ctx);
  WithProperty annotated = planner.Add(plan);
  Splitter splitter(&ctx);
  return splitter.Split(annotated.node);
}

}  // namespace presto
