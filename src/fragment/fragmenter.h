#ifndef PRESTOCPP_FRAGMENT_FRAGMENTER_H_
#define PRESTOCPP_FRAGMENT_FRAGMENTER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_node.h"

namespace presto {

/// How the tasks of a fragment are laid out across the cluster (§IV-D2).
enum class PartitioningKind : uint8_t {
  kSingle,     // one task (gathers, final sorts/limits, Output)
  kHash,       // one task per worker; input repartitioned by hash
  kSource,     // leaf stage: tasks on (up to) every worker, driven by splits
  kColocated,  // one task per bucket, pinned to the bucket's worker
};

const char* PartitioningKindToString(PartitioningKind kind);

/// A stage of the distributed plan (§IV-C3): a subtree executed by one or
/// more identical tasks, linked to other fragments through shuffles.
struct PlanFragment {
  int id = 0;
  PlanNodePtr root;  // leaves are TableScan / Values / RemoteSource nodes
  PartitioningKind partitioning = PartitioningKind::kSingle;
  int bucket_count = 0;  // for kColocated

  /// How this fragment's output is routed to its consumer.
  ExchangeKind output_kind = ExchangeKind::kGather;
  std::vector<int> output_keys;  // for kRepartition
  int consumer = -1;             // fragment id; -1 for the root fragment

  /// Fragments feeding this fragment (remote sources), in discovery order.
  std::vector<int> inputs;

  /// Phased scheduling (§IV-D1): fragments that must complete before this
  /// fragment's leaf splits are enqueued — i.e. producers of hash-join build
  /// sides within this fragment. Empty under all-at-once scheduling.
  std::vector<int> build_dependencies;
};

struct FragmentedPlan {
  std::vector<PlanFragment> fragments;  // fragments[i].id == i
  int root_id = 0;

  std::string ToString() const;
};

/// Splits an optimized logical plan into stages connected by shuffles,
/// reasoning about partitioning properties to elide redundant shuffles
/// (§IV-C3): an aggregation above a partitioned join on a subset of its
/// group keys, or a co-located join, introduces no exchange at all. Also
/// splits aggregations/TopN/Limit into partial+final pairs across shuffles
/// (Fig. 3) and records phased-scheduling dependencies (§IV-D1).
class Fragmenter {
 public:
  Result<FragmentedPlan> Fragment(const PlanNodePtr& plan);
};

}  // namespace presto

#endif  // PRESTOCPP_FRAGMENT_FRAGMENTER_H_
