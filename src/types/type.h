#ifndef PRESTOCPP_TYPES_TYPE_H_
#define PRESTOCPP_TYPES_TYPE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace presto {

/// SQL types supported by the dialect. Physical representations:
///   BOOLEAN -> uint8_t, BIGINT/DATE -> int64_t (DATE is days since epoch),
///   DOUBLE -> double, VARCHAR -> flat byte arrays (see vector/).
/// UNKNOWN is the type of a bare NULL literal before coercion.
enum class TypeKind : uint8_t {
  kUnknown = 0,
  kBoolean,
  kBigint,
  kDouble,
  kVarchar,
  kDate,
};

/// SQL spelling of a type ("BIGINT", "VARCHAR", ...).
const char* TypeToString(TypeKind t);

/// Parses a SQL type name (case-insensitive). Accepts INT/INTEGER/BIGINT as
/// BIGINT and DOUBLE/FLOAT/REAL as DOUBLE.
std::optional<TypeKind> TypeFromString(const std::string& name);

/// True if a value of `from` may be used where `to` is expected without an
/// explicit CAST: UNKNOWN -> anything, BIGINT -> DOUBLE.
bool IsImplicitlyCoercible(TypeKind from, TypeKind to);

/// Least common type for binary operations (e.g. BIGINT + DOUBLE -> DOUBLE);
/// nullopt if the pair is incompatible.
std::optional<TypeKind> CommonSuperType(TypeKind a, TypeKind b);

/// True for BIGINT, DOUBLE, and DATE (orderable numerics for min/max/sum
/// purposes; DATE supports min/max and comparison only).
bool IsNumeric(TypeKind t);

/// True if values of the type are ordered (everything except UNKNOWN).
bool IsOrderable(TypeKind t);

}  // namespace presto

#endif  // PRESTOCPP_TYPES_TYPE_H_
