#include "types/row_schema.h"

namespace presto {

std::string RowSchema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace presto
