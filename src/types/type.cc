#include "types/type.h"

#include "common/string_utils.h"

namespace presto {

const char* TypeToString(TypeKind t) {
  switch (t) {
    case TypeKind::kUnknown:
      return "UNKNOWN";
    case TypeKind::kBoolean:
      return "BOOLEAN";
    case TypeKind::kBigint:
      return "BIGINT";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kVarchar:
      return "VARCHAR";
    case TypeKind::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

std::optional<TypeKind> TypeFromString(const std::string& name) {
  std::string n = ToUpperAscii(name);
  if (n == "BOOLEAN" || n == "BOOL") return TypeKind::kBoolean;
  if (n == "BIGINT" || n == "INT" || n == "INTEGER" || n == "SMALLINT" ||
      n == "TINYINT") {
    return TypeKind::kBigint;
  }
  if (n == "DOUBLE" || n == "FLOAT" || n == "REAL") return TypeKind::kDouble;
  if (n == "VARCHAR" || n == "STRING" || n == "TEXT" || n == "CHAR") {
    return TypeKind::kVarchar;
  }
  if (n == "DATE") return TypeKind::kDate;
  return std::nullopt;
}

bool IsImplicitlyCoercible(TypeKind from, TypeKind to) {
  if (from == to) return true;
  if (from == TypeKind::kUnknown) return true;
  if (from == TypeKind::kBigint && to == TypeKind::kDouble) return true;
  return false;
}

std::optional<TypeKind> CommonSuperType(TypeKind a, TypeKind b) {
  if (a == b) return a;
  if (a == TypeKind::kUnknown) return b;
  if (b == TypeKind::kUnknown) return a;
  if ((a == TypeKind::kBigint && b == TypeKind::kDouble) ||
      (a == TypeKind::kDouble && b == TypeKind::kBigint)) {
    return TypeKind::kDouble;
  }
  return std::nullopt;
}

bool IsNumeric(TypeKind t) {
  return t == TypeKind::kBigint || t == TypeKind::kDouble ||
         t == TypeKind::kDate;
}

bool IsOrderable(TypeKind t) { return t != TypeKind::kUnknown; }

}  // namespace presto
