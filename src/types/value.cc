#include "types/value.h"

#include <cstdio>

namespace presto {

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  // Numeric cross-type comparison (BIGINT vs DOUBLE).
  if (type_ != other.type_) {
    if ((type_ == TypeKind::kBigint && other.type_ == TypeKind::kDouble) ||
        (type_ == TypeKind::kDouble && other.type_ == TypeKind::kBigint)) {
      return AsDouble() == other.AsDouble();
    }
    return false;
  }
  return data_ == other.data_;
}

int Value::Compare(const Value& other) const {
  // NULLs order last (as in Presto's default NULLS LAST for ASC).
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return 1;
  if (other.is_null()) return -1;
  if (type_ != other.type_ || type_ == TypeKind::kDouble ||
      other.type_ == TypeKind::kDouble) {
    if ((type_ == TypeKind::kBigint || type_ == TypeKind::kDouble) &&
        (other.type_ == TypeKind::kBigint ||
         other.type_ == TypeKind::kDouble)) {
      double a = AsDouble();
      double b = other.AsDouble();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
  }
  PRESTO_CHECK(type_ == other.type_);
  switch (type_) {
    case TypeKind::kBoolean: {
      int a = AsBoolean() ? 1 : 0;
      int b = other.AsBoolean() ? 1 : 0;
      return a - b;
    }
    case TypeKind::kBigint:
    case TypeKind::kDate: {
      int64_t a = std::get<int64_t>(data_);
      int64_t b = std::get<int64_t>(other.data_);
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case TypeKind::kVarchar: {
      int c = AsVarchar().compare(other.AsVarchar());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

uint64_t Value::Hash() const {
  if (is_null()) return 0;
  switch (type_) {
    case TypeKind::kBoolean:
      return HashInt64(AsBoolean() ? 1 : 0);
    case TypeKind::kBigint:
    case TypeKind::kDate:
      return HashInt64(static_cast<uint64_t>(std::get<int64_t>(data_)));
    case TypeKind::kDouble:
      return HashDouble(AsDouble());
    case TypeKind::kVarchar:
      return HashString(AsVarchar());
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeKind::kBoolean:
      return AsBoolean() ? "true" : "false";
    case TypeKind::kBigint:
      return std::to_string(std::get<int64_t>(data_));
    case TypeKind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case TypeKind::kVarchar:
      return "'" + AsVarchar() + "'";
    case TypeKind::kDate:
      return FormatDate(std::get<int64_t>(data_));
    default:
      return "NULL";
  }
}

namespace {

// Civil-date conversion via Howard Hinnant's algorithms.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, int64_t* m, int64_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

}  // namespace

std::string FormatDate(int64_t days) {
  int64_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", static_cast<int>(y),
                static_cast<int>(m), static_cast<int>(d));
  return buf;
}

bool ParseDate(const std::string& text, int64_t* days_out) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *days_out = DaysFromCivil(y, m, d);
  return true;
}

}  // namespace presto
