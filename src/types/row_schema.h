#ifndef PRESTOCPP_TYPES_ROW_SCHEMA_H_
#define PRESTOCPP_TYPES_ROW_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "types/type.h"

namespace presto {

/// A named, typed column in a table or intermediate relation.
struct Column {
  std::string name;
  TypeKind type;

  bool operator==(const Column& other) const = default;
};

/// Ordered list of columns describing a relation's shape.
class RowSchema {
 public:
  RowSchema() = default;
  explicit RowSchema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& at(size_t i) const { return columns_[i]; }

  void Add(std::string name, TypeKind type) {
    columns_.push_back({std::move(name), type});
  }

  /// Index of the column with the given (case-sensitive, already-lowercased)
  /// name, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return i;
    }
    return std::nullopt;
  }

  /// "(a BIGINT, b VARCHAR)" rendering for plans and errors.
  std::string ToString() const;

  bool operator==(const RowSchema& other) const = default;

 private:
  std::vector<Column> columns_;
};

}  // namespace presto

#endif  // PRESTOCPP_TYPES_ROW_SCHEMA_H_
