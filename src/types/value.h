#ifndef PRESTOCPP_TYPES_VALUE_H_
#define PRESTOCPP_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/check.h"
#include "common/hash.h"
#include "types/type.h"

namespace presto {

/// A boxed SQL scalar: a (type, nullable payload) pair. Used for literals,
/// the reference executor, statistics min/max, and test assertions. The
/// vectorized engine never boxes per row — it operates on Blocks.
class Value {
 public:
  /// NULL of UNKNOWN type.
  Value() : type_(TypeKind::kUnknown), data_(std::monostate{}) {}

  static Value Null(TypeKind type) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Boolean(bool b) { return Value(TypeKind::kBoolean, b); }
  static Value Bigint(int64_t i) { return Value(TypeKind::kBigint, i); }
  static Value Double(double d) { return Value(TypeKind::kDouble, d); }
  static Value Varchar(std::string s) {
    return Value(TypeKind::kVarchar, std::move(s));
  }
  static Value Date(int64_t days) { return Value(TypeKind::kDate, days); }

  TypeKind type() const { return type_; }
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  bool AsBoolean() const { return std::get<bool>(data_); }
  int64_t AsBigint() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    // A BIGINT payload coerces transparently so DOUBLE contexts accept it.
    if (std::holds_alternative<int64_t>(data_)) {
      return static_cast<double>(std::get<int64_t>(data_));
    }
    return std::get<double>(data_);
  }
  const std::string& AsVarchar() const { return std::get<std::string>(data_); }
  int64_t AsDate() const { return std::get<int64_t>(data_); }

  /// SQL equality: NULL never equals anything (returns false for any NULL).
  bool SqlEquals(const Value& other) const;

  /// Total-order comparison for sorting: NULL sorts last; returns <0/0/>0.
  int Compare(const Value& other) const;

  /// Hash consistent with SqlEquals for non-null values.
  uint64_t Hash() const;

  /// Display form ("NULL", "42", "'abc'", "1995-01-27", "true").
  std::string ToString() const;

  /// Structural equality including null==null (for tests).
  bool operator==(const Value& other) const {
    return type_ == other.type_ && data_ == other.data_;
  }

 private:
  template <typename T>
  Value(TypeKind t, T v) : type_(t), data_(std::move(v)) {}

  TypeKind type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// Converts days-since-epoch to "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// Parses "YYYY-MM-DD" into days-since-epoch; returns false on bad input.
bool ParseDate(const std::string& text, int64_t* days_out);

}  // namespace presto

#endif  // PRESTOCPP_TYPES_VALUE_H_
