#include "common/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace presto {

namespace {

constexpr int kMaxDepth = 128;

void AppendEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWhitespace();
    PRESTO_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        PRESTO_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json::Bool(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json::Bool(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json();
        }
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json object = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      PRESTO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      PRESTO_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json array = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      PRESTO_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by the protocol; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool is_int = true;
    if (Consume('.')) {
      is_int = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_int = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("invalid number");
    errno = 0;
    if (is_int) {
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json::Int(static_cast<int64_t>(v));
      }
      // Fall through to double on overflow.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Json::Real(d);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json& Json::Set(const std::string& key, Json value) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

Result<bool> Json::GetBool(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_bool()) {
    return Status::InvalidArgument("json: missing bool field '" + key + "'");
  }
  return v->bool_value();
}

Result<int64_t> Json::GetInt(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_int()) {
    return Status::InvalidArgument("json: missing int field '" + key + "'");
  }
  return v->int_value();
}

Result<double> Json::GetDouble(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("json: missing number field '" + key + "'");
  }
  return v->double_value();
}

Result<std::string> Json::GetString(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("json: missing string field '" + key + "'");
  }
  return v->string_value();
}

Result<const Json*> Json::GetArray(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("json: missing array field '" + key + "'");
  }
  return v;
}

Result<const Json*> Json::GetObject(const std::string& key) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_object()) {
    return Status::InvalidArgument("json: missing object field '" + key + "'");
  }
  return v;
}

void Json::SerializeTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      out->append(buf);
      break;
    }
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        out->append("0");
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out->append(buf);
      break;
    }
    case Type::kString:
      out->push_back('"');
      AppendEscaped(string_, out);
      out->push_back('"');
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        item.SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& member : members_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        AppendEscaped(member.first, out);
        out->append("\":");
        member.second.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

std::string JsonEscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(s, &out);
  return out;
}

}  // namespace presto
