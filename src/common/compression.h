#ifndef PRESTOCPP_COMMON_COMPRESSION_H_
#define PRESTOCPP_COMMON_COMPRESSION_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace presto {

/// Byte-oriented LZ77 codec in the LZ4 block format: token-prefixed
/// sequences of literals plus (offset, length) back-references into the
/// already-decoded output. No external dependency — the whole codec is this
/// translation unit. Used for per-frame page compression in shuffle and
/// spill (PageCodec); worst-case expansion is bounded by
/// Lz4MaxCompressedSize, so callers can decide per frame whether the
/// compressed form is worth keeping.
std::string Lz4Compress(std::string_view input);

/// Upper bound on Lz4Compress output size for `input_size` bytes.
size_t Lz4MaxCompressedSize(size_t input_size);

/// Decompresses a Lz4Compress buffer whose original size is known (the
/// frame header carries it). Every read is bounds-checked: corrupt or
/// truncated input yields an IOError, never out-of-bounds access.
Result<std::string> Lz4Decompress(std::string_view input,
                                  size_t decompressed_size);

}  // namespace presto

#endif  // PRESTOCPP_COMMON_COMPRESSION_H_
