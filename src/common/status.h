#ifndef PRESTOCPP_COMMON_STATUS_H_
#define PRESTOCPP_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace presto {

/// Error categories surfaced by the engine. Mirrors the classes of failure
/// the paper distinguishes: user errors (bad SQL), resource exhaustion
/// (memory limits, §IV-F2), cancellation, and internal invariant failures.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // malformed SQL, unknown table/column, type errors
  kNotFound,          // missing catalog object or file
  kResourceExhausted, // memory/cpu limits exceeded; query killed
  kCancelled,         // query cancelled by client
  kUnsupported,       // recognized but unimplemented SQL feature
  kIOError,           // simulated storage/network failure
  kInternal,          // engine invariant violation
};

/// Returns a short human-readable name for `code` ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Fallible public APIs return Status or
/// Result<T> instead of throwing; exceptions never cross module boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder, analogous to arrow::Result. A Result is in exactly
/// one of two states: a valid value (status().ok()) or an error status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// terse: `return 42;` / `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(data_);
  }

  /// Precondition: ok().
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define PRESTO_RETURN_IF_ERROR(expr)           \
  do {                                         \
    ::presto::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`. `lhs` may declare a new variable.
#define PRESTO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define PRESTO_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PRESTO_ASSIGN_OR_RETURN_NAME(x, y) PRESTO_ASSIGN_OR_RETURN_CONCAT(x, y)
#define PRESTO_ASSIGN_OR_RETURN(lhs, expr) \
  PRESTO_ASSIGN_OR_RETURN_IMPL(            \
      PRESTO_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace presto

#endif  // PRESTOCPP_COMMON_STATUS_H_
