#ifndef PRESTOCPP_COMMON_RANDOM_H_
#define PRESTOCPP_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace presto {

/// Deterministic xorshift64* generator. All synthetic data (TPC-H-style
/// tables, workload arrival processes) is derived from seeded instances so
/// every test, example, and benchmark is reproducible run to run.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextUint64(uint64_t n) { return NextUint64() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextUint64(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (used for Poisson
  /// arrival processes in the Fig. 8 multi-tenancy harness).
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    // -mean * ln(1-u)
    double x = 1.0 - u;
    // ln via series-free call
    return -mean * __builtin_log(x);
  }

  /// Random lowercase ASCII string of length `len`.
  std::string NextString(int len) {
    std::string s(static_cast<size_t>(len), 'a');
    for (auto& c : s) c = static_cast<char>('a' + NextUint64(26));
    return s;
  }

  /// Zipfian-ish skewed pick in [0, n): lower indices are more likely.
  uint64_t NextSkewed(uint64_t n) {
    double u = NextDouble();
    double v = u * u * u;  // cube concentrates mass near 0
    auto idx = static_cast<uint64_t>(v * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

 private:
  uint64_t state_;
};

}  // namespace presto

#endif  // PRESTOCPP_COMMON_RANDOM_H_
