#ifndef PRESTOCPP_COMMON_THREAD_POOL_H_
#define PRESTOCPP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace presto {

/// Fixed-size FIFO thread pool for auxiliary parallel work (data generation,
/// file loading). Query execution does NOT use this: workers run tasks under
/// the MLFQ TaskExecutor in src/schedule, which implements the cooperative
/// time-slicing the paper describes.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some pool thread.
  void Submit(std::function<void()> fn);

  /// Blocks until all submitted work has completed.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_COMMON_THREAD_POOL_H_
