#include "common/status.h"

namespace presto {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace presto
