#ifndef PRESTOCPP_COMMON_JSON_H_
#define PRESTOCPP_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace presto {

/// Minimal JSON document model used by the coordinator<->worker task
/// protocol (plan fragments, split batches, task status). Hand-rolled so the
/// wire format has zero external dependencies; integers are kept as int64
/// (not double) so counters like cpu_nanos survive a round trip exactly.
///
/// Objects preserve insertion order and use linear lookup — protocol
/// messages are small (tens of keys), so this is simpler and faster than a
/// map for our sizes.
class Json {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() : type_(Type::kNull) {}

  static Json Bool(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Int(int64_t i) {
    Json j;
    j.type_ = Type::kInt;
    j.int_ = i;
    return j;
  }
  static Json Real(double d) {
    Json j;
    j.type_ = Type::kDouble;
    j.double_ = d;
    return j;
  }
  static Json Str(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double double_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  // --- Array access ---
  const std::vector<Json>& items() const { return array_; }
  size_t size() const {
    return type_ == Type::kObject ? members_.size() : array_.size();
  }
  void Append(Json value) { array_.push_back(std::move(value)); }

  // --- Object access ---
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  /// Sets (or replaces) a key. Returns *this for chaining.
  Json& Set(const std::string& key, Json value);
  /// Returns the member or nullptr when absent (or when not an object).
  const Json* Find(const std::string& key) const;

  /// Type-checked object getters: error when the key is missing or the
  /// value has the wrong type. GetDouble accepts ints (widening).
  Result<bool> GetBool(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<const Json*> GetArray(const std::string& key) const;
  Result<const Json*> GetObject(const std::string& key) const;

  /// Compact single-line rendering (no insignificant whitespace).
  std::string Serialize() const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Depth-limited to keep hostile input from recursing the stack.
  static Result<Json> Parse(const std::string& text);

 private:
  void SerializeTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
/// Shared with the hand-written emitters in stats/trace.
std::string JsonEscapeString(std::string_view s);

}  // namespace presto

#endif  // PRESTOCPP_COMMON_JSON_H_
