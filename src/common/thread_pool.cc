#include "common/thread_pool.h"

#include "common/check.h"

namespace presto {

ThreadPool::ThreadPool(int num_threads) {
  PRESTO_CHECK(num_threads > 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace presto
