#ifndef PRESTOCPP_COMMON_STRING_UTILS_H_
#define PRESTOCPP_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace presto {

/// Lowercases ASCII characters; SQL identifiers and keywords are
/// case-insensitive in the dialect we implement.
std::string ToLowerAscii(std::string_view s);

/// Uppercases ASCII characters.
std::string ToUpperAscii(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep` (single char); keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// SQL LIKE match with % and _ wildcards (no escape support).
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Formats a byte count as "12.3 MB" style text for logs and benches.
std::string FormatBytes(int64_t bytes);

}  // namespace presto

#endif  // PRESTOCPP_COMMON_STRING_UTILS_H_
