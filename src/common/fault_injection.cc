#include "common/fault_injection.h"

#include <chrono>
#include <thread>

namespace presto {

std::atomic<int> FaultInjection::armed_points_{0};

FaultInjection& FaultInjection::Instance() {
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

void FaultInjection::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
    it = points_.emplace(point, PointState{}).first;
  }
  // Re-arming resets counters and re-seeds the RNG so the fire pattern is
  // reproducible from this moment.
  it->second = PointState{};
  it->second.rng.seed(spec.seed);
  it->second.spec = std::move(spec);
}

void FaultInjection::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

int64_t FaultInjection::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FaultInjection::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjection::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) names.push_back(name);
  return names;
}

Status FaultInjection::Hit(const std::string& point) {
  Status error;
  int64_t delay_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    PointState& state = it->second;
    ++state.hits;
    if (state.hits <= state.spec.trigger_after_hits) return Status::OK();
    if (state.spec.max_fires >= 0 && state.fires >= state.spec.max_fires) {
      return Status::OK();
    }
    if (state.spec.probability < 1.0) {
      std::bernoulli_distribution fire(state.spec.probability);
      if (!fire(state.rng)) return Status::OK();
    }
    ++state.fires;
    error = state.spec.error;
    delay_micros = state.spec.delay_micros;
  }
  // Sleep outside the lock: a delaying point must not serialize the others.
  if (delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
  }
  return error;
}

}  // namespace presto
