#ifndef PRESTOCPP_COMMON_HASH_H_
#define PRESTOCPP_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace presto {

/// 64-bit finalizer from MurmurHash3. Good avalanche for integer keys; used
/// for hash partitioning (shuffles) and hash tables (joins, aggregations).
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over bytes; adequate for VARCHAR keys at our scale.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return HashInt64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashDouble(double d) {
  // Normalize -0.0 to 0.0 so equal values hash equally.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashInt64(bits);
}

/// boost::hash_combine-style mixing for multi-column keys.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

/// XXH64 over a byte buffer. Used as the page-frame checksum (PageCodec):
/// strong avalanche at memory bandwidth, unlike the FNV-1a above which
/// trades quality for simplicity on short VARCHAR keys.
inline uint64_t XxHash64(const void* data, size_t len, uint64_t seed = 0) {
  constexpr uint64_t kP1 = 0x9E3779B185EBCA87ULL;
  constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
  constexpr uint64_t kP3 = 0x165667B19E3779F9ULL;
  constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ULL;
  constexpr uint64_t kP5 = 0x27D4EB2F165667C5ULL;
  auto rotl = [](uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  };
  auto read64 = [](const uint8_t* p) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  };
  auto read32 = [](const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return static_cast<uint64_t>(v);
  };
  auto round = [&](uint64_t acc, uint64_t input) {
    acc += input * kP2;
    acc = rotl(acc, 31);
    return acc * kP1;
  };
  const auto* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kP1 + kP2;
    uint64_t v2 = seed + kP2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kP1;
    const uint8_t* limit = end - 32;
    do {
      v1 = round(v1, read64(p));
      v2 = round(v2, read64(p + 8));
      v3 = round(v3, read64(p + 16));
      v4 = round(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    auto merge = [&](uint64_t acc, uint64_t v) {
      acc ^= round(0, v);
      return acc * kP1 + kP4;
    };
    h = merge(h, v1);
    h = merge(h, v2);
    h = merge(h, v3);
    h = merge(h, v4);
  } else {
    h = seed + kP5;
  }
  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= round(0, read64(p));
    h = rotl(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= read32(p) * kP1;
    h = rotl(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kP5;
    h = rotl(h, 11) * kP1;
    ++p;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

}  // namespace presto

#endif  // PRESTOCPP_COMMON_HASH_H_
