#ifndef PRESTOCPP_COMMON_HASH_H_
#define PRESTOCPP_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace presto {

/// 64-bit finalizer from MurmurHash3. Good avalanche for integer keys; used
/// for hash partitioning (shuffles) and hash tables (joins, aggregations).
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over bytes; adequate for VARCHAR keys at our scale.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return HashInt64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashDouble(double d) {
  // Normalize -0.0 to 0.0 so equal values hash equally.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashInt64(bits);
}

/// boost::hash_combine-style mixing for multi-column keys.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace presto

#endif  // PRESTOCPP_COMMON_HASH_H_
