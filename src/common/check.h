#ifndef PRESTOCPP_COMMON_CHECK_H_
#define PRESTOCPP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace presto::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PRESTO_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace presto::internal

/// Internal invariant check; aborts the process on failure. Used for
/// programmer errors only — user-visible failures flow through Status.
#define PRESTO_CHECK(cond)                                    \
  do {                                                        \
    if (!(cond))                                              \
      ::presto::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

/// Marks code paths that are impossible by construction (e.g. exhaustive
/// switches over enums). Aborts if ever reached.
#define PRESTO_UNREACHABLE() \
  ::presto::internal::CheckFailed(__FILE__, __LINE__, "unreachable")

#ifndef NDEBUG
#define PRESTO_DCHECK(cond) PRESTO_CHECK(cond)
#else
#define PRESTO_DCHECK(cond)    \
  do {                         \
    if (false) { (void)(cond); } \
  } while (0)
#endif

#endif  // PRESTOCPP_COMMON_CHECK_H_
