#include "common/compression.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace presto {

namespace {

// 8K-entry hash table of candidate match positions; the standard LZ4 fast
// hash (multiplicative over the 4-byte prefix).
constexpr int kHashLog = 13;
constexpr size_t kMinMatch = 4;
// The LZ4 block format requires the last 5 bytes to be literals and a match
// to start no later than 12 bytes before the end; honoring both keeps the
// format compatible with reference decoders.
constexpr size_t kEndMargin = 12;
constexpr size_t kLastLiterals = 5;
constexpr size_t kMaxOffset = 65535;

inline uint32_t HashPosition(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761U) >> (32 - kHashLog);
}

inline void WriteLength(std::string* out, size_t len) {
  while (len >= 255) {
    out->push_back(static_cast<char>(255));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

// Reads a 15-extended length field; false on truncation.
inline bool ReadLength(std::string_view in, size_t* pos, size_t* len) {
  for (;;) {
    if (*pos >= in.size()) return false;
    auto byte = static_cast<uint8_t>(in[*pos]);
    ++*pos;
    *len += byte;
    if (byte != 255) return true;
  }
}

void EmitSequence(std::string* out, const char* literals, size_t literal_len,
                  size_t offset, size_t match_len) {
  size_t match_code = match_len - kMinMatch;
  uint8_t token =
      static_cast<uint8_t>((literal_len < 15 ? literal_len : 15) << 4 |
                           (match_code < 15 ? match_code : 15));
  out->push_back(static_cast<char>(token));
  if (literal_len >= 15) WriteLength(out, literal_len - 15);
  out->append(literals, literal_len);
  out->push_back(static_cast<char>(offset & 0xFF));
  out->push_back(static_cast<char>(offset >> 8));
  if (match_code >= 15) WriteLength(out, match_code - 15);
}

void EmitLastLiterals(std::string* out, const char* literals, size_t len) {
  uint8_t token = static_cast<uint8_t>((len < 15 ? len : 15) << 4);
  out->push_back(static_cast<char>(token));
  if (len >= 15) WriteLength(out, len - 15);
  out->append(literals, len);
}

}  // namespace

size_t Lz4MaxCompressedSize(size_t input_size) {
  // One token per 15-literal run plus length extension bytes.
  return input_size + input_size / 255 + 16;
}

std::string Lz4Compress(std::string_view input) {
  const size_t n = input.size();
  const char* base = input.data();
  std::string out;
  out.reserve(Lz4MaxCompressedSize(n) / 2);
  if (n < kEndMargin + 1) {
    EmitLastLiterals(&out, base, n);
    return out;
  }
  std::vector<int32_t> table(size_t{1} << kHashLog, -1);
  const size_t match_limit = n - kEndMargin;   // last valid match start
  const size_t extend_limit = n - kLastLiterals;  // match may not reach here
  size_t anchor = 0;
  size_t i = 0;
  while (i < match_limit) {
    uint32_t h = HashPosition(base + i);
    int32_t cand = table[h];
    table[h] = static_cast<int32_t>(i);
    if (cand < 0 || i - static_cast<size_t>(cand) > kMaxOffset ||
        std::memcmp(base + cand, base + i, kMinMatch) != 0) {
      ++i;
      continue;
    }
    size_t match_len = kMinMatch;
    while (i + match_len < extend_limit &&
           base[static_cast<size_t>(cand) + match_len] ==
               base[i + match_len]) {
      ++match_len;
    }
    EmitSequence(&out, base + anchor, i - anchor,
                 i - static_cast<size_t>(cand), match_len);
    i += match_len;
    anchor = i;
  }
  EmitLastLiterals(&out, base + anchor, n - anchor);
  return out;
}

Result<std::string> Lz4Decompress(std::string_view input,
                                  size_t decompressed_size) {
  std::string out;
  out.reserve(decompressed_size);
  size_t pos = 0;
  while (pos < input.size()) {
    auto token = static_cast<uint8_t>(input[pos]);
    ++pos;
    // Literals.
    size_t literal_len = token >> 4;
    if (literal_len == 15 && !ReadLength(input, &pos, &literal_len)) {
      return Status::IOError("lz4: truncated literal length");
    }
    if (pos + literal_len > input.size()) {
      return Status::IOError("lz4: truncated literals");
    }
    if (out.size() + literal_len > decompressed_size) {
      return Status::IOError("lz4: output overflow in literals");
    }
    out.append(input.data() + pos, literal_len);
    pos += literal_len;
    if (pos == input.size()) break;  // last sequence is literal-only
    // Match.
    if (pos + 2 > input.size()) {
      return Status::IOError("lz4: truncated match offset");
    }
    size_t offset = static_cast<uint8_t>(input[pos]) |
                    static_cast<size_t>(static_cast<uint8_t>(input[pos + 1]))
                        << 8;
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::IOError("lz4: match offset out of range");
    }
    size_t match_len = (token & 0x0F);
    if (match_len == 15 && !ReadLength(input, &pos, &match_len)) {
      return Status::IOError("lz4: truncated match length");
    }
    match_len += kMinMatch;
    if (out.size() + match_len > decompressed_size) {
      return Status::IOError("lz4: output overflow in match");
    }
    // Byte-wise copy: matches may overlap their own output (offset <
    // match_len replicates a short period), so memcpy is not legal here.
    size_t from = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      out.push_back(out[from + k]);
    }
  }
  if (out.size() != decompressed_size) {
    return Status::IOError("lz4: decompressed size mismatch");
  }
  return out;
}

}  // namespace presto
