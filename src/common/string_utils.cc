#include "common/string_utils.h"

#include <cctype>
#include <cstdio>

namespace presto {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

// Recursive matcher over (value[vi:], pattern[pi:]).
bool LikeMatchImpl(std::string_view v, size_t vi, std::string_view p,
                   size_t pi) {
  while (pi < p.size()) {
    char pc = p[pi];
    if (pc == '%') {
      // Collapse consecutive %.
      while (pi < p.size() && p[pi] == '%') ++pi;
      if (pi == p.size()) return true;
      for (size_t k = vi; k <= v.size(); ++k) {
        if (LikeMatchImpl(v, k, p, pi)) return true;
      }
      return false;
    }
    if (vi >= v.size()) return false;
    if (pc != '_' && pc != v[vi]) return false;
    ++vi;
    ++pi;
  }
  return vi == v.size();
}

}  // namespace

bool LikeMatch(std::string_view value, std::string_view pattern) {
  return LikeMatchImpl(value, 0, pattern, 0);
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace presto
