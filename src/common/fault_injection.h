#ifndef PRESTOCPP_COMMON_FAULT_INJECTION_H_
#define PRESTOCPP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace presto {

/// What an armed injection point does when it fires.
struct FaultSpec {
  /// Status returned by the firing point. OK makes the point delay-only.
  Status error = Status::OK();
  /// Sleep applied before the point returns (simulated slow I/O / stall).
  int64_t delay_micros = 0;
  /// Hits to let through unharmed before the point becomes eligible
  /// ("fail on the Nth call": trigger_after_hits = N - 1).
  int64_t trigger_after_hits = 0;
  /// Maximum number of fires; -1 = every eligible hit fires.
  int64_t max_fires = -1;
  /// Probability that an eligible hit fires, decided by a per-point RNG
  /// seeded with `seed` at Arm() time — the fire pattern is a pure function
  /// of (seed, hit ordinal), reproducible across runs.
  double probability = 1.0;
  uint64_t seed = 42;
};

/// Process-wide registry of named failure-injection points (the chaos-test
/// discipline of large query stacks): production code declares points with
/// PRESTO_FAULT_POINT("layer.operation"); tests arm them to return an error
/// Status, inject latency, or trigger on the Nth hit. When nothing is armed
/// every point is a single relaxed atomic load and a not-taken branch.
///
/// Points currently declared in the engine:
///   scan.create_source   connector DataSource creation (TableScanOperator)
///   scan.next_page       connector page read (TableScanOperator)
///   exchange.enqueue     shuffle producer (ExchangeSinkOperator)
///   exchange.poll        shuffle consumer (RemoteSourceOperator)
///   exchange.frame_decode  wire-frame decode before a polled frame is
///                          deserialized (RemoteSourceOperator)
///   exchange.http_send   HTTP exchange request lost before reaching the
///                        wire (ExchangeHttpClient; absorbed by retry)
///   exchange.http_recv   HTTP exchange response lost in transit; the
///                        retry re-fetches the same un-acked token
///   exchange.http_server server-side handler failure surfaced as a 5xx
///                        (ExchangeHttpService)
///   http.server_serve    request dispatch on any HttpServer answered with
///                        a 500 before reaching the handler
///   worker.task_service  /v1/task endpoint failure surfaced as a 500
///                        (TaskService)
///   spill.write          Spiller::SpillRun file I/O
///   spill.read           Spiller::ReadRun file I/O
///   spill.decompress     per-frame decode in Spiller::ReadRun
///   memory.reserve       WorkerMemory::Reserve admission
///   executor.run_driver  TaskExecutor before each driver quantum
///   executor.driver_stall  delay-only stall before each driver quantum
///                          (straggler injection, ISSUE 9); armed errors
///                          are ignored by the executor
///   worker.status_progress_freeze  pins the progress counters reported in
///                          GET /v1/task/{id}/status at their last values
///                          when armed with any non-OK error (the error is
///                          never propagated)
class FaultInjection {
 public:
  static FaultInjection& Instance();

  /// Fast path compiled into every PRESTO_FAULT_POINT: false whenever no
  /// point is armed, so disarmed points cost one relaxed load.
  static bool Enabled() {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms, resetting counters) a named point.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Lifetime hit/fire counters of a point since it was (re-)armed;
  /// 0 for unknown points.
  int64_t hits(const std::string& point) const;
  int64_t fires(const std::string& point) const;
  std::vector<std::string> ArmedPoints() const;

  /// Slow path: records the hit and decides whether the point fires.
  /// Returns the armed error (after any delay) or OK.
  Status Hit(const std::string& point);

 private:
  struct PointState {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
    std::mt19937_64 rng;
  };

  FaultInjection() = default;

  static std::atomic<int> armed_points_;

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
};

/// Declares a named injection point in Status/Result-returning code: when
/// the point is armed and fires, the enclosing function returns the armed
/// error. A no-op branch when nothing is armed.
#define PRESTO_FAULT_POINT(point)                                  \
  do {                                                             \
    if (::presto::FaultInjection::Enabled()) {                     \
      PRESTO_RETURN_IF_ERROR(                                      \
          ::presto::FaultInjection::Instance().Hit(point));        \
    }                                                              \
  } while (0)

}  // namespace presto

#endif  // PRESTOCPP_COMMON_FAULT_INJECTION_H_
