#ifndef PRESTOCPP_COMMON_STOPWATCH_H_
#define PRESTOCPP_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace presto {

/// Wall-clock stopwatch used for scheduling quanta, query timing, and the
/// benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  int64_t ElapsedMillis() const { return ElapsedNanos() / 1000000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace presto

#endif  // PRESTOCPP_COMMON_STOPWATCH_H_
