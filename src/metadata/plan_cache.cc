#include "metadata/plan_cache.h"

#include "common/hash.h"
#include "sql/lexer.h"

namespace presto {

uint64_t FingerprintSql(const std::string& sql) {
  Result<std::vector<sql::Token>> tokens = sql::Tokenize(sql);
  if (!tokens.ok()) {
    return XxHash64(sql.data(), sql.size());
  }
  std::string canonical;
  canonical.reserve(sql.size());
  for (const auto& token : *tokens) {
    if (token.kind == sql::TokenKind::kEnd) break;
    // Type-tag each token so VARCHAR '1' and INTEGER 1 cannot collide.
    canonical += static_cast<char>('a' + static_cast<int>(token.kind));
    canonical += token.text;
    canonical += '\x1f';
  }
  return XxHash64(canonical.data(), canonical.size());
}

bool PlanCache::DepsValid(const std::vector<PlanDependency>& deps,
                          const Catalog& catalog) {
  for (const auto& dep : deps) {
    Result<Connector*> connector = catalog.Get(dep.catalog);
    if (!connector.ok()) return false;
    if ((*connector)->metadata().GetTableVersion(dep.table) != dep.version) {
      return false;
    }
  }
  return true;
}

std::optional<FragmentedPlan> PlanCache::Lookup(uint64_t fingerprint,
                                                const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  if (!DepsValid(it->second.deps, catalog)) {
    entries_.erase(it);
    invalidations_.fetch_add(1);
    misses_.fetch_add(1);
    return std::nullopt;
  }
  hits_.fetch_add(1);
  return it->second.plan;
}

void PlanCache::Insert(uint64_t fingerprint, FragmentedPlan plan,
                       std::vector<PlanDependency> deps,
                       const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  // Revalidate under the cache lock: if a write bumped any dependency
  // between planning and here, its hook either already ran (nothing to
  // erase — we must not insert) or will run after we insert (and will
  // erase). Both orders leave no stale entry behind.
  if (!DepsValid(deps, catalog)) return;
  if (entries_.size() >= options_.max_entries) {
    entries_.clear();
  }
  entries_[fingerprint] = Entry{std::move(plan), std::move(deps)};
}

void PlanCache::InvalidateTable(const std::string& catalog,
                                const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool depends = false;
    for (const auto& dep : it->second.deps) {
      if (dep.catalog == catalog && dep.table == table) {
        depends = true;
        break;
      }
    }
    if (depends) {
      it = entries_.erase(it);
      invalidations_.fetch_add(1);
    } else {
      ++it;
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace presto
