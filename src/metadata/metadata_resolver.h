#ifndef PRESTOCPP_METADATA_METADATA_RESOLVER_H_
#define PRESTOCPP_METADATA_METADATA_RESOLVER_H_

#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

/// Everything one planning session needs about one table, resolved as a
/// consistent bundle under one MetadataVersion.
struct ResolvedTable {
  std::string catalog;  // resolved catalog name (never empty)
  TableHandlePtr handle;
  TableStats stats;  // invalid (row_count < 0) if the connector has none
  std::vector<DataLayout> layouts;
  MetadataVersion version = 0;
};

/// The seam between the planning path and connector metadata (ISSUE 8):
/// the analyzer/planner/optimizer never call ConnectorMetadata directly —
/// they resolve tables through this interface, which lets one query see a
/// single consistent version per table (MetadataSnapshot) and lets the
/// engine layer a cross-query MetadataCache underneath without either
/// component knowing.
class MetadataResolver {
 public:
  virtual ~MetadataResolver() = default;

  /// The catalog behind this resolver (for default-name resolution and
  /// write-path operations, which are never cached).
  virtual const Catalog* catalog() const = 0;

  /// Resolves `catalog_name` (empty = default catalog) + `table` to a
  /// metadata bundle. The pointer stays valid for the resolver's lifetime;
  /// repeated calls for the same table return the same bundle.
  virtual Result<const ResolvedTable*> Resolve(
      const std::string& catalog_name, const std::string& table) = 0;

  /// Pushdown capability check, forwarded to the connector (a pure
  /// function of the handle + predicate; not cached).
  virtual PushdownSupport GetPushdownSupport(const std::string& catalog_name,
                                             const TableHandle& table,
                                             const ColumnPredicate& pred) = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_METADATA_METADATA_RESOLVER_H_
