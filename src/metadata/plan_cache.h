#ifndef PRESTOCPP_METADATA_PLAN_CACHE_H_
#define PRESTOCPP_METADATA_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "fragment/fragmenter.h"

namespace presto {

/// One (catalog, table, version) triple a cached plan was built against.
struct PlanDependency {
  std::string catalog;
  std::string table;
  MetadataVersion version = 0;
};

/// Canonical 64-bit fingerprint of a SQL statement: the token stream
/// (keywords and unquoted identifiers already case-folded by the lexer,
/// comments and whitespace gone) hashed with type tags, so `SELECT 1` and
/// `select   1 -- x` collide and `'1'` vs `1` do not. Unparseable input
/// falls back to hashing the raw text (still deterministic, never errors).
uint64_t FingerprintSql(const std::string& sql);

/// Prepared-plan cache — the third planning-path cache layer (ISSUE 8).
/// Keyed by FingerprintSql; a hit returns the optimized FragmentedPlan
/// (immutable shared plan-node trees, safe to re-execute concurrently)
/// without re-running analyze/plan/optimize/fragment.
///
/// Correctness protocol: every entry carries the PlanDependency list its
/// planning session recorded — each dependency's version was read *before*
/// that table's metadata was fetched. Lookup revalidates every dependency
/// against the live connector versions; Insert does the same under the
/// cache lock, so with bump-then-hook ordering on the write path there is
/// no interleaving in which a stale plan survives: either the hook's
/// InvalidateTable erases the entry, or the version check refuses it.
struct PlanCacheOptions {
  size_t max_entries = 1024;
};

class PlanCache {
 public:

  explicit PlanCache(PlanCacheOptions options = {}) : options_(options) {}

  /// Returns the cached plan iff every dependency is still at its recorded
  /// version (resolved via `catalog`); erases invalid entries.
  std::optional<FragmentedPlan> Lookup(uint64_t fingerprint,
                                       const Catalog& catalog);

  /// Caches a freshly built plan; a no-op if any dependency already moved
  /// past its recorded version (the query raced a write).
  void Insert(uint64_t fingerprint, FragmentedPlan plan,
              std::vector<PlanDependency> deps, const Catalog& catalog);

  /// Drops every plan that depends on (catalog, table) — the invalidation
  /// hook path, run synchronously on the mutating thread.
  void InvalidateTable(const std::string& catalog, const std::string& table);

  void Clear();

  size_t size() const;
  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }
  int64_t invalidations() const { return invalidations_.load(); }

 private:
  struct Entry {
    FragmentedPlan plan;
    std::vector<PlanDependency> deps;
  };

  static bool DepsValid(const std::vector<PlanDependency>& deps,
                        const Catalog& catalog);

  PlanCacheOptions options_;
  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_METADATA_PLAN_CACHE_H_
