#ifndef PRESTOCPP_METADATA_SPLIT_CACHE_H_
#define PRESTOCPP_METADATA_SPLIT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

/// Split-enumeration cache — the second planning-path cache layer (ISSUE
/// 8). Split enumeration is a pure function of (table contents, ScanSpec):
/// the cache stores the fully materialized split list keyed by catalog +
/// table + ScanSpec::Fingerprint() (which canonicalizes layout, projected
/// columns, sorted predicates, and worker count), validated against the
/// table's MetadataVersion on every lookup.
///
/// Split objects are immutable shared_ptrs, so replaying a cached list to
/// a new query is safe; only the enumeration cost (directory listing,
/// shard lookup, per-split construction) is elided.
struct SplitCacheOptions {
  size_t max_tables = 1024;
};

class SplitCache {
 public:

  explicit SplitCache(SplitCacheOptions options = {}) : options_(options) {}

  /// Returns the cached split list for (catalog, table, fingerprint) iff
  /// it was recorded under `current_version`; erases and misses otherwise.
  std::optional<std::vector<SplitPtr>> Lookup(const std::string& catalog,
                                              const std::string& table,
                                              uint64_t fingerprint,
                                              MetadataVersion current_version);

  /// Records a fully enumerated split list. `version` must be the table
  /// version read *before* enumeration started; if the table has already
  /// moved past it the caller should not insert (see RecordingSplitSource).
  void Insert(const std::string& catalog, const std::string& table,
              uint64_t fingerprint, MetadataVersion version,
              std::vector<SplitPtr> splits);

  /// Drops every cached enumeration for one table.
  void Invalidate(const std::string& catalog, const std::string& table);

  void Clear();

  /// Number of cached split lists (across all tables/fingerprints).
  size_t size() const;
  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }
  int64_t invalidations() const { return invalidations_.load(); }

 private:
  struct TableEntry {
    MetadataVersion version = 0;
    // fingerprint -> materialized splits, all recorded under `version`.
    std::map<uint64_t, std::vector<SplitPtr>> by_fingerprint;
  };

  SplitCacheOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, TableEntry> tables_;  // key "catalog\0table"
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
};

/// Replays a cached split list through the lazy SplitSource protocol
/// (§IV-D3) — the scheduling loop cannot tell a cached enumeration from a
/// live one.
class CachedSplitSource final : public SplitSource {
 public:
  explicit CachedSplitSource(std::vector<SplitPtr> splits)
      : splits_(std::move(splits)) {}
  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override;

 private:
  std::vector<SplitPtr> splits_;
  size_t pos_ = 0;
};

/// Wraps a live connector SplitSource, accumulating every batch; when the
/// source is exhausted, inserts the full list into `cache` — but only if
/// the table is still at the version observed before enumeration began
/// (`FinishFn` re-reads the live version), so a mid-enumeration write can
/// never leave a stale list behind.
class RecordingSplitSource final : public SplitSource {
 public:
  using VersionFn = std::function<MetadataVersion()>;

  RecordingSplitSource(std::unique_ptr<SplitSource> inner, SplitCache* cache,
                       std::string catalog, std::string table,
                       uint64_t fingerprint, MetadataVersion version,
                       VersionFn current_version)
      : inner_(std::move(inner)),
        cache_(cache),
        catalog_(std::move(catalog)),
        table_(std::move(table)),
        fingerprint_(fingerprint),
        version_(version),
        current_version_(std::move(current_version)) {}

  Result<std::vector<SplitPtr>> NextBatch(int max_batch) override;

 private:
  std::unique_ptr<SplitSource> inner_;
  SplitCache* cache_;
  std::string catalog_;
  std::string table_;
  uint64_t fingerprint_;
  MetadataVersion version_;
  VersionFn current_version_;
  std::vector<SplitPtr> recorded_;
  bool done_ = false;
};

}  // namespace presto

#endif  // PRESTOCPP_METADATA_SPLIT_CACHE_H_
