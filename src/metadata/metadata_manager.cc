#include "metadata/metadata_manager.h"

#include "common/json.h"

namespace presto {

MetadataManager::MetadataManager(const Catalog* catalog,
                                 MetadataManagerOptions options)
    : catalog_(catalog),
      options_(options),
      metadata_cache_(options.metadata_cache),
      split_cache_(options.split_cache),
      plan_cache_(options.plan_cache) {}

MetadataManager::~MetadataManager() {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  for (auto& [_, hooked] : hooked_) {
    hooked.first->metadata().RemoveInvalidationHook(hooked.second);
  }
  hooked_.clear();
}

void MetadataManager::EnsureHooked(const std::string& catalog_name,
                                   Connector* connector) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  if (hooked_.count(catalog_name) > 0) return;
  int id = connector->metadata().AddInvalidationHook(
      [this, catalog_name](const std::string& table) {
        OnTableMutated(catalog_name, table);
      });
  hooked_[catalog_name] = {connector, id};
}

void MetadataManager::OnTableMutated(const std::string& catalog_name,
                                     const std::string& table) {
  // Runs synchronously on the mutating thread, after the version bump: by
  // the time the write call returns, no cache layer serves the table.
  metadata_cache_.Invalidate(catalog_name, table);
  split_cache_.Invalidate(catalog_name, table);
  plan_cache_.InvalidateTable(catalog_name, table);
}

std::unique_ptr<MetadataSnapshot> MetadataManager::NewSnapshot() {
  // Hook everything currently registered so a first-ever write to a table
  // this query reads still fires invalidation.
  for (const auto& name : catalog_->ConnectorNames()) {
    if (Result<Connector*> connector = catalog_->Get(name); connector.ok()) {
      EnsureHooked(name, *connector);
    }
  }
  return std::make_unique<MetadataSnapshot>(
      catalog_, options_.enable_metadata_cache ? &metadata_cache_ : nullptr);
}

Result<std::unique_ptr<SplitSource>> MetadataManager::GetSplits(
    const std::string& catalog_name, Connector* connector,
    const ScanSpec& spec) {
  if (!options_.enable_split_cache || spec.table == nullptr) {
    return connector->GetSplits(spec);
  }
  EnsureHooked(catalog_name, connector);
  ConnectorMetadata& metadata = connector->metadata();
  const std::string& table = spec.table->name();
  MetadataVersion version = metadata.GetTableVersion(table);
  uint64_t fingerprint = spec.Fingerprint();
  if (auto cached =
          split_cache_.Lookup(catalog_name, table, fingerprint, version)) {
    return std::unique_ptr<SplitSource>(
        new CachedSplitSource(std::move(*cached)));
  }
  PRESTO_ASSIGN_OR_RETURN(std::unique_ptr<SplitSource> source,
                          connector->GetSplits(spec));
  return std::unique_ptr<SplitSource>(new RecordingSplitSource(
      std::move(source), &split_cache_, catalog_name, table, fingerprint,
      version,
      [m = &metadata, table] { return m->GetTableVersion(table); }));
}

void MetadataManager::Invalidate(const std::string& catalog_name,
                                 const std::string& table) {
  OnTableMutated(catalog_name, table);
}

namespace {

Json LayerJson(const char* name, size_t size, int64_t hits, int64_t misses,
               int64_t invalidations) {
  Json layer = Json::Object();
  int64_t total = hits + misses;
  layer.Set("name", Json::Str(name))
      .Set("size", Json::Int(static_cast<int64_t>(size)))
      .Set("hits", Json::Int(hits))
      .Set("misses", Json::Int(misses))
      .Set("invalidations", Json::Int(invalidations))
      .Set("hit_ratio",
           Json::Real(total == 0 ? 0.0
                                 : static_cast<double>(hits) /
                                       static_cast<double>(total)));
  return layer;
}

}  // namespace

std::string MetadataManager::ToJson() const {
  Json out = Json::Object();
  out.Set("metadata_cache",
          LayerJson("metadata_cache", metadata_cache_.size(),
                    metadata_cache_.hits(), metadata_cache_.misses(),
                    metadata_cache_.invalidations()));
  out.Set("split_cache",
          LayerJson("split_cache", split_cache_.size(), split_cache_.hits(),
                    split_cache_.misses(), split_cache_.invalidations()));
  out.Set("plan_cache",
          LayerJson("plan_cache", plan_cache_.size(), plan_cache_.hits(),
                    plan_cache_.misses(), plan_cache_.invalidations()));
  Json enabled = Json::Object();
  enabled.Set("metadata_cache", Json::Bool(options_.enable_metadata_cache))
      .Set("split_cache", Json::Bool(options_.enable_split_cache))
      .Set("plan_cache", Json::Bool(options_.enable_plan_cache));
  out.Set("enabled", std::move(enabled));
  Json tables = Json::Array();
  for (const auto& name : catalog_->ConnectorNames()) {
    Result<Connector*> connector = catalog_->Get(name);
    if (!connector.ok()) continue;
    ConnectorMetadata& metadata = (*connector)->metadata();
    for (const auto& table : metadata.ListTables()) {
      Json row = Json::Object();
      row.Set("catalog", Json::Str(name))
          .Set("table", Json::Str(table))
          .Set("version", Json::Int(metadata.GetTableVersion(table)));
      tables.Append(std::move(row));
    }
  }
  out.Set("tables", std::move(tables));
  return out.Serialize();
}

}  // namespace presto
