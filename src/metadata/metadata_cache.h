#ifndef PRESTOCPP_METADATA_METADATA_CACHE_H_
#define PRESTOCPP_METADATA_METADATA_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connector/connector.h"

namespace presto {

/// Coordinator-side cache of per-table metadata bundles — the first of the
/// three planning-path cache layers (ISSUE 8, after "Metadata Caching in
/// Presto", arXiv 2211.10889). An entry holds everything one planning
/// session needs about a table (handle, stats, layouts) together with the
/// MetadataVersion it was fetched under. Entries die in two ways:
///
///  - *invalidation*: the connector bumped the table's version (the caller
///    passes the current version to Lookup, and write-path hooks call
///    Invalidate eagerly), or
///  - *expiry*: a wall-clock TTL, the backstop for external mutations no
///    hook observes.
struct MetadataCacheOptions {
  /// Entry lifetime; <= 0 disables expiry (version checks still apply).
  int64_t ttl_nanos = 60LL * 1000 * 1000 * 1000;
  size_t max_entries = 4096;
};

class MetadataCache {
 public:

  /// One cached per-table metadata bundle. Immutable once inserted.
  struct Entry {
    TableHandlePtr handle;
    TableStats stats;
    std::vector<DataLayout> layouts;
    MetadataVersion version = 0;
    int64_t expires_nanos = 0;  // vs the caller-supplied clock; 0 = never
  };

  explicit MetadataCache(MetadataCacheOptions options = {})
      : options_(options) {}

  /// Returns the entry for catalog.table iff it is still valid: its
  /// recorded version equals `current_version` and it has not expired at
  /// `now_nanos`. An invalid entry is erased on the way out.
  std::shared_ptr<const Entry> Lookup(const std::string& catalog,
                                      const std::string& table,
                                      MetadataVersion current_version,
                                      int64_t now_nanos);

  /// Inserts (replacing any previous entry). `entry->version` must be the
  /// version read *before* the metadata was fetched, so a concurrent bump
  /// makes the entry unservable rather than stale.
  void Insert(const std::string& catalog, const std::string& table,
              std::shared_ptr<const Entry> entry);

  /// Drops the entry for one table (invalidation hooks + manual drops).
  void Invalidate(const std::string& catalog, const std::string& table);

  void Clear();

  /// Entry lifetime for callers computing expires_nanos; <= 0 = no expiry.
  int64_t ttl_nanos() const { return options_.ttl_nanos; }

  size_t size() const;
  int64_t hits() const { return hits_.load(); }
  int64_t misses() const { return misses_.load(); }
  int64_t invalidations() const { return invalidations_.load(); }

 private:
  MetadataCacheOptions options_;
  mutable std::mutex mu_;
  // Key: "catalog\0table" (catalog and table names never contain NUL).
  std::map<std::string, std::shared_ptr<const Entry>> entries_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_METADATA_METADATA_CACHE_H_
