#ifndef PRESTOCPP_METADATA_METADATA_MANAGER_H_
#define PRESTOCPP_METADATA_METADATA_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metadata/metadata_cache.h"
#include "metadata/metadata_snapshot.h"
#include "metadata/plan_cache.h"
#include "metadata/split_cache.h"

namespace presto {

struct MetadataManagerOptions {
  bool enable_metadata_cache = true;
  bool enable_split_cache = true;
  bool enable_plan_cache = true;
  MetadataCacheOptions metadata_cache;
  SplitCacheOptions split_cache;
  PlanCacheOptions plan_cache;
};

/// Owns the three planning-path cache layers (ISSUE 8) and wires them to
/// the versioned ConnectorMetadata API: the first time a connector is seen
/// on any cached path, the manager registers an invalidation hook with it,
/// so every write-path BumpTableVersion synchronously erases the table's
/// metadata entry, its split enumerations, and every dependent cached plan
/// before the mutating call returns.
///
/// Connectors register with the catalog at any time (tests add them after
/// engine construction), hence the lazy hooking; version validation at
/// every cache lookup keeps the window before the first hook safe.
class MetadataManager {
 public:
  explicit MetadataManager(const Catalog* catalog,
                           MetadataManagerOptions options = {});
  ~MetadataManager();

  MetadataManager(const MetadataManager&) = delete;
  MetadataManager& operator=(const MetadataManager&) = delete;

  const Catalog* catalog() const { return catalog_; }
  const MetadataManagerOptions& options() const { return options_; }

  MetadataCache& metadata_cache() { return metadata_cache_; }
  SplitCache& split_cache() { return split_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }

  /// A per-query resolver over the shared MetadataCache (or uncached when
  /// the metadata cache is disabled). Hooks the touched connectors.
  std::unique_ptr<MetadataSnapshot> NewSnapshot();

  /// Split enumeration through the split cache: returns a replaying source
  /// on a hit, a recording wrapper around the connector's live enumeration
  /// on a miss, or the raw source when the split cache is disabled.
  Result<std::unique_ptr<SplitSource>> GetSplits(
      const std::string& catalog_name, Connector* connector,
      const ScanSpec& spec);

  /// Manually drops (catalog, table) from all three cache layers without
  /// touching connector versions — PrestoEngine::InvalidateMetadata.
  void Invalidate(const std::string& catalog_name, const std::string& table);

  /// Registers a write-path invalidation hook with `connector` once
  /// (idempotent). Called lazily from every cached path; public so tests
  /// and the engine can hook eagerly after catalog registration.
  void EnsureHooked(const std::string& catalog_name, Connector* connector);

  /// JSON for GET /v1/metadata/cache: per-layer sizes/hits/misses/
  /// invalidations/hit ratios plus per-table live versions.
  std::string ToJson() const;

 private:
  void OnTableMutated(const std::string& catalog_name,
                      const std::string& table);

  const Catalog* catalog_;
  MetadataManagerOptions options_;
  MetadataCache metadata_cache_;
  SplitCache split_cache_;
  PlanCache plan_cache_;

  std::mutex hooks_mu_;
  // catalog name -> (connector hooked, hook id for removal at shutdown).
  std::map<std::string, std::pair<Connector*, int>> hooked_;
};

}  // namespace presto

#endif  // PRESTOCPP_METADATA_METADATA_MANAGER_H_
