#include "metadata/split_cache.h"

namespace presto {

namespace {
std::string Key(const std::string& catalog, const std::string& table) {
  std::string key = catalog;
  key += '\0';
  key += table;
  return key;
}
}  // namespace

std::optional<std::vector<SplitPtr>> SplitCache::Lookup(
    const std::string& catalog, const std::string& table,
    uint64_t fingerprint, MetadataVersion current_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key(catalog, table));
  if (it == tables_.end()) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  if (it->second.version != current_version) {
    invalidations_.fetch_add(1);
    misses_.fetch_add(1);
    tables_.erase(it);
    return std::nullopt;
  }
  auto fit = it->second.by_fingerprint.find(fingerprint);
  if (fit == it->second.by_fingerprint.end()) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  hits_.fetch_add(1);
  return fit->second;
}

void SplitCache::Insert(const std::string& catalog, const std::string& table,
                        uint64_t fingerprint, MetadataVersion version,
                        std::vector<SplitPtr> splits) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.size() >= options_.max_tables) {
    tables_.clear();
  }
  TableEntry& entry = tables_[Key(catalog, table)];
  if (entry.version != version) {
    // Either a fresh entry or one recorded under a different version;
    // every fingerprint list must share one version, so start over.
    entry.version = version;
    entry.by_fingerprint.clear();
  }
  entry.by_fingerprint[fingerprint] = std::move(splits);
}

void SplitCache::Invalidate(const std::string& catalog,
                            const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(Key(catalog, table)) > 0) {
    invalidations_.fetch_add(1);
  }
}

void SplitCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.clear();
}

size_t SplitCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, entry] : tables_) total += entry.by_fingerprint.size();
  return total;
}

Result<std::vector<SplitPtr>> CachedSplitSource::NextBatch(int max_batch) {
  std::vector<SplitPtr> out;
  while (pos_ < splits_.size() && static_cast<int>(out.size()) < max_batch) {
    out.push_back(splits_[pos_++]);
  }
  return out;
}

Result<std::vector<SplitPtr>> RecordingSplitSource::NextBatch(int max_batch) {
  PRESTO_ASSIGN_OR_RETURN(std::vector<SplitPtr> batch,
                          inner_->NextBatch(max_batch));
  if (!done_) {
    for (const auto& split : batch) recorded_.push_back(split);
    if (batch.empty()) {
      done_ = true;
      // Only publish if the table did not move while we enumerated; a
      // write that landed mid-enumeration may have produced a split list
      // that reflects neither the old nor the new table state.
      if (cache_ != nullptr && current_version_() == version_) {
        cache_->Insert(catalog_, table_, fingerprint_, version_,
                       std::move(recorded_));
      }
      recorded_.clear();
    }
  }
  return batch;
}

}  // namespace presto
