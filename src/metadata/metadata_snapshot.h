#ifndef PRESTOCPP_METADATA_METADATA_SNAPSHOT_H_
#define PRESTOCPP_METADATA_METADATA_SNAPSHOT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metadata/metadata_cache.h"
#include "metadata/metadata_resolver.h"
#include "metadata/plan_cache.h"

namespace presto {

/// Per-query metadata view (ISSUE 8). Fixes the duplicate-lookup bug:
/// `Connector::GetTable` used to be re-invoked for every reference to the
/// same table within one query (self-joins, subqueries), so two references
/// could observe *different* versions of a concurrently mutating table.
/// The snapshot memoizes the first resolution, giving the whole planning
/// session one consistent bundle per table, and records every (catalog,
/// table, version) it read — the dependency set a cached plan is validated
/// against.
///
/// With a MetadataCache attached, resolution goes through it; without one
/// (the compatibility constructors on Planner/Optimizer) the snapshot
/// fetches directly but still memoizes and records dependencies.
///
/// Not thread-safe: one snapshot serves one planning session on one
/// thread, then dies (or donates deps() to the plan cache).
class MetadataSnapshot final : public MetadataResolver {
 public:
  explicit MetadataSnapshot(const Catalog* catalog,
                            MetadataCache* cache = nullptr)
      : catalog_(catalog), cache_(cache) {}

  const Catalog* catalog() const override { return catalog_; }

  Result<const ResolvedTable*> Resolve(const std::string& catalog_name,
                                       const std::string& table) override;

  PushdownSupport GetPushdownSupport(const std::string& catalog_name,
                                     const TableHandle& table,
                                     const ColumnPredicate& pred) override;

  /// Every distinct table this snapshot resolved, with the version it was
  /// resolved at — the cached plan's dependency set.
  const std::vector<PlanDependency>& deps() const { return deps_; }

  /// Cross-query cache hits / total resolutions within this snapshot
  /// (memoized repeats are neither).
  int64_t cache_hits() const { return cache_hits_; }
  int64_t resolutions() const { return resolutions_; }

 private:
  const Catalog* catalog_;
  MetadataCache* cache_;  // nullable: direct (uncached) resolution
  // Key "catalog\0table" -> memoized bundle; pointers handed out point at
  // the map values, stable because std::map never relocates nodes.
  std::map<std::string, ResolvedTable> memo_;
  std::vector<PlanDependency> deps_;
  int64_t cache_hits_ = 0;
  int64_t resolutions_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_METADATA_METADATA_SNAPSHOT_H_
