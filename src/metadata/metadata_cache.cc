#include "metadata/metadata_cache.h"

namespace presto {

namespace {
std::string Key(const std::string& catalog, const std::string& table) {
  std::string key = catalog;
  key += '\0';
  key += table;
  return key;
}
}  // namespace

std::shared_ptr<const MetadataCache::Entry> MetadataCache::Lookup(
    const std::string& catalog, const std::string& table,
    MetadataVersion current_version, int64_t now_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(catalog, table));
  if (it == entries_.end()) {
    misses_.fetch_add(1);
    return nullptr;
  }
  const Entry& entry = *it->second;
  if (entry.version != current_version) {
    // The table mutated since this entry was fetched; the version check is
    // what makes a hook-less mutation path safe too.
    entries_.erase(it);
    invalidations_.fetch_add(1);
    misses_.fetch_add(1);
    return nullptr;
  }
  if (entry.expires_nanos != 0 && now_nanos >= entry.expires_nanos) {
    entries_.erase(it);
    misses_.fetch_add(1);
    return nullptr;
  }
  hits_.fetch_add(1);
  return it->second;
}

void MetadataCache::Insert(const std::string& catalog,
                           const std::string& table,
                           std::shared_ptr<const Entry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= options_.max_entries) {
    // Simple overflow policy: start over. Planning re-warms quickly and the
    // cap exists only to bound memory.
    entries_.clear();
  }
  entries_[Key(catalog, table)] = std::move(entry);
}

void MetadataCache::Invalidate(const std::string& catalog,
                               const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(Key(catalog, table)) > 0) {
    invalidations_.fetch_add(1);
  }
}

void MetadataCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t MetadataCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace presto
