#include "metadata/metadata_snapshot.h"

#include <chrono>

namespace presto {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<const ResolvedTable*> MetadataSnapshot::Resolve(
    const std::string& catalog_name, const std::string& table) {
  std::string resolved_catalog =
      catalog_name.empty() ? catalog_->default_name() : catalog_name;
  std::string key = resolved_catalog;
  key += '\0';
  key += table;
  auto memo_it = memo_.find(key);
  if (memo_it != memo_.end()) {
    // Second reference within this query (self-join / subquery): same
    // bundle, same version — and no second connector round trip.
    return &memo_it->second;
  }
  ++resolutions_;
  PRESTO_ASSIGN_OR_RETURN(Connector * connector,
                          catalog_->Get(resolved_catalog));
  ConnectorMetadata& metadata = connector->metadata();
  // Read the version BEFORE fetching: if a write lands mid-fetch, the
  // recorded version is older than what the write published, so dependent
  // cache entries fail validation instead of serving mixed-version state.
  MetadataVersion version = metadata.GetTableVersion(table);
  ResolvedTable entry;
  bool from_cache = false;
  if (cache_ != nullptr) {
    if (auto cached =
            cache_->Lookup(resolved_catalog, table, version, NowNanos())) {
      entry.catalog = resolved_catalog;
      entry.handle = cached->handle;
      entry.stats = cached->stats;
      entry.layouts = cached->layouts;
      entry.version = cached->version;
      from_cache = true;
      ++cache_hits_;
    }
  }
  if (!from_cache) {
    PRESTO_ASSIGN_OR_RETURN(TableHandlePtr handle, metadata.GetTable(table));
    entry.catalog = resolved_catalog;
    entry.handle = std::move(handle);
    if (Result<TableStats> stats = metadata.GetStats(*entry.handle);
        stats.ok()) {
      entry.stats = *stats;
    }
    entry.layouts = metadata.GetLayouts(*entry.handle);
    entry.version = version;
    if (cache_ != nullptr &&
        metadata.GetTableVersion(table) == version) {
      // Only publish if the table held still across the fetch.
      auto cached = std::make_shared<MetadataCache::Entry>();
      cached->handle = entry.handle;
      cached->stats = entry.stats;
      cached->layouts = entry.layouts;
      cached->version = version;
      cached->expires_nanos =
          cache_->ttl_nanos() > 0 ? NowNanos() + cache_->ttl_nanos() : 0;
      cache_->Insert(resolved_catalog, table, std::move(cached));
    }
  }
  deps_.push_back(PlanDependency{resolved_catalog, table, entry.version});
  auto [it, _] = memo_.emplace(std::move(key), std::move(entry));
  return &it->second;
}

PushdownSupport MetadataSnapshot::GetPushdownSupport(
    const std::string& catalog_name, const TableHandle& table,
    const ColumnPredicate& pred) {
  std::string resolved_catalog =
      catalog_name.empty() ? catalog_->default_name() : catalog_name;
  Result<Connector*> connector = catalog_->Get(resolved_catalog);
  if (!connector.ok()) return PushdownSupport::kUnsupported;
  return (*connector)->metadata().GetPushdownSupport(table, pred);
}

}  // namespace presto
