#include "memory/memory.h"

#include <algorithm>
#include <thread>

#include "common/check.h"
#include "common/fault_injection.h"
#include "stats/trace.h"

namespace presto {

void QueryMemory::Kill(const Status& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!killed_.load()) {
    kill_reason_ = reason;
    killed_.store(true);
  }
}

Status QueryMemory::kill_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kill_reason_;
}

Status WorkerMemory::Reserve(QueryMemory* query, int64_t bytes, bool user) {
  PRESTO_DCHECK(bytes >= 0);
  if (query->killed()) return query->kill_reason();
  if (FaultInjection::Enabled()) {
    Status injected = FaultInjection::Instance().Hit("memory.reserve");
    if (!injected.ok()) {
      // An allocation failure is fatal for the whole query, exactly like a
      // real limit breach below — kill so sibling drivers fail fast too.
      query->Kill(injected);
      return injected;
    }
  }
  const MemoryConfig& cfg = *config_;

  std::unique_lock<std::mutex> lock(mu_);
  QueryUsage& usage = usage_[query];

  // Per-query limits (per-node and global, user and total).
  int64_t new_user = usage.user + (user ? bytes : 0);
  int64_t new_total = usage.total + bytes;
  int64_t new_global_user = query->global_user() + (user ? bytes : 0);
  int64_t new_global_total = query->global_total() + bytes;
  Status limit_error;
  if (user && new_user > cfg.per_query_per_node_user) {
    limit_error = Status::ResourceExhausted(
        "query " + query->query_id() + " exceeded per-node user memory limit");
  } else if (new_total > cfg.per_query_per_node_total) {
    limit_error = Status::ResourceExhausted(
        "query " + query->query_id() +
        " exceeded per-node total memory limit");
  } else if (user && new_global_user > cfg.per_query_global_user) {
    limit_error = Status::ResourceExhausted(
        "query " + query->query_id() + " exceeded global user memory limit");
  } else if (new_global_total > cfg.per_query_global_total) {
    limit_error = Status::ResourceExhausted(
        "query " + query->query_id() + " exceeded global total memory limit");
  }
  if (!limit_error.ok()) {
    lock.unlock();
    query->Kill(limit_error);
    return limit_error;
  }

  auto commit = [&](bool in_reserved) {
    usage.user = new_user;
    usage.total = new_total;
    if (in_reserved) {
      usage.in_reserved += bytes;
      reserved_used_ += bytes;
    } else {
      general_used_ += bytes;
      peak_general_used_ = std::max(peak_general_used_, general_used_);
    }
    query->AddGlobal(user ? bytes : 0, bytes);
  };

  // 1. General pool.
  if (general_used_ + bytes <= cfg.per_worker_general) {
    commit(false);
    return Status::OK();
  }

  // 2. Revocation (spilling): ask spillable operators — the requester's
  // own first, then others on this worker — to free memory (§IV-F2).
  // Several passes: an operator that is mid-update skips its Revoke (its
  // lock is busy), so retry briefly before giving up.
  if (cfg.enable_spill && !revocables_.empty()) {
    lock.unlock();
    TraceRecorder* trace = query->trace();
    int64_t revoke_start = trace != nullptr ? trace->NowNanos() : 0;
    int64_t revokes_before = revocations_.load();
    for (int pass = 0; pass < 4; ++pass) {
      std::vector<std::pair<QueryMemory*, Revocable*>> targets;
      {
        std::lock_guard<std::mutex> relock(mu_);
        if (general_used_ + bytes <= cfg.per_worker_general) break;
        targets = revocables_;
      }
      std::stable_sort(targets.begin(), targets.end(),
                       [query](const auto& a, const auto& b) {
                         return (a.first == query) > (b.first == query);
                       });
      for (const auto& [q, revocable] : targets) {
        (void)q;
        {
          // Revoke() runs outside mu_ on a raw pointer; re-check the operator
          // is still registered and pin it so a concurrent
          // UnregisterRevocable (operator teardown) waits for us.
          std::lock_guard<std::mutex> relock(mu_);
          bool still_registered = false;
          for (const auto& entry : revocables_) {
            if (entry.second == revocable) {
              still_registered = true;
              break;
            }
          }
          if (!still_registered) continue;
          ++revoking_[revocable];
        }
        revocations_.fetch_add(1);
        revocable->Revoke();
        std::lock_guard<std::mutex> relock(mu_);
        auto revoking_it = revoking_.find(revocable);
        if (--revoking_it->second == 0) revoking_.erase(revoking_it);
        revoke_cv_.notify_all();
        if (general_used_ + bytes <= cfg.per_worker_general) break;
      }
      {
        std::lock_guard<std::mutex> relock(mu_);
        if (general_used_ + bytes <= cfg.per_worker_general) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (trace != nullptr) {
      // The reservation stalled here waiting for spills to free memory.
      trace->RecordSpan(
          "memory", "revoke_wait", worker_id_ + 1, 0, revoke_start,
          trace->NowNanos() - revoke_start,
          {{"bytes", std::to_string(bytes)},
           {"revokes", std::to_string(revocations_.load() - revokes_before)}});
    }
    lock.lock();
    // usage_ may have changed (releases during revoke); re-read.
    QueryUsage& usage2 = usage_[query];
    new_user = usage2.user + (user ? bytes : 0);
    new_total = usage2.total + bytes;
    if (general_used_ + bytes <= cfg.per_worker_general) {
      usage2.user = new_user;
      usage2.total = new_total;
      general_used_ += bytes;
      peak_general_used_ = std::max(peak_general_used_, general_used_);
      query->AddGlobal(user ? bytes : 0, bytes);
      return Status::OK();
    }
  }

  // 3. Reserved pool promotion: a single query cluster-wide may overflow
  // into the reserved pool.
  if (cfg.enable_reserved_pool &&
      (reserved_owner_ == nullptr || reserved_owner_ == query) &&
      reserved_used_ + bytes <= cfg.per_worker_reserved) {
    reserved_owner_ = query;
    commit(true);
    return Status::OK();
  }

  // 4. Kill. (Production Presto can instead stall other queries; killing
  // keeps this simulation deadlock-free and is the documented policy.)
  Status error = Status::ResourceExhausted(
      "worker " + std::to_string(worker_id_) +
      " out of memory (general pool exhausted; reserved pool " +
      (reserved_owner_ != nullptr ? "occupied" : "insufficient") + ")");
  lock.unlock();
  query->Kill(error);
  return error;
}

void WorkerMemory::Release(QueryMemory* query, int64_t bytes, bool user) {
  PRESTO_DCHECK(bytes >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = usage_.find(query);
  if (it == usage_.end()) return;
  QueryUsage& usage = it->second;
  int64_t from_reserved = std::min(bytes, usage.in_reserved);
  int64_t from_general = bytes - from_reserved;
  usage.in_reserved -= from_reserved;
  reserved_used_ -= from_reserved;
  general_used_ -= from_general;
  usage.total -= bytes;
  if (user) usage.user -= bytes;
  query->AddGlobal(user ? -bytes : 0, -bytes);
  if (reserved_owner_ == query && usage.in_reserved == 0) {
    // Query vacated the reserved pool; unblock it for others.
    bool any_reserved = false;
    for (const auto& [q, u] : usage_) {
      if (u.in_reserved > 0) {
        any_reserved = true;
        break;
      }
    }
    if (!any_reserved) reserved_owner_ = nullptr;
  }
  if (usage.total == 0 && usage.user == 0) usage_.erase(it);
}

void WorkerMemory::RegisterRevocable(QueryMemory* query,
                                     Revocable* revocable) {
  std::lock_guard<std::mutex> lock(mu_);
  revocables_.emplace_back(query, revocable);
}

void WorkerMemory::UnregisterRevocable(Revocable* revocable) {
  std::unique_lock<std::mutex> lock(mu_);
  revocables_.erase(
      std::remove_if(revocables_.begin(), revocables_.end(),
                     [revocable](const auto& entry) {
                       return entry.second == revocable;
                     }),
      revocables_.end());
  // The caller destroys the object next; drain any Revoke() already running.
  revoke_cv_.wait(lock, [this, revocable] {
    return revoking_.find(revocable) == revoking_.end();
  });
}

int64_t WorkerMemory::general_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return general_used_;
}

int64_t WorkerMemory::peak_general_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_general_used_;
}

int64_t WorkerMemory::reserved_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_used_;
}

const QueryMemory* WorkerMemory::reserved_owner() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_owner_;
}

}  // namespace presto
