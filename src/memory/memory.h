#ifndef PRESTOCPP_MEMORY_MEMORY_H_
#define PRESTOCPP_MEMORY_MEMORY_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace presto {

class TraceRecorder;

/// Cluster memory configuration (§IV-F2). All limits are bytes.
struct MemoryConfig {
  int64_t per_worker_general = 256LL << 20;
  int64_t per_worker_reserved = 64LL << 20;
  /// Per-query limits: user memory per node and aggregated across nodes.
  int64_t per_query_per_node_user = 128LL << 20;
  int64_t per_query_global_user = 1LL << 30;
  /// Per-query total (user + system) limits.
  int64_t per_query_per_node_total = 192LL << 20;
  int64_t per_query_global_total = 2LL << 30;
  /// Whether exhaustion triggers revocation (spilling) before killing.
  bool enable_spill = true;
  /// Whether a single query may overflow into the reserved pool.
  bool enable_reserved_pool = true;
};

/// A spillable operator registers a Revocable with its worker's pool; under
/// memory pressure the pool invokes Revoke(), which must free memory (by
/// spilling state to disk) and return the number of bytes released.
class Revocable {
 public:
  virtual ~Revocable() = default;
  virtual int64_t Revoke() = 0;
};

/// Per-query memory ledger shared by all workers (global limits) plus the
/// kill switch: when a query exceeds its limits it is marked killed and all
/// its drivers terminate with the recorded reason.
class QueryMemory {
 public:
  QueryMemory(std::string query_id, const MemoryConfig* config)
      : query_id_(std::move(query_id)), config_(config) {}

  const std::string& query_id() const { return query_id_; }
  const MemoryConfig& config() const { return *config_; }

  int64_t global_user() const { return global_user_.load(); }
  int64_t global_total() const { return global_total_.load(); }
  int64_t peak_user() const { return peak_user_.load(); }

  void AddGlobal(int64_t user_delta, int64_t total_delta) {
    int64_t u = global_user_.fetch_add(user_delta) + user_delta;
    global_total_.fetch_add(total_delta);
    int64_t peak = peak_user_.load();
    while (u > peak && !peak_user_.compare_exchange_weak(peak, u)) {
    }
  }

  /// Marks the query failed; the first reason wins.
  void Kill(const Status& reason);
  bool killed() const { return killed_.load(); }
  Status kill_reason() const;

  /// Per-query trace recorder for memory events (revocation waits); may be
  /// null. Set once by the coordinator before tasks launch.
  void set_trace(TraceRecorder* trace) { trace_.store(trace); }
  TraceRecorder* trace() const { return trace_.load(); }

 private:
  std::string query_id_;
  const MemoryConfig* config_;
  std::atomic<int64_t> global_user_{0};
  std::atomic<int64_t> global_total_{0};
  std::atomic<int64_t> peak_user_{0};
  std::atomic<bool> killed_{false};
  std::atomic<TraceRecorder*> trace_{nullptr};
  mutable std::mutex mu_;
  Status kill_reason_;
};

/// Per-worker memory pools (§IV-F2): a general pool shared by all queries
/// and a reserved pool that at most one query cluster-wide may occupy once
/// the general pool is exhausted. Reservation order on pressure:
///   general pool -> revocation (spilling) -> reserved-pool promotion ->
///   kill the query.
class WorkerMemory {
 public:
  WorkerMemory(const MemoryConfig* config, int worker_id)
      : config_(config), worker_id_(worker_id) {}

  /// Reserves `bytes` of user or system memory for `query`.
  Status Reserve(QueryMemory* query, int64_t bytes, bool user);

  /// Releases memory previously reserved.
  void Release(QueryMemory* query, int64_t bytes, bool user);

  /// Registers/unregisters a spillable operator for revocation.
  /// UnregisterRevocable blocks until any in-flight Revoke() on the same
  /// object has returned, so the caller may destroy it immediately after.
  void RegisterRevocable(QueryMemory* query, Revocable* revocable);
  void UnregisterRevocable(Revocable* revocable);

  int64_t general_used() const;
  int64_t reserved_used() const;
  /// High-water mark of the general pool since startup.
  int64_t peak_general_used() const;
  /// Query currently promoted to the reserved pool (nullptr if none).
  const QueryMemory* reserved_owner() const;

  int64_t revocations() const { return revocations_.load(); }

 private:
  struct QueryUsage {
    int64_t user = 0;
    int64_t total = 0;
    int64_t in_reserved = 0;
  };

  const MemoryConfig* config_;
  int worker_id_;
  mutable std::mutex mu_;
  int64_t general_used_ = 0;
  int64_t peak_general_used_ = 0;
  int64_t reserved_used_ = 0;
  QueryMemory* reserved_owner_ = nullptr;
  std::map<QueryMemory*, QueryUsage> usage_;
  std::vector<std::pair<QueryMemory*, Revocable*>> revocables_;
  /// Revocables with a Revoke() call currently executing outside mu_
  /// (counted: two reservers may revoke the same operator concurrently).
  std::map<Revocable*, int> revoking_;
  std::condition_variable revoke_cv_;
  std::atomic<int64_t> revocations_{0};
};

}  // namespace presto

#endif  // PRESTOCPP_MEMORY_MEMORY_H_
