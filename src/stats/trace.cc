#include "stats/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace presto {
namespace {

std::atomic<uint64_t> g_next_instance_id{1};

// One-slot thread-local cache: maps the most recently used recorder
// instance to its buffer for this thread, avoiding the registry lock on
// every event. Keyed by instance id so a recorder destroyed and replaced
// at the same address cannot alias.
struct LocalCache {
  uint64_t instance_id = 0;
  void* buffer = nullptr;
};
thread_local LocalCache t_cache;

void AppendJsonArgs(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& args) {
  out += "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(args[i].first);
    out += "\":\"";
    out += JsonEscape(args[i].second);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceRecorder::TraceRecorder(std::string query_id, int64_t max_events)
    : query_id_(std::move(query_id)),
      max_events_(max_events),
      instance_id_(g_next_instance_id.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  if (t_cache.instance_id == instance_id_) {
    return static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ThreadBuffer*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    slot = buffers_.back().get();
  }
  t_cache = {instance_id_, slot};
  return slot;
}

void TraceRecorder::Append(TraceEvent event) {
  if (approx_count_.load(std::memory_order_relaxed) >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  approx_count_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::RecordSpan(
    const char* category, std::string name, int pid, int64_t tid,
    int64_t start_nanos, int64_t duration_nanos,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = TraceEvent::Phase::kSpan;
  event.start_nanos = start_nanos;
  event.duration_nanos = duration_nanos;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  Append(std::move(event));
}

void TraceRecorder::RecordInstant(
    const char* category, std::string name, int pid, int64_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = TraceEvent::Phase::kInstant;
  event.start_nanos = NowNanos();
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  Append(std::move(event));
}

size_t TraceRecorder::Drain(size_t max_events, std::vector<TraceEvent>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    pending_.insert(pending_.end(),
                    std::make_move_iterator(buffer->events.begin()),
                    std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  size_t taken = std::min(max_events, pending_.size());
  out->insert(out->end(), std::make_move_iterator(pending_.begin()),
              std::make_move_iterator(pending_.begin() +
                                      static_cast<ptrdiff_t>(taken)));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(taken));
  approx_count_.fetch_sub(static_cast<int64_t>(taken),
                          std::memory_order_relaxed);
  return taken;
}

void TraceRecorder::MergeEvent(TraceEvent event) { Append(std::move(event)); }

void TraceRecorder::AddDropped(int64_t count) {
  if (count > 0) dropped_.fetch_add(count, std::memory_order_relaxed);
}

std::map<int, std::string> TraceRecorder::ProcessNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return process_names_;
}

std::map<std::pair<int, int64_t>, std::string> TraceRecorder::ThreadNames()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_names_;
}

void TraceRecorder::SetProcessName(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = std::move(name);
}

void TraceRecorder::SetThreadName(int pid, int64_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[{pid, tid}] = std::move(name);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = pending_;  // drained but not yet shipped
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_nanos < b.start_nanos;
                   });
  return events;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int64_t>, std::string> thread_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_names = process_names_;
    thread_names = thread_names_;
  }
  // Every referenced pid gets a process_name metadata event even when no
  // explicit name was set, so Perfetto groups tracks sensibly.
  for (const TraceEvent& event : events) {
    if (process_names.count(event.pid) == 0) {
      process_names[event.pid] =
          event.pid == 0 ? "coordinator"
                         : "worker_" + std::to_string(event.pid - 1);
    }
  }

  std::string out;
  out.reserve(256 + events.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"query_id\":\"";
  out += JsonEscape(query_id_);
  out += "\",\"dropped_events\":";
  out += std::to_string(dropped());
  out += "},\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  char buf[64];
  for (const auto& [pid, name] : process_names) {
    comma();
    std::snprintf(buf, sizeof(buf), "%d", pid);
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += buf;
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += JsonEscape(name);
    out += "\"}}";
  }
  for (const auto& [key, name] : thread_names) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(key.first);
    out += ",\"tid\":";
    out += std::to_string(key.second);
    out += ",\"args\":{\"name\":\"";
    out += JsonEscape(name);
    out += "\"}}";
  }
  for (const TraceEvent& event : events) {
    comma();
    out += "{\"ph\":\"";
    out += event.phase == TraceEvent::Phase::kSpan ? 'X' : 'i';
    out += "\",\"name\":\"";
    out += JsonEscape(event.name);
    out += "\",\"cat\":\"";
    out += JsonEscape(event.category);
    out += "\",\"ts\":";
    // Chrome trace timestamps are microseconds (doubles); keep sub-us
    // resolution with a fixed 3-decimal rendering.
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(event.start_nanos / 1000),
                  static_cast<long long>(event.start_nanos % 1000));
    out += buf;
    if (event.phase == TraceEvent::Phase::kSpan) {
      out += ",\"dur\":";
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(event.duration_nanos / 1000),
                    static_cast<long long>(event.duration_nanos % 1000));
      out += buf;
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":";
    out += std::to_string(event.pid);
    out += ",\"tid\":";
    out += std::to_string(event.tid);
    out += ',';
    AppendJsonArgs(out, event.args);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::ToTimelineText(size_t max_lines) const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out;
  char buf[160];
  size_t lines = 0;
  for (const TraceEvent& event : events) {
    if (lines >= max_lines) {
      out += "  ... (" + std::to_string(events.size() - lines) +
             " more events)\n";
      break;
    }
    ++lines;
    double start_ms = static_cast<double>(event.start_nanos) / 1e6;
    if (event.phase == TraceEvent::Phase::kSpan) {
      double dur_ms = static_cast<double>(event.duration_nanos) / 1e6;
      std::snprintf(buf, sizeof(buf),
                    "  %10.3fms +%9.3fms  p%-2d t%-8lld %-10s %s", start_ms,
                    dur_ms, event.pid, static_cast<long long>(event.tid),
                    event.category, event.name.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %10.3fms             i  p%-2d t%-8lld %-10s %s",
                    start_ms, event.pid, static_cast<long long>(event.tid),
                    event.category, event.name.c_str());
    }
    out += buf;
    for (const auto& [key, value] : event.args) {
      out += ' ';
      out += key;
      out += '=';
      out += value;
    }
    out += '\n';
  }
  if (dropped() > 0) {
    out += "  (" + std::to_string(dropped()) + " events dropped at cap)\n";
  }
  return out;
}

const char* InternTraceCategory(const std::string& category) {
  // The common layer names resolve to their literals; anything else lands
  // in a process-lifetime set (never freed — categories are a tiny, finite
  // vocabulary, so the leak is bounded).
  static constexpr const char* kKnown[] = {
      "coordinator", "scheduler", "executor", "driver",
      "exchange",    "memory",    "spill",    "stream",
  };
  for (const char* known : kKnown) {
    if (category == known) return known;
  }
  static std::mutex mu;
  static std::set<std::string>* interned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return interned->insert(category).first->c_str();
}

Json TraceEventToJson(const TraceEvent& event) {
  Json json = Json::Object();
  json.Set("name", Json::Str(event.name))
      .Set("cat", Json::Str(event.category))
      .Set("ph", Json::Str(event.phase == TraceEvent::Phase::kSpan ? "X"
                                                                   : "i"))
      .Set("ts", Json::Int(event.start_nanos))
      .Set("pid", Json::Int(event.pid))
      .Set("tid", Json::Int(event.tid));
  if (event.phase == TraceEvent::Phase::kSpan) {
    json.Set("dur", Json::Int(event.duration_nanos));
  }
  if (!event.args.empty()) {
    Json args = Json::Object();
    for (const auto& [key, value] : event.args) args.Set(key, Json::Str(value));
    json.Set("args", std::move(args));
  }
  return json;
}

Result<TraceEvent> TraceEventFromJson(const Json& json) {
  TraceEvent event;
  PRESTO_ASSIGN_OR_RETURN(event.name, json.GetString("name"));
  PRESTO_ASSIGN_OR_RETURN(std::string category, json.GetString("cat"));
  event.category = InternTraceCategory(category);
  PRESTO_ASSIGN_OR_RETURN(std::string phase, json.GetString("ph"));
  event.phase =
      phase == "i" ? TraceEvent::Phase::kInstant : TraceEvent::Phase::kSpan;
  PRESTO_ASSIGN_OR_RETURN(event.start_nanos, json.GetInt("ts"));
  PRESTO_ASSIGN_OR_RETURN(int64_t pid, json.GetInt("pid"));
  event.pid = static_cast<int>(pid);
  PRESTO_ASSIGN_OR_RETURN(event.tid, json.GetInt("tid"));
  if (event.phase == TraceEvent::Phase::kSpan) {
    PRESTO_ASSIGN_OR_RETURN(event.duration_nanos, json.GetInt("dur"));
  }
  if (const Json* args = json.Find("args"); args != nullptr) {
    for (const auto& [key, value] : args->members()) {
      event.args.emplace_back(key, value.string_value());
    }
  }
  return event;
}

void TraceRegistry::Register(const std::string& query_id,
                             std::shared_ptr<TraceRecorder> recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  // Prune entries whose recorders are gone so the map stays bounded by
  // the number of live + tracked queries.
  for (auto it = recorders_.begin(); it != recorders_.end();) {
    it = it->second.expired() ? recorders_.erase(it) : std::next(it);
  }
  recorders_[query_id] = std::move(recorder);
}

std::shared_ptr<TraceRecorder> TraceRegistry::Lookup(
    const std::string& query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = recorders_.find(query_id);
  return it == recorders_.end() ? nullptr : it->second.lock();
}

}  // namespace presto
