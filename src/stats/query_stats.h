#ifndef PRESTOCPP_STATS_QUERY_STATS_H_
#define PRESTOCPP_STATS_QUERY_STATS_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "fragment/fragmenter.h"
#include "stats/event_listener.h"
#include "stats/metrics_registry.h"
#include "stats/operator_stats.h"
#include "stats/trace.h"

namespace presto {

/// Query lifecycle states (§IV-B: "the coordinator exposes query state to
/// clients"): QUEUED on registration, PLANNING while the statement is
/// parsed/optimized/fragmented, back to QUEUED while waiting for an
/// admission slot, RUNNING once tasks execute, then exactly one terminal
/// state.
enum class QueryState : uint8_t {
  kQueued,
  kPlanning,
  kRunning,
  kFinished,
  kFailed,
  kCanceled,
};

const char* QueryStateToString(QueryState state);

/// Live progress of one task slot, surfaced in /v1/query/{id} (ISSUE 10):
/// what the coordinator's status caches know about each (fragment, task)
/// right now — which worker and generation hold the slot, rows emitted by
/// its pipeline sinks, and how long the hosting worker has observed no
/// progress advance (the straggler-detection signal, ISSUE 9).
struct TaskProgress {
  int fragment_id = 0;
  int task_index = 0;
  int worker = -1;
  int generation = 0;
  int64_t rows_out = 0;
  int64_t progress_age_micros = 0;
};

/// Immutable snapshot of a query's lifecycle — the embedded analogue of the
/// REST /v1/query resource.
struct QueryInfo {
  std::string query_id;
  std::string sql;
  QueryState state = QueryState::kQueued;
  Status final_status;  // meaningful in terminal states
  /// Wall-clock creation time (unix millis), for display only.
  int64_t create_unix_millis = 0;
  int64_t queued_nanos = 0;     // admission-queue wait
  int64_t planning_nanos = 0;   // parse + plan + optimize + fragment
  int64_t execution_nanos = 0;  // first task launch -> last task done
  int64_t end_to_end_nanos = 0;
  /// Final stats in terminal states; live snapshot while RUNNING.
  QueryStats stats;
  /// Task count per fragment id (the per-stage breakdown).
  std::map<int, int> fragment_task_counts;
  /// Live per-task progress while RUNNING (ISSUE 10): one entry per slot
  /// from the coordinator's status caches. Empty in terminal states and in
  /// tests that never install a progress provider.
  std::vector<TaskProgress> task_progress;
};

class QueryTracker;

/// Mutable, thread-safe per-query lifecycle record. The engine and the
/// coordinator drive the state transitions; Finalize() is idempotent and
/// fires QueryCompleted plus completion metrics exactly once.
class QueryLifecycle {
 public:
  QueryLifecycle(std::string query_id, std::string sql, QueryTracker* owner);

  const std::string& query_id() const { return query_id_; }

  /// Per-query trace recorder; lives as long as this lifecycle record, so
  /// traces stay fetchable from the tracked-query history after completion.
  const std::shared_ptr<TraceRecorder>& trace() const { return trace_; }

  void MarkPlanning();
  /// Planning done; the query now waits for an admission slot.
  void MarkQueuedForAdmission();
  /// Admission granted; tasks are being created and launched.
  void MarkRunning(std::map<int, int> fragment_task_counts);

  /// Supplies live stats for Info() while the query runs; cleared by
  /// Finalize(). The provider must stay valid until then.
  void SetLiveStatsProvider(std::function<QueryStats()> provider);

  /// Supplies live per-task progress for Info() while the query runs
  /// (ISSUE 10); cleared by Finalize(). Same validity contract as
  /// SetLiveStatsProvider.
  void SetTaskProgressProvider(
      std::function<std::vector<TaskProgress>()> provider);

  /// Terminal transition: records the final status and stats, fires the
  /// QueryCompleted event, and updates completion metrics. Only the first
  /// call has any effect.
  void Finalize(const Status& final_status, bool cancelled, QueryStats stats);

  QueryInfo Info() const;

 private:
  using SteadyTime = std::chrono::steady_clock::time_point;

  QueryInfo InfoLocked() const;  // caller holds mu_

  const std::string query_id_;
  const std::string sql_;
  QueryTracker* const owner_;
  const std::shared_ptr<TraceRecorder> trace_;

  mutable std::mutex mu_;
  QueryState state_ = QueryState::kQueued;
  Status final_status_;
  int64_t create_unix_millis_;
  SteadyTime created_at_;
  SteadyTime planning_start_{};
  SteadyTime admission_start_{};
  SteadyTime running_start_{};
  int64_t queued_nanos_ = 0;
  int64_t planning_nanos_ = 0;
  int64_t execution_nanos_ = 0;
  int64_t end_to_end_nanos_ = 0;
  QueryStats final_stats_;
  std::map<int, int> fragment_task_counts_;
  std::function<QueryStats()> live_stats_;
  std::function<std::vector<TaskProgress>()> task_progress_;
  bool finalized_ = false;
};

/// Engine-wide registry of query lifecycles: powers QueryInfoFor() /
/// ListQueries(), dispatches EventListener callbacks, and feeds the
/// query-level metrics (admitted/finished/failed counters, latency
/// histogram) into the MetricsRegistry.
class QueryTracker {
 public:
  /// `metrics` may be null (no metrics emission, e.g. in narrow tests).
  explicit QueryTracker(MetricsRegistry* metrics);

  std::shared_ptr<QueryLifecycle> Register(const std::string& query_id,
                                           const std::string& sql);

  void AddListener(std::shared_ptr<EventListener> listener);

  Result<QueryInfo> Info(const std::string& query_id) const;
  std::vector<QueryInfo> List() const;

  /// The lifecycle record for `query_id`, or null if unknown / evicted.
  std::shared_ptr<QueryLifecycle> Lookup(const std::string& query_id) const;

 private:
  friend class QueryLifecycle;
  // Called by QueryLifecycle with no tracker/lifecycle locks held.
  void OnCompleted(const QueryCompletedEvent& event);

  MetricsRegistry* const metrics_;
  Counter* queries_created_ = nullptr;
  Counter* queries_finished_ = nullptr;
  Counter* queries_failed_ = nullptr;
  Counter* queries_canceled_ = nullptr;
  Counter* spill_bytes_ = nullptr;
  Histogram* execution_seconds_ = nullptr;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::shared_ptr<QueryLifecycle>>>
      queries_;  // insertion order; bounded history
  std::vector<std::shared_ptr<EventListener>> listeners_;
};

/// Renders the fragmented plan with per-node actual runtime stats next to
/// the optimizer's cardinality estimates — the EXPLAIN ANALYZE output.
std::string RenderAnnotatedPlan(const FragmentedPlan& plan,
                                const QueryStats& stats);

}  // namespace presto

#endif  // PRESTOCPP_STATS_QUERY_STATS_H_
