#ifndef PRESTOCPP_STATS_OPERATOR_STATS_H_
#define PRESTOCPP_STATS_OPERATOR_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/string_utils.h"

namespace presto {

/// Immutable snapshot of one operator's runtime counters (§IV-B "fine
/// grained low level stats" exposed per query). Snapshots are taken from the
/// lock-free atomics in OperatorContext while the query runs, so a snapshot
/// is internally consistent per counter but not across counters — good
/// enough for monitoring, exact once the query is finished.
struct OperatorStats {
  std::string label;       // "scan", "filter", "hash_probe", ...
  int plan_node_id = -1;   // -1 for auxiliary operators (local shuffles)
  int pipeline_id = 0;
  int fragment_id = 0;
  int instances = 0;       // driver instances merged into this entry

  int64_t input_rows = 0;
  int64_t input_pages = 0;
  int64_t input_bytes = 0;
  int64_t output_rows = 0;
  int64_t output_pages = 0;
  int64_t output_bytes = 0;

  /// Wall nanos inside AddInput / GetOutput (the operator never blocks
  /// inside these calls, so wall time approximates CPU time).
  int64_t add_input_nanos = 0;
  int64_t get_output_nanos = 0;
  /// Wall nanos the enclosing driver spent parked while this operator
  /// reported IsBlocked().
  int64_t blocked_nanos = 0;
  /// Wall nanos the enclosing driver spent runnable but waiting in the
  /// executor's MLFQ before a worker thread picked it up (charged to the
  /// pipeline's sink operator).
  int64_t queued_nanos = 0;

  int64_t peak_memory_bytes = 0;
  int64_t spilled_bytes = 0;
  /// CPU nanos spent serializing/deserializing wire frames or spill files
  /// (a subset of cpu_nanos; surfaced separately so serde cost is visible
  /// in EXPLAIN ANALYZE).
  int64_t serde_nanos = 0;

  int64_t cpu_nanos() const { return add_input_nanos + get_output_nanos; }

  /// Accumulates `other` into this entry (sums counters, maxes peaks;
  /// adopts identity fields when this entry is fresh).
  void Merge(const OperatorStats& other);

  std::string ToString() const;
};

/// Stats of one pipeline of a task: operator entries merged across the
/// pipeline's parallel driver instances, ordered source -> sink.
struct PipelineStats {
  int pipeline_id = 0;
  int num_drivers = 0;
  std::vector<OperatorStats> operators;
};

/// Stats of one task (one fragment instance on one worker).
struct TaskStats {
  int fragment_id = 0;
  int task_index = 0;
  int worker_id = 0;
  int64_t cpu_nanos = 0;  // scheduler-accounted CPU across all drivers
  std::vector<PipelineStats> pipelines;
};

/// Aggregated stats of a whole query: per-task breakdown plus rolled-up
/// totals (the paper's Table I / Fig. 7 raw material).
struct QueryStats {
  int64_t total_cpu_nanos = 0;
  int64_t total_blocked_nanos = 0;
  /// Rows/bytes produced by table scans and Values sources (raw input).
  int64_t raw_input_rows = 0;
  int64_t raw_input_bytes = 0;
  /// Rows delivered to the client through the root output sink.
  int64_t output_rows = 0;
  int64_t peak_user_memory_bytes = 0;
  int64_t total_spilled_bytes = 0;
  int num_tasks = 0;
  int num_drivers = 0;
  std::vector<TaskStats> tasks;

  /// Operator entries merged across every task and driver, keyed by
  /// (fragment, plan node, label); order follows first appearance.
  std::vector<OperatorStats> MergedOperators() const;

  /// One-line rollup, e.g. for ListQueries output.
  std::string Summary() const;
};

/// Rolls per-task snapshots up into a QueryStats (computes the totals).
QueryStats BuildQueryStats(std::vector<TaskStats> tasks,
                           int64_t peak_user_memory_bytes);

/// Human-friendly duration formatting used by EXPLAIN ANALYZE and examples
/// (FormatBytes lives in common/string_utils.h).
std::string FormatNanos(int64_t nanos);

}  // namespace presto

#endif  // PRESTOCPP_STATS_OPERATOR_STATS_H_
