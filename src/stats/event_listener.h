#ifndef PRESTOCPP_STATS_EVENT_LISTENER_H_
#define PRESTOCPP_STATS_EVENT_LISTENER_H_

#include <string>

#include "common/status.h"
#include "stats/operator_stats.h"

namespace presto {

/// Fired when a query is registered with the engine, before planning.
struct QueryCreatedEvent {
  std::string query_id;
  std::string sql;
};

/// Fired exactly once when a query reaches a terminal state — finished,
/// failed (planning or runtime), or canceled by the client.
struct QueryCompletedEvent {
  std::string query_id;
  std::string sql;
  Status final_status;      // OK for finished and client-canceled queries
  bool cancelled = false;   // true when the client canceled the query
  QueryStats stats;         // final stats (empty when planning failed)
  int64_t queued_nanos = 0;
  int64_t planning_nanos = 0;
  int64_t execution_nanos = 0;
  int64_t end_to_end_nanos = 0;
};

/// The embedded analogue of Presto's event-listener plugin (§IV-B): engine
/// consumers register listeners to ship query telemetry to external
/// pipelines. Callbacks run synchronously on engine threads and must not
/// block on the query they describe (e.g. do not call Wait()).
class EventListener {
 public:
  virtual ~EventListener() = default;
  virtual void QueryCreated(const QueryCreatedEvent& event) = 0;
  virtual void QueryCompleted(const QueryCompletedEvent& event) = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_STATS_EVENT_LISTENER_H_
