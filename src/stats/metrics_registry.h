#ifndef PRESTOCPP_STATS_METRICS_REGISTRY_H_
#define PRESTOCPP_STATS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace presto {

/// A sample's label set, e.g. {{"level", "2"}}. Order is significant for
/// identity: register with a consistent order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// `count` exponential histogram bucket upper bounds starting at `start`,
/// each `factor` times the previous (fixed log-bucket layout for latency
/// histograms; +Inf stays implicit).
std::vector<double> LogBuckets(double start, double factor, int count);

/// Monotonically increasing counter (Prometheus `counter`).
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta); }
  int64_t value() const { return value_.load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus `histogram`): cumulative bucket
/// counts, sum, and count. Observation is mutex-guarded — it sits on the
/// query-completion path, not the per-page hot path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<int64_t> cumulative_counts;  // one per bound, then +Inf
    double sum = 0;
    int64_t count = 0;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<int64_t> counts_;  // per-bucket (not cumulative), +Inf last
  double sum_ = 0;
  int64_t count_ = 0;
};

/// Engine-wide registry of counters, gauges, and histograms with a
/// Prometheus text-exposition renderer — the embedded analogue of Presto's
/// JMX/REST metrics endpoints. Registration is idempotent by name; gauges
/// are callback-based so they always report live values (queue depth, pool
/// usage, buffered bytes) without bookkeeping on the hot path.
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name` (+ labels), creating it on
  /// first use. Entries sharing a name form one Prometheus family and must
  /// share the same kind.
  Counter* RegisterCounter(const std::string& name, const std::string& help,
                           MetricLabels labels = {});

  /// Registers a live-value gauge; later registrations replace the callback.
  void RegisterGauge(const std::string& name, const std::string& help,
                     std::function<double()> value_fn,
                     MetricLabels labels = {});

  /// Returns the histogram registered under `name` (+ labels), creating it
  /// on first use with `bucket_bounds` (ascending upper bounds; +Inf is
  /// implicit).
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bucket_bounds,
                               MetricLabels labels = {});

  /// Prometheus text exposition format: families sorted by name, `# HELP` /
  /// `# TYPE` emitted once per family, label values escaped.
  std::string RenderText() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricLabels labels;
    enum class Kind : uint8_t { kCounter, kGauge, kHistogram } kind;
    std::unique_ptr<Counter> counter;
    std::function<double()> gauge_fn;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name, const MetricLabels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace presto

#endif  // PRESTOCPP_STATS_METRICS_REGISTRY_H_
