#ifndef PRESTOCPP_STATS_TRACE_H_
#define PRESTOCPP_STATS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace presto {

/// Wire/request header carrying the trace context of an exchange fetch:
/// the consumer sends its query/trace id with every GET, and the producer
/// echoes its own id in the response, so fetch spans on the consumer
/// correlate with sink/serve spans on the producer.
inline constexpr char kTraceHeader[] = "x-presto-trace";

/// One recorded event of a query trace. Spans cover an interval; instants
/// mark a point. `pid`/`tid` follow the Chrome trace_event convention of
/// one "process" per worker and one "thread" per driver:
///   pid 0 = coordinator, pid w+1 = worker w;
///   tid 0 = control threads, otherwise a per-driver id.
struct TraceEvent {
  enum class Phase : uint8_t { kSpan, kInstant };

  std::string name;
  /// Layer the event came from ("coordinator", "scheduler", "driver",
  /// "exchange", "memory"). Must point at static-duration storage.
  const char* category = "";
  Phase phase = Phase::kSpan;
  int64_t start_nanos = 0;     // relative to the recorder's epoch
  int64_t duration_nanos = 0;  // spans only
  int pid = 0;
  int64_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Per-query distributed tracing recorder (the embedded analogue of a
/// Presto coordinator assembling per-task timelines for the UI). Every
/// layer — coordinator, scheduler, executor, exchange, memory — records
/// timestamped spans against the recorder owned by the query's lifecycle.
///
/// Hot-path cost is one steady-clock read plus a vector push into a
/// per-thread buffer: each recording thread gets its own buffer (found via
/// a thread-local cache, created under the recorder lock on first use), so
/// concurrent recorders never contend with each other; Snapshot() flushes
/// every buffer under its (uncontended) buffer lock.
///
/// Spans are bounded per query: beyond `max_events` new events are counted
/// in dropped() and discarded, so tracing is safe to leave on.
class TraceRecorder {
 public:
  static constexpr int64_t kDefaultMaxEvents = 200'000;

  explicit TraceRecorder(std::string query_id,
                         int64_t max_events = kDefaultMaxEvents);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const std::string& query_id() const { return query_id_; }

  /// Nanoseconds since the recorder's creation (span timestamps).
  int64_t NowNanos() const;

  void RecordSpan(const char* category, std::string name, int pid,
                  int64_t tid, int64_t start_nanos, int64_t duration_nanos,
                  std::vector<std::pair<std::string, std::string>> args = {});

  void RecordInstant(
      const char* category, std::string name, int pid, int64_t tid,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Display names for the Chrome trace metadata events.
  void SetProcessName(int pid, std::string name);
  void SetThreadName(int pid, int64_t tid, std::string name);

  /// Events discarded because the per-query cap was reached.
  int64_t dropped() const { return dropped_.load(); }
  /// Events currently held (approximate while threads record).
  int64_t recorded() const { return approx_count_.load(); }

  /// All events so far, ordered by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Destructively removes up to `max_events` buffered events for shipping
  /// to a remote recorder (ISSUE 10). Removed events stop counting against
  /// the cap, so `max_events_` bounds the backlog awaiting shipment rather
  /// than lifetime volume — a long query drained regularly never drops.
  /// Returns the number of events appended to `out`.
  size_t Drain(size_t max_events, std::vector<TraceEvent>* out);

  /// Appends an event recorded by another process. The caller must have
  /// rebased `start_nanos` onto this recorder's epoch already.
  void MergeEvent(TraceEvent event);

  /// Folds a remote recorder's dropped count into this one so the rendered
  /// trace reports end-to-end drops.
  void AddDropped(int64_t count);

  /// Returns the dropped count accumulated since the previous call and
  /// resets it: a shipping worker reports each drop exactly once even when
  /// several task clients poll the same per-query recorder.
  int64_t TakeDropped() { return dropped_.exchange(0); }

  /// Copies of the display-name maps, shipped alongside drained events so
  /// the merged timeline keeps per-driver thread names.
  std::map<int, std::string> ProcessNames() const;
  std::map<std::pair<int, int64_t>, std::string> ThreadNames() const;

  /// Chrome trace_event JSON (load in Perfetto / chrome://tracing): one
  /// metadata process per worker, one thread per driver, "X" spans and "i"
  /// instants with microsecond timestamps.
  std::string ToChromeTraceJson() const;

  /// Compact text timeline (EXPLAIN ANALYZE VERBOSE): one line per event,
  /// truncated beyond `max_lines`.
  std::string ToTimelineText(size_t max_lines = 200) const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* LocalBuffer();
  void Append(TraceEvent event);

  const std::string query_id_;
  const int64_t max_events_;
  /// Process-unique id keying the thread-local buffer cache, so a stale
  /// cache entry from a destroyed recorder can never alias a new one.
  const uint64_t instance_id_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<int64_t> approx_count_{0};
  std::atomic<int64_t> dropped_{0};

  mutable std::mutex mu_;  // guards buffers_/by_thread_/names/pending_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::thread::id, ThreadBuffer*> by_thread_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int64_t>, std::string> thread_names_;
  /// Events pulled out of the per-thread buffers by a previous Drain()
  /// that exceeded its per-call budget; shipped first on the next call.
  std::vector<TraceEvent> pending_;
};

/// JSON (de)serialization of one TraceEvent for cross-process shipping in
/// /v1/task status responses. FromJson interns the category string so the
/// returned event's `category` has static storage duration.
Json TraceEventToJson(const TraceEvent& event);
Result<TraceEvent> TraceEventFromJson(const Json& json);

/// Maps `category` to an equal string with static storage duration
/// (TraceEvent.category must outlive every recorder). Known categories
/// resolve to their literal; novel ones are interned in a leaky set.
const char* InternTraceCategory(const std::string& category);

/// Engine-wide registry resolving a query/trace id (e.g. from an
/// `x-presto-trace` header) to its recorder. Holds weak references: a
/// recorder lives exactly as long as its query's lifecycle record, so a
/// scrape racing query teardown gets nullptr, never a dangling pointer.
class TraceRegistry {
 public:
  void Register(const std::string& query_id,
                std::shared_ptr<TraceRecorder> recorder);
  std::shared_ptr<TraceRecorder> Lookup(const std::string& query_id) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::weak_ptr<TraceRecorder>> recorders_;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

}  // namespace presto

#endif  // PRESTOCPP_STATS_TRACE_H_
