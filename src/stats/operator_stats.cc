#include "stats/operator_stats.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

namespace presto {

void OperatorStats::Merge(const OperatorStats& other) {
  if (instances == 0) {
    label = other.label;
    plan_node_id = other.plan_node_id;
    pipeline_id = other.pipeline_id;
    fragment_id = other.fragment_id;
  }
  instances += other.instances == 0 ? 1 : other.instances;
  input_rows += other.input_rows;
  input_pages += other.input_pages;
  input_bytes += other.input_bytes;
  output_rows += other.output_rows;
  output_pages += other.output_pages;
  output_bytes += other.output_bytes;
  add_input_nanos += other.add_input_nanos;
  get_output_nanos += other.get_output_nanos;
  blocked_nanos += other.blocked_nanos;
  queued_nanos += other.queued_nanos;
  peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
  spilled_bytes += other.spilled_bytes;
  serde_nanos += other.serde_nanos;
}

std::string OperatorStats::ToString() const {
  std::string out = label + ": in " + std::to_string(input_rows) +
                    " rows (" + FormatBytes(input_bytes) + "), out " +
                    std::to_string(output_rows) + " rows (" +
                    FormatBytes(output_bytes) + "), cpu " +
                    FormatNanos(cpu_nanos());
  if (blocked_nanos > 0) out += ", blocked " + FormatNanos(blocked_nanos);
  if (queued_nanos > 0) out += ", queued " + FormatNanos(queued_nanos);
  if (peak_memory_bytes > 0) out += ", peak " + FormatBytes(peak_memory_bytes);
  if (spilled_bytes > 0) out += ", spilled " + FormatBytes(spilled_bytes);
  if (serde_nanos > 0) out += ", serde " + FormatNanos(serde_nanos);
  return out;
}

std::vector<OperatorStats> QueryStats::MergedOperators() const {
  std::vector<OperatorStats> out;
  std::map<std::tuple<int, int, std::string>, size_t> index;
  for (const auto& task : tasks) {
    for (const auto& pipeline : task.pipelines) {
      for (const auto& op : pipeline.operators) {
        auto key = std::make_tuple(op.fragment_id, op.plan_node_id, op.label);
        auto it = index.find(key);
        if (it == index.end()) {
          index.emplace(key, out.size());
          out.push_back(op);
        } else {
          out[it->second].Merge(op);
        }
      }
    }
  }
  return out;
}

std::string QueryStats::Summary() const {
  return "cpu " + FormatNanos(total_cpu_nanos) + ", input " +
         std::to_string(raw_input_rows) + " rows (" +
         FormatBytes(raw_input_bytes) + "), output " +
         std::to_string(output_rows) + " rows, peak " +
         FormatBytes(peak_user_memory_bytes) + ", " +
         std::to_string(num_tasks) + " tasks / " +
         std::to_string(num_drivers) + " drivers";
}

QueryStats BuildQueryStats(std::vector<TaskStats> tasks,
                           int64_t peak_user_memory_bytes) {
  QueryStats stats;
  stats.peak_user_memory_bytes = peak_user_memory_bytes;
  stats.num_tasks = static_cast<int>(tasks.size());
  for (const auto& task : tasks) {
    stats.total_cpu_nanos += task.cpu_nanos;
    for (const auto& pipeline : task.pipelines) {
      stats.num_drivers += pipeline.num_drivers;
      for (const auto& op : pipeline.operators) {
        stats.total_blocked_nanos += op.blocked_nanos;
        stats.total_spilled_bytes += op.spilled_bytes;
        if (op.label == "scan" || op.label == "values") {
          stats.raw_input_rows += op.output_rows;
          stats.raw_input_bytes += op.output_bytes;
        }
        if (op.label == "output") {
          stats.output_rows += op.output_rows;
        }
      }
    }
  }
  stats.tasks = std::move(tasks);
  return stats;
}

std::string FormatNanos(int64_t nanos) {
  char buf[32];
  if (nanos < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(nanos) / 1e3);
  } else if (nanos < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.2fms",
                  static_cast<double>(nanos) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(nanos) / 1e9);
  }
  return buf;
}

}  // namespace presto
