#include "stats/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace presto {

namespace {

// Prometheus-compatible number formatting: integers stay integral, doubles
// keep enough precision to round-trip.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Prometheus text format: label values escape backslash, double-quote, and
// newline; HELP text escapes backslash and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Renders `name{k="v",...}` — with `extra` (e.g. le="0.5") appended after
// the entry's own labels — or the bare name when there are none.
std::string SampleName(const std::string& name, const MetricLabels& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

std::vector<double> LogBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)),
      counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bucket = bounds_.size();  // +Inf
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  sum_ += value;
  ++count_;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.cumulative_counts.resize(counts_.size());
  int64_t running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    snap.cumulative_counts[i] = running;
  }
  snap.sum = sum_;
  snap.count = count_;
  return snap;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              const MetricLabels& labels) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) return entry.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help,
                                          MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name, labels)) return existing->counter.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->kind = Entry::Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help,
                                    std::function<double()> value_fn,
                                    MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name, labels)) {
    existing->gauge_fn = std::move(value_fn);
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->kind = Entry::Kind::kGauge;
  entry->gauge_fn = std::move(value_fn);
  entries_.push_back(std::move(entry));
}

Histogram* MetricsRegistry::RegisterHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> bucket_bounds, MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name, labels)) return existing->histogram.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->kind = Entry::Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bucket_bounds));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

std::string MetricsRegistry::RenderText() const {
  // Snapshot entry pointers under the lock; gauges are evaluated outside it
  // so a gauge callback may itself take unrelated locks.
  std::vector<const Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
  }
  std::stable_sort(
      entries.begin(), entries.end(),
      [](const Entry* a, const Entry* b) { return a->name < b->name; });
  std::string out;
  const std::string* prev_family = nullptr;
  for (const Entry* entry : entries) {
    // Entries sharing a name are one family: announce it once.
    if (prev_family == nullptr || *prev_family != entry->name) {
      out += "# HELP " + entry->name + " " + EscapeHelp(entry->help) + "\n";
      out += "# TYPE " + entry->name + " ";
      switch (entry->kind) {
        case Entry::Kind::kCounter:
          out += "counter\n";
          break;
        case Entry::Kind::kGauge:
          out += "gauge\n";
          break;
        case Entry::Kind::kHistogram:
          out += "histogram\n";
          break;
      }
      prev_family = &entry->name;
    }
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        out += SampleName(entry->name, entry->labels) + " " +
               FormatValue(static_cast<double>(entry->counter->value())) +
               "\n";
        break;
      case Entry::Kind::kGauge:
        out += SampleName(entry->name, entry->labels) + " " +
               FormatValue(entry->gauge_fn()) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        Histogram::Snapshot snap = entry->histogram->snapshot();
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          out += SampleName(entry->name + "_bucket", entry->labels,
                            "le=\"" + FormatValue(snap.bounds[i]) + "\"") +
                 " " +
                 FormatValue(static_cast<double>(snap.cumulative_counts[i])) +
                 "\n";
        }
        out += SampleName(entry->name + "_bucket", entry->labels,
                          "le=\"+Inf\"") +
               " " + FormatValue(static_cast<double>(snap.count)) + "\n";
        out += SampleName(entry->name + "_sum", entry->labels) + " " +
               FormatValue(snap.sum) + "\n";
        out += SampleName(entry->name + "_count", entry->labels) + " " +
               FormatValue(static_cast<double>(snap.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace presto
