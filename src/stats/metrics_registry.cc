#include "stats/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace presto {

namespace {

// Prometheus-compatible number formatting: integers stay integral, doubles
// keep enough precision to round-trip.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)),
      counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bucket = bounds_.size();  // +Inf
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  sum_ += value;
  ++count_;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.bounds = bounds_;
  snap.cumulative_counts.resize(counts_.size());
  int64_t running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    snap.cumulative_counts[i] = running;
  }
  snap.sum = sum_;
  snap.count = count_;
  return snap;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name)) return existing->counter.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = Entry::Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help,
                                    std::function<double()> value_fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name)) {
    existing->gauge_fn = std::move(value_fn);
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = Entry::Kind::kGauge;
  entry->gauge_fn = std::move(value_fn);
  entries_.push_back(std::move(entry));
}

Histogram* MetricsRegistry::RegisterHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> bucket_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = Find(name)) return existing->histogram.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = Entry::Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bucket_bounds));
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

std::string MetricsRegistry::RenderText() const {
  // Snapshot entry pointers under the lock; gauges are evaluated outside it
  // so a gauge callback may itself take unrelated locks.
  std::vector<const Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& entry : entries_) entries.push_back(entry.get());
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  std::string out;
  for (const Entry* entry : entries) {
    out += "# HELP " + entry->name + " " + entry->help + "\n";
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " +
               FormatValue(static_cast<double>(entry->counter->value())) +
               "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + FormatValue(entry->gauge_fn()) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        out += "# TYPE " + entry->name + " histogram\n";
        Histogram::Snapshot snap = entry->histogram->snapshot();
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          out += entry->name + "_bucket{le=\"" + FormatValue(snap.bounds[i]) +
                 "\"} " +
                 FormatValue(static_cast<double>(snap.cumulative_counts[i])) +
                 "\n";
        }
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               FormatValue(static_cast<double>(snap.count)) + "\n";
        out += entry->name + "_sum " + FormatValue(snap.sum) + "\n";
        out += entry->name + "_count " +
               FormatValue(static_cast<double>(snap.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace presto
