#include "stats/query_stats.h"

#include <algorithm>
#include <utility>

#include "optimizer/stats_estimator.h"
#include "plan/plan_node.h"

namespace presto {

namespace {

int64_t NanosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
      .count();
}

constexpr std::chrono::steady_clock::time_point kUnsetTime{};

// Completed queries retained for ListQueries()/QueryInfoFor(); oldest are
// evicted beyond this to bound long-lived engines.
constexpr size_t kMaxTrackedQueries = 1024;

}  // namespace

const char* QueryStateToString(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "QUEUED";
    case QueryState::kPlanning:
      return "PLANNING";
    case QueryState::kRunning:
      return "RUNNING";
    case QueryState::kFinished:
      return "FINISHED";
    case QueryState::kFailed:
      return "FAILED";
    case QueryState::kCanceled:
      return "CANCELED";
  }
  return "?";
}

QueryLifecycle::QueryLifecycle(std::string query_id, std::string sql,
                               QueryTracker* owner)
    : query_id_(std::move(query_id)),
      sql_(std::move(sql)),
      owner_(owner),
      trace_(std::make_shared<TraceRecorder>(query_id_)),
      create_unix_millis_(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()),
      created_at_(std::chrono::steady_clock::now()) {}

void QueryLifecycle::MarkPlanning() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  state_ = QueryState::kPlanning;
  planning_start_ = std::chrono::steady_clock::now();
}

void QueryLifecycle::MarkQueuedForAdmission() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  auto now = std::chrono::steady_clock::now();
  if (planning_start_ != kUnsetTime) {
    planning_nanos_ += NanosBetween(planning_start_, now);
    planning_start_ = kUnsetTime;
  }
  state_ = QueryState::kQueued;
  admission_start_ = now;
}

void QueryLifecycle::MarkRunning(std::map<int, int> fragment_task_counts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  auto now = std::chrono::steady_clock::now();
  if (admission_start_ != kUnsetTime) {
    queued_nanos_ += NanosBetween(admission_start_, now);
    admission_start_ = kUnsetTime;
  }
  state_ = QueryState::kRunning;
  running_start_ = now;
  fragment_task_counts_ = std::move(fragment_task_counts);
}

void QueryLifecycle::SetLiveStatsProvider(
    std::function<QueryStats()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  live_stats_ = std::move(provider);
}

void QueryLifecycle::SetTaskProgressProvider(
    std::function<std::vector<TaskProgress>()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return;
  task_progress_ = std::move(provider);
}

void QueryLifecycle::Finalize(const Status& final_status, bool cancelled,
                              QueryStats stats) {
  QueryCompletedEvent event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) return;
    finalized_ = true;
    auto now = std::chrono::steady_clock::now();
    // Close out whichever phase the query died in.
    if (planning_start_ != kUnsetTime) {
      planning_nanos_ += NanosBetween(planning_start_, now);
    }
    if (admission_start_ != kUnsetTime) {
      queued_nanos_ += NanosBetween(admission_start_, now);
    }
    if (running_start_ != kUnsetTime) {
      execution_nanos_ = NanosBetween(running_start_, now);
    }
    end_to_end_nanos_ = NanosBetween(created_at_, now);
    final_status_ = final_status;
    final_stats_ = std::move(stats);
    live_stats_ = nullptr;
    task_progress_ = nullptr;
    // Client cancellation surfaces as a kCancelled status; report it as
    // CANCELED, not FAILED. Any other error (even on a canceled query)
    // means the query genuinely failed first.
    if (cancelled && (final_status.ok() ||
                      final_status.code() == StatusCode::kCancelled)) {
      state_ = QueryState::kCanceled;
    } else if (!final_status.ok()) {
      state_ = QueryState::kFailed;
    } else {
      state_ = QueryState::kFinished;
    }
    event.query_id = query_id_;
    event.sql = sql_;
    event.final_status = final_status_;
    event.cancelled = state_ == QueryState::kCanceled;
    event.stats = final_stats_;
    event.queued_nanos = queued_nanos_;
    event.planning_nanos = planning_nanos_;
    event.execution_nanos = execution_nanos_;
    event.end_to_end_nanos = end_to_end_nanos_;
  }
  // Listener callbacks and metrics run with no lifecycle lock held; this may
  // be called from the last task's completion path, so listeners must not
  // block on the query itself.
  if (owner_ != nullptr) owner_->OnCompleted(event);
}

QueryInfo QueryLifecycle::InfoLocked() const {
  QueryInfo info;
  info.query_id = query_id_;
  info.sql = sql_;
  info.state = state_;
  info.final_status = final_status_;
  info.create_unix_millis = create_unix_millis_;
  info.queued_nanos = queued_nanos_;
  info.planning_nanos = planning_nanos_;
  info.execution_nanos = execution_nanos_;
  info.end_to_end_nanos = end_to_end_nanos_;
  info.stats = final_stats_;
  info.fragment_task_counts = fragment_task_counts_;
  if (!finalized_) {
    // Live view: extend the open phase up to now.
    auto now = std::chrono::steady_clock::now();
    if (planning_start_ != kUnsetTime) {
      info.planning_nanos += NanosBetween(planning_start_, now);
    }
    if (admission_start_ != kUnsetTime) {
      info.queued_nanos += NanosBetween(admission_start_, now);
    }
    if (running_start_ != kUnsetTime) {
      info.execution_nanos = NanosBetween(running_start_, now);
    }
    info.end_to_end_nanos = NanosBetween(created_at_, now);
  }
  return info;
}

QueryInfo QueryLifecycle::Info() const {
  QueryInfo info;
  std::function<QueryStats()> live;
  std::function<std::vector<TaskProgress>()> progress;
  {
    std::lock_guard<std::mutex> lock(mu_);
    info = InfoLocked();
    if (!finalized_) {
      live = live_stats_;
      progress = task_progress_;
    }
  }
  // The live providers snapshot task state under the execution's own locks;
  // call them outside mu_ to keep lock ordering acyclic with Finalize().
  if (live) info.stats = live();
  if (progress) info.task_progress = progress();
  return info;
}

QueryTracker::QueryTracker(MetricsRegistry* metrics) : metrics_(metrics) {
  if (metrics_ == nullptr) return;
  queries_created_ = metrics_->RegisterCounter(
      "presto_queries_created_total", "Queries registered with the engine");
  queries_finished_ = metrics_->RegisterCounter(
      "presto_queries_finished_total", "Queries completed successfully");
  queries_failed_ = metrics_->RegisterCounter("presto_queries_failed_total",
                                              "Queries ending in an error");
  queries_canceled_ = metrics_->RegisterCounter(
      "presto_queries_canceled_total", "Queries canceled by the client");
  spill_bytes_ = metrics_->RegisterCounter(
      "presto_spilled_bytes_total", "Bytes spilled to disk across queries");
  execution_seconds_ = metrics_->RegisterHistogram(
      "presto_query_execution_seconds",
      "Query execution time (task launch to last task done)",
      {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60});
}

std::shared_ptr<QueryLifecycle> QueryTracker::Register(
    const std::string& query_id, const std::string& sql) {
  auto lifecycle = std::make_shared<QueryLifecycle>(query_id, sql, this);
  std::vector<std::shared_ptr<EventListener>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queries_.emplace_back(query_id, lifecycle);
    if (queries_.size() > kMaxTrackedQueries) {
      queries_.erase(queries_.begin());
    }
    listeners = listeners_;
  }
  if (queries_created_ != nullptr) queries_created_->Increment();
  QueryCreatedEvent event{query_id, sql};
  for (const auto& listener : listeners) listener->QueryCreated(event);
  return lifecycle;
}

void QueryTracker::AddListener(std::shared_ptr<EventListener> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(std::move(listener));
}

Result<QueryInfo> QueryTracker::Info(const std::string& query_id) const {
  std::shared_ptr<QueryLifecycle> lifecycle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : queries_) {
      if (id == query_id) lifecycle = entry;  // last registration wins
    }
  }
  if (lifecycle == nullptr) {
    return Status::NotFound("unknown query id: " + query_id);
  }
  return lifecycle->Info();
}

std::shared_ptr<QueryLifecycle> QueryTracker::Lookup(
    const std::string& query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<QueryLifecycle> found;
  for (const auto& [id, entry] : queries_) {
    if (id == query_id) found = entry;  // last registration wins
  }
  return found;
}

std::vector<QueryInfo> QueryTracker::List() const {
  std::vector<std::shared_ptr<QueryLifecycle>> lifecycles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lifecycles.reserve(queries_.size());
    for (const auto& [id, entry] : queries_) lifecycles.push_back(entry);
  }
  std::vector<QueryInfo> out;
  out.reserve(lifecycles.size());
  for (const auto& lifecycle : lifecycles) out.push_back(lifecycle->Info());
  return out;
}

void QueryTracker::OnCompleted(const QueryCompletedEvent& event) {
  if (metrics_ != nullptr) {
    if (!event.final_status.ok()) {
      queries_failed_->Increment();
    } else if (event.cancelled) {
      queries_canceled_->Increment();
    } else {
      queries_finished_->Increment();
    }
    spill_bytes_->Increment(event.stats.total_spilled_bytes);
    execution_seconds_->Observe(
        static_cast<double>(event.execution_nanos) / 1e9);
  }
  std::vector<std::shared_ptr<EventListener>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners = listeners_;
  }
  for (const auto& listener : listeners) listener->QueryCompleted(event);
}

std::string RenderAnnotatedPlan(const FragmentedPlan& plan,
                                const QueryStats& stats) {
  // (fragment id, plan node id) -> operators merged across tasks/drivers. A
  // node may map to several physical operators (hash_build + hash_probe,
  // partial/final local exchange halves); all are listed under the node.
  std::map<std::pair<int, int>, std::vector<OperatorStats>> by_node;
  for (const auto& op : stats.MergedOperators()) {
    by_node[{op.fragment_id, op.plan_node_id}].push_back(op);
  }
  // Per-fragment rollups for the fragment header lines.
  std::map<int, int> task_counts;
  std::map<int, int64_t> task_cpu;
  for (const auto& task : stats.tasks) {
    ++task_counts[task.fragment_id];
    task_cpu[task.fragment_id] += task.cpu_nanos;
  }

  std::string out = "Query: " + stats.Summary() + "\n";
  for (const auto& f : plan.fragments) {
    out += "Fragment " + std::to_string(f.id) + " [" +
           PartitioningKindToString(f.partitioning) + "]";
    if (f.consumer >= 0) out += " -> fragment " + std::to_string(f.consumer);
    out += " {tasks: " + std::to_string(task_counts[f.id]) +
           ", cpu: " + FormatNanos(task_cpu[f.id]) + "}\n";
    int fragment_id = f.id;
    out += PlanToString(
        *f.root, [&](const PlanNode& node) {
          std::string annotation;
          PlanEstimate est = EstimatePlan(node);
          annotation += "est: ";
          annotation += est.known()
                            ? std::to_string(static_cast<int64_t>(est.rows)) +
                                  " rows"
                            : "? rows";
          auto it = by_node.find({fragment_id, node.id()});
          if (it != by_node.end()) {
            for (const auto& op : it->second) {
              annotation += "\nactual " + op.ToString();
            }
          }
          return annotation;
        });
  }
  return out;
}

}  // namespace presto
