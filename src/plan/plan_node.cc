#include "plan/plan_node.h"

#include "common/string_utils.h"

namespace presto {

namespace {

void PrintTree(const PlanNode& node, int indent, const PlanAnnotator& annotator,
               std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += node.Label();
  *out += "  => ";
  *out += node.output().ToString();
  *out += "\n";
  if (annotator) {
    std::string annotation = annotator(node);
    size_t start = 0;
    while (start < annotation.size()) {
      size_t end = annotation.find('\n', start);
      if (end == std::string::npos) end = annotation.size();
      out->append(static_cast<size_t>(indent) * 2 + 4, ' ');
      out->append(annotation, start, end - start);
      *out += "\n";
      start = end + 1;
    }
  }
  for (const auto& child : node.children()) {
    PrintTree(*child, indent + 1, annotator, out);
  }
}

std::string KeyList(const std::vector<int>& keys) {
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (int k : keys) parts.push_back("#" + std::to_string(k));
  return Join(parts, ", ");
}

std::string SortKeyList(const std::vector<SortKey>& keys) {
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (const auto& k : keys) {
    parts.push_back("#" + std::to_string(k.column) +
                    (k.ascending ? " ASC" : " DESC"));
  }
  return Join(parts, ", ");
}

}  // namespace

std::string PlanToString(const PlanNode& root) {
  std::string out;
  PrintTree(root, 0, nullptr, &out);
  return out;
}

std::string PlanToString(const PlanNode& root,
                         const PlanAnnotator& annotator) {
  std::string out;
  PrintTree(root, 0, annotator, &out);
  return out;
}

std::string TableScanNode::Label() const {
  std::string out = "TableScan[" + connector_ + "." + table_->name();
  if (!layout_id_.empty()) out += " layout=" + layout_id_;
  out += "]";
  if (!predicates_.empty()) {
    std::vector<std::string> preds;
    preds.reserve(predicates_.size());
    for (const auto& p : predicates_) preds.push_back(p.ToString());
    out += " pushed={" + Join(preds, " AND ") + "}";
  }
  return out;
}

std::string FilterNode::Label() const {
  return "Filter[" + predicate_->ToString() + "]";
}

std::string ProjectNode::Label() const {
  std::vector<std::string> parts;
  parts.reserve(expressions_.size());
  for (const auto& e : expressions_) parts.push_back(e->ToString());
  return "Project[" + Join(parts, ", ") + "]";
}

std::string AggregateNode::Label() const {
  std::string step;
  switch (step_) {
    case AggregationStep::kSingle:
      step = "Single";
      break;
    case AggregationStep::kPartial:
      step = "Partial";
      break;
    case AggregationStep::kFinal:
      step = "Final";
      break;
  }
  std::vector<std::string> aggs;
  aggs.reserve(aggregates_.size());
  for (const auto& a : aggregates_) aggs.push_back(a.output_name);
  return "Aggregate(" + step + ")[keys=(" + KeyList(group_keys_) + ") aggs=(" +
         Join(aggs, ", ") + ")]";
}

std::string JoinNode::Label() const {
  std::string dist;
  switch (distribution_) {
    case JoinDistribution::kUnset:
      dist = "";
      break;
    case JoinDistribution::kPartitioned:
      dist = " dist=partitioned";
      break;
    case JoinDistribution::kBroadcast:
      dist = " dist=broadcast";
      break;
    case JoinDistribution::kColocated:
      dist = " dist=colocated";
      break;
  }
  std::string out = std::string(sql::JoinTypeToString(join_type_)) + "Join[";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += "#" + std::to_string(left_keys_[i]) + " = R#" +
           std::to_string(right_keys_[i]);
  }
  if (residual_filter_ != nullptr) {
    out += " residual=" + residual_filter_->ToString();
  }
  return out + dist + "]";
}

std::string SortNode::Label() const {
  return "Sort[" + SortKeyList(keys_) + "]";
}

std::string TopNNode::Label() const {
  return std::string("TopN") + (partial_ ? "(Partial)" : "") + "[" +
         SortKeyList(keys_) + " limit=" + std::to_string(n_) + "]";
}

std::string LimitNode::Label() const {
  return std::string("Limit") + (partial_ ? "(Partial)" : "") + "[" +
         std::to_string(n_) + "]";
}

std::string WindowNode::Label() const {
  std::vector<std::string> fns;
  fns.reserve(functions_.size());
  for (const auto& f : functions_) fns.push_back(f.output_name);
  return "Window[partition=(" + KeyList(partition_keys_) + ") order=(" +
         SortKeyList(order_keys_) + ") fns=(" + Join(fns, ", ") + ")]";
}

std::string ValuesNode::Label() const {
  return "Values[" + std::to_string(rows_.size()) + " rows]";
}

std::string UnionAllNode::Label() const { return "UnionAll"; }

std::string OutputNode::Label() const {
  return "Output[" + Join(column_names_, ", ") + "]";
}

std::string TableWriteNode::Label() const {
  return "TableWrite[" + connector_ + "." + table_->name() + "]";
}

std::string RemoteSourceNode::Label() const {
  std::string kind;
  switch (exchange_kind_) {
    case ExchangeKind::kGather:
      kind = "gather";
      break;
    case ExchangeKind::kRepartition:
      kind = "repartition";
      break;
    case ExchangeKind::kBroadcast:
      kind = "broadcast";
      break;
    case ExchangeKind::kRoundRobin:
      kind = "round-robin";
      break;
  }
  return "RemoteSource[fragment=" + std::to_string(source_fragment_) + " " +
         kind + "]";
}

std::string ExchangeNode::Label() const {
  std::string kind;
  switch (exchange_kind_) {
    case ExchangeKind::kGather:
      kind = "gather";
      break;
    case ExchangeKind::kRepartition:
      kind = "repartition";
      break;
    case ExchangeKind::kBroadcast:
      kind = "broadcast";
      break;
    case ExchangeKind::kRoundRobin:
      kind = "round-robin";
      break;
  }
  std::string scope = scope_ == ExchangeScope::kRemote ? "Remote" : "Local";
  std::string out = scope + "Exchange[" + kind;
  if (!partition_keys_.empty()) out += " keys=(" + KeyList(partition_keys_) + ")";
  return out + "]";
}

}  // namespace presto
