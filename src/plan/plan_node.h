#ifndef PRESTOCPP_PLAN_PLAN_NODE_H_
#define PRESTOCPP_PLAN_PLAN_NODE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "expr/aggregates.h"
#include "expr/expression.h"
#include "sql/ast.h"
#include "types/row_schema.h"

namespace presto {

enum class PlanNodeKind : uint8_t {
  kTableScan,
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kTopN,
  kLimit,
  kWindow,
  kValues,
  kUnionAll,
  kOutput,
  kTableWrite,
  kExchange,
  kRemoteSource,
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// Immutable logical/physical plan node (§IV-B3): "an intermediate
/// representation encoded in the form of a tree of plan nodes". The
/// optimizer rewrites trees by constructing new nodes; the fragmenter then
/// splits the tree into stages at Exchange boundaries.
class PlanNode {
 public:
  PlanNode(PlanNodeKind kind, int id, RowSchema output,
           std::vector<PlanNodePtr> children)
      : kind_(kind),
        id_(id),
        output_(std::move(output)),
        children_(std::move(children)) {}
  virtual ~PlanNode() = default;

  PlanNodeKind kind() const { return kind_; }
  int id() const { return id_; }
  const RowSchema& output() const { return output_; }
  const std::vector<PlanNodePtr>& children() const { return children_; }
  const PlanNodePtr& child(size_t i = 0) const { return children_[i]; }

  /// One-line description used by EXPLAIN, e.g. "Filter [(#0 > 10)]".
  virtual std::string Label() const = 0;

 private:
  PlanNodeKind kind_;
  int id_;
  RowSchema output_;
  std::vector<PlanNodePtr> children_;
};

/// Renders the plan tree with indentation (EXPLAIN output).
std::string PlanToString(const PlanNode& root);

/// Produces extra per-node text (possibly multi-line) printed beneath the
/// node's label; empty string for no annotation.
using PlanAnnotator = std::function<std::string(const PlanNode&)>;

/// Renders the plan tree with a per-node annotation (EXPLAIN ANALYZE).
std::string PlanToString(const PlanNode& root, const PlanAnnotator& annotator);

// ---------------------------------------------------------------------------

class TableScanNode final : public PlanNode {
 public:
  TableScanNode(int id, std::string connector, TableHandlePtr table,
                std::vector<int> columns, RowSchema output,
                std::vector<ColumnPredicate> predicates,
                std::string layout_id, TableStats stats)
      : PlanNode(PlanNodeKind::kTableScan, id, std::move(output), {}),
        connector_(std::move(connector)),
        table_(std::move(table)),
        columns_(std::move(columns)),
        predicates_(std::move(predicates)),
        layout_id_(std::move(layout_id)),
        stats_(std::move(stats)) {}

  const std::string& connector() const { return connector_; }
  const TableHandlePtr& table() const { return table_; }
  /// Ordinals into the table schema, one per output column.
  const std::vector<int>& columns() const { return columns_; }
  /// Conjuncts pushed into the connector.
  const std::vector<ColumnPredicate>& predicates() const {
    return predicates_;
  }
  const std::string& layout_id() const { return layout_id_; }
  const TableStats& stats() const { return stats_; }

  std::string Label() const override;

 private:
  std::string connector_;
  TableHandlePtr table_;
  std::vector<int> columns_;
  std::vector<ColumnPredicate> predicates_;
  std::string layout_id_;
  TableStats stats_;
};

class FilterNode final : public PlanNode {
 public:
  FilterNode(int id, ExprPtr predicate, PlanNodePtr child)
      : PlanNode(PlanNodeKind::kFilter, id, child->output(), {child}),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }
  std::string Label() const override;

 private:
  ExprPtr predicate_;
};

class ProjectNode final : public PlanNode {
 public:
  ProjectNode(int id, std::vector<ExprPtr> expressions, RowSchema output,
              PlanNodePtr child)
      : PlanNode(PlanNodeKind::kProject, id, std::move(output), {child}),
        expressions_(std::move(expressions)) {}

  const std::vector<ExprPtr>& expressions() const { return expressions_; }
  std::string Label() const override;

 private:
  std::vector<ExprPtr> expressions_;
};

/// Aggregation step in the distributed plan (Fig. 3: AggregatePartial feeds
/// AggregateFinal across a shuffle).
enum class AggregationStep : uint8_t { kSingle, kPartial, kFinal };

struct AggregateCall {
  AggregateSignature signature;
  int arg_column = -1;  // -1 for COUNT(*)
  std::string output_name;
};

class AggregateNode final : public PlanNode {
 public:
  AggregateNode(int id, AggregationStep step, std::vector<int> group_keys,
                std::vector<AggregateCall> aggregates, RowSchema output,
                PlanNodePtr child)
      : PlanNode(PlanNodeKind::kAggregate, id, std::move(output), {child}),
        step_(step),
        group_keys_(std::move(group_keys)),
        aggregates_(std::move(aggregates)) {}

  AggregationStep step() const { return step_; }
  const std::vector<int>& group_keys() const { return group_keys_; }
  const std::vector<AggregateCall>& aggregates() const { return aggregates_; }
  std::string Label() const override;

 private:
  AggregationStep step_;
  std::vector<int> group_keys_;
  std::vector<AggregateCall> aggregates_;
};

/// Physical distribution of a join, chosen by the cost-based optimizer
/// (§IV-C "join strategy selection"): partitioned (both sides shuffled on
/// keys), broadcast (build replicated to every probe task), or co-located
/// (both sides bucketed on the keys by the connector — no shuffle at all).
enum class JoinDistribution : uint8_t {
  kUnset,
  kPartitioned,
  kBroadcast,
  kColocated,
};

class JoinNode final : public PlanNode {
 public:
  JoinNode(int id, sql::JoinType join_type, std::vector<int> left_keys,
           std::vector<int> right_keys, ExprPtr residual_filter,
           JoinDistribution distribution, RowSchema output, PlanNodePtr left,
           PlanNodePtr right)
      : PlanNode(PlanNodeKind::kJoin, id, std::move(output), {left, right}),
        join_type_(join_type),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_filter_(std::move(residual_filter)),
        distribution_(distribution) {}

  sql::JoinType join_type() const { return join_type_; }
  /// Equi-join key columns (indices into left/right child outputs). Empty
  /// for cross joins.
  const std::vector<int>& left_keys() const { return left_keys_; }
  const std::vector<int>& right_keys() const { return right_keys_; }
  /// Non-equi residual predicate over [left columns..., right columns...];
  /// may be null.
  const ExprPtr& residual_filter() const { return residual_filter_; }
  JoinDistribution distribution() const { return distribution_; }
  std::string Label() const override;

 private:
  sql::JoinType join_type_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_filter_;
  JoinDistribution distribution_;
};

struct SortKey {
  int column;
  bool ascending = true;
};

class SortNode final : public PlanNode {
 public:
  SortNode(int id, std::vector<SortKey> keys, PlanNodePtr child)
      : PlanNode(PlanNodeKind::kSort, id, child->output(), {child}),
        keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  std::string Label() const override;

 private:
  std::vector<SortKey> keys_;
};

class TopNNode final : public PlanNode {
 public:
  TopNNode(int id, std::vector<SortKey> keys, int64_t n, bool partial,
           PlanNodePtr child)
      : PlanNode(PlanNodeKind::kTopN, id, child->output(), {child}),
        keys_(std::move(keys)),
        n_(n),
        partial_(partial) {}

  const std::vector<SortKey>& keys() const { return keys_; }
  int64_t n() const { return n_; }
  bool partial() const { return partial_; }
  std::string Label() const override;

 private:
  std::vector<SortKey> keys_;
  int64_t n_;
  bool partial_;
};

class LimitNode final : public PlanNode {
 public:
  LimitNode(int id, int64_t n, bool partial, PlanNodePtr child)
      : PlanNode(PlanNodeKind::kLimit, id, child->output(), {child}),
        n_(n),
        partial_(partial) {}

  int64_t n() const { return n_; }
  bool partial() const { return partial_; }
  std::string Label() const override;

 private:
  int64_t n_;
  bool partial_;
};

struct WindowFunction {
  enum class Kind : uint8_t { kRowNumber, kRank, kDenseRank, kAggregate };
  Kind kind;
  /// For kAggregate: which aggregate over arg_column.
  AggregateSignature signature{};
  int arg_column = -1;
  std::string output_name;
  TypeKind result_type;
};

class WindowNode final : public PlanNode {
 public:
  WindowNode(int id, std::vector<int> partition_keys,
             std::vector<SortKey> order_keys,
             std::vector<WindowFunction> functions, RowSchema output,
             PlanNodePtr child)
      : PlanNode(PlanNodeKind::kWindow, id, std::move(output), {child}),
        partition_keys_(std::move(partition_keys)),
        order_keys_(std::move(order_keys)),
        functions_(std::move(functions)) {}

  const std::vector<int>& partition_keys() const { return partition_keys_; }
  const std::vector<SortKey>& order_keys() const { return order_keys_; }
  const std::vector<WindowFunction>& functions() const { return functions_; }
  std::string Label() const override;

 private:
  std::vector<int> partition_keys_;
  std::vector<SortKey> order_keys_;
  std::vector<WindowFunction> functions_;
};

class ValuesNode final : public PlanNode {
 public:
  ValuesNode(int id, RowSchema output, std::vector<std::vector<Value>> rows)
      : PlanNode(PlanNodeKind::kValues, id, std::move(output), {}),
        rows_(std::move(rows)) {}

  const std::vector<std::vector<Value>>& rows() const { return rows_; }
  std::string Label() const override;

 private:
  std::vector<std::vector<Value>> rows_;
};

class UnionAllNode final : public PlanNode {
 public:
  UnionAllNode(int id, RowSchema output, std::vector<PlanNodePtr> children)
      : PlanNode(PlanNodeKind::kUnionAll, id, std::move(output),
                 std::move(children)) {}

  std::string Label() const override;
};

class OutputNode final : public PlanNode {
 public:
  OutputNode(int id, std::vector<std::string> column_names, PlanNodePtr child)
      : PlanNode(PlanNodeKind::kOutput, id, child->output(), {child}),
        column_names_(std::move(column_names)) {}

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  std::string Label() const override;

 private:
  std::vector<std::string> column_names_;
};

class TableWriteNode final : public PlanNode {
 public:
  TableWriteNode(int id, std::string connector, TableHandlePtr table,
                 RowSchema output, PlanNodePtr child)
      : PlanNode(PlanNodeKind::kTableWrite, id, std::move(output), {child}),
        connector_(std::move(connector)),
        table_(std::move(table)) {}

  const std::string& connector() const { return connector_; }
  const TableHandlePtr& table() const { return table_; }
  std::string Label() const override;

 private:
  std::string connector_;
  TableHandlePtr table_;
};

/// Data movement inserted by the fragmenter (§IV-C3): remote exchanges
/// become stage boundaries (shuffles over the in-memory buffered exchange);
/// local exchanges parallelize pipelines within a task (§IV-C4).
enum class ExchangeKind : uint8_t {
  kGather,       // all data to one task
  kRepartition,  // hash-partition on keys
  kBroadcast,    // replicate to all tasks
  kRoundRobin,   // arbitrary distribution (feeds scalable writer stages)
};

enum class ExchangeScope : uint8_t { kRemote, kLocal };

class ExchangeNode final : public PlanNode {
 public:
  ExchangeNode(int id, ExchangeKind exchange_kind, ExchangeScope scope,
               std::vector<int> partition_keys, PlanNodePtr child)
      : PlanNode(PlanNodeKind::kExchange, id, child->output(), {child}),
        exchange_kind_(exchange_kind),
        scope_(scope),
        partition_keys_(std::move(partition_keys)) {}

  ExchangeKind exchange_kind() const { return exchange_kind_; }
  ExchangeScope scope() const { return scope_; }
  const std::vector<int>& partition_keys() const { return partition_keys_; }
  std::string Label() const override;

 private:
  ExchangeKind exchange_kind_;
  ExchangeScope scope_;
  std::vector<int> partition_keys_;
};

/// Leaf of a fragment that consumes the output of another fragment over the
/// shuffle (the consumer end of a remote exchange).
class RemoteSourceNode final : public PlanNode {
 public:
  RemoteSourceNode(int id, int source_fragment, ExchangeKind exchange_kind,
                   RowSchema output)
      : PlanNode(PlanNodeKind::kRemoteSource, id, std::move(output), {}),
        source_fragment_(source_fragment),
        exchange_kind_(exchange_kind) {}

  int source_fragment() const { return source_fragment_; }
  ExchangeKind exchange_kind() const { return exchange_kind_; }
  std::string Label() const override;

 private:
  int source_fragment_;
  ExchangeKind exchange_kind_;
};

}  // namespace presto

#endif  // PRESTOCPP_PLAN_PLAN_NODE_H_
