#ifndef PRESTOCPP_PLAN_PLAN_SERDE_H_
#define PRESTOCPP_PLAN_PLAN_SERDE_H_

#include "common/json.h"
#include "common/status.h"
#include "connector/connector.h"
#include "fragment/fragmenter.h"

namespace presto {

/// JSON wire format for plan fragments, used by the out-of-process task
/// protocol (ISSUE 6, §IV-B "task updates"): the coordinator serializes
/// each fragment once and POSTs it to every worker hosting a task of that
/// fragment. Workers re-materialize the plan against their own catalog —
/// table handles travel as (connector, table) names and are re-resolved
/// through ConnectorMetadata::GetTable, and scalar/aggregate functions are
/// re-resolved against the registry, so both processes must agree on
/// catalog contents (enforced operationally: workers are launched with the
/// same catalog flags).
///
/// Not all plans are serializable: TableWrite carries a transient CTAS
/// handle that only exists coordinator-side, so process-mode execution
/// rejects writes (see Coordinator::Execute).
Result<Json> PlanFragmentToJson(const PlanFragment& fragment);
Result<PlanFragment> PlanFragmentFromJson(const Json& json,
                                          const Catalog& catalog);

/// Individual pieces, exposed for tests and the task protocol.
Json ValueToJson(const Value& value);
Result<Value> ValueFromJson(const Json& json);
Json ExprToJson(const Expr& expr);
Result<ExprPtr> ExprFromJson(const Json& json);
Json SchemaToJson(const RowSchema& schema);
Result<RowSchema> SchemaFromJson(const Json& json);

}  // namespace presto

#endif  // PRESTOCPP_PLAN_PLAN_SERDE_H_
