#ifndef PRESTOCPP_PLAN_PLANNER_H_
#define PRESTOCPP_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "connector/connector.h"
#include "metadata/metadata_resolver.h"
#include "plan/plan_node.h"
#include "sql/analyzer.h"
#include "sql/ast.h"

namespace presto {

class MetadataSnapshot;

/// Lowers an analyzed AST into the logical plan IR (§IV-B3). The planner
/// performs name resolution and typing via sql::ExprBinder, extracts
/// aggregates and window functions into Aggregate/Window nodes, expands
/// stars, desugars DISTINCT, and unifies UNION ALL branch schemas. The
/// resulting tree is purely logical: no exchanges, no distribution choices —
/// those are added by the optimizer and fragmenter.
class Planner {
 public:
  /// Compatibility constructor: resolves tables through an owned, uncached
  /// per-planner MetadataSnapshot over `catalog` (still memoized, so one
  /// query does one GetTable per distinct table).
  explicit Planner(const Catalog* catalog);

  /// Resolves all table metadata through `resolver` (ISSUE 8) — the
  /// query's MetadataSnapshot, so repeated references see one consistent
  /// MetadataVersion and the reads become plan-cache dependencies.
  explicit Planner(MetadataResolver* resolver);

  ~Planner();

  /// Plans a full statement. SELECT produces Output(...); CTAS/INSERT
  /// produce Output(TableWrite(...)).
  Result<PlanNodePtr> Plan(const sql::Statement& stmt);

 private:
  struct RelationPlan {
    PlanNodePtr node;
    sql::Scope scope;  // name resolution over node->output() columns
  };

  int NewId() { return next_id_++; }

  Result<RelationPlan> PlanQuery(const sql::SelectStmt& stmt);
  Result<RelationPlan> PlanQuerySpec(const sql::SelectStmt& stmt);
  Result<RelationPlan> PlanTableRef(const sql::TableRef& ref);
  Result<RelationPlan> PlanNamedTable(const sql::TableRef& ref);
  Result<RelationPlan> PlanJoin(const sql::TableRef& ref);

  Result<PlanNodePtr> PlanWrite(const sql::Statement& stmt,
                                RelationPlan query);

  const Catalog* catalog_;
  std::unique_ptr<MetadataSnapshot> owned_snapshot_;  // compat ctor only
  MetadataResolver* resolver_;
  int next_id_ = 0;
};

}  // namespace presto

#endif  // PRESTOCPP_PLAN_PLANNER_H_
